//! Shared helpers for the workspace integration tests.

/// Golden output of `generate_trusted` over the same EDL.
pub mod generated_demo_t;
/// Golden output of `sgx_edl::codegen::generate_untrusted` over
/// `src/demo.edl` — checked in so the generated code is compile-checked;
/// regenerate with `cargo run -p integration-tests --bin generate_demo`.
pub mod generated_demo_u;

use std::sync::Arc;

use sgx_sdk::{CallData, OcallTableBuilder, Runtime, ThreadCtx};
use sgx_sim::{EnclaveConfig, EnclaveId, Machine};
use sim_core::{Clock, HwProfile, Nanos};

/// A minimal ready-to-call enclave application used by several tests:
/// `ecall_work(ns)` computes, `ecall_io` performs one `ocall_io` that
/// burns 1 µs outside.
pub struct TestApp {
    /// The runtime (loader, URTS).
    pub rt: Arc<Runtime>,
    /// The enclave id.
    pub eid: EnclaveId,
    /// The application's ocall table.
    pub table: Arc<sgx_sdk::OcallTable>,
}

impl TestApp {
    /// Builds the app on a fresh machine with the given profile.
    pub fn new(profile: HwProfile) -> TestApp {
        let machine = Arc::new(Machine::new(Clock::new(), profile));
        let rt = Runtime::new(machine);
        let spec = sgx_edl::parse(
            "enclave { trusted {
                public void ecall_work(uint64_t ns);
                public void ecall_io();
            }; untrusted { void ocall_io(); }; };",
        )
        .expect("static EDL");
        let enclave = rt
            .create_enclave(&spec, &EnclaveConfig::default())
            .expect("create enclave");
        enclave
            .register_ecall("ecall_work", |ctx, data| {
                ctx.compute(Nanos::from_nanos(data.scalar))?;
                Ok(())
            })
            .expect("register");
        enclave
            .register_ecall("ecall_io", |ctx, _| {
                ctx.ocall("ocall_io", &mut CallData::default())
            })
            .expect("register");
        let mut builder = OcallTableBuilder::new(enclave.spec());
        builder
            .register("ocall_io", |host, _| {
                host.compute(Nanos::from_micros(1));
                Ok(())
            })
            .expect("register ocall");
        let table = Arc::new(builder.build().expect("table"));
        TestApp {
            eid: enclave.id(),
            rt,
            table,
        }
    }

    /// Issues `ecall_work(ns)` from the main thread.
    pub fn work(&self, ns: u64) {
        self.rt
            .ecall(
                &ThreadCtx::main(),
                self.eid,
                "ecall_work",
                &self.table,
                &mut CallData::new(ns),
            )
            .expect("ecall_work");
    }

    /// Issues `ecall_io` from the main thread.
    pub fn io(&self) {
        self.rt
            .ecall(
                &ThreadCtx::main(),
                self.eid,
                "ecall_io",
                &self.table,
                &mut CallData::default(),
            )
            .expect("ecall_io");
    }
}
