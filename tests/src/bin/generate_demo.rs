//! Regenerates the golden codegen modules from `tests/src/demo.edl`.
//!
//! ```sh
//! cargo run -p integration-tests --bin generate_demo
//! ```
//!
//! The outputs are committed (`generated_demo_u.rs` / `generated_demo_t.rs`)
//! so they are compile-checked; `tests/codegen_golden.rs` fails if they
//! drift from the EDL.

fn main() {
    let edl = std::fs::read_to_string("tests/src/demo.edl").expect("read tests/src/demo.edl");
    let spec = sgx_edl::parse(&edl).expect("demo.edl parses");
    std::fs::write(
        "tests/src/generated_demo_u.rs",
        sgx_edl::codegen::generate_untrusted(&spec, "demo"),
    )
    .expect("write untrusted module");
    std::fs::write(
        "tests/src/generated_demo_t.rs",
        sgx_edl::codegen::generate_trusted(&spec, "demo"),
    )
    .expect("write trusted module");
    println!("regenerated tests/src/generated_demo_{{u,t}}.rs");
}
