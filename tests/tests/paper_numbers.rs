//! The headline reproduction targets, asserted: every table/figure anchor
//! the simulation is calibrated against (see EXPERIMENTS.md).

use sgx_perf::{Analyzer, CallKind, Logger, LoggerConfig};
use sim_core::{HwProfile, Nanos};
use workloads::{Harness, Variant};

/// §2.3.1: transition round-trips 2,130 / 3,850 / 4,890 ns with the
/// published 1.74× and 2.24× degradations.
#[test]
fn e1_transition_costs() {
    let ns: Vec<u64> = HwProfile::ALL
        .iter()
        .map(|p| p.cost_model().transition_roundtrip().as_nanos())
        .collect();
    assert_eq!(ns, vec![2_130, 3_850, 4_890]);
}

/// Table 2 experiments (1) and (2), measured end-to-end through the
/// loader, URTS and TRTS with and without the logger.
#[test]
fn e2_logger_overhead_rows() {
    let app = integration_tests::TestApp::new(HwProfile::Unpatched);
    let clock = app.rt.machine().clock().clone();
    let t0 = clock.now();
    app.work(0);
    assert_eq!((clock.now() - t0).as_nanos(), 4_205);
    let t0 = clock.now();
    app.io();
    // 8,013 ns of call overhead + the 1 us of untrusted work TestApp's
    // ocall performs.
    assert_eq!((clock.now() - t0).as_nanos(), 8_013 + 1_000);

    let app = integration_tests::TestApp::new(HwProfile::Unpatched);
    let _logger = Logger::attach(&app.rt, LoggerConfig::default());
    let clock = app.rt.machine().clock().clone();
    let t0 = clock.now();
    app.work(0);
    assert_eq!((clock.now() - t0).as_nanos(), 5_571); // paper: 5,572
    let t0 = clock.now();
    app.io();
    assert_eq!((clock.now() - t0).as_nanos(), 10_699 + 1_000);
}

/// §5.2.1: TaLoS interface shape — 207/61 declared, 61/10 called, and the
/// short-call dominance that condemns the OpenSSL interface.
#[test]
fn e3_talos_shape() {
    let harness = Harness::new(HwProfile::Unpatched);
    let logger = Logger::attach(harness.runtime(), LoggerConfig::default());
    workloads::talos::run(
        &harness,
        &workloads::talos::TalosConfig {
            requests: 300,
            ..Default::default()
        },
    )
    .unwrap();
    let trace = logger.finish();
    let report = Analyzer::new(&trace, harness.profile().cost_model()).analyze();
    assert_eq!(report.totals.distinct_ecalls, 61, "paper: 61 called");
    assert_eq!(report.totals.distinct_ocalls, 10, "paper: 10 called");
    // ~27.6 ecalls and ~29 ocalls per request at paper scale.
    let per_req_e = report.totals.ecall_events as f64 / 300.0;
    let per_req_o = report.totals.ocall_events as f64 / 300.0;
    assert!((24.0..33.0).contains(&per_req_e), "{per_req_e}");
    assert!((25.0..35.0).contains(&per_req_o), "{per_req_o}");
    // Majority of calls are short — the paper's core complaint.
    assert!(report.short_fraction(CallKind::Ecall) > 0.5);
    assert!(report.short_fraction(CallKind::Ocall) > 0.5);
}

/// §5.2.2 / Figure 6: ordering and the merge gain on every profile.
#[test]
fn e4_sqlite_figure6_shape() {
    for profile in HwProfile::ALL {
        let tput = |variant| {
            workloads::sqlitedb::run(
                &Harness::new(profile),
                &workloads::sqlitedb::SqliteConfig {
                    inserts: 2_000,
                    variant,
                    ..Default::default()
                },
            )
            .unwrap()
            .throughput()
        };
        let native = tput(Variant::Native);
        let enclave = tput(Variant::Enclave);
        let optimised = tput(Variant::Optimised);
        assert!(native > optimised && optimised > enclave, "{profile}");
        let gain = optimised / enclave;
        assert!((1.1..1.6).contains(&gain), "{profile}: gain {gain}");
    }
}

/// §5.2.3: the partitioned signing run is dominated by bn_sub_part_words
/// (6,448 per signature) and the optimisation speedup grows with each
/// hardware mitigation, as in Figure 6.
#[test]
fn e5_glamdring_speedups_grow_with_mitigations() {
    let mut speedups = Vec::new();
    for profile in HwProfile::ALL {
        let tput = |variant| {
            workloads::glamdring::run(
                &Harness::new(profile),
                &workloads::glamdring::GlamdringConfig {
                    duration: Nanos::from_millis(400),
                    variant,
                    ..Default::default()
                },
            )
            .unwrap()
            .stats
            .throughput()
        };
        speedups.push(tput(Variant::Optimised) / tput(Variant::Enclave));
    }
    assert!(speedups[0] > 1.7, "unpatched speedup {}", speedups[0]);
    assert!(
        speedups[0] < speedups[1] && speedups[1] < speedups[2],
        "{speedups:?} (paper: 2.16 < 2.66 < 2.87)"
    );
}

/// §5.2.3: working set 61 pages at start-up, 32 during the benchmark.
#[test]
fn e5_glamdring_working_set() {
    let harness = Harness::new(HwProfile::Unpatched);
    let config = workloads::glamdring::GlamdringConfig {
        duration: Nanos::from_millis(100),
        variant: Variant::Enclave,
        ..Default::default()
    };
    let app = workloads::glamdring::GlamdringApp::new(&harness, &config).unwrap();
    let wse = sgx_perf::WorkingSetEstimator::attach(harness.machine(), app.enclave_id()).unwrap();
    app.startup().unwrap();
    let startup = wse.mark().unwrap();
    app.sign_for(Nanos::from_millis(100)).unwrap();
    let steady = wse.mark().unwrap();
    assert_eq!(startup.pages, 61);
    assert_eq!(steady.pages, 32);
}

/// §5.2.4: SecureKeeper — 18 sync ocalls at connect, narrow interface,
/// means near 14/18 µs, and the 322/94-page working sets.
#[test]
fn e6_securekeeper_shape() {
    let harness = Harness::new(HwProfile::Unpatched);
    let logger = Logger::attach(harness.runtime(), LoggerConfig::default());
    workloads::securekeeper::run(
        &harness,
        &workloads::securekeeper::SecureKeeperConfig {
            duration: Nanos::from_millis(400),
            ..Default::default()
        },
    )
    .unwrap();
    let trace = logger.finish();
    let report = Analyzer::new(&trace, harness.profile().cost_model()).analyze();
    assert_eq!(
        report.totals.sync_sleeps + report.totals.sync_wakes,
        18,
        "paper: 18 sync ocalls during the connect phase"
    );
    let client = report.stats_for("ecall_handle_input_from_client").unwrap();
    let zk = report.stats_for("ecall_handle_input_from_zk").unwrap();
    assert!(
        (11_000.0..18_000.0).contains(&client.mean_ns),
        "{}",
        client.mean_ns
    );
    assert!((15_000.0..23_000.0).contains(&zk.mean_ns), "{}", zk.mean_ns);
    assert!(zk.mean_ns > client.mean_ns);

    let (startup, steady) = workloads::securekeeper::working_set_probe(
        &Harness::new(HwProfile::Unpatched),
        &workloads::securekeeper::SecureKeeperConfig::default(),
        200,
    )
    .unwrap();
    assert_eq!((startup, steady), (322, 94));
}

/// Table 2 experiment (3): ≈11.5 AEXs on a 45.4 ms ecall; counting costs
/// about 1,076 ns per AEX.
#[test]
fn e2_aex_counting() {
    use sgx_perf::AexMode;
    let app = integration_tests::TestApp::new(HwProfile::Unpatched);
    let logger = Logger::attach(&app.rt, LoggerConfig::with_aex(AexMode::Count));
    app.work(45_377_000);
    let trace = logger.finish();
    let row = trace.ecalls.iter().next().unwrap();
    assert!((11..=12).contains(&row.aex_count), "{}", row.aex_count);
}
