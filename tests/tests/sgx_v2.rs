//! SGX v2 end-to-end: AEX causes become visible to the logger on v2 debug
//! enclaves (§4.1.4) and dynamic heap growth interacts correctly with the
//! working-set estimator and paging trace.

use std::sync::Arc;

use sgx_perf::{AexMode, Logger, LoggerConfig, WorkingSetEstimator};
use sgx_sdk::{CallData, OcallTableBuilder, Runtime, ThreadCtx};
use sgx_sim::{AccessKind, EnclaveConfig, Machine, MachineParams, SgxVersion};
use sim_core::{Clock, HwProfile, Nanos};

fn runtime(version: SgxVersion) -> Arc<Runtime> {
    let machine = Arc::new(Machine::with_params(
        Clock::new(),
        HwProfile::Unpatched,
        MachineParams {
            sgx_version: version,
            ..MachineParams::default()
        },
    ));
    Runtime::new(machine)
}

#[test]
fn v2_aex_causes_reach_the_trace() {
    for (version, expect_cause) in [(SgxVersion::V1, false), (SgxVersion::V2, true)] {
        let rt = runtime(version);
        let spec = sgx_edl::parse("enclave { trusted { public void ecall_long(uint64_t ns); }; };")
            .unwrap();
        let enclave = rt.create_enclave(&spec, &EnclaveConfig::default()).unwrap();
        enclave
            .register_ecall("ecall_long", |ctx, data| {
                ctx.compute(Nanos::from_nanos(data.scalar))?;
                Ok(())
            })
            .unwrap();
        let table = Arc::new(OcallTableBuilder::new(enclave.spec()).build().unwrap());
        let logger = Logger::attach(&rt, LoggerConfig::with_aex(AexMode::Trace));
        rt.ecall(
            &ThreadCtx::main(),
            enclave.id(),
            "ecall_long",
            &table,
            &mut CallData::new(20_000_000), // 20 ms => ~5 timer AEXs
        )
        .unwrap();
        let trace = logger.finish();
        assert!(!trace.aex.is_empty());
        for row in trace.aex.iter() {
            assert_eq!(row.cause.is_some(), expect_cause, "version {version:?}");
            if expect_cause {
                assert_eq!(row.cause, Some(sgx_perf::events::AexCauseCode::Interrupt));
            }
        }
    }
}

#[test]
fn release_enclaves_keep_causes_opaque_even_on_v2() {
    let rt = runtime(SgxVersion::V2);
    let spec =
        sgx_edl::parse("enclave { trusted { public void ecall_long(uint64_t ns); }; };").unwrap();
    let enclave = rt
        .create_enclave(
            &spec,
            &EnclaveConfig {
                debug: false,
                ..EnclaveConfig::default()
            },
        )
        .unwrap();
    enclave
        .register_ecall("ecall_long", |ctx, data| {
            ctx.compute(Nanos::from_nanos(data.scalar))?;
            Ok(())
        })
        .unwrap();
    let table = Arc::new(OcallTableBuilder::new(enclave.spec()).build().unwrap());
    let logger = Logger::attach(&rt, LoggerConfig::with_aex(AexMode::Trace));
    rt.ecall(
        &ThreadCtx::main(),
        enclave.id(),
        "ecall_long",
        &table,
        &mut CallData::new(20_000_000),
    )
    .unwrap();
    let trace = logger.finish();
    assert!(!trace.aex.is_empty());
    assert!(trace.aex.iter().all(|r| r.cause.is_none()));
}

#[test]
fn dynamically_added_heap_shows_up_in_the_working_set() {
    let rt = runtime(SgxVersion::V2);
    let spec = sgx_edl::parse("enclave { trusted { public void ecall_grow(uint64_t pages); }; };")
        .unwrap();
    let enclave = rt
        .create_enclave(
            &spec,
            &EnclaveConfig {
                heap_kib: 16,
                ..EnclaveConfig::default()
            },
        )
        .unwrap();
    enclave
        .register_ecall("ecall_grow", |ctx, data| {
            let pages = ctx.sbrk(data.scalar as usize)?;
            ctx.touch(pages, AccessKind::Write)?;
            Ok(())
        })
        .unwrap();
    let table = Arc::new(OcallTableBuilder::new(enclave.spec()).build().unwrap());

    let wse = WorkingSetEstimator::attach(rt.machine(), enclave.id()).unwrap();
    rt.ecall(
        &ThreadCtx::main(),
        enclave.id(),
        "ecall_grow",
        &table,
        &mut CallData::new(12),
    )
    .unwrap();
    let ws = wse.mark().unwrap();
    // Entry pages (TCS + stack) + the 12 fresh heap pages. The fresh pages
    // were created with natural permissions (after the strip), so the WSE
    // counts at least the entry pages and any pre-existing pages touched;
    // crucially it does not crash on pages that appeared mid-interval.
    assert!(ws.pages >= 2, "{}", ws.pages);
    wse.detach().unwrap();
}
