//! Bit-reproducibility: every experiment is a deterministic function of
//! its seed — the property that makes the whole evaluation regenerable.

use sgx_perf::{Logger, LoggerConfig};
use sim_core::{HwProfile, Nanos};
use workloads::{Harness, Variant};

fn sqlite_trace_bytes(seed: u64) -> Vec<u8> {
    let harness = Harness::new(HwProfile::Unpatched);
    let logger = Logger::attach(harness.runtime(), LoggerConfig::default());
    workloads::sqlitedb::run(
        &harness,
        &workloads::sqlitedb::SqliteConfig {
            inserts: 400,
            seed,
            variant: Variant::Enclave,
            ..Default::default()
        },
    )
    .unwrap();
    logger.finish().to_bytes()
}

#[test]
fn sqlite_traces_are_bit_identical_across_runs() {
    assert_eq!(sqlite_trace_bytes(7), sqlite_trace_bytes(7));
}

#[test]
fn sqlite_traces_differ_across_seeds() {
    assert_ne!(sqlite_trace_bytes(7), sqlite_trace_bytes(8));
}

fn securekeeper_trace_bytes() -> Vec<u8> {
    let harness = Harness::new(HwProfile::Unpatched);
    let logger = Logger::attach(harness.runtime(), LoggerConfig::default());
    workloads::securekeeper::run(
        &harness,
        &workloads::securekeeper::SecureKeeperConfig {
            clients: 6,
            duration: Nanos::from_millis(80),
            ..Default::default()
        },
    )
    .unwrap();
    logger.finish().to_bytes()
}

/// The multi-threaded workload is deterministic too: the round-robin
/// scheduler makes the interleaving (and therefore the trace) a pure
/// function of the program.
#[test]
fn multithreaded_traces_are_bit_identical() {
    assert_eq!(securekeeper_trace_bytes(), securekeeper_trace_bytes());
}

fn glamdring_trace_bytes(profile: HwProfile) -> Vec<u8> {
    let harness = Harness::new(profile);
    let logger = Logger::attach(harness.runtime(), LoggerConfig::default());
    workloads::glamdring::run(
        &harness,
        &workloads::glamdring::GlamdringConfig {
            duration: Nanos::from_millis(40),
            variant: Variant::Enclave,
            ..Default::default()
        },
    )
    .unwrap();
    logger.finish().to_bytes()
}

#[test]
fn glamdring_traces_are_bit_identical() {
    assert_eq!(
        glamdring_trace_bytes(HwProfile::Unpatched),
        glamdring_trace_bytes(HwProfile::Unpatched)
    );
}

#[test]
fn hardware_profile_changes_the_trace() {
    assert_ne!(
        glamdring_trace_bytes(HwProfile::Unpatched),
        glamdring_trace_bytes(HwProfile::Foreshadow)
    );
}

// -- chaos harness: fault injection preserves the determinism contract --

use proptest::prelude::*;
use sim_core::fault::FaultPlan;
use workloads::chaos;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any seeded plan replays byte-identically: the injector consumes
    /// its randomness at construction, so two runs see the same faults
    /// at the same virtual instants.
    #[test]
    fn seeded_fault_plans_replay_byte_identically(seed in any::<u64>()) {
        let plan = chaos::random_plan(seed);
        prop_assert_eq!(
            chaos::antipatterns_trace(HwProfile::Unpatched, Some(&plan)),
            chaos::antipatterns_trace(HwProfile::Unpatched, Some(&plan))
        );
    }

    /// A plan with a seed but no faults is a structural no-op: the trace
    /// is byte-identical to a run with no plan installed at all.
    #[test]
    fn zero_fault_plans_equal_no_plan(seed in any::<u64>()) {
        prop_assert_eq!(
            chaos::antipatterns_trace(HwProfile::Unpatched, Some(&FaultPlan::seeded(seed))),
            chaos::antipatterns_trace(HwProfile::Unpatched, None)
        );
    }

    /// The canonical `Display` form of a random plan parses back to the
    /// same plan — the CLI `--faults` round-trip holds for every seed.
    #[test]
    fn fault_spec_display_is_a_parse_fixpoint(seed in any::<u64>()) {
        let plan = chaos::random_plan(seed);
        let spec = plan.to_string();
        let back = FaultPlan::parse(&spec).unwrap();
        prop_assert_eq!(&plan, &back);
        prop_assert_eq!(spec, back.to_string());
    }
}

/// Seeded plans replay byte-identically across runs on every hardware
/// profile — the acceptance matrix (2 runs x 3 profiles).
#[test]
fn fault_replay_is_stable_across_hardware_profiles() {
    let plan = chaos::random_plan(20260807);
    for profile in [
        HwProfile::Unpatched,
        HwProfile::Spectre,
        HwProfile::Foreshadow,
    ] {
        let first = chaos::antipatterns_trace(profile, Some(&plan));
        assert_eq!(
            first,
            chaos::antipatterns_trace(profile, Some(&plan)),
            "classic fixture diverged on {profile:?}"
        );
        let sw_first = chaos::switchless_trace(profile, Some(&plan));
        assert_eq!(
            sw_first,
            chaos::switchless_trace(profile, Some(&plan)),
            "switchless fixture diverged on {profile:?}"
        );
    }
}

/// Sync-event recording is as reproducible as every other table: the
/// racy fixture (threads, locks, shared cells — the richest sync
/// surface) serialises byte-identically across runs on every hardware
/// profile (2 runs x 3 profiles).
#[test]
fn syncev_traces_are_bit_identical_across_profiles() {
    let record = |profile: HwProfile| {
        let harness = Harness::new(profile);
        let logger = Logger::attach(harness.runtime(), LoggerConfig::with_syncev());
        workloads::racy_fixture::run(
            &harness,
            &workloads::racy_fixture::RacyFixtureConfig::default(),
        )
        .unwrap();
        logger.finish().to_bytes()
    };
    for profile in [
        HwProfile::Unpatched,
        HwProfile::Spectre,
        HwProfile::Foreshadow,
    ] {
        let first = record(profile);
        assert_eq!(
            first,
            record(profile),
            "syncev trace diverged on {profile:?}"
        );
    }
}

/// With sync tracking off (the default), the same run writes a trace
/// without any syncev section — byte-identical to what pre-races
/// versions of the logger produced.
#[test]
fn syncev_tracking_off_leaves_traces_unchanged() {
    let record = |config: LoggerConfig| {
        let harness = Harness::new(HwProfile::Unpatched);
        let logger = Logger::attach(harness.runtime(), config);
        workloads::sqlitedb::run(
            &harness,
            &workloads::sqlitedb::SqliteConfig {
                inserts: 100,
                variant: Variant::Enclave,
                ..Default::default()
            },
        )
        .unwrap();
        logger.finish()
    };
    // sqlitedb performs no tracked sync operations, so even opting in
    // records nothing — and the bytes stay identical because an empty
    // table is never written.
    let off = record(LoggerConfig::default());
    let on = record(LoggerConfig::with_syncev());
    assert!(on.syncev.is_empty());
    assert_eq!(off.to_bytes(), on.to_bytes());
}

#[test]
fn talos_runs_are_deterministic() {
    let elapsed = || {
        let harness = Harness::new(HwProfile::Unpatched);
        workloads::talos::run(
            &harness,
            &workloads::talos::TalosConfig {
                requests: 80,
                ..Default::default()
            },
        )
        .unwrap()
        .stats
        .elapsed
    };
    assert_eq!(elapsed(), elapsed());
}
