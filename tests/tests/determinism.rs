//! Bit-reproducibility: every experiment is a deterministic function of
//! its seed — the property that makes the whole evaluation regenerable.

use sgx_perf::{Logger, LoggerConfig};
use sim_core::{HwProfile, Nanos};
use workloads::{Harness, Variant};

fn sqlite_trace_bytes(seed: u64) -> Vec<u8> {
    let harness = Harness::new(HwProfile::Unpatched);
    let logger = Logger::attach(harness.runtime(), LoggerConfig::default());
    workloads::sqlitedb::run(
        &harness,
        &workloads::sqlitedb::SqliteConfig {
            inserts: 400,
            seed,
            variant: Variant::Enclave,
            ..Default::default()
        },
    )
    .unwrap();
    logger.finish().to_bytes()
}

#[test]
fn sqlite_traces_are_bit_identical_across_runs() {
    assert_eq!(sqlite_trace_bytes(7), sqlite_trace_bytes(7));
}

#[test]
fn sqlite_traces_differ_across_seeds() {
    assert_ne!(sqlite_trace_bytes(7), sqlite_trace_bytes(8));
}

fn securekeeper_trace_bytes() -> Vec<u8> {
    let harness = Harness::new(HwProfile::Unpatched);
    let logger = Logger::attach(harness.runtime(), LoggerConfig::default());
    workloads::securekeeper::run(
        &harness,
        &workloads::securekeeper::SecureKeeperConfig {
            clients: 6,
            duration: Nanos::from_millis(80),
            ..Default::default()
        },
    )
    .unwrap();
    logger.finish().to_bytes()
}

/// The multi-threaded workload is deterministic too: the round-robin
/// scheduler makes the interleaving (and therefore the trace) a pure
/// function of the program.
#[test]
fn multithreaded_traces_are_bit_identical() {
    assert_eq!(securekeeper_trace_bytes(), securekeeper_trace_bytes());
}

fn glamdring_trace_bytes(profile: HwProfile) -> Vec<u8> {
    let harness = Harness::new(profile);
    let logger = Logger::attach(harness.runtime(), LoggerConfig::default());
    workloads::glamdring::run(
        &harness,
        &workloads::glamdring::GlamdringConfig {
            duration: Nanos::from_millis(40),
            variant: Variant::Enclave,
            ..Default::default()
        },
    )
    .unwrap();
    logger.finish().to_bytes()
}

#[test]
fn glamdring_traces_are_bit_identical() {
    assert_eq!(
        glamdring_trace_bytes(HwProfile::Unpatched),
        glamdring_trace_bytes(HwProfile::Unpatched)
    );
}

#[test]
fn hardware_profile_changes_the_trace() {
    assert_ne!(
        glamdring_trace_bytes(HwProfile::Unpatched),
        glamdring_trace_bytes(HwProfile::Foreshadow)
    );
}

#[test]
fn talos_runs_are_deterministic() {
    let elapsed = || {
        let harness = Harness::new(HwProfile::Unpatched);
        workloads::talos::run(
            &harness,
            &workloads::talos::TalosConfig {
                requests: 80,
                ..Default::default()
            },
        )
        .unwrap()
        .stats
        .elapsed
    };
    assert_eq!(elapsed(), elapsed());
}
