//! Property-based tests of the campaign-spec grammar: canonical-form
//! fixpoints, matrix-expansion algebra and error rendering over randomly
//! assembled (but well-formed) specs — the invariants `sgxperf campaign`
//! relies on for byte-stable, resumable runs.

use proptest::prelude::*;

use sim_core::campaign::{CampaignSpec, SwitchlessAxis};

const WORKLOAD_POOL: &[&str] = &[
    "epc_thrash",
    "ecall_storm",
    "io_fsync_loop",
    "cpu_compute",
    "antipatterns",
    "fleet",
];
const PROFILE_POOL: &[&str] = &["unpatched", "spectre", "l1tf"];
const SWITCHLESS_POOL: &[&str] = &["off", "on:1", "on:2", "on:7"];
const PLAN_POOL: &[&str] = &[
    "",
    "seed=7;aex-storm@call=3:count=6",
    "ocall-fail@call=2:times=1",
    "seed=1;ocall-timeout@call=4:delay=60us,times=2;evict-storm@t=1ms",
];
const DEADLINE_POOL: &[&str] = &["0ns", "500ns", "40us", "2ms", "1s", "30s"];

/// Picks a non-empty prefix-ish subset of `pool` from two random words,
/// preserving pool order so the selection is duplicate-free by
/// construction.
fn subset<'a>(pool: &[&'a str], mask: u64, len_hint: usize) -> Vec<&'a str> {
    let mut out: Vec<&str> = pool
        .iter()
        .enumerate()
        .filter(|(i, _)| mask & (1 << i) != 0)
        .map(|(_, s)| *s)
        .take(len_hint.max(1))
        .collect();
    if out.is_empty() {
        out.push(pool[(mask as usize) % pool.len()]);
    }
    out
}

/// Renders a random-but-valid spec source from raw integers. Every value
/// drawn from the pools above is grammatically valid, so parsing must
/// succeed — the properties then check what parsing *produces*.
#[allow(clippy::too_many_arguments)]
fn build_spec_source(
    jobs: u32,
    threshold: u32,
    wl_mask: u64,
    wl_len: usize,
    prof_mask: u64,
    sw_mask: u64,
    seeds: &[u64],
    plan_mask: u64,
    robustness: Option<(usize, u32, u64)>,
) -> String {
    let workloads = subset(WORKLOAD_POOL, wl_mask, wl_len);
    let profiles = subset(PROFILE_POOL, prof_mask, 3);
    let switchless = subset(SWITCHLESS_POOL, sw_mask, 4);
    let mut seeds: Vec<u64> = seeds.to_vec();
    seeds.sort_unstable();
    seeds.dedup();
    let plans: Vec<(String, &str)> = PLAN_POOL
        .iter()
        .enumerate()
        .filter(|(i, _)| plan_mask & (1 << i) != 0)
        .map(|(i, p)| (format!("plan{i}"), *p))
        .collect();

    let quote = |items: &[&str]| {
        items
            .iter()
            .map(|s| format!("\"{s}\""))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let mut src = format!(
        "# generated spec\n[campaign]\nname = \"prop\"\njobs = {jobs}\nthreshold = {threshold}\n\
         [matrix]\nworkloads = [{}]\nprofiles = [{}]\nswitchless = [{}]\nseeds = [{}]\n",
        quote(&workloads),
        quote(&profiles),
        quote(&switchless),
        seeds
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(", "),
    );
    if !plans.is_empty() {
        src.push_str("[faults]\n");
        for (name, plan) in &plans {
            src.push_str(&format!("{name} = \"{plan}\"  # comment\n"));
        }
        src.push_str(&format!(
            "[baseline]\nfaults = \"{}\"\nseed = {}\n",
            plans[0].0, seeds[0],
        ));
    }
    if let Some((deadline_idx, retries, event_budget)) = robustness {
        src.push_str(&format!(
            "[robustness]\ncell_deadline = \"{}\"\nretries = {retries}\n\
             event_budget = {event_budget}\n",
            DEADLINE_POOL[deadline_idx % DEADLINE_POOL.len()],
        ));
    }
    src
}

proptest! {
    #[test]
    fn canonical_form_is_a_parse_display_fixpoint(
        jobs in 0u32..64,
        threshold in 1u32..100,
        wl_mask in 1u64..64,
        wl_len in 1usize..6,
        prof_mask in 1u64..8,
        sw_mask in 1u64..16,
        seeds in proptest::collection::vec(0u64..1_000_000, 1..5),
        plan_mask in 0u64..16,
        robustness in proptest::option::of((0usize..6, 0u32..5, 0u64..200_000)),
    ) {
        let src = build_spec_source(
            jobs, threshold, wl_mask, wl_len, prof_mask, sw_mask, &seeds, plan_mask, robustness,
        );
        let spec = CampaignSpec::parse(&src)
            .unwrap_or_else(|e| panic!("well-formed spec rejected: {e}\n{src}"));
        let canon = spec.to_string();
        let reparsed = CampaignSpec::parse(&canon)
            .unwrap_or_else(|e| panic!("canonical form rejected: {e}\n{canon}"));
        prop_assert_eq!(&spec, &reparsed, "parse(Display(spec)) == spec");
        prop_assert_eq!(canon, reparsed.to_string(), "Display is a fixpoint");
    }

    #[test]
    fn expansion_is_the_exact_axis_product(
        wl_mask in 1u64..64,
        wl_len in 1usize..6,
        prof_mask in 1u64..8,
        sw_mask in 1u64..16,
        seeds in proptest::collection::vec(0u64..100, 1..5),
        plan_mask in 0u64..16,
    ) {
        let src =
            build_spec_source(0, 10, wl_mask, wl_len, prof_mask, sw_mask, &seeds, plan_mask, None);
        let spec = CampaignSpec::parse(&src).unwrap();
        let cells = spec.expand();
        let product = spec.workloads.len()
            * spec.profiles.len()
            * spec.plans.len()
            * spec.switchless.len()
            * spec.seeds.len();
        prop_assert_eq!(cells.len(), product);
        prop_assert_eq!(cells.len(), spec.cell_count());

        // Indices are the positions; baselines stay inside the same
        // (workload, profile, switchless) group at the declared plan/seed
        // coordinates; baseline cells are fixpoints of the mapping.
        let mut baselines = 0;
        for (i, c) in cells.iter().enumerate() {
            prop_assert_eq!(c.index, i);
            prop_assert!(c.workload < spec.workloads.len());
            prop_assert!(c.plan < spec.plans.len());
            let b = &cells[c.baseline];
            prop_assert_eq!(b.workload, c.workload);
            prop_assert_eq!(b.profile, c.profile);
            prop_assert_eq!(b.switchless, c.switchless);
            prop_assert_eq!(&spec.plans[b.plan].0, &spec.baseline_plan);
            prop_assert_eq!(b.seed, spec.baseline_seed);
            prop_assert_eq!(b.baseline, b.index);
            if c.baseline == c.index {
                baselines += 1;
            }
        }
        prop_assert_eq!(
            baselines,
            spec.workloads.len() * spec.profiles.len() * spec.switchless.len(),
            "exactly one baseline per comparison group"
        );
    }

    #[test]
    fn unknown_keys_are_rejected_with_their_line_number(
        key_idx in 0usize..6,
        padding in 0usize..5,
    ) {
        // None of these are valid keys in any section.
        let bogus = ["frobnicate", "wrokloads", "sede", "threshhold", "x", "zz9"][key_idx];
        let blank = "\n".repeat(padding);
        for (src, expected_line) in [
            (
                format!("{blank}[campaign]\nname = \"x\"\n{bogus} = 1\n"),
                padding + 3,
            ),
            (
                format!(
                    "{blank}[matrix]\nworkloads = [\"a\"]\n{bogus} = [\"b\"]\n"
                ),
                padding + 3,
            ),
        ] {
            let e = CampaignSpec::parse(&src).unwrap_err();
            prop_assert_eq!(e.line, expected_line, "{}", e);
            let rendered = e.to_string();
            prop_assert!(
                rendered.contains(&format!("line {expected_line}")),
                "{rendered}"
            );
            prop_assert!(rendered.contains(bogus), "{rendered}");
        }
    }

    #[test]
    fn duplicate_axis_entries_are_rejected(seed in 0u64..1000) {
        let src = format!(
            "[campaign]\nname = \"x\"\n[matrix]\nworkloads = [\"a\"]\n\
             profiles = [\"unpatched\"]\nseeds = [{seed}, {seed}]\n"
        );
        let e = CampaignSpec::parse(&src).unwrap_err();
        prop_assert!(e.to_string().contains("duplicate"), "{}", e);
        prop_assert_eq!(e.line, 6, "{}", e);
    }

    #[test]
    fn robustness_keys_survive_the_canonical_round_trip(
        deadline_idx in 0usize..6,
        retries in 0u32..10,
        event_budget in 0u64..1_000_000,
    ) {
        let src = build_spec_source(
            0, 10, 3, 2, 1, 1, &[1], 0, Some((deadline_idx, retries, event_budget)),
        );
        let spec = CampaignSpec::parse(&src)
            .unwrap_or_else(|e| panic!("robustness spec rejected: {e}\n{src}"));
        prop_assert_eq!(spec.retries, retries);
        prop_assert_eq!(spec.event_budget, event_budget);
        let reparsed = CampaignSpec::parse(&spec.to_string()).unwrap();
        prop_assert_eq!(reparsed.cell_deadline, spec.cell_deadline);
        prop_assert_eq!(reparsed.retries, retries);
        prop_assert_eq!(reparsed.event_budget, event_budget);
        // Omitting the section entirely means defaults, not errors.
        let bare = build_spec_source(0, 10, 3, 2, 1, 1, &[1], 0, None);
        let spec = CampaignSpec::parse(&bare).unwrap();
        prop_assert_eq!(spec.cell_deadline.as_nanos(), 0);
        prop_assert_eq!(spec.retries, 1);
        prop_assert_eq!(spec.event_budget, 0);
    }

    #[test]
    fn switchless_labels_round_trip_through_display(workers in 1u32..10_000) {
        let axis = SwitchlessAxis::On { workers };
        prop_assert_eq!(SwitchlessAxis::parse(&axis.to_string()), Some(axis));
        prop_assert_eq!(axis.file_label(), format!("on{workers}"));
        prop_assert_eq!(SwitchlessAxis::parse(&format!("on:{workers} ")), None);
    }
}

/// The repo's shipped spec files stay loadable and canonicalisable — the
/// same invariant the `campaign_spec` example enforces, kept here so
/// `cargo test` alone catches a drifted spec.
#[test]
fn shipped_specs_parse_and_canonicalise() {
    for name in ["smoke", "stressors", "chaos_matrix", "faulty"] {
        let path = format!("{}/../specs/{name}.toml", env!("CARGO_MANIFEST_DIR"));
        let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
        let spec = CampaignSpec::parse(&src).unwrap_or_else(|e| panic!("{path}: {e}"));
        let canon = spec.to_string();
        assert_eq!(CampaignSpec::parse(&canon).unwrap(), spec, "{path}");
        assert!(spec.cell_count() > 0, "{path}");
    }
    // The acceptance matrix keeps its floor: 4 workloads x 3 profiles x
    // 2 plans x 2 switchless x 2 seeds.
    let src = std::fs::read_to_string(format!(
        "{}/../specs/stressors.toml",
        env!("CARGO_MANIFEST_DIR")
    ))
    .unwrap();
    let spec = CampaignSpec::parse(&src).unwrap();
    assert_eq!(spec.cell_count(), 96);
    assert!(spec.workloads.len() >= 4);
    assert!(spec.profiles.len() >= 3);
    assert!(spec.plans.len() >= 2);
    assert!(spec.seeds.len() >= 2);
}
