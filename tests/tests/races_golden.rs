//! Golden tests for the `sgxperf races` analyses: the racy fixture must
//! report *exactly* its two seeded defects, and the stock workloads must
//! come back with no error-severity findings.

use sgx_perf::analysis::races::{self, codes};
use sgx_perf::{Logger, LoggerConfig, TraceDb};
use sim_core::HwProfile;
use workloads::Harness;

fn record<R>(run: impl FnOnce(&Harness) -> R) -> TraceDb {
    let harness = Harness::new(HwProfile::Unpatched);
    let logger = Logger::attach(harness.runtime(), LoggerConfig::with_syncev());
    run(&harness);
    logger.finish()
}

/// The fixture reports the seeded data race and lock inversion — and
/// nothing else at error severity.
#[test]
fn racy_fixture_reports_exactly_the_seeded_defects() {
    let trace = record(|h| {
        workloads::racy_fixture::run(h, &workloads::racy_fixture::RacyFixtureConfig::default())
            .unwrap()
    });
    assert!(!trace.syncev.is_empty(), "fixture recorded no sync events");
    let report = races::analyze(&trace);
    assert_eq!(report.exit_code(), 3, "{}", report.render());

    let errors: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.severity == sgx_edl::Severity::Error)
        .collect();
    assert_eq!(errors.len(), 2, "{}", report.render());

    // The data race names the unguarded cell...
    let race = errors
        .iter()
        .find(|f| f.code == codes::DATA_RACE)
        .unwrap_or_else(|| panic!("no data race finding:\n{}", report.render()));
    assert!(race.message.contains("packet_counter"), "{}", race.message);

    // ...and the cycle names both inverted locks.
    let cycle = errors
        .iter()
        .find(|f| f.code == codes::LOCK_ORDER)
        .unwrap_or_else(|| panic!("no lock-order finding:\n{}", report.render()));
    assert!(cycle.message.contains("stats_mutex"), "{}", cycle.message);
    assert!(cycle.message.contains("flush_mutex"), "{}", cycle.message);

    // The properly guarded cell stays out of every finding.
    for f in &report.findings {
        assert!(
            !f.message.contains("session_count"),
            "over-report: {}",
            f.message
        );
    }
}

/// The fixture's defects surface in the regular report as top-priority
/// concurrency detections too.
#[test]
fn racy_fixture_defects_reach_the_report() {
    let trace = record(|h| {
        workloads::racy_fixture::run(h, &workloads::racy_fixture::RacyFixtureConfig::default())
            .unwrap()
    });
    let report = sgx_perf::Analyzer::new(&trace, HwProfile::Unpatched.cost_model()).analyze();
    let concurrency: Vec<_> = report
        .detections
        .iter()
        .filter(|d| d.problem == sgx_perf::Problem::Concurrency)
        .collect();
    assert!(!concurrency.is_empty(), "no concurrency detections");
    // Correctness findings outrank every performance recommendation.
    assert!(concurrency.iter().all(|d| d.priority == 1));
    assert!(concurrency
        .iter()
        .any(|d| matches!(&d.recommendation, sgx_perf::Recommendation::FixDataRace { cell } if cell == "packet_counter")));
    assert!(concurrency.iter().any(|d| matches!(
        &d.recommendation,
        sgx_perf::Recommendation::FixLockOrder { .. }
    )));
}

/// Stock workloads are race-free: no error-severity findings anywhere.
/// (Warnings are allowed — securekeeper legitimately holds its map mutex
/// across debug-print ocalls, the §3.4 hazard `RACE-W004` exists for.)
#[test]
fn stock_workloads_have_no_error_findings() {
    let traces: Vec<(&str, TraceDb)> = vec![
        (
            "securekeeper",
            record(|h| {
                workloads::securekeeper::run(
                    h,
                    &workloads::securekeeper::SecureKeeperConfig {
                        clients: 4,
                        duration: sim_core::Nanos::from_millis(50),
                        ..Default::default()
                    },
                )
                .unwrap()
            }),
        ),
        (
            "sqlitedb",
            record(|h| {
                workloads::sqlitedb::run(
                    h,
                    &workloads::sqlitedb::SqliteConfig {
                        inserts: 100,
                        ..Default::default()
                    },
                )
                .unwrap()
            }),
        ),
        (
            "switchless_loop",
            record(|h| {
                // Ring traffic included: the post/complete hand-off edges
                // must order caller and worker (no false positives).
                let cfg = sgx_sdk::SwitchlessConfig {
                    untrusted_workers: 1,
                    force_ocalls: vec!["ocall_log".into()],
                    ..sgx_sdk::SwitchlessConfig::default()
                };
                workloads::switchless_loop::run(h, 100, Some(cfg)).unwrap()
            }),
        ),
    ];
    for (name, trace) in traces {
        let report = races::analyze(&trace);
        assert_eq!(
            report.exit_code(),
            0,
            "{name} is not clean:\n{}",
            report.render()
        );
    }
}

/// securekeeper's map mutex held across `ocall_print_debug` is the
/// re-entrancy hazard the paper's §3.4 warns about — it must surface as
/// the warning-severity `RACE-W004`, not an error.
#[test]
fn securekeeper_lock_across_ocall_is_a_warning() {
    let trace = record(|h| {
        workloads::securekeeper::run(
            h,
            &workloads::securekeeper::SecureKeeperConfig {
                clients: 4,
                duration: sim_core::Nanos::from_millis(50),
                ..Default::default()
            },
        )
        .unwrap()
    });
    let report = races::analyze(&trace);
    let w004: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.code == codes::LOCK_ACROSS_OCALL)
        .collect();
    assert!(!w004.is_empty(), "{}", report.render());
    assert!(w004
        .iter()
        .all(|f| f.severity == sgx_edl::Severity::Warning));
    assert!(
        w004.iter().any(|f| f.message.contains("ocall_print_debug")),
        "{}",
        report.render()
    );
}
