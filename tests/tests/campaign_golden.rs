//! Golden determinism tests of the campaign matrix: the same spec must
//! produce byte-identical summaries and per-cell traces across repeated
//! runs, across worker counts, and across both simulation engines — and
//! the shipped chaos spec must deterministically trip the regression
//! gate. These are the contracts CI's campaign-smoke job enforces on the
//! release binary; here they run against the library in debug.

use std::path::PathBuf;

use sgx_perf::analysis::diff::REGRESSION_EXIT_CODE;
use sim_core::campaign::CampaignSpec;
use sim_threads::Engine;
use workloads::campaign::matrix::{self, MatrixPlan};

fn spec(name: &str) -> MatrixPlan {
    let path = format!("{}/../specs/{name}.toml", env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    let spec = CampaignSpec::parse(&src).unwrap_or_else(|e| panic!("{path}: {e}"));
    MatrixPlan::from_spec(spec).unwrap_or_else(|e| panic!("{path}: {e}"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sgxperf-golden-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Reads every archived artifact (traces + summaries) as (name, bytes),
/// sorted by name.
fn artifacts(dir: &PathBuf) -> Vec<(String, Vec<u8>)> {
    let mut out: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("{}: {e}", dir.display()))
        .map(|entry| {
            let entry = entry.unwrap();
            (
                entry.file_name().into_string().unwrap(),
                std::fs::read(entry.path()).unwrap(),
            )
        })
        .collect();
    out.sort();
    out
}

#[test]
fn smoke_spec_is_byte_identical_across_runs_and_engines() {
    let plan = spec("smoke");
    let dir_fast1 = temp_dir("fast1");
    let dir_fast2 = temp_dir("fast2");
    let dir_legacy = temp_dir("legacy");

    let fast1 = matrix::run(&plan, Engine::Fast, 1, Some(&dir_fast1), false).unwrap();
    let fast2 = matrix::run(&plan, Engine::Fast, 4, Some(&dir_fast2), false).unwrap();
    let legacy = matrix::run(&plan, Engine::Legacy, 2, Some(&dir_legacy), false).unwrap();

    // Exit contract: a faultless seed-replica matrix never regresses.
    assert_eq!(fast1.exit_code(), 0, "{}", fast1.render());
    assert_eq!(legacy.exit_code(), 0, "{}", legacy.render());

    // Summaries are byte-stable across runs, worker counts and engines.
    assert_eq!(fast1.render(), fast2.render());
    assert_eq!(fast1.to_json(), fast2.to_json());
    assert_eq!(fast1.render(), legacy.render(), "fast vs legacy summary");
    assert_eq!(fast1.to_json(), legacy.to_json());

    // Every archived artifact — one trace per cell plus the two summary
    // files and the manifest — is byte-identical too.
    let a = artifacts(&dir_fast1);
    assert_eq!(
        a.len(),
        plan.spec.cell_count() + 3,
        "one file per cell + summaries + manifest"
    );
    assert_eq!(a, artifacts(&dir_fast2), "fast run-to-run artifacts");
    assert_eq!(a, artifacts(&dir_legacy), "fast vs legacy artifacts");

    for dir in [dir_fast1, dir_fast2, dir_legacy] {
        std::fs::remove_dir_all(dir).ok();
    }
}

#[test]
fn chaos_spec_trips_the_gate_identically_on_both_engines() {
    let plan = spec("chaos_matrix");
    let fast = matrix::run(&plan, Engine::Fast, 0, None, false).unwrap();
    let legacy = matrix::run(&plan, Engine::Legacy, 0, None, false).unwrap();

    // The storm plan deterministically regresses the faulted cells.
    assert_eq!(fast.exit_code(), REGRESSION_EXIT_CODE, "{}", fast.render());
    assert!(fast.regressed() > 0);
    assert!(fast.render().contains("REGRESSED"), "{}", fast.render());

    // Both engines agree on the whole summary, not just the verdict.
    assert_eq!(fast.render(), legacy.render());
    assert_eq!(fast.to_json(), legacy.to_json());

    // Fault visibility: every storm cell records fault rows, no clean
    // cell does.
    for cell in &fast.cells {
        let is_storm = plan.spec.plans[cell.coord.plan].0 == "storm";
        assert_eq!(
            cell.fault_rows > 0,
            is_storm,
            "cell {} ({}): {} fault rows",
            cell.coord.index,
            cell.file,
            cell.fault_rows,
        );
    }
}
