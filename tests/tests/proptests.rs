//! Property-based tests on the core data structures and invariants.

use proptest::prelude::*;

use eventdb::{Decoder, Encoder, Store, Table};
use sgx_perf::analysis::stats::{CallStats, Histogram};
use sgx_perf::analysis::Instances;
use sgx_perf::events::{CallKind, EcallRow, OcallRow};
use sgx_perf::TraceDb;
use sim_core::Nanos;

// ---------------------------------------------------------------------
// eventdb: arbitrary rows always roundtrip through the binary format
// ---------------------------------------------------------------------

fn arb_ecall_row() -> impl Strategy<Value = EcallRow> {
    (
        any::<u64>(),
        any::<u32>(),
        any::<u32>(),
        any::<u64>(),
        any::<u64>(),
        proptest::option::of(any::<u64>()),
        any::<u64>(),
        any::<bool>(),
    )
        .prop_map(
            |(thread, enclave, call_index, start_ns, end_ns, parent_ocall, aex_count, failed)| {
                EcallRow {
                    thread,
                    enclave,
                    call_index,
                    start_ns,
                    end_ns,
                    parent_ocall,
                    aex_count,
                    failed,
                }
            },
        )
}

proptest! {
    #[test]
    fn eventdb_table_roundtrips(rows in proptest::collection::vec(arb_ecall_row(), 0..64)) {
        let table: Table<EcallRow> = rows.clone().into_iter().collect();
        let mut enc = Encoder::new();
        table.encode(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let back = Table::<EcallRow>::decode(&mut dec).unwrap();
        prop_assert!(dec.is_exhausted());
        let got: Vec<EcallRow> = back.iter().cloned().collect();
        prop_assert_eq!(got, rows);
    }

    #[test]
    fn eventdb_store_rejects_arbitrary_garbage_without_panicking(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Must never panic; may legitimately succeed only for a valid
        // container, which random bytes essentially never form.
        let _ = Store::from_bytes(&bytes);
    }

    #[test]
    fn scalar_codec_roundtrips(v in any::<u64>(), s in "\\PC{0,24}") {
        let mut enc = Encoder::new();
        enc.u64(v);
        enc.str(&s);
        enc.option(&Some(v ^ 1), |e, x| e.u64(*x));
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        prop_assert_eq!(dec.u64().unwrap(), v);
        prop_assert_eq!(dec.str().unwrap(), s);
        prop_assert_eq!(dec.option(|d| d.u64()).unwrap(), Some(v ^ 1));
    }
}

// ---------------------------------------------------------------------
// sim-core: Nanos arithmetic laws
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn nanos_add_sub_roundtrip(a in 0u64..u64::MAX / 2, b in 0u64..u64::MAX / 2) {
        let (na, nb) = (Nanos::from_nanos(a), Nanos::from_nanos(b));
        prop_assert_eq!((na + nb) - nb, na);
        let expected = Nanos::from_nanos(a.saturating_sub(b));
        prop_assert_eq!(na.saturating_sub(nb), expected);
        prop_assert_eq!(na.checked_sub(nb).is_some(), a >= b);
    }

    #[test]
    fn nanos_scale_one_is_identity(a in 0u64..(1u64 << 53)) {
        // scale() goes through f64, exact up to 2^53 ns (~104 days) —
        // far beyond any simulated duration.
        prop_assert_eq!(Nanos::from_nanos(a).scale(1.0), Nanos::from_nanos(a));
    }

    #[test]
    fn cycles_roundtrip_via_frequency(ns in 1u64..1_000_000_000u64) {
        let n = Nanos::from_nanos(ns);
        let back = n.to_cycles(3.4).to_nanos(3.4);
        let diff = back.as_nanos().abs_diff(n.as_nanos());
        prop_assert!(diff <= 1, "{} vs {}", n, back);
    }
}

// ---------------------------------------------------------------------
// EDL: the parser never panics; valid inputs keep declaration order
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn edl_parser_never_panics(src in "\\PC{0,200}") {
        let _ = sgx_edl::parse(&src);
    }

    #[test]
    fn edl_generated_interfaces_parse(n_ecalls in 1usize..20, n_ocalls in 0usize..20) {
        let mut src = String::from("enclave { trusted {\n");
        for i in 0..n_ecalls {
            src.push_str(&format!("public void e{i}();\n"));
        }
        src.push_str("}; untrusted {\n");
        for i in 0..n_ocalls {
            src.push_str(&format!("void o{i}() allow(e0);\n"));
        }
        src.push_str("}; };");
        let spec = sgx_edl::parse(&src).unwrap();
        prop_assert_eq!(spec.ecalls().len(), n_ecalls);
        prop_assert_eq!(spec.ocalls().len(), n_ocalls);
        for (i, e) in spec.ecalls().iter().enumerate() {
            prop_assert_eq!(e.index, i);
        }
    }
}

// ---------------------------------------------------------------------
// analyzer: statistics invariants over arbitrary duration sets
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn stats_invariants(durations in proptest::collection::vec(1u64..10_000_000, 1..200)) {
        let stats = CallStats::from_durations(&durations, &durations, &vec![0; durations.len()]);
        let min = *durations.iter().min().unwrap();
        let max = *durations.iter().max().unwrap();
        prop_assert_eq!(stats.min_ns, min);
        prop_assert_eq!(stats.max_ns, max);
        prop_assert!(stats.mean_ns >= min as f64 && stats.mean_ns <= max as f64);
        prop_assert!(stats.median_ns >= min && stats.median_ns <= max);
        prop_assert!(stats.p90_ns <= stats.p95_ns && stats.p95_ns <= stats.p99_ns);
        prop_assert!(stats.p99_ns <= max);
        prop_assert_eq!(stats.count, durations.len());
        prop_assert_eq!(stats.total_ns, durations.iter().sum::<u64>());
    }

    #[test]
    fn histogram_conserves_counts(durations in proptest::collection::vec(0u64..1_000_000, 1..200), bins in 1usize..120) {
        let mut trace = TraceDb::default();
        let mut t = 0;
        for &d in &durations {
            trace.ecalls.insert(EcallRow {
                thread: 0, enclave: 1, call_index: 0,
                start_ns: t, end_ns: t + d,
                parent_ocall: None, aex_count: 0, failed: false,
            });
            t += d + 1;
        }
        let inst = Instances::build(&trace, &sim_core::HwProfile::Unpatched.cost_model());
        let call = sgx_perf::CallRef { enclave: 1, kind: CallKind::Ecall, index: 0 };
        let hist = Histogram::of_call(&inst, call, bins).unwrap();
        prop_assert_eq!(hist.bins.len(), bins);
        prop_assert_eq!(hist.bins.iter().sum::<u64>(), durations.len() as u64);
    }
}

// ---------------------------------------------------------------------
// parents: indirect-parent structural invariants on random traces
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn indirect_parents_are_sane(spans in proptest::collection::vec((0u64..4, 0u64..2, 1u64..500), 1..80)) {
        // Build a trace of non-overlapping top-level calls per thread.
        let mut trace = TraceDb::default();
        let mut clocks = [0u64; 4];
        for (thread, kind, dur) in spans {
            let t = &mut clocks[thread as usize];
            let start = *t;
            let end = start + dur;
            *t = end + 1;
            if kind == 0 {
                trace.ecalls.insert(EcallRow {
                    thread, enclave: 1, call_index: 0,
                    start_ns: start, end_ns: end,
                    parent_ocall: None, aex_count: 0, failed: false,
                });
            } else {
                trace.ocalls.insert(OcallRow {
                    thread, enclave: 1, call_index: 0,
                    start_ns: start, end_ns: end,
                    parent_ecall: None, failed: false,
                });
            }
        }
        let inst = Instances::build(&trace, &sim_core::HwProfile::Unpatched.cost_model());
        for i in &inst.all {
            if let Some(p) = i.indirect_parent {
                let parent = &inst.all[p];
                // Same thread, same kind, same (absent) direct parent,
                // and strictly earlier start.
                prop_assert_eq!(parent.thread, i.thread);
                prop_assert_eq!(parent.call.kind, i.call.kind);
                prop_assert_eq!(parent.direct_parent, i.direct_parent);
                prop_assert!(parent.start_ns <= i.start_ns);
            }
        }
    }
}
