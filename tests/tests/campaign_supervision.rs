//! Supervision contracts of the campaign runner, cross-engine: a
//! poisoned cell must degrade (not kill) the campaign identically on
//! both simulation engines, the shipped `faulty` spec must complete with
//! the documented quarantine ledger and incomplete exit code, and a
//! resume over a partial archive must reproduce an uninterrupted run
//! byte for byte. These are the library-level halves of CI's
//! campaign-resume job.

use std::path::PathBuf;

use sim_core::campaign::CampaignSpec;
use sim_threads::Engine;
use workloads::campaign::matrix::{
    self, CellOutcome, CellVerdict, MatrixPlan, INCOMPLETE_EXIT_CODE,
};

fn plan(source: &str) -> MatrixPlan {
    let spec = CampaignSpec::parse(source).expect("test spec");
    MatrixPlan::from_spec(spec).expect("test plan")
}

fn shipped(name: &str) -> MatrixPlan {
    let path = format!("{}/../specs/{name}.toml", env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    MatrixPlan::from_spec(CampaignSpec::parse(&src).unwrap_or_else(|e| panic!("{path}: {e}")))
        .unwrap_or_else(|e| panic!("{path}: {e}"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("sgxperf-supervision-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn poisoned_cells_leave_siblings_intact_on_both_engines() {
    let plan = plan(
        "[campaign]\nname = \"poison\"\nthreshold = 25\n\
         [matrix]\nworkloads = [\"ecall_storm\", \"panicking\", \"io_fsync_loop\"]\n\
         profiles = [\"unpatched\"]\nseeds = [1]\n\
         [robustness]\nretries = 0\n",
    );
    let fast = matrix::run(&plan, Engine::Fast, 2, None, false).unwrap();
    let legacy = matrix::run(&plan, Engine::Legacy, 2, None, false).unwrap();

    for run in [&fast, &legacy] {
        assert_eq!(run.cells.len(), 3);
        // The healthy siblings completed with real traces...
        for healthy in [&run.cells[0], &run.cells[2]] {
            assert_eq!(healthy.outcome, CellOutcome::Ok, "{}", healthy.file);
            assert_eq!(healthy.verdict, CellVerdict::Baseline);
            assert!(healthy.bytes > 0);
        }
        // ...while the poisoned cell is quarantined, not fatal.
        let poisoned = &run.cells[1];
        assert_eq!(poisoned.verdict, CellVerdict::Failed);
        assert!(
            matches!(poisoned.outcome, CellOutcome::Panicked(_)),
            "{:?}",
            poisoned.outcome
        );
        assert_eq!(run.exit_code(), INCOMPLETE_EXIT_CODE);
    }
    // Both engines agree on the entire summary, ledger included.
    assert_eq!(fast.render(), legacy.render());
    assert_eq!(fast.to_json(), legacy.to_json());
}

#[test]
fn shipped_faulty_spec_completes_with_ledger_and_exit_four_on_both_engines() {
    let plan = shipped("faulty");
    let fast = matrix::run(&plan, Engine::Fast, 0, None, false).unwrap();
    let legacy = matrix::run(&plan, Engine::Legacy, 0, None, false).unwrap();

    assert_eq!(fast.exit_code(), INCOMPLETE_EXIT_CODE, "{}", fast.render());
    assert_eq!(fast.broken(), 2, "{}", fast.render()); // panicking + hanging
    assert_eq!(fast.flaky(), 1, "{}", fast.render());
    let text = fast.render();
    assert!(text.contains("quarantine:"), "{text}");
    assert!(text.contains("passed on attempt 2"), "{text}");
    assert!(text.contains("timed-out"), "{text}");
    // The hanging cell dies to the deterministic event budget, never the
    // wall clock — that's what makes this summary engine-portable.
    let hanging = fast
        .cells
        .iter()
        .find(|c| plan.spec.workloads[c.coord.workload] == "hanging")
        .unwrap();
    assert!(
        hanging.outcome.detail().contains("event budget exhausted"),
        "{:?}",
        hanging.outcome
    );
    assert_eq!(fast.render(), legacy.render());
    assert_eq!(fast.to_json(), legacy.to_json());
}

#[test]
fn resume_after_partial_run_is_byte_identical_on_both_engines() {
    for (engine, tag) in [(Engine::Fast, "fast"), (Engine::Legacy, "legacy")] {
        let plan = shipped("smoke");
        let full_dir = temp_dir(&format!("{tag}-full"));
        let partial_dir = temp_dir(&format!("{tag}-partial"));
        let full = matrix::run(&plan, engine, 2, Some(&full_dir), false).unwrap();

        // Fabricate the interrupted run: the same archive with one trace
        // missing, one truncated, and a stray tmp file left behind.
        std::fs::create_dir_all(&partial_dir).unwrap();
        for entry in std::fs::read_dir(&full_dir).unwrap() {
            let entry = entry.unwrap();
            std::fs::copy(entry.path(), partial_dir.join(entry.file_name())).unwrap();
        }
        std::fs::remove_file(partial_dir.join(&full.cells[1].file)).unwrap();
        let truncated = std::fs::read(partial_dir.join(&full.cells[3].file)).unwrap();
        std::fs::write(
            partial_dir.join(&full.cells[3].file),
            &truncated[..truncated.len() / 2],
        )
        .unwrap();
        std::fs::write(partial_dir.join("summary.txt.tmp"), b"torn write").unwrap();

        let resumed = matrix::run(&plan, engine, 2, Some(&partial_dir), true).unwrap();
        assert_eq!(resumed.render(), full.render(), "{tag} summary");
        assert_eq!(resumed.to_json(), full.to_json(), "{tag} json");

        // Every artifact matches the uninterrupted archive, and the
        // stray tmp file is gone.
        let mut names: Vec<String> = std::fs::read_dir(&partial_dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        names.sort();
        let mut full_names: Vec<String> = std::fs::read_dir(&full_dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        full_names.sort();
        assert_eq!(names, full_names, "{tag} archive listing");
        for name in &names {
            assert_eq!(
                std::fs::read(full_dir.join(name)).unwrap(),
                std::fs::read(partial_dir.join(name)).unwrap(),
                "{tag}: {name} differs after resume"
            );
        }
        std::fs::remove_dir_all(&full_dir).ok();
        std::fs::remove_dir_all(&partial_dir).ok();
    }
}

#[test]
fn wall_clock_deadline_reaps_cells_hung_without_an_event_budget() {
    // No event budget: only the wall-clock watchdog can reap the hanging
    // cell, via cooperative budget cancellation at a scheduling point.
    let plan = plan(
        "[campaign]\nname = \"wall\"\nthreshold = 25\n\
         [matrix]\nworkloads = [\"hanging\"]\n\
         profiles = [\"unpatched\"]\nseeds = [1]\n\
         [robustness]\ncell_deadline = \"250ms\"\nretries = 0\n",
    );
    let run = matrix::run(&plan, Engine::Fast, 1, None, false).unwrap();
    let cell = &run.cells[0];
    assert!(
        matches!(cell.outcome, CellOutcome::TimedOut(_)),
        "{:?}",
        cell.outcome
    );
    assert_eq!(cell.verdict, CellVerdict::Failed);
    assert_eq!(run.exit_code(), INCOMPLETE_EXIT_CODE);
}
