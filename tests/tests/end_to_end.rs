//! Cross-crate pipeline tests: workload → logger → trace file → analyzer.

use sgx_perf::{Analyzer, Logger, LoggerConfig, TraceDb};
use sim_core::{HwProfile, Nanos};
use workloads::{Harness, Variant};

/// The full decoupled pipeline: record, serialise, reload, analyse.
#[test]
fn trace_survives_serialisation_and_analysis_is_identical() {
    let harness = Harness::new(HwProfile::Unpatched);
    let logger = Logger::attach(harness.runtime(), LoggerConfig::default());
    workloads::sqlitedb::run(
        &harness,
        &workloads::sqlitedb::SqliteConfig {
            inserts: 500,
            variant: Variant::Enclave,
            ..Default::default()
        },
    )
    .unwrap();
    let trace = logger.finish();
    let bytes = trace.to_bytes();
    let reloaded = TraceDb::from_bytes(&bytes).unwrap();

    let cm = harness.profile().cost_model();
    let report_a = Analyzer::new(&trace, cm.clone()).analyze();
    let report_b = Analyzer::new(&reloaded, cm).analyze();
    assert_eq!(report_a.totals, report_b.totals);
    assert_eq!(report_a.detections.len(), report_b.detections.len());
    assert_eq!(report_a.render(), report_b.render());
}

/// Two enclaves traced through one logger stay separable in the analysis.
#[test]
fn multiple_enclaves_are_kept_apart() {
    let harness = Harness::new(HwProfile::Unpatched);
    let logger = Logger::attach(harness.runtime(), LoggerConfig::default());
    // Two separate SQLite databases, each in its own enclave.
    for _ in 0..2 {
        workloads::sqlitedb::run(
            &harness,
            &workloads::sqlitedb::SqliteConfig {
                inserts: 100,
                variant: Variant::Enclave,
                ..Default::default()
            },
        )
        .unwrap();
    }
    let trace = logger.finish();
    let enclaves: std::collections::BTreeSet<u32> =
        trace.ecalls.iter().map(|e| e.enclave).collect();
    assert_eq!(enclaves.len(), 2);
    let report = Analyzer::new(&trace, harness.profile().cost_model()).analyze();
    // Per-enclave aggregation: ecall_insert appears once per enclave.
    let insert_stats = report
        .call_names
        .iter()
        .filter(|n| *n == "ecall_insert")
        .count();
    assert_eq!(insert_stats, 2);
    assert_eq!(report.totals.enclaves, 2);
}

/// The logger can be paused for warmup phases without losing attachment.
#[test]
fn warmup_can_be_excluded() {
    let app = integration_tests::TestApp::new(HwProfile::Unpatched);
    let logger = Logger::attach(&app.rt, LoggerConfig::default());
    logger.set_enabled(false);
    for _ in 0..50 {
        app.work(1_000); // warmup, not recorded
    }
    logger.set_enabled(true);
    for _ in 0..10 {
        app.work(1_000);
    }
    let trace = logger.finish();
    assert_eq!(trace.ecalls.len(), 10);
}

/// Logger costs are *not* charged while disabled (native-speed warmup).
#[test]
fn disabled_logger_adds_no_cost() {
    let app = integration_tests::TestApp::new(HwProfile::Unpatched);
    let logger = Logger::attach(&app.rt, LoggerConfig::default());
    logger.set_enabled(false);
    let clock = app.rt.machine().clock().clone();
    let t0 = clock.now();
    app.work(0);
    assert_eq!((clock.now() - t0).as_nanos(), 4_205);
}

/// A failing ecall is traced (with the failure flag) and does not poison
/// the logger's per-thread stack.
#[test]
fn failed_calls_are_traced_and_stack_stays_consistent() {
    use sgx_sdk::{CallData, OcallTableBuilder, Runtime, SdkError, ThreadCtx};
    use sgx_sim::{EnclaveConfig, Machine};
    use sim_core::Clock;
    use std::sync::Arc;

    let machine = Arc::new(Machine::new(Clock::new(), HwProfile::Unpatched));
    let rt = Runtime::new(machine);
    let spec = sgx_edl::parse(
        "enclave { trusted { public void ecall_fail(); public void ecall_ok(); }; };",
    )
    .unwrap();
    let enclave = rt.create_enclave(&spec, &EnclaveConfig::default()).unwrap();
    enclave
        .register_ecall("ecall_fail", |_, _| {
            Err(SdkError::Interface("deliberate".into()))
        })
        .unwrap();
    enclave.register_ecall("ecall_ok", |_, _| Ok(())).unwrap();
    let table = Arc::new(OcallTableBuilder::new(enclave.spec()).build().unwrap());
    let logger = Logger::attach(&rt, LoggerConfig::default());
    let tcx = ThreadCtx::main();
    let err = rt
        .ecall(
            &tcx,
            enclave.id(),
            "ecall_fail",
            &table,
            &mut CallData::default(),
        )
        .unwrap_err();
    assert!(matches!(err, SdkError::Interface(_)));
    rt.ecall(
        &tcx,
        enclave.id(),
        "ecall_ok",
        &table,
        &mut CallData::default(),
    )
    .unwrap();
    let trace = logger.finish();
    assert_eq!(trace.ecalls.len(), 2);
    let failed: Vec<bool> = trace.ecalls.iter().map(|e| e.failed).collect();
    assert_eq!(failed, vec![true, false]);
    // Parent links unaffected by the failure.
    assert!(trace.ecalls.iter().all(|e| e.parent_ocall.is_none()));
}

/// Analyzer weights are tunable: with absurdly strict thresholds nothing
/// fires on a pathological workload; with defaults it does.
#[test]
fn weights_control_sensitivity() {
    let harness = Harness::new(HwProfile::Unpatched);
    let logger = Logger::attach(harness.runtime(), LoggerConfig::default());
    workloads::antipatterns::sisc(&harness, 200).unwrap();
    let trace = logger.finish();
    let cm = harness.profile().cost_model();

    let default_report = Analyzer::new(&trace, cm.clone()).analyze();
    assert!(!default_report.detections.is_empty());

    let strict = sgx_perf::Weights {
        min_calls: 1_000_000,
        switchless_min_calls: 1_000_000,
        ..Default::default()
    };
    let strict_report = Analyzer::new(&trace, cm).with_weights(strict).analyze();
    assert!(strict_report.detections.is_empty());
}

/// The EDL diff path: supplying a *stale* EDL (with an over-broad allow
/// list) makes the analyzer flag exactly the unused entries.
#[test]
fn edl_diff_reports_stale_allows() {
    let harness = Harness::new(HwProfile::Unpatched);
    let logger = Logger::attach(harness.runtime(), LoggerConfig::default());
    workloads::antipatterns::permissive_interface(&harness, 50).unwrap();
    let trace = logger.finish();
    let edl = sgx_edl::parse(
        "enclave {
            trusted {
                public void ecall_entry(uint64_t i);
                public void ecall_callback(uint64_t i);
                public void ecall_never_nested([user_check] void* p);
            };
            untrusted {
                void ocall_helper(uint64_t i)
                    allow(ecall_callback, ecall_never_nested, ecall_entry);
            };
        };",
    )
    .unwrap();
    let report = Analyzer::new(&trace, harness.profile().cost_model())
        .with_edl(edl)
        .analyze();
    let restrict = report
        .detections
        .iter()
        .find_map(|d| match &d.recommendation {
            sgx_perf::Recommendation::RestrictAllowedEcalls { remove } => Some(remove.clone()),
            _ => None,
        })
        .expect("restriction finding");
    let mut restrict = restrict;
    restrict.sort();
    assert_eq!(
        restrict,
        vec!["ecall_entry".to_string(), "ecall_never_nested".to_string()]
    );
}

/// WSE and logger compose across *separate* runs of the same deterministic
/// workload (the paper keeps them separate because WSE interferes).
#[test]
fn wse_and_logger_agree_on_separate_runs() {
    let config = workloads::glamdring::GlamdringConfig {
        duration: Nanos::from_millis(60),
        variant: Variant::Enclave,
        ..Default::default()
    };
    // Run 1: logger.
    let h1 = Harness::new(HwProfile::Unpatched);
    let logger = Logger::attach(h1.runtime(), LoggerConfig::default());
    let r1 = workloads::glamdring::run(&h1, &config).unwrap();
    let trace = logger.finish();
    // Run 2: WSE.
    let h2 = Harness::new(HwProfile::Unpatched);
    let app = workloads::glamdring::GlamdringApp::new(&h2, &config).unwrap();
    let wse = sgx_perf::WorkingSetEstimator::attach(h2.machine(), app.enclave_id()).unwrap();
    app.startup().unwrap();
    let _ = wse.mark().unwrap();
    let (signs, _) = app.sign_for(config.duration).unwrap();
    // The logger run and the WSE run observed the same workload shape
    // (WSE slows execution, so fewer signs fit in the window, but the
    // per-sign ecall count is identical).
    assert!(signs >= 1);
    let subs_per_sign = config.subs_per_sign();
    // Per-sign ecalls are exactly the subtractions (plus one-off load_key).
    assert_eq!(
        trace.ecalls.len() as u64 - 1,
        r1.stats.operations * subs_per_sign
    );
}

/// §4.1.4 end-to-end: page-fault storms appear as AEX bursts, and the
/// impact analysis separates environment-delayed ecalls from clean ones.
#[test]
fn aex_bursts_and_impact_from_paging_storm() {
    use sgx_perf::AexMode;
    use sgx_sim::MachineParams;

    let harness = Harness::with_machine_params(
        HwProfile::Unpatched,
        MachineParams {
            epc_pages: 256, // far smaller than the 1024-page enclave below
            ..MachineParams::default()
        },
    );
    let logger = Logger::attach(harness.runtime(), LoggerConfig::with_aex(AexMode::Trace));
    workloads::antipatterns::paging(&harness, 6).unwrap();
    let trace = logger.finish();
    let analyzer = sgx_perf::Analyzer::new(&trace, harness.profile().cost_model());

    // Every heap sweep faults hundreds of pages back in: each fault is an
    // AEX, and they come microseconds apart — a burst.
    let bursts = analyzer.aex_bursts(1_000_000, 10);
    assert!(!bursts.is_empty());
    assert!(bursts.iter().any(|b| b.count >= 100), "{bursts:?}");

    // All scan ecalls were interrupted, so no impact rows (nothing clean
    // to compare against) — run a second, resident-friendly workload to
    // create the undisturbed population.
    let impact = analyzer.aex_impact();
    // Either empty (all interrupted) or showing a real slowdown.
    for i in &impact {
        assert!(i.slowdown() >= 1.0, "{i:?}");
    }
}
