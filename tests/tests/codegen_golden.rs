//! The checked-in generated modules (which the compiler has already
//! verified) must match fresh codegen output byte for byte.

#[test]
fn generated_code_is_in_sync_with_the_edl() {
    let edl = include_str!("../src/demo.edl");
    let spec = sgx_edl::parse(edl).unwrap();
    assert_eq!(
        sgx_edl::codegen::generate_untrusted(&spec, "demo"),
        include_str!("../src/generated_demo_u.rs"),
        "regenerate with `cargo run -p integration-tests --bin generate_demo`"
    );
    assert_eq!(
        sgx_edl::codegen::generate_trusted(&spec, "demo"),
        include_str!("../src/generated_demo_t.rs")
    );
}

/// Drive the *generated* untrusted proxy end to end: it must dispatch to
/// the right trusted function by numeric id.
#[test]
fn generated_proxy_dispatches_correctly() {
    use integration_tests::generated_demo_u;
    use sgx_sdk::{CallData, OcallTableBuilder, Runtime, ThreadCtx};
    use sgx_sim::{EnclaveConfig, Machine};
    use sim_core::{Clock, HwProfile};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    let machine = Arc::new(Machine::new(Clock::new(), HwProfile::Unpatched));
    let rt = Runtime::new(machine);
    let spec = sgx_edl::parse(include_str!("../src/demo.edl")).unwrap();
    let enclave = rt.create_enclave(&spec, &EnclaveConfig::default()).unwrap();
    let stored = Arc::new(AtomicU64::new(0));
    let s2 = Arc::clone(&stored);
    enclave
        .register_ecall("ecall_store", move |_, data| {
            s2.store(data.scalar, Ordering::SeqCst);
            Ok(())
        })
        .unwrap();
    enclave
        .register_ecall("ecall_check", |_, _| Ok(()))
        .unwrap();
    enclave
        .register_ecall("ecall_notify", |_, _| Ok(()))
        .unwrap();
    let mut builder = OcallTableBuilder::new(enclave.spec());
    builder.register("ocall_read", |_, _| Ok(())).unwrap();
    builder.register("ocall_log", |_, _| Ok(())).unwrap();
    let table = Arc::new(builder.build().unwrap());

    let tcx = ThreadCtx::main();
    generated_demo_u::ecall_store(
        &rt,
        &tcx,
        enclave.id(),
        &table,
        &mut CallData::new(42).with_in_bytes(16),
    )
    .unwrap();
    assert_eq!(stored.load(Ordering::SeqCst), 42);
    // The required-ocall list from the trusted scaffold matches the EDL.
    assert_eq!(
        integration_tests::generated_demo_t::REQUIRED_OCALLS,
        ["ocall_read", "ocall_log"]
    );
}
