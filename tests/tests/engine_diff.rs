//! The differential golden matrix: every registered workload, on every
//! hardware profile, with and without a fault plan, must produce
//! **byte-identical traces** on the legacy OS-thread engine and the fast
//! coroutine engine.
//!
//! This is the tier-1 lockdown of the engine swap's refutable invariant:
//! a simulated program's interleaving is a pure function of the
//! scheduling algorithm, so if the fast engine replicates that algorithm
//! exactly, no trace byte can move. Any divergence — an event reordered,
//! a virtual timestamp shifted, a fault landing on a different call —
//! fails here with the first differing cell named.

use sim_core::fault::{FaultKind, FaultPlan, FaultTrigger};
use sim_core::{HwProfile, Nanos};
use sim_threads::{with_engine, Engine};
use workloads::campaign::{Cell, Workload};
use workloads::chaos;

/// Runs one campaign cell on both engines and asserts byte-equality.
fn assert_cell_identical(cell: Cell) {
    let legacy = with_engine(Engine::Legacy, || cell.run());
    let fast = with_engine(Engine::Fast, || cell.run());
    assert_eq!(
        legacy,
        fast,
        "engine divergence on {} ({} legacy byte(s) vs {} fast byte(s))",
        cell.file_name(),
        legacy.len(),
        fast.len(),
    );
}

/// The full matrix: every campaign workload × every hardware profile ×
/// {fault-free, seeded chaos}. Workload-appropriate plans are derived
/// from the seed by [`Cell::run`].
#[test]
fn every_workload_profile_and_plan_is_byte_identical_across_engines() {
    for workload in Workload::ALL {
        for profile in HwProfile::ALL {
            for seed in [0u64, 11] {
                assert_cell_identical(Cell {
                    workload,
                    profile,
                    seed,
                });
            }
        }
    }
}

/// The worker-stall semantics are the sharpest edge the fast engine must
/// preserve: stalled switchless workers *yield* through the stall window
/// (PR 3 made stalls cooperative) precisely because the scheduler only
/// wakes sleepers once the run queue drains — spinning callers keep it
/// populated. An engine that woke sleepers eagerly would serve these
/// calls switchlessly instead of letting the spin budgets exhaust, and
/// the traces would diverge in both event order and fallback counts.
#[test]
fn switchless_worker_stalls_are_byte_identical_across_engines() {
    for profile in HwProfile::ALL {
        let plan = FaultPlan::seeded(0x57A11)
            .with(
                FaultTrigger::AtCall(5),
                FaultKind::WorkerStall {
                    delay: Nanos::from_micros(40),
                },
            )
            .with(FaultTrigger::AtCall(25), FaultKind::RingFull { calls: 4 });
        let legacy = with_engine(Engine::Legacy, || {
            chaos::switchless_trace(profile, Some(&plan))
        });
        let fast = with_engine(Engine::Fast, || {
            chaos::switchless_trace(profile, Some(&plan))
        });
        assert_eq!(
            legacy,
            fast,
            "worker-stall divergence on {}",
            profile.label()
        );
        // The stall must actually have fired for this to test anything.
        assert!(
            chaos::fault_rows(&fast) >= 2,
            "stall plan did not fire on {}",
            profile.label()
        );
    }
}

/// Randomized chaos plans across both engines: a denser sweep of the
/// fault grammar than the matrix's single seed.
#[test]
fn random_chaos_plans_are_byte_identical_across_engines() {
    for seed in [3u64, 0xDEAD, 0xBEEF, 0xF00D] {
        let plan = chaos::random_plan(seed);
        let legacy = with_engine(Engine::Legacy, || {
            chaos::antipatterns_trace(HwProfile::Unpatched, Some(&plan))
        });
        let fast = with_engine(Engine::Fast, || {
            chaos::antipatterns_trace(HwProfile::Unpatched, Some(&plan))
        });
        assert_eq!(legacy, fast, "chaos divergence on seed {seed:#x}");
    }
}
