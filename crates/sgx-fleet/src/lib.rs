//! Fleet management for thousands of simulated SGX enclaves.
//!
//! The sgx-perf paper profiles one enclave at a time; real deployments
//! (SecureKeeper-style many-tenant services) run *fleets* — one enclave per
//! client, far more logical enclaves than the EPC can hold. This crate adds
//! that layer on top of the simulator:
//!
//! * [`FleetManager`] — multiplexes N logical enclaves ("slots") over a
//!   bounded pool of live ones. Every live enclave charges the same
//!   simulated EPC, so hot slots evict cold slots' pages and the contention
//!   the paper's §5 workloads hint at becomes directly measurable.
//! * [`FleetPolicy`] — fleet-level recovery: a shared restart gate spaces
//!   supervisor rebuilds out (restart-storm throttling) and a sliding-window
//!   circuit breaker sheds cold spin-ups instead of letting a storm cascade.
//! * [`LoadGen`] — deterministic open-/closed-loop arrival processes with
//!   zipfian slot popularity, all driven from one seeded RNG so fleet runs
//!   stay byte-identical across repetitions.
//!
//! Everything runs in virtual time on the deterministic scheduler; the only
//! thread driving a fleet is the load-generator thread, which makes
//! 1000-enclave runs cheap and reproducible.

pub mod loadgen;
pub mod manager;
pub mod policy;
pub mod stats;

pub use loadgen::{Arrival, LoadGen, RequestPlan};
pub use manager::{FleetManager, Outcome, SlotRecipe};
pub use policy::FleetPolicy;
pub use stats::{percentile, FleetAggregate, SlotStats};
