//! Per-slot and fleet-aggregate statistics.

/// Counters for one fleet slot (a logical client enclave). Latencies are
/// virtual-time nanoseconds measured from the request's *scheduled arrival*
/// to its completion, so open-loop queueing delay is included.
#[derive(Debug, Clone, Default)]
pub struct SlotStats {
    /// Enclave creations (cold starts after pool retirement).
    pub spin_ups: u32,
    /// Supervisor rebuilds after enclave losses.
    pub restarts: u32,
    /// Requests routed to this slot.
    pub requests: u64,
    /// Requests completed successfully.
    pub completed: u64,
    /// Requests shed by the fleet circuit breaker.
    pub shed: u64,
    /// Requests that failed terminally.
    pub failed: u64,
    /// EPC pages paged in for this slot's enclaves.
    pub page_ins: u64,
    /// This slot's pages evicted by other enclaves' EPC pressure.
    pub page_outs: u64,
    latencies: Vec<u64>,
}

impl SlotStats {
    /// Records one completed request's latency.
    pub fn record_latency(&mut self, ns: u64) {
        self.latencies.push(ns);
    }

    /// All recorded latencies, in completion order.
    pub fn latencies(&self) -> &[u64] {
        &self.latencies
    }

    /// Median latency (0 when no request completed).
    pub fn p50_ns(&self) -> u64 {
        percentile(&self.latencies, 50)
    }

    /// 99th-percentile latency (0 when no request completed).
    pub fn p99_ns(&self) -> u64 {
        percentile(&self.latencies, 99)
    }
}

/// Nearest-rank percentile over an unsorted sample; 0 on an empty sample.
pub fn percentile(samples: &[u64], p: u64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    // Nearest-rank: the smallest sample with at least p% of the sample set
    // at or below it.
    let rank = (p * sorted.len() as u64).div_ceil(100).max(1) as usize;
    sorted[rank - 1]
}

/// Fleet-wide totals, computed from all slots' counters at snapshot time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FleetAggregate {
    /// Total slots in the fleet.
    pub slots: usize,
    /// Slots live (enclave resident) at snapshot time.
    pub live: usize,
    /// Total enclave creations.
    pub spin_ups: u64,
    /// Total supervisor rebuilds.
    pub restarts: u64,
    /// Total requests routed.
    pub requests: u64,
    /// Total requests completed.
    pub completed: u64,
    /// Total requests shed by the breaker.
    pub shed: u64,
    /// Total terminal failures.
    pub failed: u64,
    /// Total EPC page-ins.
    pub page_ins: u64,
    /// Total EPC page-outs (evictions).
    pub page_outs: u64,
    /// Fleet-wide median latency in nanoseconds.
    pub p50_ns: u64,
    /// Fleet-wide 99th-percentile latency in nanoseconds.
    pub p99_ns: u64,
    /// How many times the fleet circuit breaker opened.
    pub breaker_opens: u64,
}

impl FleetAggregate {
    /// Folds per-slot stats (plus the live count and breaker counter) into
    /// fleet totals, merging every slot's latency sample for the fleet-wide
    /// percentiles.
    pub fn from_slots(slots: &[SlotStats], live: usize, breaker_opens: u64) -> FleetAggregate {
        let mut agg = FleetAggregate {
            slots: slots.len(),
            live,
            breaker_opens,
            ..FleetAggregate::default()
        };
        let mut all = Vec::new();
        for s in slots {
            agg.spin_ups += u64::from(s.spin_ups);
            agg.restarts += u64::from(s.restarts);
            agg.requests += s.requests;
            agg.completed += s.completed;
            agg.shed += s.shed;
            agg.failed += s.failed;
            agg.page_ins += s.page_ins;
            agg.page_outs += s.page_outs;
            all.extend_from_slice(s.latencies());
        }
        agg.p50_ns = percentile(&all, 50);
        agg.p99_ns = percentile(&all, 99);
        agg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_edges() {
        assert_eq!(percentile(&[], 50), 0);
        assert_eq!(percentile(&[7], 50), 7);
        assert_eq!(percentile(&[7], 99), 7);
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50), 50);
        assert_eq!(percentile(&v, 99), 99);
        assert_eq!(percentile(&v, 100), 100);
    }

    #[test]
    fn aggregate_merges_latencies_across_slots() {
        let mut a = SlotStats {
            completed: 3,
            requests: 3,
            ..SlotStats::default()
        };
        for ns in [10, 20, 30] {
            a.record_latency(ns);
        }
        let mut b = SlotStats {
            completed: 2,
            requests: 3,
            shed: 1,
            spin_ups: 1,
            ..SlotStats::default()
        };
        for ns in [40, 50] {
            b.record_latency(ns);
        }
        let agg = FleetAggregate::from_slots(&[a, b], 2, 0);
        assert_eq!(agg.requests, 6);
        assert_eq!(agg.completed, 5);
        assert_eq!(agg.shed, 1);
        assert_eq!(agg.p50_ns, 30);
        assert_eq!(agg.p99_ns, 50);
    }
}
