//! Deterministic fleet load generation.
//!
//! Client popularity follows a zipfian distribution (a few hot per-client
//! enclaves, a long cold tail — the SecureKeeper many-tenants model), and
//! request timing follows one of two classic arrival processes:
//!
//! * **Open loop** — requests arrive on a fixed schedule regardless of how
//!   fast the fleet serves them, so latency includes queueing delay. This
//!   is the regime that exposes overload.
//! * **Closed loop** — each client issues its next request only after the
//!   previous one completed plus a think time, so the fleet can never be
//!   driven past its capacity.
//!
//! All randomness comes from one seeded [`Rng`]; identical seeds produce
//! identical request sequences, which is what makes fleet traces
//! byte-identical across runs.

use sim_core::rng::{jitter, seeded, Rng, Zipf};
use sim_core::Nanos;

/// The arrival process of the load generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arrival {
    /// Open loop: request `k` is scheduled at `k` mean inter-arrival times
    /// (±10% deterministic jitter), independent of completions.
    Open {
        /// Mean inter-arrival time.
        interarrival: Nanos,
    },
    /// Closed loop: the next request is scheduled one think time (±10%
    /// deterministic jitter) after the previous completion.
    Closed {
        /// Mean think time between a completion and the next request.
        think: Nanos,
    },
}

/// One planned request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestPlan {
    /// Sequence number (0-based).
    pub index: u64,
    /// Target fleet slot, drawn from the zipfian popularity distribution.
    pub slot: usize,
    /// Scheduled arrival time. The driver advances the virtual clock to
    /// this point before dispatching (open-loop arrivals in the past are
    /// dispatched immediately — that lateness *is* the queueing delay).
    pub arrival: Nanos,
}

/// Deterministic request planner over `slots` fleet slots.
#[derive(Debug, Clone)]
pub struct LoadGen {
    zipf: Zipf,
    rng: Rng,
    arrival: Arrival,
    total: u64,
    issued: u64,
    next_open: Nanos,
}

impl LoadGen {
    /// Creates a planner for `total` requests over `slots` slots with
    /// zipfian exponent `exponent`, seeded deterministically.
    pub fn new(slots: usize, exponent: f64, arrival: Arrival, total: u64, seed: u64) -> LoadGen {
        LoadGen {
            zipf: Zipf::new(slots, exponent),
            rng: seeded(seed),
            arrival,
            total,
            issued: 0,
            next_open: Nanos::from_nanos(0),
        }
    }

    /// Requests not yet planned.
    pub fn remaining(&self) -> u64 {
        self.total - self.issued
    }

    /// Plans the next request, or `None` when the configured total has been
    /// issued. `now` is the current virtual time (the previous request's
    /// completion for closed-loop arrivals).
    pub fn next(&mut self, now: Nanos) -> Option<RequestPlan> {
        if self.issued >= self.total {
            return None;
        }
        let slot = self.zipf.sample(&mut self.rng);
        let arrival = match self.arrival {
            Arrival::Open { interarrival } => {
                let at = self.next_open;
                self.next_open = at + jitter(&mut self.rng, interarrival, 0.1);
                at
            }
            Arrival::Closed { think } => now + jitter(&mut self.rng, think, 0.1),
        };
        let plan = RequestPlan {
            index: self.issued,
            slot,
            arrival,
        };
        self.issued += 1;
        Some(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_seeds_produce_identical_plans() {
        let mk = || {
            LoadGen::new(
                100,
                0.99,
                Arrival::Open {
                    interarrival: Nanos::from_micros(10),
                },
                500,
                42,
            )
        };
        let (mut a, mut b) = (mk(), mk());
        let now = Nanos::from_nanos(0);
        for _ in 0..500 {
            assert_eq!(a.next(now), b.next(now));
        }
        assert_eq!(a.next(now), None);
    }

    #[test]
    fn open_loop_arrivals_are_monotonic_and_ignore_now() {
        let mut lg = LoadGen::new(
            10,
            1.0,
            Arrival::Open {
                interarrival: Nanos::from_micros(5),
            },
            100,
            7,
        );
        let mut last = Nanos::from_nanos(0);
        for i in 0..100 {
            // Feed a wildly advancing "now": open-loop scheduling must not care.
            let plan = lg.next(Nanos::from_millis(i * 3)).unwrap();
            assert!(plan.arrival >= last);
            last = plan.arrival;
        }
    }

    #[test]
    fn closed_loop_waits_out_the_think_time() {
        let mut lg = LoadGen::new(
            10,
            1.0,
            Arrival::Closed {
                think: Nanos::from_micros(8),
            },
            10,
            7,
        );
        let now = Nanos::from_micros(100);
        let plan = lg.next(now).unwrap();
        // jitter() never returns less than a quarter of the mean.
        assert!(plan.arrival >= now + Nanos::from_micros(2));
    }

    #[test]
    fn zipf_popularity_is_head_heavy() {
        let mut lg = LoadGen::new(
            1000,
            0.99,
            Arrival::Open {
                interarrival: Nanos::from_micros(1),
            },
            20_000,
            3,
        );
        let mut counts = vec![0u64; 1000];
        while let Some(plan) = lg.next(Nanos::from_nanos(0)) {
            counts[plan.slot] += 1;
        }
        let head: u64 = counts[..10].iter().sum();
        let tail: u64 = counts[990..].iter().sum();
        assert!(head > tail * 10, "head {head} tail {tail}");
        assert!(counts[0] > counts[500], "rank 0 must beat rank 500");
    }
}
