//! The fleet manager: multiplexes thousands of logical enclaves over a
//! bounded pool of live ones, with fleet-level recovery policy.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use sgx_sdk::supervisor::RestartGate;
use sgx_sdk::{
    CallData, Enclave, OcallTable, OcallTableBuilder, Runtime, SdkResult, Supervisor,
    SupervisorConfig, ThreadCtx,
};
use sgx_sim::{DriverEvent, PagingDirection};
use sim_core::sync::Mutex;
use sim_core::{Clock, Nanos};

use crate::policy::FleetPolicy;
use crate::stats::{FleetAggregate, SlotStats};

/// Builds the enclave for one slot: parse the interface, create the
/// enclave, register its ecalls. Invoked on every cold start and — via the
/// slot's supervisor — on every rebuild after a loss.
pub type SlotRecipe = Arc<dyn Fn(&Arc<Runtime>, usize) -> SdkResult<Arc<Enclave>> + Send + Sync>;

/// How the fleet disposed of one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The request completed; latency is arrival → completion.
    Completed {
        /// Virtual-time latency including open-loop queueing delay.
        latency: Nanos,
    },
    /// The slot was cold while the fleet circuit breaker was open, so the
    /// request was shed without spinning up an enclave.
    Shed,
}

struct SlotState {
    sup: Option<Arc<Supervisor>>,
    table: Option<Arc<OcallTable>>,
}

struct FleetInner {
    slots: Vec<SlotState>,
    stats: Vec<SlotStats>,
    /// LRU over live slots: stamp -> slot, oldest first (same indexed
    /// scheme as the simulator's EPC — O(log live) victim selection).
    lru: BTreeMap<u64, usize>,
    stamp_of: Vec<Option<u64>>,
    next_stamp: u64,
}

/// State shared with the machine's driver hook and the supervisors'
/// restart gate (both fire while the manager itself is not on the stack).
struct FleetShared {
    clock: Clock,
    /// Live enclave id -> slot, kept current across spin-ups and rebuilds.
    eid_to_slot: Mutex<HashMap<u32, usize>>,
    /// Per-slot (page-ins, page-outs) charged by the driver hook.
    paging: Mutex<Vec<(u64, u64)>>,
    /// Virtual time of the most recent rebuild (for spacing enforcement).
    last_rebuild: Mutex<Option<Nanos>>,
    /// Rebuild timestamps within the storm window, oldest first.
    restart_log: Mutex<VecDeque<Nanos>>,
    /// When the breaker closes again, if currently open.
    breaker_until: Mutex<Option<Nanos>>,
    breaker_opens: AtomicU64,
    restart_spacing: Nanos,
    storm_window: Nanos,
    storm_threshold: usize,
    breaker_cooldown: Nanos,
}

impl FleetShared {
    /// The restart gate body: throttle, then account the rebuild in the
    /// breaker window.
    fn on_rebuild(&self) {
        {
            let mut last = self.last_rebuild.lock();
            let now = self.clock.now();
            if let Some(prev) = *last {
                let min_next = prev + self.restart_spacing;
                if now < min_next {
                    self.clock.advance_to(min_next);
                }
            }
            *last = Some(self.clock.now());
        }
        let now = self.clock.now();
        let mut log = self.restart_log.lock();
        log.push_back(now);
        while log.front().is_some_and(|&t| now - t > self.storm_window) {
            log.pop_front();
        }
        if log.len() > self.storm_threshold {
            let mut until = self.breaker_until.lock();
            let already_open = until.is_some_and(|t| now < t);
            *until = Some(now + self.breaker_cooldown);
            if !already_open {
                self.breaker_opens.fetch_add(1, Ordering::SeqCst);
            }
        }
    }

    fn breaker_open(&self) -> bool {
        self.breaker_until
            .lock()
            .is_some_and(|t| self.clock.now() < t)
    }
}

/// Multiplexes N logical enclaves ("slots") over at most
/// [`FleetPolicy::live_pool`] live ones, all charging the same simulated
/// EPC. Each live slot is wrapped in a [`Supervisor`] whose rebuilds pass
/// through a shared restart gate — see [`FleetPolicy`] for the throttling
/// and circuit-breaker semantics.
///
/// The manager is driven from a single logical thread (the load-generator
/// thread); its internal locks exist for the driver hook and restart gate,
/// which fire re-entrantly on the same thread but never overlap a held
/// manager lock.
pub struct FleetManager {
    runtime: Arc<Runtime>,
    policy: FleetPolicy,
    recipe: SlotRecipe,
    inner: Mutex<FleetInner>,
    shared: Arc<FleetShared>,
    gate: RestartGate,
}

impl std::fmt::Debug for FleetManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("FleetManager")
            .field("slots", &inner.slots.len())
            .field("live", &inner.lru.len())
            .field("live_pool", &self.policy.live_pool)
            .finish()
    }
}

impl FleetManager {
    /// Creates a fleet of `slots` logical enclaves over `runtime`. Installs
    /// a driver hook so per-slot paging is attributed even though enclave
    /// ids change across spin-ups and rebuilds.
    pub fn new(
        runtime: &Arc<Runtime>,
        policy: FleetPolicy,
        slots: usize,
        recipe: impl Fn(&Arc<Runtime>, usize) -> SdkResult<Arc<Enclave>> + Send + Sync + 'static,
    ) -> Arc<FleetManager> {
        assert!(policy.live_pool > 0, "live pool must be positive");
        let clock = runtime.machine().clock().clone();
        let shared = Arc::new(FleetShared {
            clock,
            eid_to_slot: Mutex::new(HashMap::new()),
            paging: Mutex::new(vec![(0, 0); slots]),
            last_rebuild: Mutex::new(None),
            restart_log: Mutex::new(VecDeque::new()),
            breaker_until: Mutex::new(None),
            breaker_opens: AtomicU64::new(0),
            restart_spacing: policy.restart_spacing,
            storm_window: policy.storm_window,
            storm_threshold: policy.storm_threshold,
            breaker_cooldown: policy.breaker_cooldown,
        });
        let hook_shared = Arc::clone(&shared);
        runtime.machine().add_driver_hook(Arc::new(move |ev| {
            if let DriverEvent::Paging {
                direction, enclave, ..
            } = ev
            {
                let slot = hook_shared.eid_to_slot.lock().get(&enclave.0).copied();
                if let Some(slot) = slot {
                    let mut paging = hook_shared.paging.lock();
                    match direction {
                        PagingDirection::In => paging[slot].0 += 1,
                        PagingDirection::Out => paging[slot].1 += 1,
                    }
                }
            }
        }));
        let gate_shared = Arc::clone(&shared);
        let gate: RestartGate = Arc::new(move |_attempt| gate_shared.on_rebuild());
        Arc::new(FleetManager {
            runtime: Arc::clone(runtime),
            policy,
            recipe: Arc::new(recipe),
            inner: Mutex::new(FleetInner {
                slots: (0..slots)
                    .map(|_| SlotState {
                        sup: None,
                        table: None,
                    })
                    .collect(),
                stats: vec![SlotStats::default(); slots],
                lru: BTreeMap::new(),
                stamp_of: vec![None; slots],
                next_stamp: 0,
            }),
            shared,
            gate,
        })
    }

    /// The fleet's runtime.
    pub fn runtime(&self) -> &Arc<Runtime> {
        &self.runtime
    }

    /// Total slots.
    pub fn slot_count(&self) -> usize {
        self.inner.lock().slots.len()
    }

    /// Slots currently live.
    pub fn live_count(&self) -> usize {
        self.inner.lock().lru.len()
    }

    /// Whether the fleet circuit breaker is currently open.
    pub fn breaker_open(&self) -> bool {
        self.shared.breaker_open()
    }

    /// How many times the breaker has opened so far.
    pub fn breaker_opens(&self) -> u64 {
        self.shared.breaker_opens.load(Ordering::SeqCst)
    }

    /// Routes one request to `slot`, spinning the enclave up if it is cold
    /// (retiring the least-recently-used live slot when the pool is full).
    /// `arrival` is the request's scheduled arrival time; completed
    /// requests record `now - arrival` as their latency.
    ///
    /// # Errors
    ///
    /// Terminal call errors (e.g. [`sgx_sdk::SdkError::RecoveryExhausted`]); the
    /// failed slot is retired so a later request can respawn it.
    pub fn request(
        &self,
        tcx: &ThreadCtx<'_>,
        slot: usize,
        ecall: &str,
        data: &mut CallData,
        arrival: Nanos,
    ) -> SdkResult<Outcome> {
        self.inner.lock().stats[slot].requests += 1;
        let Some((sup, table)) = self.ensure_live(slot)? else {
            self.inner.lock().stats[slot].shed += 1;
            return Ok(Outcome::Shed);
        };
        let eid_before = sup.enclave_id().0;
        match sup.ecall(tcx, ecall, &table, data) {
            Ok(()) => {
                let eid_after = sup.enclave_id().0;
                if eid_after != eid_before {
                    // The supervisor rebuilt mid-call: re-point the paging
                    // attribution at the fresh enclave id.
                    let mut map = self.shared.eid_to_slot.lock();
                    map.remove(&eid_before);
                    map.insert(eid_after, slot);
                }
                let latency = self.shared.clock.now() - arrival;
                let mut inner = self.inner.lock();
                inner.stats[slot].completed += 1;
                inner.stats[slot].record_latency(latency.as_nanos());
                Ok(Outcome::Completed { latency })
            }
            Err(err) => {
                // Terminal for this incarnation: retire the slot (folding
                // its restart count into the stats) so it can respawn.
                self.retire(slot);
                self.inner.lock().stats[slot].failed += 1;
                Err(err)
            }
        }
    }

    /// Returns the slot's supervisor and ocall table, spinning it up if
    /// cold. `None` means the breaker shed the spin-up.
    #[allow(clippy::type_complexity)]
    fn ensure_live(&self, slot: usize) -> SdkResult<Option<(Arc<Supervisor>, Arc<OcallTable>)>> {
        {
            let mut inner = self.inner.lock();
            if inner.slots[slot].sup.is_some() {
                Self::touch_lru(&mut inner, slot);
                let st = &inner.slots[slot];
                return Ok(Some((
                    Arc::clone(st.sup.as_ref().expect("checked live")),
                    Arc::clone(st.table.as_ref().expect("live slot has a table")),
                )));
            }
        }
        // Cold slot: while the breaker is open the fleet sheds instead of
        // spinning up — live enclaves keep serving, dead ones stay down.
        if self.shared.breaker_open() {
            return Ok(None);
        }
        // Make room, then spin up.
        let victim = {
            let inner = self.inner.lock();
            if inner.lru.len() >= self.policy.live_pool {
                inner.lru.iter().next().map(|(_, &s)| s)
            } else {
                None
            }
        };
        if let Some(victim) = victim {
            self.retire(victim);
        }
        let recipe = Arc::clone(&self.recipe);
        let config = SupervisorConfig {
            max_restarts: self.policy.max_restarts_per_enclave,
            ..SupervisorConfig::default()
        };
        let sup = Supervisor::launch(&self.runtime, config, move |rt| recipe(rt, slot))?;
        sup.set_restart_gate(Some(Arc::clone(&self.gate)));
        let table = Arc::new(OcallTableBuilder::new(sup.enclave().spec()).build()?);
        self.shared
            .eid_to_slot
            .lock()
            .insert(sup.enclave_id().0, slot);
        let mut inner = self.inner.lock();
        inner.stats[slot].spin_ups += 1;
        inner.slots[slot] = SlotState {
            sup: Some(Arc::clone(&sup)),
            table: Some(Arc::clone(&table)),
        };
        Self::touch_lru(&mut inner, slot);
        Ok(Some((sup, table)))
    }

    fn touch_lru(inner: &mut FleetInner, slot: usize) {
        if let Some(old) = inner.stamp_of[slot].take() {
            inner.lru.remove(&old);
        }
        let stamp = inner.next_stamp;
        inner.next_stamp += 1;
        inner.lru.insert(stamp, slot);
        inner.stamp_of[slot] = Some(stamp);
    }

    /// Tears a live slot down: folds its supervisor's restart count into
    /// the slot stats, destroys the enclave (freeing its EPC pages) and
    /// marks the slot cold.
    fn retire(&self, slot: usize) {
        let sup = {
            let mut inner = self.inner.lock();
            if let Some(stamp) = inner.stamp_of[slot].take() {
                inner.lru.remove(&stamp);
            }
            inner.slots[slot].table = None;
            let sup = inner.slots[slot].sup.take();
            if let Some(sup) = &sup {
                inner.stats[slot].restarts += sup.restarts();
            }
            sup
        };
        if let Some(sup) = sup {
            let eid = sup.enclave_id();
            self.shared.eid_to_slot.lock().remove(&eid.0);
            // A lost enclave is still registered; destroying it frees the
            // id either way. Unknown ids (already destroyed) are fine too.
            let _ = self.runtime.destroy_enclave(eid);
        }
    }

    /// Retires every live slot (end of run), folding restart counts.
    pub fn shutdown(&self) {
        let live: Vec<usize> = self.inner.lock().lru.values().copied().collect();
        for slot in live {
            self.retire(slot);
        }
    }

    /// Per-slot statistics snapshot, including live supervisors' restart
    /// counts and driver-hook paging attribution.
    pub fn snapshot(&self) -> Vec<SlotStats> {
        let inner = self.inner.lock();
        let paging = self.shared.paging.lock();
        inner
            .stats
            .iter()
            .enumerate()
            .map(|(slot, s)| {
                let mut s = s.clone();
                if let Some(sup) = &inner.slots[slot].sup {
                    s.restarts += sup.restarts();
                }
                s.page_ins = paging[slot].0;
                s.page_outs = paging[slot].1;
                s
            })
            .collect()
    }

    /// Fleet-wide aggregate of [`FleetManager::snapshot`].
    pub fn aggregate(&self) -> FleetAggregate {
        FleetAggregate::from_slots(&self.snapshot(), self.live_count(), self.breaker_opens())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgx_sdk::SdkError;
    use sgx_sim::{EnclaveConfig, Machine};
    use sim_core::fault::FaultPlan;
    use sim_core::HwProfile;

    const EDL: &str = "enclave { trusted { public void ecall_ping(); }; };";

    fn fleet(
        slots: usize,
        policy: FleetPolicy,
        epc_pages: usize,
    ) -> (Arc<Runtime>, Arc<FleetManager>) {
        let params = sgx_sim::MachineParams {
            epc_pages,
            ..sgx_sim::MachineParams::default()
        };
        let machine = Arc::new(Machine::with_params(
            Clock::new(),
            HwProfile::Unpatched,
            params,
        ));
        let runtime = Runtime::new(machine);
        let mgr = FleetManager::new(&runtime, policy, slots, |rt, _slot| {
            let spec = sgx_edl::parse(EDL).map_err(|e| SdkError::Interface(e.to_string()))?;
            let enclave = rt.create_enclave(
                &spec,
                &EnclaveConfig {
                    code_kib: 4,
                    data_kib: 4,
                    heap_kib: 16,
                    stack_kib: 8,
                    ..EnclaveConfig::default()
                },
            )?;
            enclave.register_ecall("ecall_ping", |ctx, _| {
                ctx.compute(Nanos::from_micros(1))?;
                Ok(())
            })?;
            Ok(enclave)
        });
        (runtime, mgr)
    }

    #[test]
    fn pool_stays_bounded_and_lru_retires_cold_slots() {
        let (_rt, mgr) = fleet(16, FleetPolicy::default(), 4096);
        let tcx = ThreadCtx::main();
        let mut data = CallData::default();
        let small_policy = FleetPolicy {
            live_pool: 4,
            ..FleetPolicy::default()
        };
        let (_rt2, mgr2) = fleet(16, small_policy, 4096);
        for slot in 0..16 {
            let now = mgr2.runtime().machine().clock().now();
            mgr2.request(&tcx, slot, "ecall_ping", &mut data, now)
                .unwrap();
            assert!(mgr2.live_count() <= 4);
        }
        // Slot 0 was retired long ago; re-requesting respins it.
        let now = mgr2.runtime().machine().clock().now();
        mgr2.request(&tcx, 0, "ecall_ping", &mut data, now).unwrap();
        let stats = mgr2.snapshot();
        assert_eq!(stats[0].spin_ups, 2);
        assert_eq!(stats[0].completed, 2);
        drop(mgr);
    }

    #[test]
    fn restart_gate_spaces_rebuilds_and_breaker_stays_closed() {
        let policy = FleetPolicy {
            live_pool: 8,
            restart_spacing: Nanos::from_micros(500),
            storm_window: Nanos::from_millis(5),
            storm_threshold: 16,
            ..FleetPolicy::default()
        };
        let (rt, mgr) = fleet(8, policy, 4096);
        let tcx = ThreadCtx::main();
        let mut data = CallData::default();
        // Warm two slots, then lose an enclave on every third entry.
        for slot in 0..2 {
            let now = rt.machine().clock().now();
            mgr.request(&tcx, slot, "ecall_ping", &mut data, now)
                .unwrap();
        }
        let plan: FaultPlan = "enclave_lost@call=3;enclave_lost@call=6;enclave_lost@call=9;seed=9"
            .parse()
            .unwrap();
        rt.machine().set_fault_plan(Some(&plan));
        for i in 0..12 {
            let now = rt.machine().clock().now();
            mgr.request(&tcx, i % 2, "ecall_ping", &mut data, now)
                .unwrap();
        }
        let agg = mgr.aggregate();
        assert_eq!(agg.restarts, 3);
        assert_eq!(agg.breaker_opens, 0);
        assert_eq!(agg.completed, 14);
    }

    #[test]
    fn breaker_opens_under_storm_and_sheds_cold_slots() {
        let policy = FleetPolicy {
            live_pool: 8,
            // No effective throttling, hair-trigger breaker.
            restart_spacing: Nanos::from_nanos(1),
            storm_window: Nanos::from_secs(1),
            storm_threshold: 1,
            breaker_cooldown: Nanos::from_millis(100),
            max_restarts_per_enclave: 10,
        };
        let (rt, mgr) = fleet(8, policy, 4096);
        let tcx = ThreadCtx::main();
        let mut data = CallData::default();
        let now = rt.machine().clock().now();
        mgr.request(&tcx, 0, "ecall_ping", &mut data, now).unwrap();
        // Two losses back to back trip the 1-rebuild threshold. Arming a
        // plan resets the injector's entry counting, so the very next
        // EENTER is call 1.
        let plan: FaultPlan = "enclave_lost@call=1;enclave_lost@call=2;seed=4"
            .parse()
            .unwrap();
        rt.machine().set_fault_plan(Some(&plan));
        let now = rt.machine().clock().now();
        mgr.request(&tcx, 0, "ecall_ping", &mut data, now).unwrap();
        assert!(mgr.breaker_opens() >= 1);
        assert!(mgr.breaker_open());
        // Cold slots shed while the breaker is open...
        let now = rt.machine().clock().now();
        let outcome = mgr.request(&tcx, 5, "ecall_ping", &mut data, now).unwrap();
        assert_eq!(outcome, Outcome::Shed);
        // ...but the live slot keeps serving.
        let now = rt.machine().clock().now();
        let outcome = mgr.request(&tcx, 0, "ecall_ping", &mut data, now).unwrap();
        assert!(matches!(outcome, Outcome::Completed { .. }));
        let stats = mgr.snapshot();
        assert_eq!(stats[5].shed, 1);
        assert_eq!(stats[5].spin_ups, 0);
    }

    #[test]
    fn recovery_exhausted_retires_the_slot_for_a_clean_respawn() {
        let policy = FleetPolicy {
            max_restarts_per_enclave: 1,
            storm_threshold: 1000,
            ..FleetPolicy::default()
        };
        let (rt, mgr) = fleet(4, policy, 4096);
        let tcx = ThreadCtx::main();
        let mut data = CallData::default();
        let now = rt.machine().clock().now();
        mgr.request(&tcx, 0, "ecall_ping", &mut data, now).unwrap();
        // First retry after the loss is itself lost: one rebuild is within
        // budget, the second trips the per-slot breaker.
        let plan: FaultPlan = "enclave_lost@call=1;enclave_lost@call=2;seed=4"
            .parse()
            .unwrap();
        rt.machine().set_fault_plan(Some(&plan));
        let now = rt.machine().clock().now();
        let err = mgr
            .request(&tcx, 0, "ecall_ping", &mut data, now)
            .unwrap_err();
        assert!(matches!(err, SdkError::RecoveryExhausted { .. }));
        rt.machine().set_fault_plan(None);
        // The slot respawns cleanly on the next request.
        let now = rt.machine().clock().now();
        let outcome = mgr.request(&tcx, 0, "ecall_ping", &mut data, now).unwrap();
        assert!(matches!(outcome, Outcome::Completed { .. }));
        let stats = mgr.snapshot();
        assert_eq!(stats[0].failed, 1);
        assert_eq!(stats[0].spin_ups, 2);
        // restarts() counts attempts, including the one that gave up.
        assert_eq!(stats[0].restarts, 2);
    }

    #[test]
    fn shared_epc_contention_attributes_paging_per_slot() {
        // EPC too small for all live enclaves: hot slots evict cold ones.
        let policy = FleetPolicy {
            live_pool: 8,
            ..FleetPolicy::default()
        };
        let (rt, mgr) = fleet(8, policy, 48);
        let tcx = ThreadCtx::main();
        let mut data = CallData::default();
        for round in 0..3 {
            for slot in 0..8 {
                let now = rt.machine().clock().now();
                let _ = mgr.request(&tcx, slot, "ecall_ping", &mut data, now);
                let _ = round;
            }
        }
        let agg = mgr.aggregate();
        assert!(agg.page_outs > 0, "cross-enclave evictions expected");
        let stats = mgr.snapshot();
        let victims = stats.iter().filter(|s| s.page_outs > 0).count();
        assert!(victims > 1, "evictions should span multiple slots");
    }
}
