//! Fleet-level tuning knobs.

use sim_core::Nanos;

/// Fleet-wide policy: how many enclaves may be live at once, how individual
/// supervisors may restart, and when the fleet circuit breaker opens.
///
/// Two mechanisms keep an unhealthy fleet from cascading:
///
/// 1. **Restart-storm throttling** — every supervisor rebuild passes
///    through a shared gate that enforces a minimum virtual-time spacing
///    ([`restart_spacing`](FleetPolicy::restart_spacing)) between rebuilds
///    across the *whole* fleet, so simultaneous losses serialise instead of
///    thundering the platform.
/// 2. **Fleet circuit breaker** — when more than
///    [`storm_threshold`](FleetPolicy::storm_threshold) rebuilds land
///    within [`storm_window`](FleetPolicy::storm_window), the breaker opens
///    for [`breaker_cooldown`](FleetPolicy::breaker_cooldown): cold slots
///    are refused (their requests are *shed* and counted) while already
///    live enclaves keep serving. Load is shed, not cascaded.
///
/// Note the interaction: a spacing of `s` caps rebuilds inside a window of
/// `w` at `w / s`, so choosing `w / s < storm_threshold` makes the breaker
/// provably never open — throttling alone absorbs the storm.
#[derive(Debug, Clone, Copy)]
pub struct FleetPolicy {
    /// Maximum simultaneously live enclaves. Cold requests beyond this
    /// retire the least-recently-used live slot first.
    pub live_pool: usize,
    /// Per-supervisor restart budget (each slot's circuit breaker).
    pub max_restarts_per_enclave: u32,
    /// Minimum virtual-time spacing between any two rebuilds fleet-wide.
    pub restart_spacing: Nanos,
    /// Sliding window the breaker counts rebuilds over.
    pub storm_window: Nanos,
    /// Rebuilds within the window that open the breaker.
    pub storm_threshold: usize,
    /// How long the breaker stays open once tripped.
    pub breaker_cooldown: Nanos,
}

impl Default for FleetPolicy {
    fn default() -> Self {
        FleetPolicy {
            live_pool: 64,
            max_restarts_per_enclave: 3,
            restart_spacing: Nanos::from_micros(100),
            storm_window: Nanos::from_millis(10),
            storm_threshold: 64,
            breaker_cooldown: Nanos::from_millis(1),
        }
    }
}
