//! Enclave Description Language (EDL) front-end.
//!
//! The Intel SGX SDK's `sgx_edger8r` tool consumes an EDL file describing
//! the enclave interface — the set of ecalls and ocalls, their public/
//! private status, which ecalls each ocall may re-enter with (`allow`), and
//! how pointer arguments cross the boundary (`in`, `out`, `user_check`,
//! `string`, `size=`, `count=`). This crate implements that language:
//!
//! * [`lex`](token::lex) — tokeniser with source spans,
//! * [`parse`] — recursive-descent parser producing an [`ast::EdlFile`],
//! * [`InterfaceSpec`] — the validated, index-assigned interface model the
//!   simulated SDK registers at enclave load and the sgx-perf analyzer
//!   consumes for its security analysis (§3.6, §4.3.2),
//! * [`lint`] — a static analyzer over the AST producing span-accurate
//!   [`Diagnostic`]s with rustc-style rendering (see the module docs for
//!   the full lint-code table, EDL-W001…).
//!
//! # Examples
//!
//! ```
//! let spec = sgx_edl::parse(r#"
//!     enclave {
//!         trusted {
//!             public void ecall_store([in, size=len] char* buf, size_t len);
//!             void ecall_notify(int fd);
//!         };
//!         untrusted {
//!             int ocall_read([out, size=n] char* buf, size_t n)
//!                 allow(ecall_notify);
//!         };
//!     };
//! "#)?;
//! assert_eq!(spec.ecalls().len(), 2);
//! assert!(spec.ecall_by_name("ecall_store").unwrap().public);
//! assert!(!spec.ecall_by_name("ecall_notify").unwrap().public);
//! # Ok::<(), sgx_edl::EdlError>(())
//! ```

pub mod ast;
pub mod codegen;
pub mod lint;
pub mod parser;
pub mod spec;
pub mod token;

pub use lint::{Diagnostic, LintConfig, Severity};
pub use parser::parse_file;
pub use spec::{EcallSpec, InterfaceBuilder, InterfaceSpec, OcallSpec, ParamSpec, PointerDir};
pub use token::{Pos, Span};

use std::fmt;

/// Errors produced while lexing, parsing or validating EDL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdlError {
    /// Source region (1-based, end-exclusive) where the error occurred.
    /// Errors without a meaningful extent use a zero-width span.
    pub span: Span,
    /// Human-readable description.
    pub message: String,
}

impl EdlError {
    pub(crate) fn new(span: impl Into<Span>, message: impl Into<String>) -> EdlError {
        EdlError {
            span: span.into(),
            message: message.into(),
        }
    }

    /// Where the error starts.
    pub fn pos(&self) -> Pos {
        self.span.start
    }
}

impl fmt::Display for EdlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}",
            self.span.start.line, self.span.start.col, self.message
        )
    }
}

impl std::error::Error for EdlError {}

/// Parses and validates EDL source into an [`InterfaceSpec`].
///
/// This is the main entry point, equivalent to running `sgx_edger8r` on the
/// file: ecall and ocall indexes are assigned in declaration order.
///
/// # Errors
///
/// Returns an [`EdlError`] with a source span on any lexical, syntactic
/// or semantic problem (e.g. an `allow()` naming an unknown ecall).
pub fn parse(source: &str) -> Result<InterfaceSpec, EdlError> {
    let file = parser::parse_file(source)?;
    spec::InterfaceSpec::from_ast(&file)
}
