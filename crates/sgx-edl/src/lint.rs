//! Static analysis over enclave interfaces — `edl-lint`.
//!
//! The paper's security analysis (§3.6, §4.3.2) inspects a *running*
//! enclave's trace for dangerous interface usage. This module is the
//! static complement: it walks the parsed AST (not the validated
//! [`crate::InterfaceSpec`], so it can report problems the validator
//! would reject outright, such as duplicate `allow()` entries) and emits
//! span-accurate [`Diagnostic`]s that render rustc-style with a source
//! excerpt and caret underline.
//!
//! # Lint codes
//!
//! | Code | Severity | Meaning |
//! |----------|---------|---------|
//! | EDL-W001 | warning | `user_check` pointer crosses the boundary unchecked |
//! | EDL-W002 | warning | sized pointer without `size=`/`count=` copies one element |
//! | EDL-W003 | error   | conflicting attributes (`string`+`user_check`, `string`+`out`, `user_check`+`in`/`out`) |
//! | EDL-W004 | warning | `allow()` entry closes a re-entrancy cycle (unbounded recursion) |
//! | EDL-W005 | warning | `allow()` names a *public* ecall (re-enterable and world-callable) |
//! | EDL-W006 | note    | wide public surface: more public ecalls than the configured bound |
//! | EDL-W007 | error   | duplicate entry in an `allow()` list |
//! | EDL-W008 | warning | large boundary copy; estimated cost per call from the §2.3.1 model |
//! | EDL-W009 | note    | public ecall never exercised by the supplied trace (cross-check mode) |
//! | EDL-W010 | warning | `transition_using_threads` on a call with large `[in]`/`[out]` buffers |
//!
//! EDL-W009 and severity escalation of EDL-W001 (a `user_check` pointer
//! that a trace proves is actually exercised) are produced by the
//! trace cross-check layer in the sgx-perf analyzer, which owns the trace
//! database; the code and rendering live here so all diagnostics share
//! one vocabulary.
//!
//! # Examples
//!
//! ```
//! use sgx_edl::lint::{lint_source, LintConfig};
//!
//! let diags = lint_source(
//!     "enclave { trusted { public void e([user_check] void* p); }; };",
//!     &LintConfig::default(),
//! )?;
//! assert_eq!(diags[0].code, "EDL-W001");
//! # Ok::<(), sgx_edl::EdlError>(())
//! ```

use std::collections::{HashMap, HashSet};
use std::fmt;

use crate::ast::{AttrKind, EdlFile, FunctionDecl, ParamDecl};
use crate::parser::parse_file;
use crate::token::Span;
use crate::EdlError;

/// How serious a finding is. Ordered: `Note < Warning < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational; no action strictly required.
    Note,
    /// Likely problem or performance hazard.
    Warning,
    /// Interface is broken or unsafe as written.
    Error,
}

impl Severity {
    /// Lowercase label as rendered in diagnostics (`warning[EDL-W001]: ...`).
    pub fn label(self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One lint finding, anchored to the exact source region it concerns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable lint code (`EDL-W001` ... ), usable with deny lists.
    pub code: &'static str,
    /// How serious the finding is.
    pub severity: Severity,
    /// The offending source region.
    pub span: Span,
    /// One-line description of the problem.
    pub message: String,
    /// Optional `help:` line suggesting a fix.
    pub suggestion: Option<String>,
    /// The ecall/ocall the finding concerns, for trace cross-checking.
    pub function: Option<String>,
}

impl Diagnostic {
    fn new(
        code: &'static str,
        severity: Severity,
        span: Span,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            code,
            severity,
            span,
            message: message.into(),
            suggestion: None,
            function: None,
        }
    }

    fn help(mut self, s: impl Into<String>) -> Diagnostic {
        self.suggestion = Some(s.into());
        self
    }

    fn on(mut self, function: &str) -> Diagnostic {
        self.function = Some(function.to_string());
        self
    }

    /// Renders the diagnostic rustc-style against its source text:
    ///
    /// ```text
    /// warning[EDL-W001]: `user_check` pointer `p` on ecall `e` is unchecked
    ///  --> enclave.edl:1:36
    ///   |
    /// 1 | enclave { trusted { public void e([user_check] void* p); }; };
    ///   |                                    ^^^^^^^^^^
    ///   = help: validate inside the enclave, or use [in]/[out] with size=
    /// ```
    pub fn render(&self, source: &str, filename: &str) -> String {
        let line_no = self.span.start.line as usize;
        let gutter = line_no.to_string();
        let pad = " ".repeat(gutter.len());
        let mut out = format!(
            "{}[{}]: {}\n{pad}--> {filename}:{}:{}\n{pad} |\n",
            self.severity, self.code, self.message, self.span.start.line, self.span.start.col,
        );
        if let Some(text) = source.lines().nth(line_no - 1) {
            let start = self.span.start.col as usize;
            // Multi-line spans underline to the end of the first line.
            let end = if self.span.end.line == self.span.start.line {
                (self.span.end.col as usize).max(start + 1)
            } else {
                text.chars().count() + 1
            };
            let carets = "^".repeat(end - start);
            out.push_str(&format!(
                "{gutter} | {text}\n{pad} | {}{carets}\n",
                " ".repeat(start - 1),
            ));
        }
        if let Some(help) = &self.suggestion {
            out.push_str(&format!("{pad} = help: {help}\n"));
        }
        out
    }
}

/// Tunables for the lint pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintConfig {
    /// EDL-W006 fires when the interface declares more public ecalls than
    /// this (§3.6: every public ecall is attack surface).
    pub max_public_ecalls: usize,
    /// EDL-W008 fires when a statically-sized boundary copy moves at least
    /// this many bytes per call.
    pub large_copy_bytes: u64,
    /// Copy cost in tenths of a nanosecond per byte, mirroring the
    /// simulator's §2.3.1 cost model default (1 = 0.1 ns/B ≈ 10 GB/s).
    /// Used only to phrase the EDL-W008 estimate.
    pub copy_tenth_ns_per_byte: u64,
}

impl Default for LintConfig {
    fn default() -> LintConfig {
        LintConfig {
            max_public_ecalls: 8,
            large_copy_bytes: 8192,
            copy_tenth_ns_per_byte: 1,
        }
    }
}

/// Parses `source` and lints the AST.
///
/// # Errors
///
/// Returns the parse error if `source` is not syntactically valid EDL;
/// semantic problems the validator would reject (duplicate allow entries,
/// conflicting attributes, ...) come back as diagnostics instead.
pub fn lint_source(source: &str, config: &LintConfig) -> Result<Vec<Diagnostic>, EdlError> {
    Ok(lint_file(&parse_file(source)?, config))
}

/// Lints a parsed AST. Diagnostics come back sorted by source position,
/// then by code.
pub fn lint_file(file: &EdlFile, config: &LintConfig) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for decl in file.trusted.iter().chain(&file.untrusted) {
        for param in &decl.params {
            lint_param(decl, param, config, &mut diags);
        }
    }
    lint_allow_lists(file, &mut diags);
    lint_public_surface(file, config, &mut diags);
    lint_switchless_copies(file, config, &mut diags);
    diags.sort_by_key(|d| {
        (
            d.span.start.line,
            d.span.start.col,
            d.code,
            std::cmp::Reverse(d.severity),
        )
    });
    diags
}

/// Rough per-element byte widths for the C types EDL interfaces use, so
/// `count=` attributes can be turned into byte estimates. Unknown types
/// count as one byte (an under-estimate; EDL-W008 stays conservative).
fn type_width(base: &str) -> u64 {
    match base {
        "char" | "signed char" | "unsigned char" | "int8_t" | "uint8_t" | "void" | "bool" => 1,
        "short" | "unsigned short" | "int16_t" | "uint16_t" => 2,
        "int" | "unsigned int" | "unsigned" | "int32_t" | "uint32_t" | "float" => 4,
        "long" | "unsigned long" | "long long" | "unsigned long long" | "int64_t" | "uint64_t"
        | "size_t" | "double" | "intptr_t" | "uintptr_t" => 8,
        _ => 1,
    }
}

fn lint_param(
    decl: &FunctionDecl,
    p: &ParamDecl,
    config: &LintConfig,
    diags: &mut Vec<Diagnostic>,
) {
    // EDL-W001: user_check pointers cross the boundary with no copying and
    // no bounds checks — the exact list §3.6 tells a reviewer to audit.
    if let Some(uc) = p.user_check_attr() {
        diags.push(
            Diagnostic::new(
                "EDL-W001",
                Severity::Warning,
                uc.span,
                format!(
                    "`user_check` pointer `{}` on `{}` crosses the enclave boundary unchecked",
                    p.name, decl.name
                ),
            )
            .help("validate the pointer inside the enclave, or use [in]/[out] with size=/count=")
            .on(&decl.name),
        );
    }

    // EDL-W003: mutually-contradictory attribute combinations.
    let conflict = |a: Span, b: Span, msg: String| {
        Diagnostic::new("EDL-W003", Severity::Error, a.to(b), msg).on(&decl.name)
    };
    if let (Some(s), Some(uc)) = (p.string_attr(), p.user_check_attr()) {
        diags.push(
            conflict(
                s.span,
                uc.span,
                format!(
                    "parameter `{}` combines `string` (copied, NUL-scanned) with `user_check` (never copied)",
                    p.name
                ),
            )
            .help("drop one of the two attributes"),
        );
    }
    if let Some(s) = p.string_attr() {
        if p.is_out() && !p.is_in() {
            let out_span = p
                .find_kind(|k| matches!(k, AttrKind::Out))
                .map_or(s.span, |a| a.span);
            diags.push(
                conflict(
                    s.span,
                    out_span,
                    format!(
                        "parameter `{}` is `[out, string]`: the string length cannot be known before the call",
                        p.name
                    ),
                )
                .help("use [in, string], or [out] with an explicit size="),
            );
        }
    }
    if let Some(uc) = p.user_check_attr() {
        if p.is_in() || p.is_out() {
            let dir = p
                .find_kind(|k| matches!(k, AttrKind::In | AttrKind::Out))
                .map_or(uc.span, |a| a.span);
            diags.push(
                conflict(
                    uc.span,
                    dir,
                    format!(
                        "parameter `{}` combines `user_check` with a copying direction",
                        p.name
                    ),
                )
                .help("user_check pointers are passed raw; remove in/out or remove user_check"),
            );
        }
    }

    // EDL-W002: a directed pointer without size=/count=/string copies
    // exactly one element — almost never what a buffer parameter means.
    if p.pointer_depth > 0 && (p.is_in() || p.is_out()) && p.size_attr().is_none() && !p.is_string()
    {
        let what = if p.base_type == "void" {
            "has unknown element size".to_string()
        } else {
            format!("copies a single `{}`", p.base_type)
        };
        diags.push(
            Diagnostic::new(
                "EDL-W002",
                Severity::Warning,
                p.span,
                format!(
                    "pointer parameter `{}` on `{}` has no size=/count= and {what}",
                    p.name, decl.name
                ),
            )
            .help("add size=<bytes> or count=<elements> so the bridge copies the whole buffer")
            .on(&decl.name),
        );
    }

    // EDL-W008: statically-large boundary copies, priced with the §2.3.1
    // cost model (bytes / copy rate, doubled for [in, out]).
    if let Some(total) = static_copy_bytes(p) {
        if total >= config.large_copy_bytes {
            let est_ns = total * config.copy_tenth_ns_per_byte / 10;
            diags.push(
                Diagnostic::new(
                    "EDL-W008",
                    Severity::Warning,
                    p.span,
                    format!(
                        "parameter `{}` on `{}` copies {total} bytes across the boundary per call (≈{est_ns} ns at the modelled copy rate)",
                        p.name, decl.name
                    ),
                )
                .help("shrink the buffer, switch to a chunked protocol, or keep the data on one side")
                .on(&decl.name),
            );
        }
    }
}

/// The statically-known bytes a parameter moves across the boundary per
/// call: `size=`/`count=` literal scaled by the element width, doubled
/// for `[in, out]`. `None` when the size is not a literal.
fn static_copy_bytes(p: &ParamDecl) -> Option<u64> {
    let n = p.static_bytes()?;
    let per_crossing = if p
        .size_attr()
        .is_some_and(|a| matches!(a.kind, AttrKind::Count(_)))
    {
        n.saturating_mul(type_width(&p.base_type))
    } else {
        n
    };
    let crossings = u64::from(p.is_in()) + u64::from(p.is_out());
    Some(per_crossing.saturating_mul(crossings.max(1)))
}

/// EDL-W010: `transition_using_threads` only pays off when the saved
/// transition dominates the per-call cost. A switchless call that also
/// marshals a large `[in]`/`[out]` buffer still pays the full copy on
/// every call — the worker-thread dispatch saves a few microseconds while
/// the copy costs more, so the annotation buys nothing (and pins worker
/// threads for it).
fn lint_switchless_copies(file: &EdlFile, config: &LintConfig, diags: &mut Vec<Diagnostic>) {
    for decl in file.trusted.iter().chain(&file.untrusted) {
        if !decl.switchless {
            continue;
        }
        let attr_span = decl.switchless_span.unwrap_or(decl.name_span);
        let total: u64 = decl
            .params
            .iter()
            .filter_map(static_copy_bytes)
            .fold(0, u64::saturating_add);
        if total >= config.large_copy_bytes {
            let est_ns = total * config.copy_tenth_ns_per_byte / 10;
            diags.push(
                Diagnostic::new(
                    "EDL-W010",
                    Severity::Warning,
                    attr_span,
                    format!(
                        "`transition_using_threads` on `{}` moves {total} bytes per call (≈{est_ns} ns); the copy dwarfs the saved transition",
                        decl.name
                    ),
                )
                .help("drop the attribute for bulk-data calls, or shrink the buffer so the saved transition dominates")
                .on(&decl.name),
            );
        }
    }
}

fn lint_allow_lists(file: &EdlFile, diags: &mut Vec<Diagnostic>) {
    let publics: HashSet<&str> = file
        .trusted
        .iter()
        .filter(|d| d.public)
        .map(|d| d.name.as_str())
        .collect();
    let ecall_names: HashSet<&str> = file.trusted.iter().map(|d| d.name.as_str()).collect();

    for ocall in &file.untrusted {
        let mut seen: HashMap<&str, Span> = HashMap::new();
        for entry in &ocall.allowed_ecalls {
            // EDL-W007: duplicate allow entries. The validator rejects
            // these outright; the lint pinpoints the second occurrence.
            if let Some(first) = seen.get(entry.name.as_str()) {
                diags.push(
                    Diagnostic::new(
                        "EDL-W007",
                        Severity::Error,
                        entry.span,
                        format!(
                            "allow() on `{}` lists ecall `{}` twice (first at {})",
                            ocall.name, entry.name, first.start
                        ),
                    )
                    .help("remove the duplicate entry")
                    .on(&ocall.name),
                );
            } else {
                seen.insert(entry.name.as_str(), entry.span);
            }

            // EDL-W005: allowing a *public* ecall is redundant (it is
            // callable at any time anyway) and advertises that the
            // enclave tolerates re-entry through its widest surface.
            if publics.contains(entry.name.as_str()) {
                diags.push(
                    Diagnostic::new(
                        "EDL-W005",
                        Severity::Warning,
                        entry.span,
                        format!(
                            "allow() on `{}` names public ecall `{}`",
                            ocall.name, entry.name
                        ),
                    )
                    .help("make the ecall private if it is only meant to be reachable during this ocall")
                    .on(&ocall.name),
                );
            }

            // EDL-W004: re-entrancy cycles. Conservative call graph: an
            // ecall body may issue any declared ocall (bodies are opaque
            // at the interface level); an ocall may re-enter exactly the
            // ecalls its allow() list names. Flag the entry when the
            // allowed ecall can reach this ocall again — the enclave can
            // then recurse unboundedly, growing trusted stack per level.
            if ecall_names.contains(entry.name.as_str())
                && ecall_reaches_ocall(file, &entry.name, &ocall.name)
            {
                diags.push(
                    Diagnostic::new(
                        "EDL-W004",
                        Severity::Warning,
                        entry.span,
                        format!(
                            "allow() entry `{}` closes a re-entrancy cycle through ocall `{}`",
                            entry.name, ocall.name
                        ),
                    )
                    .help("bound the recursion in the ecall body, or drop the allow() entry")
                    .on(&ocall.name),
                );
            }
        }
    }
}

/// Walks the conservative call graph (ecall → every ocall, ocall → its
/// allow() list) checking whether `ecall` can reach `target_ocall`.
fn ecall_reaches_ocall(file: &EdlFile, ecall: &str, target_ocall: &str) -> bool {
    let mut visited_ecalls: HashSet<&str> = HashSet::new();
    let mut stack: Vec<&str> = vec![ecall];
    while let Some(current) = stack.pop() {
        if !visited_ecalls.insert(current) {
            continue;
        }
        // The ecall body may issue any declared ocall.
        for ocall in &file.untrusted {
            if ocall.name == target_ocall {
                return true;
            }
            for entry in &ocall.allowed_ecalls {
                if !visited_ecalls.contains(entry.name.as_str()) {
                    stack.push(&entry.name);
                }
            }
        }
    }
    false
}

fn lint_public_surface(file: &EdlFile, config: &LintConfig, diags: &mut Vec<Diagnostic>) {
    let publics: Vec<&FunctionDecl> = file.trusted.iter().filter(|d| d.public).collect();
    if publics.len() > config.max_public_ecalls {
        // Anchor at the first ecall beyond the bound so the caret points
        // at where the surface outgrew the budget.
        let over = publics[config.max_public_ecalls];
        diags.push(
            Diagnostic::new(
                "EDL-W006",
                Severity::Note,
                over.name_span,
                format!(
                    "interface declares {} public ecalls (configured bound: {}); every public ecall is attack surface",
                    publics.len(),
                    config.max_public_ecalls
                ),
            )
            .help("make internal entry points private and reach them through allow() lists")
            .on(&over.name),
        );
    }
}

impl ParamDecl {
    fn find_kind(&self, pred: impl Fn(&AttrKind) -> bool) -> Option<&crate::ast::Attr> {
        self.attrs.iter().find(|a| pred(&a.kind))
    }
}

/// Diagnostics produced by the trace cross-check layer use these codes;
/// re-exported constants keep the vocabulary in one place.
pub mod codes {
    /// `user_check` pointer.
    pub const USER_CHECK: &str = "EDL-W001";
    /// Sized pointer without `size=`/`count=`.
    pub const MISSING_SIZE: &str = "EDL-W002";
    /// Conflicting attributes.
    pub const CONFLICTING_ATTRS: &str = "EDL-W003";
    /// Re-entrancy cycle through `allow()`.
    pub const REENTRANCY: &str = "EDL-W004";
    /// `allow()` naming a public ecall.
    pub const ALLOW_PUBLIC: &str = "EDL-W005";
    /// Wide public surface.
    pub const WIDE_SURFACE: &str = "EDL-W006";
    /// Duplicate `allow()` entry.
    pub const DUPLICATE_ALLOW: &str = "EDL-W007";
    /// Large boundary copy.
    pub const LARGE_COPY: &str = "EDL-W008";
    /// Public ecall never exercised by the trace.
    pub const UNUSED_ECALL: &str = "EDL-W009";
    /// Switchless call carrying large boundary copies.
    pub const SWITCHLESS_COPY: &str = "EDL-W010";

    /// All statically-producible codes, in numeric order.
    pub const ALL: &[&str] = &[
        USER_CHECK,
        MISSING_SIZE,
        CONFLICTING_ATTRS,
        REENTRANCY,
        ALLOW_PUBLIC,
        WIDE_SURFACE,
        DUPLICATE_ALLOW,
        LARGE_COPY,
        UNUSED_ECALL,
        SWITCHLESS_COPY,
    ];
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::Pos;

    fn lint(src: &str) -> Vec<Diagnostic> {
        lint_source(src, &LintConfig::default()).unwrap()
    }

    fn codes_of(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn user_check_pointer_flagged_at_attribute() {
        let src = "enclave { trusted { public void e([user_check] void* p); }; };";
        let diags = lint(src);
        let w1 = diags.iter().find(|d| d.code == "EDL-W001").unwrap();
        assert_eq!(w1.severity, Severity::Warning);
        // `user_check` starts at column 36.
        assert_eq!(w1.span.start, Pos { line: 1, col: 36 });
        assert_eq!(w1.span.end, Pos { line: 1, col: 46 });
        assert_eq!(w1.function.as_deref(), Some("e"));
    }

    #[test]
    fn missing_size_flagged_on_directed_pointers_only() {
        let diags = lint("enclave { trusted { public void e([in] char* buf); }; };");
        assert!(codes_of(&diags).contains(&"EDL-W002"), "{diags:?}");
        // string and sized pointers are fine.
        let ok = lint(
            "enclave { trusted {
                public void f([in, string] const char* s);
                public void g([in, size=8] char* b);
            }; };",
        );
        assert!(!codes_of(&ok).contains(&"EDL-W002"), "{ok:?}");
    }

    #[test]
    fn conflicting_attrs_are_errors() {
        let diags = lint("enclave { trusted { public void e([string, user_check] char* s); }; };");
        let w3 = diags.iter().find(|d| d.code == "EDL-W003").unwrap();
        assert_eq!(w3.severity, Severity::Error);

        let out_string = lint("enclave { trusted { public void e([out, string] char* s); }; };");
        assert!(
            codes_of(&out_string).contains(&"EDL-W003"),
            "{out_string:?}"
        );

        let uc_in =
            lint("enclave { trusted { public void e([in, user_check, size=4] char* p); }; };");
        assert!(codes_of(&uc_in).contains(&"EDL-W003"), "{uc_in:?}");
    }

    #[test]
    fn reentrancy_cycle_found_by_graph_walk() {
        let diags = lint(
            "enclave { trusted { public void e(); void h(); };
                       untrusted { void o() allow(h); }; };",
        );
        let w4 = diags.iter().find(|d| d.code == "EDL-W004").unwrap();
        assert!(w4.message.contains("re-entrancy cycle"), "{w4:?}");
        assert_eq!(w4.function.as_deref(), Some("o"));
        // No allow() lists → no cycles.
        let none = lint("enclave { trusted { public void e(); }; untrusted { void o(); }; };");
        assert!(!codes_of(&none).contains(&"EDL-W004"));
    }

    #[test]
    fn allow_naming_public_ecall_flagged() {
        let diags = lint(
            "enclave { trusted { public void e(); };
                       untrusted { void o() allow(e); }; };",
        );
        let w5 = diags.iter().find(|d| d.code == "EDL-W005").unwrap();
        assert!(w5.message.contains("public ecall `e`"), "{w5:?}");
        // The span points at the entry inside allow(...), line 2.
        assert_eq!(w5.span.start.line, 2);
    }

    #[test]
    fn wide_public_surface_uses_configured_bound() {
        let src = "enclave { trusted { public void a(); public void b(); public void c(); }; };";
        let tight = LintConfig {
            max_public_ecalls: 2,
            ..LintConfig::default()
        };
        let diags = lint_source(src, &tight).unwrap();
        let w6 = diags.iter().find(|d| d.code == "EDL-W006").unwrap();
        assert!(w6.message.contains("3 public ecalls"), "{w6:?}");
        assert_eq!(w6.function.as_deref(), Some("c"));
        assert!(lint(src).iter().all(|d| d.code != "EDL-W006"));
    }

    #[test]
    fn duplicate_allow_entry_points_at_second_occurrence() {
        let diags = lint(
            "enclave { trusted { void h(); };
                       untrusted { void o() allow(h, h); }; };",
        );
        let w7 = diags.iter().find(|d| d.code == "EDL-W007").unwrap();
        assert_eq!(w7.severity, Severity::Error);
        assert!(w7.message.contains("twice"), "{w7:?}");
        // Both entries are on line 2; the flagged one is the second.
        let entries: Vec<_> = diags.iter().filter(|d| d.code == "EDL-W007").collect();
        assert_eq!(entries.len(), 1);
    }

    #[test]
    fn large_copy_priced_with_cost_model() {
        let diags = lint("enclave { untrusted { void o([in, size=65536] char* buf); }; };");
        let w8 = diags.iter().find(|d| d.code == "EDL-W008").unwrap();
        assert!(w8.message.contains("65536 bytes"), "{w8:?}");
        // 65536 B * 0.1 ns/B = 6553 ns.
        assert!(w8.message.contains("6553 ns"), "{w8:?}");
        // [in, out] doubles the crossing cost.
        let both = lint("enclave { untrusted { void o([in, out, size=65536] char* buf); }; };");
        let w8b = both.iter().find(|d| d.code == "EDL-W008").unwrap();
        assert!(w8b.message.contains("131072 bytes"), "{w8b:?}");
    }

    #[test]
    fn count_attribute_scales_by_type_width() {
        let diags = lint("enclave { untrusted { void o([in, count=4096] long* xs); }; };");
        let w8 = diags.iter().find(|d| d.code == "EDL-W008").unwrap();
        assert!(w8.message.contains("32768 bytes"), "{w8:?}");
    }

    #[test]
    fn clean_interface_produces_no_diagnostics() {
        let diags = lint(
            "enclave { trusted {
                public void ecall_work([in, size=64] char* req, size_t n);
            };
            untrusted {
                void ocall_log([in, string] const char* msg);
            }; };",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn diagnostics_sorted_by_position() {
        let diags = lint(
            "enclave { trusted {
                public void a([user_check] void* p);
                public void b([in] char* q);
            }; };",
        );
        let lines: Vec<u32> = diags.iter().map(|d| d.span.start.line).collect();
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted);
    }

    #[test]
    fn render_shows_excerpt_and_caret_underline() {
        let src = "enclave { trusted { public void e([user_check] void* p); }; };";
        let diags = lint(src);
        let rendered = diags[0].render(src, "demo.edl");
        assert!(rendered.contains("warning[EDL-W001]"), "{rendered}");
        assert!(rendered.contains("--> demo.edl:1:36"), "{rendered}");
        assert!(rendered.contains(src), "{rendered}");
        // 10 carets under `user_check`.
        assert!(
            rendered.contains(&format!("{}^^^^^^^^^^", " ".repeat(35))),
            "{rendered}"
        );
        assert!(rendered.contains("= help:"), "{rendered}");
    }

    #[test]
    fn render_survives_multiline_spans() {
        // Fabricate a span ending on a later line; underline runs to EOL.
        let src = "line one\nline two";
        let d = Diagnostic::new(
            "EDL-W001",
            Severity::Note,
            Span::new(Pos { line: 1, col: 6 }, Pos { line: 2, col: 3 }),
            "spans lines",
        );
        let rendered = d.render(src, "x.edl");
        assert!(rendered.contains("line one"), "{rendered}");
        assert!(rendered.contains("^^^"), "{rendered}");
    }

    #[test]
    fn severity_ordering_matches_escalation() {
        assert!(Severity::Note < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn codes_table_is_consistent() {
        assert_eq!(codes::ALL.len(), 10);
        assert!(codes::ALL.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn switchless_with_large_copy_flagged_at_attribute() {
        let src = "enclave { untrusted {
            void o([in, size=65536] char* buf) transition_using_threads;
        }; };";
        let diags = lint(src);
        let w10 = diags.iter().find(|d| d.code == "EDL-W010").unwrap();
        assert_eq!(w10.severity, Severity::Warning);
        assert!(w10.message.contains("65536 bytes"), "{w10:?}");
        assert_eq!(w10.function.as_deref(), Some("o"));
        // The caret lands on the attribute, not the declaration.
        assert_eq!(w10.span.start.line, 2);
        assert_eq!(w10.span.start.col, 48);
    }

    #[test]
    fn switchless_small_or_absent_copies_are_clean() {
        // Small buffer: fine.
        let small = lint(
            "enclave { untrusted { void o([in, size=64] char* b) transition_using_threads; }; };",
        );
        assert!(!codes_of(&small).contains(&"EDL-W010"), "{small:?}");
        // Large buffer without the attribute: W008 only.
        let sync_large = lint("enclave { untrusted { void o([in, size=65536] char* b); }; };");
        assert!(
            !codes_of(&sync_large).contains(&"EDL-W010"),
            "{sync_large:?}"
        );
        assert!(
            codes_of(&sync_large).contains(&"EDL-W008"),
            "{sync_large:?}"
        );
    }

    #[test]
    fn switchless_copy_sums_across_parameters() {
        // Two 4 KiB buffers sum past the 8 KiB default bound even though
        // neither alone trips EDL-W008.
        let diags = lint(
            "enclave { trusted {
                public void e([in, size=4096] char* a, [out, size=4096] char* b) transition_using_threads;
            }; };",
        );
        assert!(codes_of(&diags).contains(&"EDL-W010"), "{diags:?}");
        assert!(!codes_of(&diags).contains(&"EDL-W008"), "{diags:?}");
    }
}
