//! EDL tokeniser.

use std::fmt;

use crate::EdlError;

/// A 1-based source position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Pos {
    /// Line number, starting at 1.
    pub line: u32,
    /// Column number, starting at 1.
    pub col: u32,
}

impl Pos {
    /// The start of the file.
    pub const START: Pos = Pos { line: 1, col: 1 };
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// One lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`enclave`, `trusted`, `public`, names, types).
    Ident(String),
    /// Integer literal (used by `size=4096` style attributes).
    Int(u64),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `=`
    Eq,
    /// `*`
    Star,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "`{s}`"),
            TokenKind::Int(n) => write!(f, "`{n}`"),
            TokenKind::LBrace => write!(f, "`{{`"),
            TokenKind::RBrace => write!(f, "`}}`"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::LBracket => write!(f, "`[`"),
            TokenKind::RBracket => write!(f, "`]`"),
            TokenKind::Semi => write!(f, "`;`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Eq => write!(f, "`=`"),
            TokenKind::Star => write!(f, "`*`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// Where it starts.
    pub pos: Pos,
}

/// Tokenises EDL source. Supports `//` line comments and `/* */` block
/// comments.
///
/// # Errors
///
/// Returns an error on any byte that cannot start a token and on unclosed
/// block comments.
pub fn lex(source: &str) -> Result<Vec<Token>, EdlError> {
    let mut tokens = Vec::new();
    let mut chars = source.chars().peekable();
    let mut line: u32 = 1;
    let mut col: u32 = 1;

    macro_rules! bump {
        () => {{
            let c = chars.next();
            if let Some(c) = c {
                if c == '\n' {
                    line += 1;
                    col = 1;
                } else {
                    col += 1;
                }
            }
            c
        }};
    }

    loop {
        let pos = Pos { line, col };
        let Some(&c) = chars.peek() else { break };
        match c {
            c if c.is_whitespace() => {
                bump!();
            }
            '/' => {
                bump!();
                match chars.peek() {
                    Some('/') => {
                        while let Some(&c) = chars.peek() {
                            if c == '\n' {
                                break;
                            }
                            bump!();
                        }
                    }
                    Some('*') => {
                        bump!();
                        let mut closed = false;
                        while let Some(c) = bump!() {
                            if c == '*' {
                                if let Some('/') = chars.peek() {
                                    bump!();
                                    closed = true;
                                    break;
                                }
                            }
                        }
                        if !closed {
                            return Err(EdlError::new(pos, "unclosed block comment"));
                        }
                    }
                    _ => return Err(EdlError::new(pos, "unexpected `/`")),
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut ident = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' {
                        ident.push(c);
                        bump!();
                    } else {
                        break;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(ident),
                    pos,
                });
            }
            c if c.is_ascii_digit() => {
                let mut value: u64 = 0;
                while let Some(&c) = chars.peek() {
                    if let Some(d) = c.to_digit(10) {
                        value = value
                            .checked_mul(10)
                            .and_then(|v| v.checked_add(d as u64))
                            .ok_or_else(|| EdlError::new(pos, "integer literal overflow"))?;
                        bump!();
                    } else {
                        break;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Int(value),
                    pos,
                });
            }
            _ => {
                let kind = match c {
                    '{' => TokenKind::LBrace,
                    '}' => TokenKind::RBrace,
                    '(' => TokenKind::LParen,
                    ')' => TokenKind::RParen,
                    '[' => TokenKind::LBracket,
                    ']' => TokenKind::RBracket,
                    ';' => TokenKind::Semi,
                    ',' => TokenKind::Comma,
                    '=' => TokenKind::Eq,
                    '*' => TokenKind::Star,
                    other => {
                        return Err(EdlError::new(pos, format!("unexpected character `{other}`")))
                    }
                };
                bump!();
                tokens.push(Token { kind, pos });
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        pos: Pos { line, col },
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_punctuation_and_idents() {
        let got = kinds("enclave { };");
        assert_eq!(
            got,
            vec![
                TokenKind::Ident("enclave".into()),
                TokenKind::LBrace,
                TokenKind::RBrace,
                TokenKind::Semi,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_pointer_declaration() {
        let got = kinds("[in, size=len] char* buf");
        assert_eq!(
            got,
            vec![
                TokenKind::LBracket,
                TokenKind::Ident("in".into()),
                TokenKind::Comma,
                TokenKind::Ident("size".into()),
                TokenKind::Eq,
                TokenKind::Ident("len".into()),
                TokenKind::RBracket,
                TokenKind::Ident("char".into()),
                TokenKind::Star,
                TokenKind::Ident("buf".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_integers() {
        assert_eq!(
            kinds("size=4096"),
            vec![
                TokenKind::Ident("size".into()),
                TokenKind::Eq,
                TokenKind::Int(4096),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn skips_line_and_block_comments() {
        let got = kinds("a // comment\n/* block\nspanning */ b");
        assert_eq!(
            got,
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn tracks_positions_across_lines() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!(toks[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(toks[1].pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn rejects_unknown_character() {
        let err = lex("a @ b").unwrap_err();
        assert!(err.message.contains('@'), "{err}");
        assert_eq!(err.pos, Pos { line: 1, col: 3 });
    }

    #[test]
    fn rejects_unclosed_block_comment() {
        let err = lex("/* never closed").unwrap_err();
        assert!(err.message.contains("unclosed"));
    }

    #[test]
    fn rejects_integer_overflow() {
        let err = lex("99999999999999999999999").unwrap_err();
        assert!(err.message.contains("overflow"));
    }
}
