//! EDL tokeniser.

use std::fmt;

use crate::EdlError;

/// A 1-based source position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Pos {
    /// Line number, starting at 1.
    pub line: u32,
    /// Column number, starting at 1.
    pub col: u32,
}

impl Pos {
    /// The start of the file.
    pub const START: Pos = Pos { line: 1, col: 1 };
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A half-open source region: `start` is the first character, `end` is one
/// past the last (so a single-character token at 1:5 spans `1:5..1:6`).
///
/// Every token, declaration, parameter and attribute carries one of these,
/// which is what lets [`crate::lint`] underline the exact offending text
/// instead of pointing at a single position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Span {
    /// First character of the region.
    pub start: Pos,
    /// One past the last character of the region.
    pub end: Pos,
}

impl Span {
    /// A span covering the region between two positions.
    pub fn new(start: Pos, end: Pos) -> Span {
        Span { start, end }
    }

    /// A zero-width span at a single position.
    pub fn point(pos: Pos) -> Span {
        Span {
            start: pos,
            end: pos,
        }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        let start = if (other.start.line, other.start.col) < (self.start.line, self.start.col) {
            other.start
        } else {
            self.start
        };
        let end = if (other.end.line, other.end.col) > (self.end.line, self.end.col) {
            other.end
        } else {
            self.end
        };
        Span { start, end }
    }
}

impl From<Pos> for Span {
    fn from(pos: Pos) -> Span {
        Span::point(pos)
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.start)
    }
}

/// One lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`enclave`, `trusted`, `public`, names, types).
    Ident(String),
    /// Integer literal (used by `size=4096` style attributes).
    Int(u64),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `=`
    Eq,
    /// `*`
    Star,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "`{s}`"),
            TokenKind::Int(n) => write!(f, "`{n}`"),
            TokenKind::LBrace => write!(f, "`{{`"),
            TokenKind::RBrace => write!(f, "`}}`"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::LBracket => write!(f, "`[`"),
            TokenKind::RBracket => write!(f, "`]`"),
            TokenKind::Semi => write!(f, "`;`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Eq => write!(f, "`=`"),
            TokenKind::Star => write!(f, "`*`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// The region of source it covers (`start` inclusive, `end` exclusive).
    pub span: Span,
}

impl Token {
    /// Where the token starts.
    pub fn pos(&self) -> Pos {
        self.span.start
    }
}

/// Tokenises EDL source. Supports `//` line comments and `/* */` block
/// comments (including comments spanning multiple lines — positions keep
/// tracking correctly across the embedded newlines).
///
/// # Errors
///
/// Returns an error on any byte that cannot start a token and on unclosed
/// block comments.
pub fn lex(source: &str) -> Result<Vec<Token>, EdlError> {
    let mut tokens = Vec::new();
    let mut chars = source.chars().peekable();
    let mut line: u32 = 1;
    let mut col: u32 = 1;

    macro_rules! bump {
        () => {{
            let c = chars.next();
            if let Some(c) = c {
                if c == '\n' {
                    line += 1;
                    col = 1;
                } else {
                    col += 1;
                }
            }
            c
        }};
    }

    // After lexing a token, `(line, col)` sits one past its final character,
    // so the exclusive span end is simply the current position.
    macro_rules! span_from {
        ($start:expr) => {
            Span::new($start, Pos { line, col })
        };
    }

    loop {
        let start = Pos { line, col };
        let Some(&c) = chars.peek() else { break };
        match c {
            c if c.is_whitespace() => {
                bump!();
            }
            '/' => {
                bump!();
                match chars.peek() {
                    Some('/') => {
                        while let Some(&c) = chars.peek() {
                            if c == '\n' {
                                break;
                            }
                            bump!();
                        }
                    }
                    Some('*') => {
                        bump!();
                        let mut closed = false;
                        while let Some(c) = bump!() {
                            if c == '*' {
                                if let Some('/') = chars.peek() {
                                    bump!();
                                    closed = true;
                                    break;
                                }
                            }
                        }
                        if !closed {
                            return Err(EdlError::new(start, "unclosed block comment"));
                        }
                    }
                    _ => return Err(EdlError::new(start, "unexpected `/`")),
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut ident = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' {
                        ident.push(c);
                        bump!();
                    } else {
                        break;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(ident),
                    span: span_from!(start),
                });
            }
            c if c.is_ascii_digit() => {
                let mut value: u64 = 0;
                while let Some(&c) = chars.peek() {
                    if let Some(d) = c.to_digit(10) {
                        value = value
                            .checked_mul(10)
                            .and_then(|v| v.checked_add(d as u64))
                            .ok_or_else(|| EdlError::new(start, "integer literal overflow"))?;
                        bump!();
                    } else {
                        break;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Int(value),
                    span: span_from!(start),
                });
            }
            _ => {
                let kind = match c {
                    '{' => TokenKind::LBrace,
                    '}' => TokenKind::RBrace,
                    '(' => TokenKind::LParen,
                    ')' => TokenKind::RParen,
                    '[' => TokenKind::LBracket,
                    ']' => TokenKind::RBracket,
                    ';' => TokenKind::Semi,
                    ',' => TokenKind::Comma,
                    '=' => TokenKind::Eq,
                    '*' => TokenKind::Star,
                    other => {
                        return Err(EdlError::new(
                            start,
                            format!("unexpected character `{other}`"),
                        ))
                    }
                };
                bump!();
                tokens.push(Token {
                    kind,
                    span: span_from!(start),
                });
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        span: Span::point(Pos { line, col }),
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_punctuation_and_idents() {
        let got = kinds("enclave { };");
        assert_eq!(
            got,
            vec![
                TokenKind::Ident("enclave".into()),
                TokenKind::LBrace,
                TokenKind::RBrace,
                TokenKind::Semi,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_pointer_declaration() {
        let got = kinds("[in, size=len] char* buf");
        assert_eq!(
            got,
            vec![
                TokenKind::LBracket,
                TokenKind::Ident("in".into()),
                TokenKind::Comma,
                TokenKind::Ident("size".into()),
                TokenKind::Eq,
                TokenKind::Ident("len".into()),
                TokenKind::RBracket,
                TokenKind::Ident("char".into()),
                TokenKind::Star,
                TokenKind::Ident("buf".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_integers() {
        assert_eq!(
            kinds("size=4096"),
            vec![
                TokenKind::Ident("size".into()),
                TokenKind::Eq,
                TokenKind::Int(4096),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn skips_line_and_block_comments() {
        let got = kinds("a // comment\n/* block\nspanning */ b");
        assert_eq!(
            got,
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn tracks_positions_across_lines() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!(toks[0].span.start, Pos { line: 1, col: 1 });
        assert_eq!(toks[1].span.start, Pos { line: 2, col: 3 });
    }

    #[test]
    fn spans_cover_whole_tokens() {
        let toks = lex("enclave 4096 ;").unwrap();
        // `enclave` occupies columns 1-7; end is exclusive.
        assert_eq!(toks[0].span.start, Pos { line: 1, col: 1 });
        assert_eq!(toks[0].span.end, Pos { line: 1, col: 8 });
        // `4096` occupies columns 9-12.
        assert_eq!(toks[1].span.start, Pos { line: 1, col: 9 });
        assert_eq!(toks[1].span.end, Pos { line: 1, col: 13 });
        // `;` is a single column.
        assert_eq!(toks[2].span.start, Pos { line: 1, col: 14 });
        assert_eq!(toks[2].span.end, Pos { line: 1, col: 15 });
    }

    /// Regression test: tokens following a `/* ... */` comment that spans
    /// multiple lines must report the position they actually occupy on the
    /// line the comment ends on (the column counter restarts at each
    /// newline *inside* the comment too).
    #[test]
    fn positions_after_multiline_block_comments() {
        // Line 2 is `bb */ x`: `x` sits at column 7.
        let toks = lex("/* a\nbb */ x").unwrap();
        assert_eq!(toks[0].span.start, Pos { line: 2, col: 7 });
        assert_eq!(toks[0].span.end, Pos { line: 2, col: 8 });

        // Line 2 is `y */ b /* p */ c`: `b` at column 6, `c` at column 16,
        // with a second (single-line) comment in between.
        let toks = lex("a /* x\ny */ b /* p */ c").unwrap();
        assert_eq!(toks[1].span.start, Pos { line: 2, col: 6 });
        assert_eq!(toks[2].span.start, Pos { line: 2, col: 16 });

        // A comment spanning three lines, with the token flush against
        // the terminator: line 3 is `end */tok`, `tok` at column 7.
        let toks = lex("/* one\ntwo\nend */tok").unwrap();
        assert_eq!(toks[0].span.start, Pos { line: 3, col: 7 });
    }

    #[test]
    fn span_join_orders_endpoints() {
        let a = Span::new(Pos { line: 2, col: 4 }, Pos { line: 2, col: 9 });
        let b = Span::new(Pos { line: 1, col: 7 }, Pos { line: 2, col: 5 });
        let joined = a.to(b);
        assert_eq!(joined.start, Pos { line: 1, col: 7 });
        assert_eq!(joined.end, Pos { line: 2, col: 9 });
        assert_eq!(joined, b.to(a));
    }

    #[test]
    fn rejects_unknown_character() {
        let err = lex("a @ b").unwrap_err();
        assert!(err.message.contains('@'), "{err}");
        assert_eq!(err.span.start, Pos { line: 1, col: 3 });
    }

    #[test]
    fn rejects_unclosed_block_comment() {
        let err = lex("/* never closed").unwrap_err();
        assert!(err.message.contains("unclosed"));
        assert_eq!(err.span.start, Pos { line: 1, col: 1 });
    }

    #[test]
    fn rejects_integer_overflow() {
        let err = lex("99999999999999999999999").unwrap_err();
        assert!(err.message.contains("overflow"));
    }
}
