//! Recursive-descent parser for EDL.
//!
//! Grammar (simplified):
//!
//! ```text
//! file      := "enclave" "{" section* "}" ";"?
//! section   := ("trusted" | "untrusted") "{" decl* "}" ";"?
//! decl      := "public"? type ident "(" params? ")" postfix* ";"
//! postfix   := allow | "transition_using_threads"
//! allow     := "allow" "(" ident ("," ident)* ")"
//! params    := param ("," param)*        | "void"
//! param     := attrs? type "*"* ident
//! attrs     := "[" attr ("," attr)* "]"
//! attr      := "in" | "out" | "user_check" | "string" | "isptr"
//!            | ("size" | "count") "=" (ident | int)
//! type      := ("const")? ident ("unsigned"-style multiword supported)
//! ```
//!
//! Every AST node records the [`Span`] of the tokens it was built from:
//! declarations span `public` through `;`, parameters span their attribute
//! group through the parameter name, attributes span exactly their own
//! tokens (`size=len` covers all three).

use crate::ast::{AllowEntry, Attr, AttrKind, EdlFile, FunctionDecl, ParamDecl, SizeExpr};
use crate::token::{lex, Span, Token, TokenKind};
use crate::EdlError;

/// Parses EDL source into an AST. See [`crate::parse`] for the validated
/// interface model.
pub fn parse_file(source: &str) -> Result<EdlFile, EdlError> {
    let tokens = lex(source)?;
    let mut parser = Parser { tokens, index: 0 };
    parser.file()
}

struct Parser {
    tokens: Vec<Token>,
    index: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.index]
    }

    fn span(&self) -> Span {
        self.peek().span
    }

    fn advance(&mut self) -> Token {
        let tok = self.tokens[self.index].clone();
        if self.index + 1 < self.tokens.len() {
            self.index += 1;
        }
        tok
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Token, EdlError> {
        if &self.peek().kind == kind {
            Ok(self.advance())
        } else {
            Err(EdlError::new(
                self.span(),
                format!("expected {kind}, found {}", self.peek().kind),
            ))
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), EdlError> {
        match &self.peek().kind {
            TokenKind::Ident(s) if s == kw => {
                self.advance();
                Ok(())
            }
            other => Err(EdlError::new(
                self.span(),
                format!("expected `{kw}`, found {other}"),
            )),
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Ident(s) if s == kw) && {
            self.advance();
            true
        }
    }

    fn ident(&mut self) -> Result<String, EdlError> {
        Ok(self.ident_spanned()?.0)
    }

    fn ident_spanned(&mut self) -> Result<(String, Span), EdlError> {
        match &self.peek().kind {
            TokenKind::Ident(s) => {
                let s = s.clone();
                let tok = self.advance();
                Ok((s, tok.span))
            }
            other => Err(EdlError::new(
                self.span(),
                format!("expected identifier, found {other}"),
            )),
        }
    }

    fn file(&mut self) -> Result<EdlFile, EdlError> {
        self.expect_keyword("enclave")?;
        self.expect(&TokenKind::LBrace)?;
        let mut file = EdlFile::default();
        loop {
            match &self.peek().kind {
                TokenKind::RBrace => {
                    self.advance();
                    break;
                }
                TokenKind::Ident(s) if s == "trusted" => {
                    self.advance();
                    self.section(&mut file, true)?;
                }
                TokenKind::Ident(s) if s == "untrusted" => {
                    self.advance();
                    self.section(&mut file, false)?;
                }
                other => {
                    return Err(EdlError::new(
                        self.span(),
                        format!("expected `trusted`, `untrusted` or `}}`, found {other}"),
                    ))
                }
            }
        }
        // Optional trailing semicolon, then EOF.
        let _ = self.eat(&TokenKind::Semi);
        self.expect(&TokenKind::Eof)?;
        Ok(file)
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if &self.peek().kind == kind {
            self.advance();
            true
        } else {
            false
        }
    }

    fn section(&mut self, file: &mut EdlFile, trusted: bool) -> Result<(), EdlError> {
        self.expect(&TokenKind::LBrace)?;
        while !self.eat(&TokenKind::RBrace) {
            let decl = self.decl(trusted)?;
            if trusted {
                file.trusted.push(decl);
            } else {
                file.untrusted.push(decl);
            }
        }
        let _ = self.eat(&TokenKind::Semi);
        Ok(())
    }

    fn decl(&mut self, trusted: bool) -> Result<FunctionDecl, EdlError> {
        let start = self.span();
        let public = self.eat_keyword("public");
        if public && !trusted {
            return Err(EdlError::new(
                start,
                "`public` is only meaningful on trusted functions (ecalls)",
            ));
        }
        let return_type = self.type_name()?;
        let (name, name_span) = self.ident_spanned()?;
        self.expect(&TokenKind::LParen)?;
        let params = self.params()?;
        self.expect(&TokenKind::RParen)?;
        let mut allowed_ecalls = Vec::new();
        let mut switchless_span: Option<Span> = None;
        // Postfix attributes: `allow(...)` and `transition_using_threads`
        // may follow the parameter list in either order (edger8r accepts
        // both `... allow(x) transition_using_threads;` and the reverse).
        loop {
            if matches!(&self.peek().kind, TokenKind::Ident(s) if s == "allow") {
                let allow_span = self.span();
                self.advance();
                if trusted {
                    return Err(EdlError::new(
                        start,
                        "`allow` is only meaningful on untrusted functions (ocalls)",
                    ));
                }
                if !allowed_ecalls.is_empty() {
                    return Err(EdlError::new(
                        allow_span,
                        format!("duplicate `allow` list on `{name}`"),
                    ));
                }
                self.expect(&TokenKind::LParen)?;
                loop {
                    let (entry, span) = self.ident_spanned()?;
                    allowed_ecalls.push(AllowEntry { name: entry, span });
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(&TokenKind::RParen)?;
            } else if matches!(&self.peek().kind, TokenKind::Ident(s)
                if s == "transition_using_threads")
            {
                let attr_span = self.span();
                self.advance();
                if switchless_span.is_some() {
                    return Err(EdlError::new(
                        attr_span,
                        format!("duplicate `transition_using_threads` on `{name}`"),
                    ));
                }
                switchless_span = Some(attr_span);
            } else {
                break;
            }
        }
        let semi = self.expect(&TokenKind::Semi)?;
        Ok(FunctionDecl {
            name,
            return_type,
            params,
            public,
            allowed_ecalls,
            switchless: switchless_span.is_some(),
            switchless_span,
            span: start.to(semi.span),
            name_span,
        })
    }

    /// Parses a (possibly multi-word) type name such as `unsigned int` or
    /// `const char`. `const` is folded away; pointer stars are handled by
    /// the parameter parser.
    fn type_name(&mut self) -> Result<String, EdlError> {
        let mut words = Vec::new();
        let _ = self.eat_keyword("const");
        words.push(self.ident()?);
        while matches!(&self.peek().kind, TokenKind::Ident(s)
            if matches!(words[0].as_str(), "unsigned" | "signed" | "long" | "short")
                && matches!(s.as_str(), "int" | "long" | "char" | "short"))
        {
            words.push(self.ident()?);
        }
        Ok(words.join(" "))
    }

    fn params(&mut self) -> Result<Vec<ParamDecl>, EdlError> {
        if matches!(&self.peek().kind, TokenKind::RParen) {
            return Ok(Vec::new());
        }
        // `(void)` means no parameters.
        if matches!(&self.peek().kind, TokenKind::Ident(s) if s == "void")
            && matches!(&self.tokens[self.index + 1].kind, TokenKind::RParen)
        {
            self.advance();
            return Ok(Vec::new());
        }
        let mut params = Vec::new();
        loop {
            params.push(self.param()?);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        Ok(params)
    }

    fn param(&mut self) -> Result<ParamDecl, EdlError> {
        let start = self.span();
        let mut attrs = Vec::new();
        if self.eat(&TokenKind::LBracket) {
            loop {
                attrs.push(self.attr()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RBracket)?;
        }
        let base_type = self.type_name()?;
        let mut pointer_depth: u8 = 0;
        while self.eat(&TokenKind::Star) {
            pointer_depth += 1;
        }
        let (name, name_span) = self.ident_spanned()?;
        Ok(ParamDecl {
            name,
            base_type,
            pointer_depth,
            attrs,
            span: start.to(name_span),
        })
    }

    fn attr(&mut self) -> Result<Attr, EdlError> {
        let (word, word_span) = self.ident_spanned()?;
        let simple = |kind: AttrKind| Attr {
            kind,
            span: word_span,
        };
        match word.as_str() {
            "in" => Ok(simple(AttrKind::In)),
            "out" => Ok(simple(AttrKind::Out)),
            "user_check" => Ok(simple(AttrKind::UserCheck)),
            "string" => Ok(simple(AttrKind::String)),
            "isptr" => Ok(simple(AttrKind::IsPtr)),
            "size" | "count" => {
                self.expect(&TokenKind::Eq)?;
                let (expr, value_span) = match &self.peek().kind {
                    TokenKind::Ident(s) => {
                        let s = s.clone();
                        let tok = self.advance();
                        (SizeExpr::Param(s), tok.span)
                    }
                    TokenKind::Int(n) => {
                        let n = *n;
                        let tok = self.advance();
                        (SizeExpr::Literal(n), tok.span)
                    }
                    other => {
                        return Err(EdlError::new(
                            self.span(),
                            format!("expected parameter name or integer, found {other}"),
                        ))
                    }
                };
                Ok(Attr {
                    kind: if word == "size" {
                        AttrKind::Size(expr)
                    } else {
                        AttrKind::Count(expr)
                    },
                    span: word_span.to(value_span),
                })
            }
            other => Err(EdlError::new(
                word_span,
                format!("unknown attribute `{other}`"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::Pos;

    const SAMPLE: &str = r#"
        enclave {
            trusted {
                public void ecall_store([in, size=len] char* buf, size_t len);
                void ecall_notify(int fd);
                public int ecall_unsafe([user_check] void* p);
            };
            untrusted {
                void ocall_print([in, string] const char* msg);
                int ocall_read([out, size=n] char* buf, size_t n)
                    allow(ecall_notify, ecall_store);
            };
        };
    "#;

    #[test]
    fn parses_sample_interface() {
        let file = parse_file(SAMPLE).unwrap();
        assert_eq!(file.trusted.len(), 3);
        assert_eq!(file.untrusted.len(), 2);
        assert!(file.trusted[0].public);
        assert!(!file.trusted[1].public);
        let allowed: Vec<&str> = file.untrusted[1]
            .allowed_ecalls
            .iter()
            .map(|a| a.name.as_str())
            .collect();
        assert_eq!(allowed, vec!["ecall_notify", "ecall_store"]);
    }

    #[test]
    fn parses_pointer_attrs() {
        let file = parse_file(SAMPLE).unwrap();
        let store = &file.trusted[0];
        assert!(store.params[0].is_in());
        assert!(!store.params[0].is_out());
        assert_eq!(store.params[0].pointer_depth, 1);
        assert_eq!(
            store.params[0].attrs[1].kind,
            AttrKind::Size(SizeExpr::Param("len".into()))
        );
        let unsafe_ecall = &file.trusted[2];
        assert!(unsafe_ecall.params[0].is_user_check());
    }

    #[test]
    fn decl_spans_cover_public_through_semicolon() {
        let src = "enclave { trusted {\n  public void e();\n}; };";
        let file = parse_file(src).unwrap();
        let decl = &file.trusted[0];
        // `public void e();` occupies line 2, columns 3-19 (end exclusive).
        assert_eq!(decl.span.start, Pos { line: 2, col: 3 });
        assert_eq!(decl.span.end, Pos { line: 2, col: 19 });
        // The name span covers exactly `e`.
        assert_eq!(decl.name_span.start, Pos { line: 2, col: 15 });
        assert_eq!(decl.name_span.end, Pos { line: 2, col: 16 });
    }

    #[test]
    fn param_and_attr_spans_are_exact() {
        let src = "enclave { trusted { public void e([in, size=len] char* buf, size_t len); }; };";
        let file = parse_file(src).unwrap();
        let param = &file.trusted[0].params[0];
        // `[in, size=len] char* buf` spans columns 35-59.
        assert_eq!(param.span.start, Pos { line: 1, col: 35 });
        assert_eq!(param.span.end, Pos { line: 1, col: 59 });
        // `in` at 36-37, `size=len` at 40-48 (end exclusive).
        assert_eq!(param.attrs[0].span.start, Pos { line: 1, col: 36 });
        assert_eq!(param.attrs[0].span.end, Pos { line: 1, col: 38 });
        assert_eq!(param.attrs[1].span.start, Pos { line: 1, col: 40 });
        assert_eq!(param.attrs[1].span.end, Pos { line: 1, col: 48 });
    }

    #[test]
    fn allow_entries_carry_their_own_spans() {
        let src = "enclave { trusted { void h(); };\n  untrusted { void o() allow(h, h); }; };";
        let file = parse_file(src).unwrap();
        let o = &file.untrusted[0];
        assert_eq!(o.allowed_ecalls.len(), 2);
        // Line 2: `void o() allow(h, h);` — entries at cols 30 and 33.
        assert_eq!(o.allowed_ecalls[0].span.start, Pos { line: 2, col: 30 });
        assert_eq!(o.allowed_ecalls[1].span.start, Pos { line: 2, col: 33 });
        assert_ne!(o.allowed_ecalls[0].span, o.allowed_ecalls[1].span);
    }

    #[test]
    fn parses_void_parameter_list() {
        let file = parse_file("enclave { trusted { public void e(void); }; };").unwrap();
        assert!(file.trusted[0].params.is_empty());
    }

    #[test]
    fn parses_empty_parameter_list() {
        let file = parse_file("enclave { trusted { public int e(); }; };").unwrap();
        assert!(file.trusted[0].params.is_empty());
        assert_eq!(file.trusted[0].return_type, "int");
    }

    #[test]
    fn parses_multiword_types() {
        let file = parse_file("enclave { trusted { public unsigned long e(unsigned int x); }; };")
            .unwrap();
        assert_eq!(file.trusted[0].return_type, "unsigned long");
        assert_eq!(file.trusted[0].params[0].base_type, "unsigned int");
    }

    #[test]
    fn parses_literal_size() {
        let file =
            parse_file("enclave { untrusted { void o([out, size=4096] char* page); }; };").unwrap();
        assert_eq!(
            file.untrusted[0].params[0].attrs[1].kind,
            AttrKind::Size(SizeExpr::Literal(4096))
        );
        assert_eq!(file.untrusted[0].params[0].static_bytes(), Some(4096));
    }

    #[test]
    fn rejects_public_ocall() {
        let err = parse_file("enclave { untrusted { public void o(); }; };").unwrap_err();
        assert!(err.message.contains("public"), "{err}");
    }

    #[test]
    fn rejects_allow_on_ecall() {
        let err = parse_file("enclave { trusted { public void e() allow(x); }; };").unwrap_err();
        assert!(err.message.contains("allow"), "{err}");
    }

    #[test]
    fn rejects_unknown_attribute() {
        let err =
            parse_file("enclave { trusted { public void e([inout] char* p); }; };").unwrap_err();
        assert!(err.message.contains("unknown attribute"), "{err}");
    }

    #[test]
    fn error_positions_point_at_problem() {
        let err = parse_file("enclave {\n  bogus {\n").unwrap_err();
        assert_eq!(err.span.start.line, 2);
    }

    #[test]
    fn missing_semicolon_is_reported() {
        let err = parse_file("enclave { trusted { public void e() } };").unwrap_err();
        assert!(err.message.contains("`;`"), "{err}");
    }

    #[test]
    fn parses_transition_using_threads_on_both_sections() {
        let file = parse_file(
            "enclave { trusted { public void e() transition_using_threads; };
                       untrusted { void o() transition_using_threads; }; };",
        )
        .unwrap();
        assert!(file.trusted[0].switchless);
        assert!(file.untrusted[0].switchless);
        assert!(file.trusted[0].switchless_span.is_some());
        // The attribute defaults to off.
        let plain = parse_file("enclave { trusted { public void e(); }; };").unwrap();
        assert!(!plain.trusted[0].switchless);
        assert!(plain.trusted[0].switchless_span.is_none());
    }

    #[test]
    fn transition_using_threads_span_covers_the_keyword() {
        let src = "enclave { trusted { public void e() transition_using_threads; }; };";
        let file = parse_file(src).unwrap();
        let span = file.trusted[0].switchless_span.unwrap();
        // `transition_using_threads` starts at column 37 (1-based),
        // 24 characters long, end exclusive.
        assert_eq!(span.start, Pos { line: 1, col: 37 });
        assert_eq!(span.end, Pos { line: 1, col: 61 });
        // The declaration span still runs through the semicolon.
        assert_eq!(file.trusted[0].span.end, Pos { line: 1, col: 62 });
    }

    #[test]
    fn transition_using_threads_composes_with_allow_in_either_order() {
        let before = parse_file(
            "enclave { trusted { void h(); };
               untrusted { void o() transition_using_threads allow(h); }; };",
        )
        .unwrap();
        assert!(before.untrusted[0].switchless);
        assert_eq!(before.untrusted[0].allowed_ecalls.len(), 1);
        let after = parse_file(
            "enclave { trusted { void h(); };
               untrusted { void o() allow(h) transition_using_threads; }; };",
        )
        .unwrap();
        assert!(after.untrusted[0].switchless);
        assert_eq!(after.untrusted[0].allowed_ecalls.len(), 1);
    }

    #[test]
    fn rejects_duplicate_transition_using_threads() {
        let err = parse_file(
            "enclave { untrusted { void o() transition_using_threads transition_using_threads; }; };",
        )
        .unwrap_err();
        assert!(err.message.contains("duplicate"), "{err}");
        assert_eq!(err.span.start.col, 57);
    }

    #[test]
    fn rejects_duplicate_allow_list() {
        let err = parse_file(
            "enclave { trusted { void h(); }; untrusted { void o() allow(h) allow(h); }; };",
        )
        .unwrap_err();
        assert!(err.message.contains("duplicate `allow`"), "{err}");
    }
}
