//! The validated interface model produced from an EDL file (or built
//! programmatically) — the artefact `sgx_edger8r` would turn into generated
//! wrapper code. The simulated SDK registers this at enclave load; the
//! sgx-perf analyzer consumes it for its security analysis.

use std::collections::HashMap;

use crate::ast::{EdlFile, FunctionDecl};
use crate::token::Pos;
use crate::EdlError;

/// Direction of a pointer parameter across the enclave boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PointerDir {
    /// `[in]` — copied to the callee before the call.
    In,
    /// `[out]` — copied back after the call.
    Out,
    /// `[in, out]` — copied both ways.
    InOut,
    /// `[user_check]` — passed raw; no copy, no checks (§3.6 flags these).
    UserCheck,
}

/// A validated parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamSpec {
    /// Parameter name.
    pub name: String,
    /// Base type as written.
    pub ty: String,
    /// `Some(dir)` for pointer parameters, `None` for by-value parameters.
    pub pointer: Option<PointerDir>,
    /// Statically-known buffer size in bytes, when `size=`/`count=` used a
    /// literal (used for marshalling cost estimates).
    pub static_bytes: Option<u64>,
}

impl ParamSpec {
    /// Convenience constructor for a by-value parameter.
    pub fn value(name: &str, ty: &str) -> ParamSpec {
        ParamSpec {
            name: name.to_string(),
            ty: ty.to_string(),
            pointer: None,
            static_bytes: None,
        }
    }

    /// Convenience constructor for a pointer parameter.
    pub fn pointer(name: &str, ty: &str, dir: PointerDir) -> ParamSpec {
        ParamSpec {
            name: name.to_string(),
            ty: ty.to_string(),
            pointer: Some(dir),
            static_bytes: None,
        }
    }

    /// Whether the parameter is a `user_check` pointer.
    pub fn is_user_check(&self) -> bool {
        self.pointer == Some(PointerDir::UserCheck)
    }
}

/// A validated ecall.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EcallSpec {
    /// Index assigned in declaration order (the SDK's numeric call id).
    pub index: usize,
    /// Function name.
    pub name: String,
    /// Whether the ecall is `public` (callable from outside an ocall).
    pub public: bool,
    /// Whether the ecall carries `transition_using_threads` — eligible to
    /// be served by a trusted worker thread without an EENTER transition.
    pub switchless: bool,
    /// Parameters.
    pub params: Vec<ParamSpec>,
}

/// A validated ocall.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OcallSpec {
    /// Index assigned in declaration order.
    pub index: usize,
    /// Function name.
    pub name: String,
    /// Indexes of ecalls this ocall is allowed to (re-)enter with.
    pub allowed_ecalls: Vec<usize>,
    /// Whether the ocall carries `transition_using_threads` — eligible to
    /// be served by an untrusted worker thread without an EEXIT transition.
    pub switchless: bool,
    /// Parameters.
    pub params: Vec<ParamSpec>,
}

/// A complete, validated enclave interface.
///
/// # Examples
///
/// ```
/// use sgx_edl::{InterfaceBuilder, PointerDir, ParamSpec};
///
/// let spec = InterfaceBuilder::new()
///     .public_ecall("ecall_work", vec![ParamSpec::value("n", "int")])
///     .private_ecall("ecall_internal", vec![])
///     .ocall_allowing("ocall_help", vec![], &["ecall_internal"])
///     .build()?;
/// assert_eq!(spec.ocalls()[0].allowed_ecalls, vec![1]);
/// # Ok::<(), sgx_edl::EdlError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterfaceSpec {
    ecalls: Vec<EcallSpec>,
    ocalls: Vec<OcallSpec>,
    ecall_names: HashMap<String, usize>,
    ocall_names: HashMap<String, usize>,
}

impl InterfaceSpec {
    /// Builds the spec from a parsed AST, validating the cross-references.
    pub fn from_ast(file: &EdlFile) -> Result<InterfaceSpec, EdlError> {
        let mut ecalls = Vec::with_capacity(file.trusted.len());
        for (index, decl) in file.trusted.iter().enumerate() {
            ecalls.push(EcallSpec {
                index,
                name: decl.name.clone(),
                public: decl.public,
                switchless: decl.switchless,
                params: convert_params(decl)?,
            });
        }
        let mut ocalls = Vec::with_capacity(file.untrusted.len());
        for (index, decl) in file.untrusted.iter().enumerate() {
            ocalls.push((
                OcallSpec {
                    index,
                    name: decl.name.clone(),
                    allowed_ecalls: Vec::new(),
                    switchless: decl.switchless,
                    params: convert_params(decl)?,
                },
                decl.allowed_ecalls.clone(),
            ));
        }
        let mut spec =
            InterfaceSpec::assemble(ecalls, ocalls.iter().map(|(o, _)| o.clone()).collect())?;
        // Resolve allow() lists. Each entry carries its own span, so errors
        // point at the offending name rather than the whole declaration.
        for (ocall, allowed_entries) in &ocalls {
            let mut allowed = Vec::with_capacity(allowed_entries.len());
            for entry in allowed_entries {
                let name = &entry.name;
                let idx = spec.ecall_names.get(name).copied().ok_or_else(|| {
                    EdlError::new(
                        entry.span,
                        format!("allow() references unknown ecall `{name}`"),
                    )
                })?;
                if allowed.contains(&idx) {
                    return Err(EdlError::new(
                        entry.span,
                        format!("allow() lists ecall `{name}` twice"),
                    ));
                }
                allowed.push(idx);
            }
            spec.ocalls[ocall.index].allowed_ecalls = allowed;
        }
        // Private ecalls must be reachable through some allow() list.
        for ecall in &spec.ecalls {
            if !ecall.public
                && !spec
                    .ocalls
                    .iter()
                    .any(|o| o.allowed_ecalls.contains(&ecall.index))
            {
                return Err(EdlError::new(
                    Pos::START,
                    format!(
                        "private ecall `{}` is not allowed by any ocall and can never be called",
                        ecall.name
                    ),
                ));
            }
        }
        Ok(spec)
    }

    fn assemble(ecalls: Vec<EcallSpec>, ocalls: Vec<OcallSpec>) -> Result<InterfaceSpec, EdlError> {
        let mut ecall_names = HashMap::new();
        for e in &ecalls {
            if ecall_names.insert(e.name.clone(), e.index).is_some() {
                return Err(EdlError::new(
                    Pos::START,
                    format!("duplicate ecall `{}`", e.name),
                ));
            }
        }
        let mut ocall_names = HashMap::new();
        for o in &ocalls {
            if ocall_names.insert(o.name.clone(), o.index).is_some() {
                return Err(EdlError::new(
                    Pos::START,
                    format!("duplicate ocall `{}`", o.name),
                ));
            }
        }
        Ok(InterfaceSpec {
            ecalls,
            ocalls,
            ecall_names,
            ocall_names,
        })
    }

    /// All ecalls in index order.
    pub fn ecalls(&self) -> &[EcallSpec] {
        &self.ecalls
    }

    /// All ocalls in index order.
    pub fn ocalls(&self) -> &[OcallSpec] {
        &self.ocalls
    }

    /// Looks up an ecall by name.
    pub fn ecall_by_name(&self, name: &str) -> Option<&EcallSpec> {
        self.ecall_names.get(name).map(|&i| &self.ecalls[i])
    }

    /// Looks up an ocall by name.
    pub fn ocall_by_name(&self, name: &str) -> Option<&OcallSpec> {
        self.ocall_names.get(name).map(|&i| &self.ocalls[i])
    }

    /// Whether `ecall` may be issued while `ocall` is on the stack.
    pub fn is_ecall_allowed_from(&self, ecall: usize, ocall: usize) -> bool {
        self.ocalls
            .get(ocall)
            .is_some_and(|o| o.allowed_ecalls.contains(&ecall))
    }

    /// Parameters across the whole interface that use `user_check` —
    /// the security-review list from §3.6.
    pub fn user_check_params(&self) -> Vec<(String, String)> {
        let mut out = Vec::new();
        for e in &self.ecalls {
            for p in &e.params {
                if p.is_user_check() {
                    out.push((e.name.clone(), p.name.clone()));
                }
            }
        }
        for o in &self.ocalls {
            for p in &o.params {
                if p.is_user_check() {
                    out.push((o.name.clone(), p.name.clone()));
                }
            }
        }
        out
    }
}

fn convert_params(decl: &FunctionDecl) -> Result<Vec<ParamSpec>, EdlError> {
    decl.params
        .iter()
        .map(|p| {
            let pointer = if p.pointer_depth > 0 {
                let dir = match (p.is_in(), p.is_out(), p.is_user_check()) {
                    (_, _, true) if p.is_in() || p.is_out() => {
                        return Err(EdlError::new(
                            p.span,
                            format!("parameter `{}` combines user_check with in/out", p.name),
                        ))
                    }
                    (_, _, true) => PointerDir::UserCheck,
                    (true, true, _) => PointerDir::InOut,
                    (true, false, _) => PointerDir::In,
                    (false, true, _) => PointerDir::Out,
                    (false, false, false) => {
                        return Err(EdlError::new(
                            p.span,
                            format!("pointer parameter `{}` needs in/out/user_check", p.name),
                        ))
                    }
                };
                Some(dir)
            } else {
                None
            };
            let static_bytes = p.static_bytes();
            Ok(ParamSpec {
                name: p.name.clone(),
                ty: p.base_type.clone(),
                pointer,
                static_bytes,
            })
        })
        .collect()
}

/// Programmatic construction of an [`InterfaceSpec`], for workloads that
/// prefer code over EDL text.
#[derive(Debug, Default)]
pub struct InterfaceBuilder {
    ecalls: Vec<(String, bool, Vec<ParamSpec>, bool)>,
    ocalls: Vec<(String, Vec<ParamSpec>, Vec<String>, bool)>,
    /// Whether the most recent call added was an ecall (`true`) or an
    /// ocall (`false`) — the target of [`InterfaceBuilder::switchless`].
    last_was_ecall: Option<bool>,
}

impl InterfaceBuilder {
    /// Creates an empty builder.
    pub fn new() -> InterfaceBuilder {
        InterfaceBuilder::default()
    }

    /// Adds a public ecall.
    pub fn public_ecall(mut self, name: &str, params: Vec<ParamSpec>) -> Self {
        self.ecalls.push((name.to_string(), true, params, false));
        self.last_was_ecall = Some(true);
        self
    }

    /// Adds a private ecall (callable only from allowed ocalls).
    pub fn private_ecall(mut self, name: &str, params: Vec<ParamSpec>) -> Self {
        self.ecalls.push((name.to_string(), false, params, false));
        self.last_was_ecall = Some(true);
        self
    }

    /// Adds an ocall with no allowed re-entries.
    pub fn ocall(self, name: &str, params: Vec<ParamSpec>) -> Self {
        self.ocall_allowing(name, params, &[])
    }

    /// Adds an ocall allowing re-entry through the named ecalls.
    pub fn ocall_allowing(mut self, name: &str, params: Vec<ParamSpec>, allowed: &[&str]) -> Self {
        self.ocalls.push((
            name.to_string(),
            params,
            allowed.iter().map(|s| s.to_string()).collect(),
            false,
        ));
        self.last_was_ecall = Some(false);
        self
    }

    /// Marks the most recently added ecall/ocall as switchless
    /// (`transition_using_threads`). A no-op on an empty builder.
    pub fn switchless(mut self) -> Self {
        match self.last_was_ecall {
            Some(true) => {
                if let Some(e) = self.ecalls.last_mut() {
                    e.3 = true;
                }
            }
            Some(false) => {
                if let Some(o) = self.ocalls.last_mut() {
                    o.3 = true;
                }
            }
            None => {}
        }
        self
    }

    /// Validates and produces the interface.
    ///
    /// # Errors
    ///
    /// Same semantic checks as [`crate::parse`]: duplicate names, unknown
    /// `allow` targets, unreachable private ecalls.
    pub fn build(self) -> Result<InterfaceSpec, EdlError> {
        let ecalls: Vec<EcallSpec> = self
            .ecalls
            .into_iter()
            .enumerate()
            .map(|(index, (name, public, params, switchless))| EcallSpec {
                index,
                name,
                public,
                switchless,
                params,
            })
            .collect();
        let ocalls_raw = self.ocalls;
        let ocalls: Vec<OcallSpec> = ocalls_raw
            .iter()
            .enumerate()
            .map(|(index, (name, params, _, switchless))| OcallSpec {
                index,
                name: name.clone(),
                allowed_ecalls: Vec::new(),
                switchless: *switchless,
                params: params.clone(),
            })
            .collect();
        let mut spec = InterfaceSpec::assemble(ecalls, ocalls)?;
        for (index, (_, _, allowed_names, _)) in ocalls_raw.iter().enumerate() {
            let mut allowed = Vec::new();
            for name in allowed_names {
                let idx = spec.ecall_names.get(name).copied().ok_or_else(|| {
                    EdlError::new(
                        Pos::START,
                        format!("allow() references unknown ecall `{name}`"),
                    )
                })?;
                allowed.push(idx);
            }
            spec.ocalls[index].allowed_ecalls = allowed;
        }
        for ecall in &spec.ecalls {
            if !ecall.public
                && !spec
                    .ocalls
                    .iter()
                    .any(|o| o.allowed_ecalls.contains(&ecall.index))
            {
                return Err(EdlError::new(
                    Pos::START,
                    format!(
                        "private ecall `{}` is not allowed by any ocall and can never be called",
                        ecall.name
                    ),
                ));
            }
        }
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn indexes_follow_declaration_order() {
        let spec = parse(
            "enclave { trusted { public void a(); public void b(); };
                       untrusted { void x(); void y(); }; };",
        )
        .unwrap();
        assert_eq!(spec.ecall_by_name("a").unwrap().index, 0);
        assert_eq!(spec.ecall_by_name("b").unwrap().index, 1);
        assert_eq!(spec.ocall_by_name("y").unwrap().index, 1);
    }

    #[test]
    fn allow_lists_resolve_to_indexes() {
        let spec = parse(
            "enclave { trusted { public void a(); void b(); };
                       untrusted { void x() allow(b); }; };",
        )
        .unwrap();
        let x = spec.ocall_by_name("x").unwrap();
        assert_eq!(x.allowed_ecalls, vec![1]);
        assert!(spec.is_ecall_allowed_from(1, 0));
        assert!(!spec.is_ecall_allowed_from(0, 0));
    }

    #[test]
    fn unknown_allow_target_rejected() {
        let err = parse("enclave { untrusted { void x() allow(nope); }; };").unwrap_err();
        assert!(err.message.contains("unknown ecall"), "{err}");
    }

    #[test]
    fn duplicate_ecall_rejected() {
        let err = parse("enclave { trusted { public void a(); public void a(); }; };").unwrap_err();
        assert!(err.message.contains("duplicate"), "{err}");
    }

    #[test]
    fn unreachable_private_ecall_rejected() {
        let err = parse("enclave { trusted { void lonely(); }; };").unwrap_err();
        assert!(err.message.contains("never be called"), "{err}");
    }

    #[test]
    fn pointer_without_direction_rejected() {
        let err = parse("enclave { trusted { public void e(char* p); }; };").unwrap_err();
        assert!(err.message.contains("in/out/user_check"), "{err}");
    }

    #[test]
    fn user_check_with_in_rejected() {
        let err =
            parse("enclave { trusted { public void e([in, user_check, size=4] char* p); }; };")
                .unwrap_err();
        assert!(err.message.contains("combines"), "{err}");
    }

    #[test]
    fn user_check_params_collected_across_interface() {
        let spec = parse(
            "enclave { trusted { public void e([user_check] void* p); };
                       untrusted { void o([user_check] void* q); }; };",
        )
        .unwrap();
        assert_eq!(
            spec.user_check_params(),
            vec![
                ("e".to_string(), "p".to_string()),
                ("o".to_string(), "q".to_string())
            ]
        );
    }

    #[test]
    fn static_bytes_from_literal_size() {
        let spec =
            parse("enclave { untrusted { void o([out, size=4096] char* page); }; };").unwrap();
        assert_eq!(spec.ocalls()[0].params[0].static_bytes, Some(4096));
    }

    #[test]
    fn in_out_combination_maps_to_inout() {
        let spec =
            parse("enclave { trusted { public void e([in, out, size=8] char* buf); }; };").unwrap();
        assert_eq!(spec.ecalls()[0].params[0].pointer, Some(PointerDir::InOut));
    }

    #[test]
    fn builder_matches_parser_semantics() {
        let spec = InterfaceBuilder::new()
            .public_ecall("a", vec![])
            .private_ecall("b", vec![])
            .ocall_allowing("x", vec![], &["b"])
            .build()
            .unwrap();
        assert!(spec.is_ecall_allowed_from(1, 0));
        let err = InterfaceBuilder::new()
            .private_ecall("b", vec![])
            .build()
            .unwrap_err();
        assert!(err.message.contains("never be called"));
    }

    #[test]
    fn switchless_attribute_survives_validation() {
        let spec = parse(
            "enclave { trusted { public void fast() transition_using_threads; public void slow(); };
                       untrusted { void o() transition_using_threads; void p(); }; };",
        )
        .unwrap();
        assert!(spec.ecall_by_name("fast").unwrap().switchless);
        assert!(!spec.ecall_by_name("slow").unwrap().switchless);
        assert!(spec.ocall_by_name("o").unwrap().switchless);
        assert!(!spec.ocall_by_name("p").unwrap().switchless);
    }

    #[test]
    fn builder_switchless_marks_most_recent_call() {
        let spec = InterfaceBuilder::new()
            .public_ecall("fast", vec![])
            .switchless()
            .public_ecall("slow", vec![])
            .ocall("o", vec![])
            .switchless()
            .build()
            .unwrap();
        assert!(spec.ecall_by_name("fast").unwrap().switchless);
        assert!(!spec.ecall_by_name("slow").unwrap().switchless);
        assert!(spec.ocall_by_name("o").unwrap().switchless);
        // On an empty builder it is a no-op, not a panic.
        let empty = InterfaceBuilder::new().switchless().build().unwrap();
        assert!(empty.ecalls().is_empty());
    }

    #[test]
    fn builder_rejects_duplicates() {
        let err = InterfaceBuilder::new()
            .public_ecall("a", vec![])
            .public_ecall("a", vec![])
            .build()
            .unwrap_err();
        assert!(err.message.contains("duplicate"));
    }
}
