//! Abstract syntax tree for EDL files.

use crate::token::Pos;

/// A parsed EDL file: the `trusted` and `untrusted` sections.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EdlFile {
    /// Ecall declarations, in source order.
    pub trusted: Vec<FunctionDecl>,
    /// Ocall declarations, in source order.
    pub untrusted: Vec<FunctionDecl>,
}

/// One ecall or ocall declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionDecl {
    /// Function name.
    pub name: String,
    /// Return type (as written, e.g. `void`, `int`, `size_t`).
    pub return_type: String,
    /// Parameters in order.
    pub params: Vec<ParamDecl>,
    /// `public` keyword present (trusted section only; defaults to private
    /// as in the SDK).
    pub public: bool,
    /// `allow(...)` ecall list (untrusted section only).
    pub allowed_ecalls: Vec<String>,
    /// Where the declaration starts.
    pub pos: Pos,
}

/// One declared parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamDecl {
    /// Parameter name.
    pub name: String,
    /// Base type as written (`char`, `void`, `size_t`, ...).
    pub base_type: String,
    /// Whether the type is a pointer (`*`). Double pointers are recorded
    /// with `pointer_depth == 2`.
    pub pointer_depth: u8,
    /// Attributes from the leading `[...]` group.
    pub attrs: Vec<Attr>,
    /// Where the parameter starts.
    pub pos: Pos,
}

/// One attribute inside `[...]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Attr {
    /// `in` — copy into the callee's side before the call.
    In,
    /// `out` — copy back after the call.
    Out,
    /// `user_check` — no copying or checking; the developer is on their own.
    UserCheck,
    /// `string` — NUL-terminated string semantics.
    String,
    /// `size=ident` or `size=N` — byte size of the buffer.
    Size(SizeExpr),
    /// `count=ident` or `count=N` — element count.
    Count(SizeExpr),
    /// `isptr` — the typedef is a pointer type (passed through).
    IsPtr,
}

/// The value of a `size=`/`count=` attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SizeExpr {
    /// References another parameter by name.
    Param(String),
    /// A constant.
    Literal(u64),
}

impl ParamDecl {
    /// Whether the parameter carries the `user_check` attribute.
    pub fn is_user_check(&self) -> bool {
        self.attrs.iter().any(|a| matches!(a, Attr::UserCheck))
    }

    /// Whether the parameter is copied in (`in` present).
    pub fn is_in(&self) -> bool {
        self.attrs.iter().any(|a| matches!(a, Attr::In))
    }

    /// Whether the parameter is copied out (`out` present).
    pub fn is_out(&self) -> bool {
        self.attrs.iter().any(|a| matches!(a, Attr::Out))
    }
}
