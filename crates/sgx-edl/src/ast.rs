//! Abstract syntax tree for EDL files.
//!
//! Every node carries the [`Span`] of the source text it was parsed from,
//! so downstream consumers — the [`crate::lint`] pass in particular — can
//! point diagnostics at the exact declaration, parameter, attribute or
//! `allow()` entry involved.

use crate::token::Span;

/// A parsed EDL file: the `trusted` and `untrusted` sections.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EdlFile {
    /// Ecall declarations, in source order.
    pub trusted: Vec<FunctionDecl>,
    /// Ocall declarations, in source order.
    pub untrusted: Vec<FunctionDecl>,
}

/// One ecall or ocall declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionDecl {
    /// Function name.
    pub name: String,
    /// Return type (as written, e.g. `void`, `int`, `size_t`).
    pub return_type: String,
    /// Parameters in order.
    pub params: Vec<ParamDecl>,
    /// `public` keyword present (trusted section only; defaults to private
    /// as in the SDK).
    pub public: bool,
    /// `allow(...)` ecall list (untrusted section only).
    pub allowed_ecalls: Vec<AllowEntry>,
    /// `transition_using_threads` postfix attribute present — the call is
    /// served by worker threads over shared memory instead of a
    /// synchronous EENTER/EEXIT transition (edger8r's switchless syntax).
    pub switchless: bool,
    /// The `transition_using_threads` keyword itself, when present, so
    /// lints can underline the attribute rather than the declaration.
    pub switchless_span: Option<Span>,
    /// The whole declaration, `public` through `;`.
    pub span: Span,
    /// Just the function name.
    pub name_span: Span,
}

/// One name inside an `allow(...)` list, with its own span so lints can
/// underline the specific entry rather than the whole declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// The referenced ecall name.
    pub name: String,
    /// The identifier inside the `allow(...)` parentheses.
    pub span: Span,
}

/// One declared parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamDecl {
    /// Parameter name.
    pub name: String,
    /// Base type as written (`char`, `void`, `size_t`, ...).
    pub base_type: String,
    /// Whether the type is a pointer (`*`). Double pointers are recorded
    /// with `pointer_depth == 2`.
    pub pointer_depth: u8,
    /// Attributes from the leading `[...]` group.
    pub attrs: Vec<Attr>,
    /// The whole parameter: attribute group through name.
    pub span: Span,
}

/// One attribute inside `[...]`, with the span of exactly that attribute
/// (for `size=len` the span covers all three tokens).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attr {
    /// What the attribute is.
    pub kind: AttrKind,
    /// The attribute's own source region.
    pub span: Span,
}

/// The meaning of an attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttrKind {
    /// `in` — copy into the callee's side before the call.
    In,
    /// `out` — copy back after the call.
    Out,
    /// `user_check` — no copying or checking; the developer is on their own.
    UserCheck,
    /// `string` — NUL-terminated string semantics.
    String,
    /// `size=ident` or `size=N` — byte size of the buffer.
    Size(SizeExpr),
    /// `count=ident` or `count=N` — element count.
    Count(SizeExpr),
    /// `isptr` — the typedef is a pointer type (passed through).
    IsPtr,
}

/// The value of a `size=`/`count=` attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SizeExpr {
    /// References another parameter by name.
    Param(String),
    /// A constant.
    Literal(u64),
}

impl ParamDecl {
    /// Returns the attribute of the given discriminant, if present.
    fn find(&self, pred: impl Fn(&AttrKind) -> bool) -> Option<&Attr> {
        self.attrs.iter().find(|a| pred(&a.kind))
    }

    /// The `user_check` attribute, if present.
    pub fn user_check_attr(&self) -> Option<&Attr> {
        self.find(|k| matches!(k, AttrKind::UserCheck))
    }

    /// The `string` attribute, if present.
    pub fn string_attr(&self) -> Option<&Attr> {
        self.find(|k| matches!(k, AttrKind::String))
    }

    /// The `size=`/`count=` attribute, if present.
    pub fn size_attr(&self) -> Option<&Attr> {
        self.find(|k| matches!(k, AttrKind::Size(_) | AttrKind::Count(_)))
    }

    /// Whether the parameter carries the `user_check` attribute.
    pub fn is_user_check(&self) -> bool {
        self.user_check_attr().is_some()
    }

    /// Whether the parameter is copied in (`in` present).
    pub fn is_in(&self) -> bool {
        self.find(|k| matches!(k, AttrKind::In)).is_some()
    }

    /// Whether the parameter is copied out (`out` present).
    pub fn is_out(&self) -> bool {
        self.find(|k| matches!(k, AttrKind::Out)).is_some()
    }

    /// Whether the parameter has `string` semantics.
    pub fn is_string(&self) -> bool {
        self.string_attr().is_some()
    }

    /// The statically-known buffer size in bytes, when `size=`/`count=`
    /// used a literal.
    pub fn static_bytes(&self) -> Option<u64> {
        self.attrs.iter().find_map(|a| match &a.kind {
            AttrKind::Size(SizeExpr::Literal(n)) | AttrKind::Count(SizeExpr::Literal(n)) => {
                Some(*n)
            }
            _ => None,
        })
    }
}
