//! Property tests: the lint pass must never panic on any input the
//! parser accepts, and must tolerate arbitrary text (where the parser is
//! expected to reject gracefully, not crash).

use proptest::prelude::*;

use sgx_edl::lint::{lint_file, lint_source, LintConfig};
use sgx_edl::parse_file;

/// Attribute groups the generator draws from — valid, conflicting and
/// degenerate combinations alike.
const ATTRS: &[&str] = &[
    "",
    "[in]",
    "[out]",
    "[in, out]",
    "[user_check]",
    "[in, string]",
    "[out, string]",
    "[string, user_check]",
    "[in, user_check]",
    "[in, size=len]",
    "[in, size=1048576]",
    "[in, count=4096]",
];

const TYPES: &[&str] = &["char", "void", "int", "size_t", "unsigned long", "uint64_t"];

type ParamGen = (usize, usize);
type EcallGen = (bool, Vec<ParamGen>);
type OcallGen = (Vec<ParamGen>, Vec<usize>);

fn render_params(params: &[ParamGen]) -> String {
    let mut parts: Vec<String> = params
        .iter()
        .enumerate()
        .map(|(i, &(attr, ty))| {
            let attr = ATTRS[attr % ATTRS.len()];
            let ty = TYPES[ty % TYPES.len()];
            // Attribute groups imply a pointer parameter.
            if attr.is_empty() {
                format!("{ty} p{i}")
            } else {
                format!("{attr} {ty}* p{i}")
            }
        })
        .collect();
    if !parts.is_empty() {
        // Targets for size=len / size=n references.
        parts.push("size_t len".to_string());
        parts.push("size_t n".to_string());
    }
    parts.join(", ")
}

/// Renders a syntactically-valid EDL file from generator output. Allow
/// entries may reference nonexistent ecalls — the parser accepts that,
/// only the validator rejects it, and the lint must cope.
fn build_edl(ecalls: &[EcallGen], ocalls: &[OcallGen]) -> String {
    let mut src = String::from("enclave {\n    trusted {\n");
    for (i, (public, params)) in ecalls.iter().enumerate() {
        let vis = if *public { "public " } else { "" };
        src.push_str(&format!(
            "        {vis}void ecall_{i}({});\n",
            render_params(params)
        ));
    }
    src.push_str("    };\n    untrusted {\n");
    for (i, (params, allowed)) in ocalls.iter().enumerate() {
        let allow = if allowed.is_empty() {
            String::new()
        } else {
            let names: Vec<String> = allowed.iter().map(|&k| format!("ecall_{k}")).collect();
            format!(" allow({})", names.join(", "))
        };
        src.push_str(&format!(
            "        void ocall_{i}({}){allow};\n",
            render_params(params)
        ));
    }
    src.push_str("    };\n};\n");
    src
}

proptest! {
    #[test]
    fn lint_never_panics_on_parser_accepted_input(
        ecalls in proptest::collection::vec(
            (any::<bool>(), proptest::collection::vec((0..24usize, 0..12usize), 0..4)),
            0..5,
        ),
        ocalls in proptest::collection::vec(
            (proptest::collection::vec((0..24usize, 0..12usize), 0..3),
             proptest::collection::vec(0..6usize, 0..4)),
            0..4,
        ),
    ) {
        let src = build_edl(&ecalls, &ocalls);
        let file = parse_file(&src);
        prop_assert!(file.is_ok(), "generator must emit valid EDL: {src}");
        let diags = lint_file(&file.unwrap(), &LintConfig::default());
        // Spans must stay inside the generated source and be well-formed.
        let lines = src.lines().count() as u32;
        for d in &diags {
            prop_assert!(d.span.start.line >= 1 && d.span.end.line <= lines, "{d:?}");
            prop_assert!(
                (d.span.start.line, d.span.start.col) <= (d.span.end.line, d.span.end.col),
                "{d:?}"
            );
            // Rendering must not panic either.
            let _ = d.render(&src, "gen.edl");
        }
    }

    #[test]
    fn lint_never_panics_on_arbitrary_text(s in "\\PC{0,120}") {
        // Almost always a parse error; either way, no panic.
        let _ = lint_source(&s, &LintConfig::default());
    }

    #[test]
    fn lint_is_deterministic(
        ecalls in proptest::collection::vec(
            (any::<bool>(), proptest::collection::vec((0..24usize, 0..12usize), 0..3)),
            0..4,
        ),
    ) {
        let src = build_edl(&ecalls, &[]);
        let file = parse_file(&src).unwrap();
        let a = lint_file(&file, &LintConfig::default());
        let b = lint_file(&file, &LintConfig::default());
        prop_assert_eq!(a, b);
    }
}
