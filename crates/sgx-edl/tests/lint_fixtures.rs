//! Fixture-driven lint tests: one `.edl` file per lint code, each
//! asserting the expected codes, anchor spans and rendered caret output.

use sgx_edl::lint::{lint_source, LintConfig};
use sgx_edl::{Diagnostic, Pos, Severity};

const W001: &str = include_str!("fixtures/w001_user_check.edl");
const W002: &str = include_str!("fixtures/w002_missing_size.edl");
const W003: &str = include_str!("fixtures/w003_conflicting_attrs.edl");
const W004: &str = include_str!("fixtures/w004_reentrancy.edl");
const W005: &str = include_str!("fixtures/w005_allow_public.edl");
const W006: &str = include_str!("fixtures/w006_wide_surface.edl");
const W007: &str = include_str!("fixtures/w007_duplicate_allow.edl");
const W008: &str = include_str!("fixtures/w008_large_copy.edl");

fn lint(src: &str) -> Vec<Diagnostic> {
    lint_source(src, &LintConfig::default()).expect("fixture parses")
}

fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
    let mut c: Vec<&'static str> = diags.iter().map(|d| d.code).collect();
    c.dedup();
    c
}

#[test]
fn w001_fixture_flags_user_check_at_exact_span() {
    let diags = lint(W001);
    assert_eq!(codes(&diags), vec!["EDL-W001"]);
    let d = &diags[0];
    // `user_check` on line 3, inside the bracket group.
    assert_eq!(d.span.start, Pos { line: 3, col: 35 });
    assert_eq!(d.span.end, Pos { line: 3, col: 45 });
    assert_eq!(d.function.as_deref(), Some("ecall_process"));
}

#[test]
fn w002_fixture_flags_unsized_out_pointer() {
    let diags = lint(W002);
    assert_eq!(codes(&diags), vec!["EDL-W002"]);
    assert_eq!(diags[0].span.start.line, 3);
    assert!(
        diags[0].message.contains("no size=/count="),
        "{:?}",
        diags[0]
    );
}

#[test]
fn w003_fixture_flags_both_conflicts_as_errors() {
    let diags = lint(W003);
    let w3: Vec<&Diagnostic> = diags.iter().filter(|d| d.code == "EDL-W003").collect();
    assert_eq!(w3.len(), 2, "{diags:?}");
    assert!(w3.iter().all(|d| d.severity == Severity::Error));
    assert_eq!(w3[0].span.start.line, 3); // string + user_check
    assert_eq!(w3[1].span.start.line, 4); // out + string
}

#[test]
fn w004_fixture_finds_reentrancy_cycle() {
    let diags = lint(W004);
    assert_eq!(codes(&diags), vec!["EDL-W004"]);
    let d = &diags[0];
    // Anchored at the `ecall_resume` entry inside allow(...), line 7.
    assert_eq!(d.span.start.line, 7);
    assert!(d.message.contains("ocall_wait"), "{d:?}");
}

#[test]
fn w005_fixture_flags_public_allow_entry() {
    let diags = lint(W005);
    let w5 = diags.iter().find(|d| d.code == "EDL-W005").expect("W005");
    assert_eq!(w5.span.start.line, 6);
    assert!(w5.message.contains("public ecall `ecall_handle`"), "{w5:?}");
}

#[test]
fn w006_fixture_flags_wide_surface_at_ninth_ecall() {
    let diags = lint(W006);
    assert_eq!(codes(&diags), vec!["EDL-W006"]);
    let d = &diags[0];
    assert!(d.message.contains("9 public ecalls"), "{d:?}");
    assert_eq!(d.function.as_deref(), Some("ecall_i"));
    assert_eq!(d.span.start.line, 11);
}

#[test]
fn w007_fixture_flags_second_duplicate_entry() {
    let diags = lint(W007);
    let w7 = diags.iter().find(|d| d.code == "EDL-W007").expect("W007");
    assert_eq!(w7.severity, Severity::Error);
    // Second `ecall_cb` on line 6; the first is at column 37.
    assert_eq!(w7.span.start.line, 6);
    assert!(w7.message.contains("first at 6:37"), "{w7:?}");
}

#[test]
fn w008_fixture_prices_the_megabyte_copy() {
    let diags = lint(W008);
    assert_eq!(codes(&diags), vec!["EDL-W008"]);
    let d = &diags[0];
    assert!(d.message.contains("1048576 bytes"), "{d:?}");
    // 1 MiB at 0.1 ns/B = 104857 ns.
    assert!(d.message.contains("104857 ns"), "{d:?}");
}

#[test]
fn fixtures_cover_eight_distinct_codes() {
    let mut all: Vec<&'static str> = [W001, W002, W003, W004, W005, W006, W007, W008]
        .iter()
        .flat_map(|src| lint(src))
        .map(|d| d.code)
        .collect();
    all.sort_unstable();
    all.dedup();
    assert_eq!(
        all,
        vec![
            "EDL-W001", "EDL-W002", "EDL-W003", "EDL-W004", "EDL-W005", "EDL-W006", "EDL-W007",
            "EDL-W008"
        ]
    );
}

#[test]
fn rendered_fixture_output_matches_rustc_shape() {
    let diags = lint(W001);
    let rendered = diags[0].render(W001, "w001_user_check.edl");
    let expected = "\
warning[EDL-W001]: `user_check` pointer `shared` on `ecall_process` crosses the enclave boundary unchecked
 --> w001_user_check.edl:3:35
  |
3 |         public int ecall_process([user_check] void* shared);
  |                                   ^^^^^^^^^^
  = help: validate the pointer inside the enclave, or use [in]/[out] with size=/count=
";
    assert_eq!(rendered, expected);
}
