//! The on-disk container: named table sections with a versioned header.
//!
//! Layout:
//!
//! ```text
//! magic   "EVDB"          4 bytes
//! version u8              currently 1
//! count   u32             number of sections
//! section*:
//!   tag   str             table tag
//!   blob  bytes           the encoded table
//! ```

use std::fs;
use std::path::Path;

use crate::codec::{Decoder, Encoder};
use crate::table::{Record, Table};
use crate::DbError;

const MAGIC: &[u8; 4] = b"EVDB";
const VERSION: u8 = 1;

/// Shape of one section, produced by [`Store::sections`] without decoding
/// the section's records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionInfo {
    /// The table tag.
    pub tag: String,
    /// Rows in the encoded table (from the count prefix).
    pub rows: u64,
    /// Encoded size of the table blob in bytes.
    pub bytes: usize,
}

/// A set of encoded tables, addressable by their [`Record::TAG`], with
/// binary (de)serialisation. This is the trace *file*; live recording
/// happens in typed [`Table`]s which are `put` here at flush time.
#[derive(Debug, Default, Clone)]
pub struct Store {
    sections: Vec<(String, Vec<u8>)>,
}

impl Store {
    /// Creates an empty store.
    pub fn new() -> Store {
        Store::default()
    }

    /// Adds (or replaces) the section for `table`.
    pub fn put<R: Record>(&mut self, table: &Table<R>) {
        let mut enc = Encoder::new();
        table.encode(&mut enc);
        let blob = enc.into_bytes();
        if let Some(slot) = self.sections.iter_mut().find(|(tag, _)| tag == R::TAG) {
            slot.1 = blob;
        } else {
            self.sections.push((R::TAG.to_string(), blob));
        }
    }

    /// Decodes the table for record type `R`.
    ///
    /// # Errors
    ///
    /// [`DbError::MissingTable`] if no section carries `R::TAG`;
    /// [`DbError::Corrupt`] if the section fails to decode cleanly
    /// (including trailing bytes).
    pub fn get<R: Record>(&self) -> Result<Table<R>, DbError> {
        let blob = self
            .sections
            .iter()
            .find(|(tag, _)| tag == R::TAG)
            .map(|(_, blob)| blob)
            .ok_or(DbError::MissingTable(R::TAG))?;
        let mut dec = Decoder::new(blob);
        let table = Table::<R>::decode(&mut dec)?;
        if !dec.is_exhausted() {
            return Err(DbError::Corrupt(format!(
                "{} trailing bytes after table `{}`",
                dec.remaining(),
                R::TAG
            )));
        }
        Ok(table)
    }

    /// Tags of all sections in insertion order.
    pub fn tags(&self) -> Vec<&str> {
        self.sections.iter().map(|(tag, _)| tag.as_str()).collect()
    }

    /// Enumerates sections in insertion order *without decoding records*:
    /// the row count is read from each blob's count prefix and the byte
    /// size is the blob length, so the cost is O(sections), not O(rows).
    /// Tools that only need shape (`sgxperf info`, exporters sizing their
    /// output) use this instead of [`Store::get`].
    ///
    /// # Errors
    ///
    /// Each item is [`DbError::Corrupt`] if that section is too short to
    /// carry a count prefix — the containing store may still be usable.
    pub fn sections(&self) -> impl Iterator<Item = Result<SectionInfo, DbError>> + '_ {
        self.sections.iter().map(|(tag, blob)| {
            let mut dec = Decoder::new(blob);
            let rows = dec.u64().map_err(|_| {
                DbError::Corrupt(format!(
                    "section `{tag}` too short for a row-count prefix ({} bytes)",
                    blob.len()
                ))
            })?;
            Ok(SectionInfo {
                tag: tag.clone(),
                rows,
                bytes: blob.len(),
            })
        })
    }

    /// Total encoded payload bytes across all sections (excluding the
    /// container header and tag strings).
    pub fn payload_bytes(&self) -> usize {
        self.sections.iter().map(|(_, blob)| blob.len()).sum()
    }

    /// Serialises the store to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        for b in MAGIC {
            enc.u8(*b);
        }
        enc.u8(VERSION);
        enc.u32(u32::try_from(self.sections.len()).expect("too many sections"));
        for (tag, blob) in &self.sections {
            enc.str(tag);
            enc.bytes(blob);
        }
        enc.into_bytes()
    }

    /// Parses a store from bytes.
    pub fn from_bytes(data: &[u8]) -> Result<Store, DbError> {
        let mut dec = Decoder::new(data);
        let mut magic = [0u8; 4];
        for b in &mut magic {
            *b = dec.u8()?;
        }
        if &magic != MAGIC {
            return Err(DbError::Corrupt(format!("bad magic {magic:?}")));
        }
        let version = dec.u8()?;
        if version != VERSION {
            return Err(DbError::Corrupt(format!(
                "unsupported version {version} (supported: {VERSION})"
            )));
        }
        let count = dec.u32()? as usize;
        let mut sections = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            let tag = dec.str()?;
            let blob = dec.bytes()?.to_vec();
            sections.push((tag, blob));
        }
        if !dec.is_exhausted() {
            return Err(DbError::Corrupt(format!(
                "{} trailing bytes after last section",
                dec.remaining()
            )));
        }
        Ok(Store { sections })
    }

    /// Writes the store to a file.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), DbError> {
        fs::write(path, self.to_bytes())?;
        Ok(())
    }

    /// Reads a store from a file.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors and corruption.
    pub fn load(path: impl AsRef<Path>) -> Result<Store, DbError> {
        let data = fs::read(path)?;
        Store::from_bytes(&data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct A(u64);
    impl Record for A {
        const TAG: &'static str = "a";
        fn encode(&self, out: &mut Encoder) {
            out.u64(self.0);
        }
        fn decode(r: &mut Decoder<'_>) -> Result<Self, DbError> {
            Ok(A(r.u64()?))
        }
    }

    #[derive(Debug, Clone, PartialEq)]
    struct B(String);
    impl Record for B {
        const TAG: &'static str = "b";
        fn encode(&self, out: &mut Encoder) {
            out.str(&self.0);
        }
        fn decode(r: &mut Decoder<'_>) -> Result<Self, DbError> {
            Ok(B(r.str()?))
        }
    }

    fn sample_store() -> Store {
        let mut ta = Table::new();
        ta.insert(A(1));
        ta.insert(A(2));
        let mut tb = Table::new();
        tb.insert(B("x".into()));
        let mut s = Store::new();
        s.put(&ta);
        s.put(&tb);
        s
    }

    #[test]
    fn multi_table_roundtrip() {
        let s = sample_store();
        let bytes = s.to_bytes();
        let s2 = Store::from_bytes(&bytes).unwrap();
        let ta: Table<A> = s2.get().unwrap();
        let tb: Table<B> = s2.get().unwrap();
        assert_eq!(ta.len(), 2);
        assert_eq!(tb.iter().next().unwrap().0, "x");
    }

    #[test]
    fn put_replaces_existing_section() {
        let mut s = sample_store();
        let mut ta = Table::new();
        ta.insert(A(99));
        s.put(&ta);
        assert_eq!(s.tags(), vec!["a", "b"]);
        let got: Table<A> = s.get().unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got.iter().next().unwrap().0, 99);
    }

    #[test]
    fn missing_table_reported() {
        let s = Store::new();
        assert!(matches!(
            s.get::<A>().unwrap_err(),
            DbError::MissingTable("a")
        ));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample_store().to_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            Store::from_bytes(&bytes).unwrap_err(),
            DbError::Corrupt(_)
        ));
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = sample_store().to_bytes();
        bytes[4] = 9;
        let err = Store::from_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn truncation_rejected() {
        let bytes = sample_store().to_bytes();
        let err = Store::from_bytes(&bytes[..bytes.len() - 3]).unwrap_err();
        assert!(matches!(err, DbError::Corrupt(_)));
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = sample_store().to_bytes();
        bytes.push(0);
        let err = Store::from_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
    }

    #[test]
    fn sections_report_rows_and_bytes_without_decoding() {
        let s = sample_store();
        let infos: Vec<SectionInfo> = s.sections().map(|i| i.unwrap()).collect();
        assert_eq!(infos.len(), 2);
        assert_eq!(infos[0].tag, "a");
        assert_eq!(infos[0].rows, 2);
        // count prefix (8) + two u64 rows (16).
        assert_eq!(infos[0].bytes, 24);
        assert_eq!(infos[1].tag, "b");
        assert_eq!(infos[1].rows, 1);
        assert_eq!(s.payload_bytes(), infos.iter().map(|i| i.bytes).sum());
    }

    #[test]
    fn truncated_section_enumeration_fails_closed() {
        let mut s = Store::new();
        s.sections.push(("bad".into(), vec![1, 2, 3]));
        let got = s.sections().next().unwrap();
        assert!(matches!(got, Err(DbError::Corrupt(_))), "{got:?}");
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("eventdb-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.evdb");
        sample_store().save(&path).unwrap();
        let s = Store::load(&path).unwrap();
        assert_eq!(s.tags(), vec!["a", "b"]);
        fs::remove_file(path).unwrap();
    }
}
