//! The on-disk container: named table sections with a versioned header.
//!
//! Layout:
//!
//! ```text
//! magic   "EVDB"          4 bytes
//! version u8              currently 1
//! count   u32             number of sections
//! section*:
//!   tag   str             table tag
//!   blob  bytes           the encoded table
//! ```
//!
//! A second, crash-consistent *segmented* layout exists for long-running
//! recordings ([`Store::open_segmented`]): instead of one atomic write at
//! end-of-run, checksummed frames are appended as the run progresses, so a
//! process killed mid-workload still leaves an analyzable prefix:
//!
//! ```text
//! magic   "EVSG"          4 bytes
//! version u8              currently 1
//! frame*:
//!   tag   str             table tag
//!   blob  bytes           the encoded table (full snapshot)
//!   crc   u32             CRC-32 over the frame's tag+blob bytes
//! ```
//!
//! Frames are full-table snapshots; [`Store::load`] keeps the *last* valid
//! frame per tag and salvages a torn tail back to the last valid frame
//! boundary.

use std::fs;
use std::io::Write;
use std::path::Path;

use crate::codec::{Decoder, Encoder};
use crate::table::{Record, Table};
use crate::DbError;

const MAGIC: &[u8; 4] = b"EVDB";
const VERSION: u8 = 1;

const SEG_MAGIC: &[u8; 4] = b"EVSG";
const SEG_VERSION: u8 = 1;

/// Bitwise CRC-32 (IEEE, reflected polynomial). Slow but dependency-free;
/// frames are small and written once.
fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xffff_ffff_u32;
    for &b in data {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

/// Shape of one section, produced by [`Store::sections`] without decoding
/// the section's records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionInfo {
    /// The table tag.
    pub tag: String,
    /// Rows in the encoded table (from the count prefix).
    pub rows: u64,
    /// Encoded size of the table blob in bytes.
    pub bytes: usize,
}

/// A set of encoded tables, addressable by their [`Record::TAG`], with
/// binary (de)serialisation. This is the trace *file*; live recording
/// happens in typed [`Table`]s which are `put` here at flush time.
#[derive(Debug, Default, Clone)]
pub struct Store {
    sections: Vec<(String, Vec<u8>)>,
}

impl Store {
    /// Creates an empty store.
    pub fn new() -> Store {
        Store::default()
    }

    /// Adds (or replaces) the section for `table`.
    pub fn put<R: Record>(&mut self, table: &Table<R>) {
        let mut enc = Encoder::new();
        table.encode(&mut enc);
        let blob = enc.into_bytes();
        if let Some(slot) = self.sections.iter_mut().find(|(tag, _)| tag == R::TAG) {
            slot.1 = blob;
        } else {
            self.sections.push((R::TAG.to_string(), blob));
        }
    }

    /// Decodes the table for record type `R`.
    ///
    /// # Errors
    ///
    /// [`DbError::MissingTable`] if no section carries `R::TAG`;
    /// [`DbError::Corrupt`] if the section fails to decode cleanly
    /// (including trailing bytes).
    pub fn get<R: Record>(&self) -> Result<Table<R>, DbError> {
        let blob = self
            .sections
            .iter()
            .find(|(tag, _)| tag == R::TAG)
            .map(|(_, blob)| blob)
            .ok_or(DbError::MissingTable(R::TAG))?;
        let mut dec = Decoder::new(blob);
        let table = Table::<R>::decode(&mut dec)?;
        if !dec.is_exhausted() {
            return Err(DbError::Corrupt(format!(
                "{} trailing bytes after table `{}`",
                dec.remaining(),
                R::TAG
            )));
        }
        Ok(table)
    }

    /// Tags of all sections in insertion order.
    pub fn tags(&self) -> Vec<&str> {
        self.sections.iter().map(|(tag, _)| tag.as_str()).collect()
    }

    /// Enumerates sections in insertion order *without decoding records*:
    /// the row count is read from each blob's count prefix and the byte
    /// size is the blob length, so the cost is O(sections), not O(rows).
    /// Tools that only need shape (`sgxperf info`, exporters sizing their
    /// output) use this instead of [`Store::get`].
    ///
    /// # Errors
    ///
    /// Each item is [`DbError::Corrupt`] if that section is too short to
    /// carry a count prefix — the containing store may still be usable.
    pub fn sections(&self) -> impl Iterator<Item = Result<SectionInfo, DbError>> + '_ {
        self.sections.iter().map(|(tag, blob)| {
            let mut dec = Decoder::new(blob);
            let rows = dec.u64().map_err(|_| {
                DbError::Corrupt(format!(
                    "section `{tag}` too short for a row-count prefix ({} bytes)",
                    blob.len()
                ))
            })?;
            Ok(SectionInfo {
                tag: tag.clone(),
                rows,
                bytes: blob.len(),
            })
        })
    }

    /// Total encoded payload bytes across all sections (excluding the
    /// container header and tag strings).
    pub fn payload_bytes(&self) -> usize {
        self.sections.iter().map(|(_, blob)| blob.len()).sum()
    }

    /// Serialises the store to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        for b in MAGIC {
            enc.u8(*b);
        }
        enc.u8(VERSION);
        enc.u32(u32::try_from(self.sections.len()).expect("too many sections"));
        for (tag, blob) in &self.sections {
            enc.str(tag);
            enc.bytes(blob);
        }
        enc.into_bytes()
    }

    /// Parses a store from bytes.
    pub fn from_bytes(data: &[u8]) -> Result<Store, DbError> {
        let mut dec = Decoder::new(data);
        let mut magic = [0u8; 4];
        for b in &mut magic {
            *b = dec.u8()?;
        }
        if &magic != MAGIC {
            return Err(DbError::Corrupt(format!("bad magic {magic:?}")));
        }
        let version = dec.u8()?;
        if version != VERSION {
            return Err(DbError::Corrupt(format!(
                "unsupported version {version} (supported: {VERSION})"
            )));
        }
        let count = dec.u32()? as usize;
        let mut sections = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            let tag = dec.str()?;
            let blob = dec.bytes()?.to_vec();
            sections.push((tag, blob));
        }
        if !dec.is_exhausted() {
            return Err(DbError::Corrupt(format!(
                "{} trailing bytes after last section",
                dec.remaining()
            )));
        }
        Ok(Store { sections })
    }

    /// Writes the store to a file.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), DbError> {
        fs::write(path, self.to_bytes())?;
        Ok(())
    }

    /// Reads a store from a file, auto-detecting the layout by magic: the
    /// atomic `EVDB` container is parsed strictly, a segmented `EVSG`
    /// recording is *salvaged* — a torn tail (writer killed mid-append) is
    /// dropped back to the last valid frame boundary rather than failing
    /// the whole load.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors and corruption.
    pub fn load(path: impl AsRef<Path>) -> Result<Store, DbError> {
        let data = fs::read(path)?;
        if data.starts_with(SEG_MAGIC) {
            return Store::salvage_segmented(&data).map(|(store, _)| store);
        }
        Store::from_bytes(&data)
    }

    // ------------------------------------------------------------------
    // Segmented (crash-consistent) layout
    // ------------------------------------------------------------------

    /// Opens a segmented writer at `path`, truncating any existing file
    /// and writing the `EVSG` header. Frames appended afterwards are
    /// flushed individually, so killing the process at any point leaves a
    /// salvageable prefix.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn open_segmented(path: impl AsRef<Path>) -> Result<SegmentedWriter, DbError> {
        let mut file = fs::File::create(path)?;
        file.write_all(SEG_MAGIC)?;
        file.write_all(&[SEG_VERSION])?;
        file.flush()?;
        Ok(SegmentedWriter { file })
    }

    /// Parses a segmented recording *strictly*: a torn tail is an error.
    ///
    /// # Errors
    ///
    /// [`DbError::Corrupt`] on a bad header;
    /// [`DbError::TruncatedFrame`] when the data ends in a torn frame.
    pub fn from_segmented_bytes(data: &[u8]) -> Result<Store, DbError> {
        let (store, dropped, torn) = Store::parse_segmented(data)?;
        if dropped > 0 {
            let (table, offset) = torn.expect("dropped bytes imply a torn frame");
            return Err(DbError::TruncatedFrame { table, offset });
        }
        Ok(store)
    }

    /// Parses a segmented recording, salvaging a torn tail: frames are
    /// consumed up to the last valid frame boundary and the rest is
    /// dropped. Returns the store and how many tail bytes were discarded
    /// (0 for a cleanly finished recording).
    ///
    /// # Errors
    ///
    /// [`DbError::Corrupt`] only when the header itself is bad — a file
    /// that never got past `open_segmented` is not a recording at all.
    pub fn salvage_segmented(data: &[u8]) -> Result<(Store, usize), DbError> {
        let (store, dropped, _) = Store::parse_segmented(data)?;
        Ok((store, dropped))
    }

    /// Walks segmented frames. Returns the store of valid frames (last
    /// snapshot per tag wins), the count of dropped tail bytes, and the
    /// torn frame's (tag, offset) when there is one.
    #[allow(clippy::type_complexity)]
    fn parse_segmented(data: &[u8]) -> Result<(Store, usize, Option<(String, usize)>), DbError> {
        if data.len() < SEG_MAGIC.len() + 1 || &data[..4] != SEG_MAGIC {
            return Err(DbError::Corrupt("bad segmented magic".into()));
        }
        let version = data[4];
        if version != SEG_VERSION {
            return Err(DbError::Corrupt(format!(
                "unsupported segmented version {version} (supported: {SEG_VERSION})"
            )));
        }
        let mut store = Store::new();
        let mut pos = SEG_MAGIC.len() + 1;
        while pos < data.len() {
            let frame = &data[pos..];
            let mut dec = Decoder::new(frame);
            let tag = match dec.str() {
                Ok(tag) => tag,
                Err(_) => {
                    return Ok((store, data.len() - pos, Some(("?".into(), pos))));
                }
            };
            let blob = match dec.bytes() {
                Ok(blob) => blob.to_vec(),
                Err(_) => {
                    return Ok((store, data.len() - pos, Some((tag, pos))));
                }
            };
            let body_len = frame.len() - dec.remaining();
            let stored_crc = match dec.u32() {
                Ok(crc) => crc,
                Err(_) => {
                    return Ok((store, data.len() - pos, Some((tag, pos))));
                }
            };
            if stored_crc != crc32(&frame[..body_len]) {
                // A bad checksum means the kill landed inside this frame's
                // body; everything before it is still good.
                return Ok((store, data.len() - pos, Some((tag, pos))));
            }
            store.put_section(tag, blob);
            pos += frame.len() - dec.remaining();
        }
        Ok((store, 0, None))
    }

    fn put_section(&mut self, tag: String, blob: Vec<u8>) {
        if let Some(slot) = self.sections.iter_mut().find(|(t, _)| *t == tag) {
            slot.1 = blob;
        } else {
            self.sections.push((tag, blob));
        }
    }
}

/// Appends checksummed table frames to a segmented recording as the run
/// progresses. Each frame is a full-table snapshot, length-prefixed and
/// CRC-32-protected, flushed on append — see [`Store::open_segmented`].
#[derive(Debug)]
pub struct SegmentedWriter {
    file: fs::File,
}

impl SegmentedWriter {
    /// Appends one table snapshot as a frame and flushes it.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn append<R: Record>(&mut self, table: &Table<R>) -> Result<(), DbError> {
        let mut enc = Encoder::new();
        table.encode(&mut enc);
        self.append_frame(R::TAG, &enc.into_bytes())
    }

    /// Appends every section of `store` as a frame (one flush at the end),
    /// so the recording's salvageable state advances to this snapshot.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn append_store(&mut self, store: &Store) -> Result<(), DbError> {
        for (tag, blob) in &store.sections {
            self.write_frame(tag, blob)?;
        }
        self.file.flush()?;
        Ok(())
    }

    fn append_frame(&mut self, tag: &str, blob: &[u8]) -> Result<(), DbError> {
        self.write_frame(tag, blob)?;
        self.file.flush()?;
        Ok(())
    }

    fn write_frame(&mut self, tag: &str, blob: &[u8]) -> Result<(), DbError> {
        let mut enc = Encoder::new();
        enc.str(tag);
        enc.bytes(blob);
        let body = enc.into_bytes();
        let mut frame = body;
        let crc = crc32(&frame);
        let mut tail = Encoder::new();
        tail.u32(crc);
        frame.extend_from_slice(&tail.into_bytes());
        self.file.write_all(&frame)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct A(u64);
    impl Record for A {
        const TAG: &'static str = "a";
        fn encode(&self, out: &mut Encoder) {
            out.u64(self.0);
        }
        fn decode(r: &mut Decoder<'_>) -> Result<Self, DbError> {
            Ok(A(r.u64()?))
        }
    }

    #[derive(Debug, Clone, PartialEq)]
    struct B(String);
    impl Record for B {
        const TAG: &'static str = "b";
        fn encode(&self, out: &mut Encoder) {
            out.str(&self.0);
        }
        fn decode(r: &mut Decoder<'_>) -> Result<Self, DbError> {
            Ok(B(r.str()?))
        }
    }

    fn sample_store() -> Store {
        let mut ta = Table::new();
        ta.insert(A(1));
        ta.insert(A(2));
        let mut tb = Table::new();
        tb.insert(B("x".into()));
        let mut s = Store::new();
        s.put(&ta);
        s.put(&tb);
        s
    }

    #[test]
    fn multi_table_roundtrip() {
        let s = sample_store();
        let bytes = s.to_bytes();
        let s2 = Store::from_bytes(&bytes).unwrap();
        let ta: Table<A> = s2.get().unwrap();
        let tb: Table<B> = s2.get().unwrap();
        assert_eq!(ta.len(), 2);
        assert_eq!(tb.iter().next().unwrap().0, "x");
    }

    #[test]
    fn put_replaces_existing_section() {
        let mut s = sample_store();
        let mut ta = Table::new();
        ta.insert(A(99));
        s.put(&ta);
        assert_eq!(s.tags(), vec!["a", "b"]);
        let got: Table<A> = s.get().unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got.iter().next().unwrap().0, 99);
    }

    #[test]
    fn missing_table_reported() {
        let s = Store::new();
        assert!(matches!(
            s.get::<A>().unwrap_err(),
            DbError::MissingTable("a")
        ));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample_store().to_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            Store::from_bytes(&bytes).unwrap_err(),
            DbError::Corrupt(_)
        ));
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = sample_store().to_bytes();
        bytes[4] = 9;
        let err = Store::from_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn truncation_rejected() {
        let bytes = sample_store().to_bytes();
        let err = Store::from_bytes(&bytes[..bytes.len() - 3]).unwrap_err();
        assert!(matches!(err, DbError::Corrupt(_)));
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = sample_store().to_bytes();
        bytes.push(0);
        let err = Store::from_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
    }

    #[test]
    fn sections_report_rows_and_bytes_without_decoding() {
        let s = sample_store();
        let infos: Vec<SectionInfo> = s.sections().map(|i| i.unwrap()).collect();
        assert_eq!(infos.len(), 2);
        assert_eq!(infos[0].tag, "a");
        assert_eq!(infos[0].rows, 2);
        // count prefix (8) + two u64 rows (16).
        assert_eq!(infos[0].bytes, 24);
        assert_eq!(infos[1].tag, "b");
        assert_eq!(infos[1].rows, 1);
        assert_eq!(s.payload_bytes(), infos.iter().map(|i| i.bytes).sum());
    }

    #[test]
    fn truncated_section_enumeration_fails_closed() {
        let mut s = Store::new();
        s.sections.push(("bad".into(), vec![1, 2, 3]));
        let got = s.sections().next().unwrap();
        assert!(matches!(got, Err(DbError::Corrupt(_))), "{got:?}");
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("eventdb-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.evdb");
        sample_store().save(&path).unwrap();
        let s = Store::load(&path).unwrap();
        assert_eq!(s.tags(), vec!["a", "b"]);
        fs::remove_file(path).unwrap();
    }

    fn segmented_bytes() -> Vec<u8> {
        let dir = std::env::temp_dir().join("eventdb-seg-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("seg-{:x}.evdb", std::process::id()));
        let mut w = Store::open_segmented(&path).unwrap();
        let mut ta = Table::new();
        ta.insert(A(1));
        w.append(&ta).unwrap();
        ta.insert(A(2));
        w.append(&ta).unwrap();
        let mut tb = Table::new();
        tb.insert(B("x".into()));
        w.append(&tb).unwrap();
        let data = fs::read(&path).unwrap();
        fs::remove_file(path).unwrap();
        data
    }

    #[test]
    fn segmented_last_snapshot_per_tag_wins() {
        let data = segmented_bytes();
        let s = Store::from_segmented_bytes(&data).unwrap();
        assert_eq!(s.tags(), vec!["a", "b"]);
        let ta: Table<A> = s.get().unwrap();
        assert_eq!(ta.len(), 2);
        let tb: Table<B> = s.get().unwrap();
        assert_eq!(tb.len(), 1);
    }

    #[test]
    fn segmented_torn_tail_salvages_to_last_frame_boundary() {
        let data = segmented_bytes();
        // Kill anywhere inside the final frame: the first two A-frames
        // survive, the B-frame is gone.
        for cut in 1..12 {
            let torn = &data[..data.len() - cut];
            let (s, dropped) = Store::salvage_segmented(torn).unwrap();
            assert_eq!(s.tags(), vec!["a"], "cut={cut}");
            let ta: Table<A> = s.get().unwrap();
            assert_eq!(ta.len(), 2, "cut={cut}");
            assert!(dropped > 0);
        }
        // A clean recording salvages with nothing dropped.
        let (s, dropped) = Store::salvage_segmented(&data).unwrap();
        assert_eq!(dropped, 0);
        assert_eq!(s.tags(), vec!["a", "b"]);
    }

    #[test]
    fn segmented_strict_parse_reports_truncated_frame() {
        let data = segmented_bytes();
        let torn = &data[..data.len() - 2];
        let err = Store::from_segmented_bytes(torn).unwrap_err();
        match err {
            DbError::TruncatedFrame { table, offset } => {
                assert_eq!(table, "b");
                assert!(offset > 5);
                assert!(offset < data.len());
            }
            other => panic!("expected TruncatedFrame, got {other:?}"),
        }
    }

    #[test]
    fn segmented_crc_mismatch_drops_the_frame() {
        let mut data = segmented_bytes();
        // Flip a byte in the last frame's body (not the length prefixes at
        // its very start): the checksum no longer matches.
        let n = data.len();
        data[n - 5] ^= 0xff;
        let (s, dropped) = Store::salvage_segmented(&data).unwrap();
        assert_eq!(s.tags(), vec!["a"]);
        assert!(dropped > 0);
    }

    #[test]
    fn segmented_header_only_is_a_valid_empty_recording() {
        let data = [*b"EVSG", [SEG_VERSION, 0, 0, 0]].concat();
        let (s, dropped) = Store::salvage_segmented(&data[..5]).unwrap();
        assert!(s.tags().is_empty());
        assert_eq!(dropped, 0);
    }

    #[test]
    fn segmented_bad_header_rejected() {
        assert!(matches!(
            Store::salvage_segmented(b"EVSX\x01"),
            Err(DbError::Corrupt(_))
        ));
        assert!(matches!(
            Store::salvage_segmented(b"EVSG\x09"),
            Err(DbError::Corrupt(_))
        ));
    }

    #[test]
    fn load_auto_detects_segmented_layout_and_salvages() {
        let dir = std::env::temp_dir().join("eventdb-seg-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("load-{:x}.evdb", std::process::id()));
        let data = segmented_bytes();
        // Write a torn recording; load must salvage it transparently.
        fs::write(&path, &data[..data.len() - 3]).unwrap();
        let s = Store::load(&path).unwrap();
        assert_eq!(s.tags(), vec!["a"]);
        fs::remove_file(path).unwrap();
    }
}
