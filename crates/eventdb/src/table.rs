//! Append-only typed tables.

use std::fmt;
use std::marker::PhantomData;

use crate::codec::{Decoder, Encoder};
use crate::DbError;

/// A row type storable in a [`Table`].
pub trait Record: Sized {
    /// Unique table tag — doubles as the table's name inside a
    /// [`Store`](crate::Store).
    const TAG: &'static str;

    /// Serialises the record.
    fn encode(&self, out: &mut Encoder);

    /// Deserialises one record.
    ///
    /// # Errors
    ///
    /// Implementations must return [`DbError::Corrupt`] (usually by
    /// propagating decoder errors) rather than panicking on bad input.
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DbError>;
}

/// Identifier of a row within its table (dense, insertion order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RowId(pub usize);

impl fmt::Display for RowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "row{}", self.0)
    }
}

/// An append-only table of `R` rows in insertion order.
///
/// Insertion order is timestamp order for sgx-perf traces, so full scans
/// iterate events chronologically per producing thread.
#[derive(Debug, Clone, PartialEq)]
pub struct Table<R> {
    rows: Vec<R>,
}

impl<R> Default for Table<R> {
    fn default() -> Self {
        Table { rows: Vec::new() }
    }
}

impl<R> Table<R> {
    /// Creates an empty table.
    pub fn new() -> Table<R> {
        Table::default()
    }

    /// Appends a row, returning its id.
    pub fn insert(&mut self, row: R) -> RowId {
        self.rows.push(row);
        RowId(self.rows.len() - 1)
    }

    /// Fetches a row by id.
    pub fn get(&self, id: RowId) -> Option<&R> {
        self.rows.get(id.0)
    }

    /// Mutable access to a row (used by the logger to patch end timestamps
    /// when a call completes).
    pub fn get_mut(&mut self, id: RowId) -> Option<&mut R> {
        self.rows.get_mut(id.0)
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Iterates rows in insertion order.
    pub fn iter(&self) -> std::slice::Iter<'_, R> {
        self.rows.iter()
    }

    /// Iterates `(RowId, &R)` pairs in insertion order.
    pub fn iter_with_ids(&self) -> impl Iterator<Item = (RowId, &R)> {
        self.rows.iter().enumerate().map(|(i, r)| (RowId(i), r))
    }

    /// Rows matching a predicate, in insertion order.
    pub fn scan<'a>(
        &'a self,
        mut pred: impl FnMut(&R) -> bool + 'a,
    ) -> impl Iterator<Item = &'a R> {
        self.rows.iter().filter(move |r| pred(r))
    }
}

impl<'a, R> IntoIterator for &'a Table<R> {
    type Item = &'a R;
    type IntoIter = std::slice::Iter<'a, R>;
    fn into_iter(self) -> Self::IntoIter {
        self.rows.iter()
    }
}

impl<R> FromIterator<R> for Table<R> {
    fn from_iter<T: IntoIterator<Item = R>>(iter: T) -> Self {
        Table {
            rows: iter.into_iter().collect(),
        }
    }
}

impl<R> Extend<R> for Table<R> {
    fn extend<T: IntoIterator<Item = R>>(&mut self, iter: T) {
        self.rows.extend(iter);
    }
}

impl<R: Record> Table<R> {
    /// Serialises the whole table (row count + rows).
    pub fn encode(&self, out: &mut Encoder) {
        out.usize(self.rows.len());
        for row in &self.rows {
            row.encode(out);
        }
    }

    /// Deserialises a table written by [`Table::encode`].
    pub fn decode(r: &mut Decoder<'_>) -> Result<Table<R>, DbError> {
        let count = r.usize()?;
        // Guard against absurd counts from corrupt headers: each row needs
        // at least one byte.
        if count > r.remaining() {
            return Err(DbError::Corrupt(format!(
                "row count {count} exceeds remaining bytes {}",
                r.remaining()
            )));
        }
        let mut rows = Vec::with_capacity(count);
        for _ in 0..count {
            rows.push(R::decode(r)?);
        }
        Ok(Table { rows })
    }
}

/// Typed cursor over a table sorted by an extracted key — a tiny stand-in
/// for an index scan. Built eagerly; the underlying table must outlive it.
#[derive(Debug)]
pub struct SortedView<'a, R, K> {
    order: Vec<usize>,
    table: &'a Table<R>,
    _key: PhantomData<K>,
}

impl<'a, R, K: Ord> SortedView<'a, R, K> {
    /// Builds a view over `table` ordered by `key` (stable sort, so ties
    /// keep insertion order).
    pub fn new(table: &'a Table<R>, mut key: impl FnMut(&R) -> K) -> SortedView<'a, R, K> {
        let mut order: Vec<usize> = (0..table.len()).collect();
        order.sort_by_key(|&i| key(&table.rows[i]));
        SortedView {
            order,
            table,
            _key: PhantomData,
        }
    }

    /// Iterates rows in key order.
    pub fn iter(&self) -> impl Iterator<Item = &'a R> + '_ {
        self.order.iter().map(move |&i| &self.table.rows[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct Row {
        k: u64,
        s: String,
    }

    impl Record for Row {
        const TAG: &'static str = "rows";
        fn encode(&self, out: &mut Encoder) {
            out.u64(self.k);
            out.str(&self.s);
        }
        fn decode(r: &mut Decoder<'_>) -> Result<Self, DbError> {
            Ok(Row {
                k: r.u64()?,
                s: r.str()?,
            })
        }
    }

    fn sample() -> Table<Row> {
        let mut t = Table::new();
        t.insert(Row {
            k: 3,
            s: "c".into(),
        });
        t.insert(Row {
            k: 1,
            s: "a".into(),
        });
        t.insert(Row {
            k: 2,
            s: "b".into(),
        });
        t
    }

    #[test]
    fn insert_returns_dense_ids() {
        let mut t = Table::new();
        assert_eq!(
            t.insert(Row {
                k: 0,
                s: String::new()
            }),
            RowId(0)
        );
        assert_eq!(
            t.insert(Row {
                k: 1,
                s: String::new()
            }),
            RowId(1)
        );
        assert_eq!(t.get(RowId(1)).unwrap().k, 1);
        assert_eq!(t.get(RowId(9)), None);
    }

    #[test]
    fn get_mut_allows_patching() {
        let mut t = sample();
        t.get_mut(RowId(0)).unwrap().k = 99;
        assert_eq!(t.get(RowId(0)).unwrap().k, 99);
    }

    #[test]
    fn scan_filters_in_order() {
        let t = sample();
        let big: Vec<u64> = t.scan(|r| r.k >= 2).map(|r| r.k).collect();
        assert_eq!(big, vec![3, 2]);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let t = sample();
        let mut e = Encoder::new();
        t.encode(&mut e);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        let t2 = Table::<Row>::decode(&mut d).unwrap();
        assert_eq!(t, t2);
        assert!(d.is_exhausted());
    }

    #[test]
    fn absurd_row_count_is_corrupt() {
        let mut e = Encoder::new();
        e.usize(u32::MAX as usize);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert!(matches!(
            Table::<Row>::decode(&mut d).unwrap_err(),
            DbError::Corrupt(_)
        ));
    }

    #[test]
    fn sorted_view_orders_by_key() {
        let t = sample();
        let view = SortedView::new(&t, |r| r.k);
        let ks: Vec<u64> = view.iter().map(|r| r.k).collect();
        assert_eq!(ks, vec![1, 2, 3]);
    }

    #[test]
    fn collect_and_extend() {
        let mut t: Table<Row> = vec![Row {
            k: 1,
            s: "x".into(),
        }]
        .into_iter()
        .collect();
        t.extend(vec![Row {
            k: 2,
            s: "y".into(),
        }]);
        assert_eq!(t.len(), 2);
    }
}
