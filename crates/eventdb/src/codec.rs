//! Binary encoding primitives.
//!
//! Little-endian fixed-width integers, IEEE-754 doubles, and
//! length-prefixed UTF-8 strings/byte blobs. All decode paths are
//! bounds-checked and return [`DbError::Corrupt`] rather than panicking.

use crate::DbError;

/// Append-only binary encoder.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Encoder {
        Encoder::default()
    }

    /// Consumes the encoder, returning the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian i64.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an IEEE-754 double.
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a boolean as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Writes a usize as u64 (portable row counts / indexes).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes a length-prefixed byte blob.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u32(u32::try_from(v.len()).expect("blob larger than 4 GiB"));
        self.buf.extend_from_slice(v);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Writes an `Option` as a presence byte followed by the value.
    pub fn option<T>(&mut self, v: &Option<T>, mut write: impl FnMut(&mut Encoder, &T)) {
        match v {
            Some(value) => {
                self.bool(true);
                write(self, value);
            }
            None => self.bool(false),
        }
    }
}

/// Bounds-checked binary decoder over a byte slice.
#[derive(Debug)]
pub struct Decoder<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Creates a decoder at position 0.
    pub fn new(data: &'a [u8]) -> Decoder<'a> {
        Decoder { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether the input was fully consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DbError> {
        if self.remaining() < n {
            return Err(DbError::Corrupt(format!(
                "truncated input: wanted {n} bytes at offset {}, {} remain",
                self.pos,
                self.remaining()
            )));
        }
        let slice = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, DbError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian u32.
    pub fn u32(&mut self) -> Result<u32, DbError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian u64.
    pub fn u64(&mut self) -> Result<u64, DbError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian i64.
    pub fn i64(&mut self) -> Result<i64, DbError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an IEEE-754 double.
    pub fn f64(&mut self) -> Result<f64, DbError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a boolean; any byte other than 0/1 is corruption.
    pub fn bool(&mut self) -> Result<bool, DbError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(DbError::Corrupt(format!("invalid bool byte {other}"))),
        }
    }

    /// Reads a usize stored as u64, rejecting values beyond the platform.
    pub fn usize(&mut self) -> Result<usize, DbError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| DbError::Corrupt(format!("usize overflow: {v}")))
    }

    /// Reads a length-prefixed byte blob.
    pub fn bytes(&mut self) -> Result<&'a [u8], DbError> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, DbError> {
        let raw = self.bytes()?;
        std::str::from_utf8(raw)
            .map(str::to_string)
            .map_err(|e| DbError::Corrupt(format!("invalid utf-8 string: {e}")))
    }

    /// Reads an `Option` written by [`Encoder::option`].
    pub fn option<T>(
        &mut self,
        mut read: impl FnMut(&mut Decoder<'a>) -> Result<T, DbError>,
    ) -> Result<Option<T>, DbError> {
        if self.bool()? {
            Ok(Some(read(self)?))
        } else {
            Ok(None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let mut e = Encoder::new();
        e.u8(7);
        e.u32(0xdeadbeef);
        e.u64(u64::MAX);
        e.i64(-42);
        e.f64(3.5);
        e.bool(true);
        e.usize(12345);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u32().unwrap(), 0xdeadbeef);
        assert_eq!(d.u64().unwrap(), u64::MAX);
        assert_eq!(d.i64().unwrap(), -42);
        assert_eq!(d.f64().unwrap(), 3.5);
        assert!(d.bool().unwrap());
        assert_eq!(d.usize().unwrap(), 12345);
        assert!(d.is_exhausted());
    }

    #[test]
    fn string_and_bytes_roundtrip() {
        let mut e = Encoder::new();
        e.str("héllo wörld");
        e.bytes(&[1, 2, 3]);
        e.str("");
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.str().unwrap(), "héllo wörld");
        assert_eq!(d.bytes().unwrap(), &[1, 2, 3]);
        assert_eq!(d.str().unwrap(), "");
    }

    #[test]
    fn option_roundtrip() {
        let mut e = Encoder::new();
        e.option(&Some(9u64), |e, v| e.u64(*v));
        e.option(&None::<u64>, |e, v| e.u64(*v));
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.option(|d| d.u64()).unwrap(), Some(9));
        assert_eq!(d.option(|d| d.u64()).unwrap(), None);
    }

    #[test]
    fn truncated_input_is_corrupt_not_panic() {
        let mut d = Decoder::new(&[1, 2]);
        let err = d.u64().unwrap_err();
        assert!(matches!(err, DbError::Corrupt(_)));
    }

    #[test]
    fn invalid_bool_is_corrupt() {
        let mut d = Decoder::new(&[2]);
        assert!(matches!(d.bool().unwrap_err(), DbError::Corrupt(_)));
    }

    #[test]
    fn invalid_utf8_is_corrupt() {
        let mut e = Encoder::new();
        e.bytes(&[0xff, 0xfe]);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert!(matches!(d.str().unwrap_err(), DbError::Corrupt(_)));
    }
}
