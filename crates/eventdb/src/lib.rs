//! Embedded typed event store.
//!
//! sgx-perf serialises all recorded events to a database so the analysis
//! phase (and external tooling) can query them without bespoke parsers
//! (§4 — the original uses SQLite). This crate is the reproduction's
//! stand-in: append-only typed [`Table`]s of [`Record`]s, grouped into a
//! [`Store`] that persists to a compact binary container format.
//!
//! The store is deliberately simple — the analyzer's access patterns are
//! full scans in insertion (= time) order plus point lookups by row id —
//! but it is a real, self-contained format with versioning and corruption
//! detection, so traces can be written by one process and analysed by
//! another, mirroring the decoupled logger/analyser design of the paper.
//!
//! # Examples
//!
//! ```
//! use eventdb::{Decoder, Encoder, DbError, Record, Store, Table};
//!
//! #[derive(Debug, Clone, PartialEq)]
//! struct Sample { t: u64, label: String }
//!
//! impl Record for Sample {
//!     const TAG: &'static str = "samples";
//!     fn encode(&self, out: &mut Encoder) {
//!         out.u64(self.t);
//!         out.str(&self.label);
//!     }
//!     fn decode(r: &mut Decoder<'_>) -> Result<Self, DbError> {
//!         Ok(Sample { t: r.u64()?, label: r.str()? })
//!     }
//! }
//!
//! let mut table = Table::new();
//! table.insert(Sample { t: 42, label: "hello".into() });
//!
//! let mut store = Store::new();
//! store.put(&table);
//! let bytes = store.to_bytes();
//!
//! let loaded = Store::from_bytes(&bytes)?;
//! let table2: Table<Sample> = loaded.get()?;
//! assert_eq!(table2.iter().next().unwrap().label, "hello");
//! # Ok::<(), eventdb::DbError>(())
//! ```

pub mod codec;
pub mod store;
pub mod table;

pub use codec::{Decoder, Encoder};
pub use store::{SectionInfo, SegmentedWriter, Store};
pub use table::{Record, RowId, Table};

use std::fmt;

/// Errors returned by the event store.
#[derive(Debug)]
pub enum DbError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The data is malformed (bad magic, truncated section, trailing
    /// bytes, unsupported version).
    Corrupt(String),
    /// The requested table tag is not present in the store.
    MissingTable(&'static str),
    /// A segmented trace ends in a torn frame — the writer was killed
    /// mid-append. Unlike [`DbError::Corrupt`] this is recoverable:
    /// [`Store::salvage_segmented`] drops the tail back to the last valid
    /// frame boundary.
    TruncatedFrame {
        /// Tag of the torn frame ("?" when the kill landed inside the tag
        /// itself).
        table: String,
        /// Byte offset of the torn frame's start within the file.
        offset: usize,
    },
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Io(e) => write!(f, "i/o error: {e}"),
            DbError::Corrupt(msg) => write!(f, "corrupt store: {msg}"),
            DbError::MissingTable(tag) => write!(f, "missing table `{tag}`"),
            DbError::TruncatedFrame { table, offset } => write!(
                f,
                "truncated frame for table `{table}` at byte {offset} (torn tail)"
            ),
        }
    }
}

impl std::error::Error for DbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DbError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DbError {
    fn from(e: std::io::Error) -> Self {
        DbError::Io(e)
    }
}
