//! Property tests of the store: codec round-trips over arbitrary records,
//! and the fail-closed contract for corrupted input — any truncation or
//! mutation of a valid store must surface as `DbError`, never a panic.

use eventdb::{DbError, Decoder, Encoder, Record, Store, Table};
use proptest::prelude::*;

/// A record exercising every codec primitive: fixed-width integers,
/// floats, booleans, options, strings and nested byte-ish payloads.
#[derive(Debug, Clone, PartialEq)]
struct Mixed {
    a: u64,
    b: u32,
    c: i64,
    d: f64,
    e: bool,
    f: Option<u64>,
    g: String,
    h: Vec<u32>,
}

impl Record for Mixed {
    const TAG: &'static str = "mixed";
    fn encode(&self, out: &mut Encoder) {
        out.u64(self.a);
        out.u32(self.b);
        out.i64(self.c);
        out.f64(self.d);
        out.bool(self.e);
        out.option(&self.f, |e, v| e.u64(*v));
        out.str(&self.g);
        out.usize(self.h.len());
        for v in &self.h {
            out.u32(*v);
        }
    }
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DbError> {
        let a = r.u64()?;
        let b = r.u32()?;
        let c = r.i64()?;
        let d = r.f64()?;
        let e = r.bool()?;
        let f = r.option(|r| r.u64())?;
        let g = r.str()?;
        let n = r.usize()?;
        if n > r.remaining() {
            return Err(DbError::Corrupt(format!("vec count {n} too large")));
        }
        let mut h = Vec::with_capacity(n);
        for _ in 0..n {
            h.push(r.u32()?);
        }
        Ok(Mixed {
            a,
            b,
            c,
            d,
            e,
            f,
            g,
            h,
        })
    }
}

/// A second table type so stores carry multiple sections.
#[derive(Debug, Clone, PartialEq)]
struct Tagged(String);

impl Record for Tagged {
    const TAG: &'static str = "tagged";
    fn encode(&self, out: &mut Encoder) {
        out.str(&self.0);
    }
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DbError> {
        Ok(Tagged(r.str()?))
    }
}

type MixedGen = (u64, u32, i64, u64, bool, Option<u64>, String, Vec<u32>);

fn mixed(row: MixedGen) -> Mixed {
    let (a, b, c, d_bits, e, f, g, h) = row;
    Mixed {
        a,
        b,
        c,
        // Drawn as bits and masked to a finite exponent so PartialEq holds
        // through the round-trip (NaN != NaN would be a false failure).
        d: f64::from_bits(d_bits & 0x7fef_ffff_ffff_ffff),
        e,
        f,
        g,
        h,
    }
}

fn build_store(rows: &[Mixed], tags: &[String]) -> Store {
    let mixed_table: Table<Mixed> = rows.iter().cloned().collect();
    let tag_table: Table<Tagged> = tags.iter().cloned().map(Tagged).collect();
    let mut store = Store::new();
    store.put(&mixed_table);
    store.put(&tag_table);
    store
}

proptest! {
    #[test]
    fn store_roundtrip_preserves_every_row(
        rows in proptest::collection::vec(
            (any::<u64>(), any::<u32>(), any::<i64>(), any::<u64>(),
             any::<bool>(), proptest::option::of(any::<u64>()),
             "\\PC{0,24}", proptest::collection::vec(any::<u32>(), 0..6)),
            0..12,
        ),
        tags in proptest::collection::vec("\\PC{0,16}", 0..4),
    ) {
        let rows: Vec<Mixed> = rows.into_iter().map(mixed).collect();
        let store = build_store(&rows, &tags);
        let bytes = store.to_bytes();
        let back = Store::from_bytes(&bytes).expect("own bytes must parse");
        let mixed_back: Table<Mixed> = back.get().expect("mixed table");
        let got: Vec<Mixed> = mixed_back.iter().cloned().collect();
        prop_assert_eq!(got, rows.clone());
        let tags_back: Table<Tagged> = back.get().expect("tagged table");
        let got_tags: Vec<String> = tags_back.iter().map(|t| t.0.clone()).collect();
        prop_assert_eq!(got_tags, tags);
        // Re-encoding is a fixpoint.
        prop_assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn section_enumeration_matches_decoded_shape(
        rows in proptest::collection::vec(
            (any::<u64>(), any::<u32>(), any::<i64>(), any::<u64>(),
             any::<bool>(), proptest::option::of(any::<u64>()),
             "\\PC{0,24}", proptest::collection::vec(any::<u32>(), 0..6)),
            0..12,
        ),
        tags in proptest::collection::vec("\\PC{0,16}", 0..4),
    ) {
        let rows: Vec<Mixed> = rows.into_iter().map(mixed).collect();
        let store = build_store(&rows, &tags);
        let infos: Vec<_> = store.sections().map(|i| i.expect("valid section")).collect();
        prop_assert_eq!(infos.len(), 2);
        prop_assert_eq!(infos[0].tag.as_str(), "mixed");
        prop_assert_eq!(infos[0].rows, rows.len() as u64);
        prop_assert_eq!(infos[1].tag.as_str(), "tagged");
        prop_assert_eq!(infos[1].rows, tags.len() as u64);
        prop_assert_eq!(
            store.payload_bytes(),
            infos.iter().map(|i| i.bytes).sum::<usize>()
        );
    }

    #[test]
    fn any_strict_prefix_fails_closed(
        rows in proptest::collection::vec(
            (any::<u64>(), any::<u32>(), any::<i64>(), any::<u64>(),
             any::<bool>(), proptest::option::of(any::<u64>()),
             "\\PC{0,24}", proptest::collection::vec(any::<u32>(), 0..6)),
            1..8,
        ),
        cut_frac in 0.0f64..1.0,
    ) {
        let rows: Vec<Mixed> = rows.into_iter().map(mixed).collect();
        let bytes = build_store(&rows, &[]).to_bytes();
        // Every strict prefix is either too short for the header or leaves
        // a section (or the trailing-bytes check) dangling.
        let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
        let got = Store::from_bytes(&bytes[..cut]);
        prop_assert!(got.is_err(), "prefix of {cut}/{} bytes parsed", bytes.len());
    }

    #[test]
    fn mutated_bytes_never_panic(
        rows in proptest::collection::vec(
            (any::<u64>(), any::<u32>(), any::<i64>(), any::<u64>(),
             any::<bool>(), proptest::option::of(any::<u64>()),
             "\\PC{0,24}", proptest::collection::vec(any::<u32>(), 0..6)),
            1..8,
        ),
        pos_frac in 0.0f64..1.0,
        xor in 1u8..=255,
    ) {
        let rows: Vec<Mixed> = rows.into_iter().map(mixed).collect();
        let mut bytes = build_store(&rows, &[]).to_bytes();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= xor;
        // A flipped byte may still decode (payload bits) or must error —
        // either way decoding and section enumeration stay panic-free.
        if let Ok(store) = Store::from_bytes(&bytes) {
            for info in store.sections() {
                let _ = info;
            }
            let _ = store.get::<Mixed>();
        }
    }

    #[test]
    fn arbitrary_bytes_never_panic(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        if let Ok(store) = Store::from_bytes(&data) {
            for info in store.sections() {
                let _ = info;
            }
            let _ = store.get::<Mixed>();
            let _ = store.get::<Tagged>();
        }
    }
}

/// Writes `snapshots` as successive full-table frames of a segmented
/// recording and returns the file bytes plus the byte offset of every
/// frame boundary (the salvageable cut points).
fn segmented_recording(snapshots: &[Vec<Mixed>]) -> (Vec<u8>, Vec<usize>) {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join("eventdb-props-seg");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(format!(
        "rec-{}-{}.evdb",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let mut writer = Store::open_segmented(&path).expect("open segmented");
    let mut boundaries = vec![std::fs::metadata(&path).expect("meta").len() as usize];
    for snapshot in snapshots {
        let table: Table<Mixed> = snapshot.iter().cloned().collect();
        writer.append(&table).expect("append frame");
        boundaries.push(std::fs::metadata(&path).expect("meta").len() as usize);
    }
    let data = std::fs::read(&path).expect("read recording");
    std::fs::remove_file(&path).ok();
    (data, boundaries)
}

proptest! {
    // Crash-salvage round-trip: killing the writer at ANY byte position
    // must salvage exactly the frames completed before the kill — the
    // last fully-flushed snapshot, never a torn or reordered one.
    #[test]
    fn random_kill_point_salvages_a_valid_frame_prefix(
        snapshots in proptest::collection::vec(
            proptest::collection::vec(
                (any::<u64>(), any::<u32>(), any::<i64>(), any::<u64>(),
                 any::<bool>(), proptest::option::of(any::<u64>()),
                 "\\PC{0,12}", proptest::collection::vec(any::<u32>(), 0..4)),
                0..6,
            ).prop_map(|rows| rows.into_iter().map(mixed).collect::<Vec<Mixed>>()),
            1..5,
        ),
        cut_frac in 0.0f64..1.0,
    ) {
        let (data, boundaries) = segmented_recording(&snapshots);
        let header = boundaries[0];
        let cut = header + ((data.len() - header) as f64 * cut_frac) as usize;
        let torn = &data[..cut];
        let (store, dropped) = Store::salvage_segmented(torn).expect("salvage never fails past the header");
        // The salvaged prefix ends at the last frame boundary <= cut.
        let survived = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
        prop_assert_eq!(dropped, cut - boundaries[survived]);
        if survived == 0 {
            prop_assert!(store.get::<Mixed>().is_err(), "no complete frame yet");
        } else {
            let table: Table<Mixed> = store.get().expect("salvaged table");
            let got: Vec<Mixed> = table.iter().cloned().collect();
            prop_assert_eq!(&got, &snapshots[survived - 1]);
        }
        // The strict parser agrees about where the tear is.
        match Store::from_segmented_bytes(torn) {
            Ok(_) => prop_assert_eq!(dropped, 0),
            Err(DbError::TruncatedFrame { offset, .. }) => {
                prop_assert_eq!(offset, boundaries[survived]);
            }
            Err(other) => prop_assert!(false, "unexpected error: {other:?}"),
        }
    }

    // An uncut recording loads losslessly: the last snapshot wins and
    // nothing is dropped.
    #[test]
    fn clean_segmented_recording_roundtrips(
        snapshots in proptest::collection::vec(
            proptest::collection::vec(
                (any::<u64>(), any::<u32>(), any::<i64>(), any::<u64>(),
                 any::<bool>(), proptest::option::of(any::<u64>()),
                 "\\PC{0,12}", proptest::collection::vec(any::<u32>(), 0..4)),
                0..6,
            ).prop_map(|rows| rows.into_iter().map(mixed).collect::<Vec<Mixed>>()),
            1..5,
        ),
    ) {
        let (data, _) = segmented_recording(&snapshots);
        let (store, dropped) = Store::salvage_segmented(&data).expect("clean recording");
        prop_assert_eq!(dropped, 0);
        let table: Table<Mixed> = store.get().expect("mixed table");
        let got: Vec<Mixed> = table.iter().cloned().collect();
        prop_assert_eq!(&got, snapshots.last().expect("at least one snapshot"));
    }

    // Arbitrary bytes behind a segmented header must never panic the
    // salvager — at worst everything after the header is dropped.
    #[test]
    fn arbitrary_segmented_tails_never_panic(
        tail in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let mut data = b"EVSG\x01".to_vec();
        data.extend_from_slice(&tail);
        if let Ok((store, _)) = Store::salvage_segmented(&data) {
            for info in store.sections() {
                let _ = info;
            }
            let _ = store.get::<Mixed>();
        }
    }
}
