//! The working-set estimator (§4.2).
//!
//! Reports how many enclave pages are accessed between two configurable
//! points in time, at page granularity — useful for right-sizing enclaves.
//! It operates by stripping all MMU page permissions from enclave pages,
//! catching the resulting access faults and restoring permissions on
//! access. This works because page permissions are checked twice — by the
//! MMU first, then by SGX — and the MMU permissions can be changed at
//! runtime while the SGX (EPCM) ones are fixed.
//!
//! The estimator "heavily interferes with enclave execution" (§4), which is
//! why it is a separate tool from the event logger; each caught fault costs
//! fault-delivery time in the simulation too.

use std::collections::BTreeSet;
use std::sync::Arc;

use sgx_sim::{EnclaveId, Machine, MmuFault, SimError};
use sim_core::sync::Mutex;

/// A working-set measurement between two marks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkingSet {
    /// Distinct pages touched in the interval.
    pub pages: usize,
    /// The page indexes, for layout attribution.
    pub page_indexes: Vec<usize>,
}

impl WorkingSet {
    /// The working set size in bytes.
    pub fn bytes(&self) -> usize {
        self.pages * sgx_sim::PAGE_SIZE
    }

    /// The working set size in MiB.
    pub fn mib(&self) -> f64 {
        self.bytes() as f64 / (1024.0 * 1024.0)
    }
}

struct WseState {
    touched: BTreeSet<usize>,
}

/// The attached working-set estimator for one enclave.
///
/// # Examples
///
/// ```no_run
/// # use sgx_perf::WorkingSetEstimator;
/// # use sgx_sim::{EnclaveConfig, EnclaveId, Machine};
/// # use sim_core::{Clock, HwProfile};
/// # use std::sync::Arc;
/// # let machine = Arc::new(Machine::new(Clock::new(), HwProfile::Unpatched));
/// # let eid = machine.create_enclave(&EnclaveConfig::default()).unwrap();
/// let wse = WorkingSetEstimator::attach(&machine, eid)?;
/// // ... run the start-up phase of the workload ...
/// let startup = wse.mark()?; // pages touched during start-up
/// // ... run the steady-state phase ...
/// let steady = wse.mark()?;  // pages touched since the first mark
/// assert!(steady.pages <= startup.pages + steady.pages);
/// # Ok::<(), sgx_sim::SimError>(())
/// ```
pub struct WorkingSetEstimator {
    machine: Arc<Machine>,
    enclave: EnclaveId,
    state: Arc<Mutex<WseState>>,
    detached: bool,
}

impl std::fmt::Debug for WorkingSetEstimator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkingSetEstimator")
            .field("enclave", &self.enclave)
            .field("touched", &self.state.lock().touched.len())
            .finish()
    }
}

impl WorkingSetEstimator {
    /// Attaches the estimator: strips all MMU permissions from the
    /// enclave's pages and installs the access-fault handler.
    ///
    /// Only one estimator (or other fault-handler user) can be attached to
    /// a machine at a time.
    ///
    /// # Errors
    ///
    /// Propagates hardware-layer failures (e.g. unknown enclave).
    pub fn attach(
        machine: &Arc<Machine>,
        enclave: EnclaveId,
    ) -> Result<WorkingSetEstimator, SimError> {
        let state = Arc::new(Mutex::new(WseState {
            touched: BTreeSet::new(),
        }));
        let handler_state = Arc::clone(&state);
        let target = enclave;
        machine.set_mmu_fault_handler(Some(Arc::new(move |fault: &MmuFault| {
            if fault.enclave == target {
                handler_state.lock().touched.insert(fault.page_index);
            }
        })));
        machine.strip_mmu_perms(enclave)?;
        Ok(WorkingSetEstimator {
            machine: Arc::clone(machine),
            enclave,
            state,
            detached: false,
        })
    }

    /// Ends the current measurement interval: returns the set of pages
    /// touched since attach (or since the previous mark) and re-strips
    /// permissions so a new interval begins.
    ///
    /// # Errors
    ///
    /// Propagates hardware-layer failures.
    pub fn mark(&self) -> Result<WorkingSet, SimError> {
        let touched: Vec<usize> = {
            let mut st = self.state.lock();
            let pages = std::mem::take(&mut st.touched);
            pages.into_iter().collect()
        };
        // Start the next interval: permissions stripped again.
        self.machine.strip_mmu_perms(self.enclave)?;
        Ok(WorkingSet {
            pages: touched.len(),
            page_indexes: touched,
        })
    }

    /// Pages touched so far in the current interval (without ending it).
    pub fn touched_so_far(&self) -> usize {
        self.state.lock().touched.len()
    }

    /// Detaches the estimator: restores page permissions and removes the
    /// fault handler.
    ///
    /// # Errors
    ///
    /// Propagates hardware-layer failures.
    pub fn detach(mut self) -> Result<(), SimError> {
        self.machine.set_mmu_fault_handler(None);
        self.machine.restore_mmu_perms(self.enclave)?;
        self.detached = true;
        Ok(())
    }
}

impl Drop for WorkingSetEstimator {
    fn drop(&mut self) {
        if !self.detached {
            self.machine.set_mmu_fault_handler(None);
            // Best-effort restore; the enclave may already be gone.
            let _ = self.machine.restore_mmu_perms(self.enclave);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgx_sim::{AccessKind, EnclaveConfig, ThreadToken};
    use sim_core::{Clock, HwProfile};

    fn setup() -> (Arc<Machine>, EnclaveId) {
        let machine = Arc::new(Machine::new(Clock::new(), HwProfile::Unpatched));
        let eid = machine.create_enclave(&EnclaveConfig::default()).unwrap();
        (machine, eid)
    }

    #[test]
    fn counts_distinct_pages_between_marks() {
        let (machine, eid) = setup();
        let wse = WorkingSetEstimator::attach(&machine, eid).unwrap();
        let heap = machine.heap_range(eid).unwrap();
        // Touch 5 heap pages, two of them twice.
        machine
            .touch(
                eid,
                ThreadToken::MAIN,
                heap.start..heap.start + 5,
                AccessKind::Write,
            )
            .unwrap();
        machine
            .touch(
                eid,
                ThreadToken::MAIN,
                heap.start..heap.start + 2,
                AccessKind::Read,
            )
            .unwrap();
        let ws = wse.mark().unwrap();
        assert_eq!(ws.pages, 5);
        assert_eq!(ws.bytes(), 5 * 4096);
    }

    #[test]
    fn marks_partition_accesses() {
        let (machine, eid) = setup();
        let wse = WorkingSetEstimator::attach(&machine, eid).unwrap();
        let heap = machine.heap_range(eid).unwrap();
        machine
            .touch(
                eid,
                ThreadToken::MAIN,
                heap.start..heap.start + 3,
                AccessKind::Write,
            )
            .unwrap();
        let first = wse.mark().unwrap();
        // Touch 2 pages in the second interval: 1 old, 1 new.
        machine
            .touch(
                eid,
                ThreadToken::MAIN,
                heap.start + 2..heap.start + 4,
                AccessKind::Write,
            )
            .unwrap();
        let second = wse.mark().unwrap();
        assert_eq!(first.pages, 3);
        assert_eq!(second.pages, 2);
    }

    #[test]
    fn detach_restores_normal_execution() {
        let (machine, eid) = setup();
        let wse = WorkingSetEstimator::attach(&machine, eid).unwrap();
        wse.detach().unwrap();
        // No handler installed anymore, but permissions restored: touching
        // pages must not fault.
        let heap = machine.heap_range(eid).unwrap();
        let stats = machine
            .touch(
                eid,
                ThreadToken::MAIN,
                heap.start..heap.start + 1,
                AccessKind::Write,
            )
            .unwrap();
        assert_eq!(stats.mmu_faults, 0);
    }

    #[test]
    fn touched_so_far_reports_live_count() {
        let (machine, eid) = setup();
        let wse = WorkingSetEstimator::attach(&machine, eid).unwrap();
        assert_eq!(wse.touched_so_far(), 0);
        let heap = machine.heap_range(eid).unwrap();
        machine
            .touch(
                eid,
                ThreadToken::MAIN,
                heap.start..heap.start + 2,
                AccessKind::Write,
            )
            .unwrap();
        assert_eq!(wse.touched_so_far(), 2);
    }

    #[test]
    fn estimation_costs_time() {
        // §4.2: the estimator heavily interferes with execution — each
        // fault costs virtual time.
        let (machine, eid) = setup();
        let wse = WorkingSetEstimator::attach(&machine, eid).unwrap();
        let heap = machine.heap_range(eid).unwrap();
        let before = machine.clock().now();
        machine
            .touch(eid, ThreadToken::MAIN, heap.clone(), AccessKind::Write)
            .unwrap();
        let with_wse = machine.clock().now() - before;
        wse.mark().unwrap();
        wse.detach().unwrap();
        let before = machine.clock().now();
        machine
            .touch(eid, ThreadToken::MAIN, heap, AccessKind::Write)
            .unwrap();
        let without = machine.clock().now() - before;
        assert!(with_wse > without);
    }
}
