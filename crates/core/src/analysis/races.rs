//! Schedule-generalizing race and deadlock analysis (`sgxperf races`).
//!
//! The deterministic scheduler runs exactly one logical thread at a time,
//! so a data race or a lock-order deadlock can never *manifest* in a
//! simulated run. This module answers the question the trace alone cannot:
//! **would this synchronisation be correct on real hardware, under other
//! interleavings?** It replays the `syncev` table (recorded with
//! [`LoggerConfig::track_syncev`](crate::LoggerConfig)) through three
//! classic analyses:
//!
//! * **Happens-before race detection** (FastTrack-style vector clocks,
//!   `RACE-E001`): a shared-cell access pair on different threads with no
//!   ordering path through locks, condvars, spawn/join edges or switchless
//!   ring hand-offs is a data race under *some* feasible schedule, not
//!   just the observed one.
//! * **Lockset refinement** (Eraser-style, `RACE-W002`): a second witness
//!   with lower false-negative risk — a multi-thread written cell whose
//!   accesses share no common lock is suspicious even when fork/join
//!   ordering happens to cover the observed run.
//! * **Lock-order graph** (`RACE-E003`): a cycle in the held-while-
//!   acquiring relation is a potential deadlock no schedule of this run
//!   could show. Cross-referenced with the ecall/ocall tables, a lock held
//!   across an ocall additionally earns `RACE-W004` — the §3.4
//!   re-entrancy hazard: the host can re-enter the enclave on the same
//!   TCS while the lock is held.
//!
//! Exit-code contract (mirrors `sgxperf diff`): error findings → 3, clean
//! or warnings only → 0.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use sgx_edl::Severity;
use sgx_sdk::sync::LockPath;
use sgx_sdk::sync_ocalls;
use sim_core::syncev::{SyncOp, EXTERNAL_THREAD};

use crate::json;
use crate::trace::TraceDb;

/// Stable finding codes, usable in deny lists and CI greps.
pub mod codes {
    /// Happens-before data race on a shared cell.
    pub const DATA_RACE: &str = "RACE-E001";
    /// Lockset violation: no common lock protects a multi-thread cell.
    pub const LOCKSET: &str = "RACE-W002";
    /// Lock-order cycle: potential deadlock.
    pub const LOCK_ORDER: &str = "RACE-E003";
    /// Lock held across an ocall: re-entrancy hazard (§3.4).
    pub const LOCK_ACROSS_OCALL: &str = "RACE-W004";
}

/// What a finding is about, with the structured evidence the
/// recommendation detectors consume.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RaceKind {
    /// Two unordered conflicting accesses to a shared cell.
    DataRace {
        /// Cell name (or `#id`).
        cell: String,
        /// The two access descriptions (`write by lt1 @ 3.2ms`).
        accesses: [String; 2],
        /// Whether the lockset witness concurs (empty common lockset).
        lockset_empty: bool,
    },
    /// No common lock across all accesses, but fork/join ordering covered
    /// the observed run.
    LocksetSuspicion {
        /// Cell name (or `#id`).
        cell: String,
        /// Number of distinct accessing threads.
        threads: usize,
    },
    /// Cycle in the lock-order graph.
    LockOrderCycle {
        /// Lock names along the cycle, in order.
        cycle: Vec<String>,
        /// One observed edge description per cycle arc.
        edges: Vec<String>,
    },
    /// A lock was held across a (non-sync) ocall.
    LockAcrossOcall {
        /// Lock name (or `#id`).
        lock: String,
        /// The ocall crossed while holding it.
        ocall: String,
        /// How many times the pattern occurred.
        occurrences: usize,
    },
}

/// One race-analysis finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceFinding {
    /// Stable code (see [`codes`]).
    pub code: &'static str,
    /// Error findings gate CI (exit 3); warnings do not.
    pub severity: Severity,
    /// Structured evidence.
    pub kind: RaceKind,
    /// One-line description.
    pub message: String,
    /// Supporting `= note:` lines.
    pub notes: Vec<String>,
    /// Optional `= help:` suggestion.
    pub help: Option<String>,
}

impl RaceFinding {
    /// Renders the finding rustc-style:
    ///
    /// ```text
    /// error[RACE-E001]: data race on shared cell `counter`
    ///   = note: write by lt0 @ 12.5us and write by lt1 @ 86.2us are unordered
    ///   = help: guard every access with one mutex, or order them with spawn/join
    /// ```
    pub fn render(&self) -> String {
        let mut out = format!("{}[{}]: {}\n", self.severity, self.code, self.message);
        for n in &self.notes {
            out.push_str(&format!("  = note: {n}\n"));
        }
        if let Some(h) = &self.help {
            out.push_str(&format!("  = help: {h}\n"));
        }
        out
    }
}

/// Result of the three analyses over one trace.
#[derive(Debug, Clone, Default)]
pub struct RaceReport {
    /// All findings, errors first, in deterministic order.
    pub findings: Vec<RaceFinding>,
    /// Sync events analysed.
    pub events: usize,
    /// Distinct logical threads observed.
    pub threads: usize,
    /// Distinct locks observed.
    pub locks: usize,
    /// Distinct tagged shared cells observed.
    pub cells: usize,
}

impl RaceReport {
    /// Whether any error-severity finding is present.
    pub fn has_errors(&self) -> bool {
        self.findings.iter().any(|f| f.severity == Severity::Error)
    }

    /// CI gate: 3 when error findings exist, 0 otherwise (the `sgxperf
    /// diff` contract).
    pub fn exit_code(&self) -> u8 {
        if self.has_errors() {
            3
        } else {
            0
        }
    }

    /// Renders the whole report: every finding, then a summary line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.render());
            out.push('\n');
        }
        let errors = self
            .findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .count();
        let warnings = self.findings.len() - errors;
        out.push_str(&format!(
            "races: {} error(s), {} warning(s) — {} sync events, {} thread(s), {} lock(s), {} shared cell(s)\n",
            errors, warnings, self.events, self.threads, self.locks, self.cells
        ));
        out
    }

    /// The report as a JSON object (for `--json`).
    pub fn to_json(&self) -> String {
        let findings: Vec<String> = self
            .findings
            .iter()
            .map(|f| {
                format!(
                    "{{\"code\":{},\"severity\":{},\"message\":{},\"notes\":[{}]}}",
                    json::string(f.code),
                    json::string(f.severity.label()),
                    json::string(&f.message),
                    f.notes
                        .iter()
                        .map(|n| json::string(n))
                        .collect::<Vec<_>>()
                        .join(",")
                )
            })
            .collect();
        format!(
            "{{\"events\":{},\"threads\":{},\"locks\":{},\"cells\":{},\"exit_code\":{},\"findings\":[{}]}}\n",
            self.events,
            self.threads,
            self.locks,
            self.cells,
            self.exit_code(),
            findings.join(",")
        )
    }
}

/// A vector clock: thread id → logical time.
type Vc = BTreeMap<u64, u64>;

fn vc_join(into: &mut Vc, from: &Vc) {
    for (&t, &c) in from {
        let e = into.entry(t).or_insert(0);
        *e = (*e).max(c);
    }
}

/// One recorded access to a shared cell, compressed FastTrack-style to an
/// epoch: `clock` is the accessing thread's own component at access time,
/// so access A happens-before a later event E iff `E.vc[A.thread] >=
/// A.clock`.
#[derive(Debug, Clone)]
struct Access {
    thread: u64,
    clock: u64,
    write: bool,
    time_ns: u64,
}

/// Eraser's per-cell state machine: lockset violations are reported only
/// once a cell is *shared-modified* — written after a second thread has
/// accessed it. Initialise-then-publish (write, then hand off via spawn,
/// signal or ring) stays in `Exclusive`/`Shared` and is never flagged.
#[derive(Debug, Default, PartialEq)]
enum CellPhase {
    #[default]
    Virgin,
    /// Only one thread has accessed the cell so far.
    Exclusive(u64),
    /// Multiple readers after the exclusive phase, no subsequent write.
    Shared,
    /// Written while shared: the lockset verdict applies.
    SharedModified,
}

impl CellPhase {
    fn access(&mut self, thread: u64, write: bool) {
        *self = match *self {
            CellPhase::Virgin => CellPhase::Exclusive(thread),
            CellPhase::Exclusive(t) if t == thread => CellPhase::Exclusive(t),
            CellPhase::Exclusive(_) | CellPhase::Shared => {
                if write {
                    CellPhase::SharedModified
                } else {
                    CellPhase::Shared
                }
            }
            CellPhase::SharedModified => CellPhase::SharedModified,
        };
    }
}

#[derive(Debug, Default)]
struct CellState {
    last_write: Option<Access>,
    /// Reads since the last write, at most one (the latest) per thread.
    reads: Vec<Access>,
    /// Eraser candidate lockset; `None` = still the full universe.
    lockset: Option<BTreeSet<u64>>,
    /// Distinct accessing threads.
    threads: BTreeSet<u64>,
    writes: usize,
    phase: CellPhase,
    /// First happens-before race found on this cell, if any.
    race: Option<(Access, Access)>,
}

/// Human name for a thread id.
fn thread_name(t: u64) -> String {
    if t == EXTERNAL_THREAD {
        "the driver thread".to_string()
    } else {
        format!("lt{t}")
    }
}

fn time_label(ns: u64) -> String {
    if ns >= 1_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn access_label(a: &Access) -> String {
    format!(
        "{} by {} @ {}",
        if a.write { "write" } else { "read" },
        thread_name(a.thread),
        time_label(a.time_ns)
    )
}

/// Runs the happens-before, lockset and lock-order analyses over the
/// trace's `syncev` table. An empty table yields an empty (clean) report.
pub fn analyze(trace: &TraceDb) -> RaceReport {
    let mut names: HashMap<u64, String> = HashMap::new();
    for row in trace.syncev.iter() {
        if let Some(obj) = row.object {
            if !row.label.is_empty() {
                names.entry(obj).or_insert_with(|| row.label.clone());
            }
        }
    }
    let display = |obj: u64| -> String {
        names
            .get(&obj)
            .map(|n| format!("`{n}`"))
            .unwrap_or_else(|| format!("`#{obj}`"))
    };

    // --- replay state ---
    let mut vcs: HashMap<u64, Vc> = HashMap::new();
    let mut ticks: HashMap<u64, u64> = HashMap::new();
    let vc_of = |vcs: &mut HashMap<u64, Vc>, t: u64| -> Vc {
        vcs.entry(t).or_insert_with(|| Vc::from([(t, 1)])).clone()
    };
    // Release clocks of locks / condvars / rings (symmetric merge objects).
    let mut object_vc: HashMap<u64, Vc> = HashMap::new();
    // Locks currently held per thread, with acquire timestamps.
    let mut held: HashMap<u64, Vec<(u64, u64)>> = HashMap::new();
    // Lock-order edges: (held, acquired) → first observed evidence.
    let mut order_edges: BTreeMap<(u64, u64), String> = BTreeMap::new();
    // Completed hold intervals: lock → [(thread, acquire_ns, release_ns)].
    let mut intervals: BTreeMap<u64, Vec<(u64, u64, u64)>> = BTreeMap::new();
    let mut cells: BTreeMap<u64, CellState> = BTreeMap::new();
    let mut locks_seen: BTreeSet<u64> = BTreeSet::new();
    let mut threads_seen: BTreeSet<u64> = BTreeSet::new();

    for row in trace.syncev.iter() {
        let Some(op) = SyncOp::from_code(row.op) else {
            continue; // unknown op from a newer writer: skip, stay loadable
        };
        let t = row.thread;
        threads_seen.insert(t);
        let mut my_vc = vc_of(&mut vcs, t);
        let tick = |vcs: &mut HashMap<u64, Vc>, ticks: &mut HashMap<u64, u64>, t: u64| {
            let c = ticks.entry(t).or_insert(1);
            *c += 1;
            vcs.get_mut(&t)
                .expect("vc exists after vc_of")
                .insert(t, *c);
        };
        match op {
            SyncOp::ThreadSpawn => {
                if let Some(child) = row.target {
                    threads_seen.insert(child);
                    let mut child_vc = vc_of(&mut vcs, child);
                    vc_join(&mut child_vc, &my_vc);
                    vcs.insert(child, child_vc);
                    tick(&mut vcs, &mut ticks, t);
                }
            }
            SyncOp::ThreadJoin => {
                // `Simulation::run` blocks until every logical thread is
                // done, so driver-side events after the run happen-after
                // each completion under every schedule.
                let mut ext = vc_of(&mut vcs, EXTERNAL_THREAD);
                vc_join(&mut ext, &my_vc);
                vcs.insert(EXTERNAL_THREAD, ext);
                tick(&mut vcs, &mut ticks, t);
            }
            SyncOp::LockAcquire => {
                let Some(lock) = row.object else { continue };
                locks_seen.insert(lock);
                if let Some(rel) = object_vc.get(&lock) {
                    vc_join(&mut my_vc, rel);
                    vcs.insert(t, my_vc.clone());
                }
                let held_by_me = held.entry(t).or_default();
                for &(h, _) in held_by_me.iter() {
                    order_edges.entry((h, lock)).or_insert_with(|| {
                        format!(
                            "{} acquired {} while holding {} @ {}",
                            thread_name(t),
                            display(lock),
                            display(h),
                            time_label(row.time_ns)
                        )
                    });
                }
                held_by_me.push((lock, row.time_ns));
            }
            SyncOp::LockRelease => {
                let Some(lock) = row.object else { continue };
                locks_seen.insert(lock);
                object_vc.insert(lock, my_vc.clone());
                tick(&mut vcs, &mut ticks, t);
                let held_by_me = held.entry(t).or_default();
                if let Some(pos) = held_by_me.iter().rposition(|&(l, _)| l == lock) {
                    let (_, acquired_ns) = held_by_me.remove(pos);
                    intervals
                        .entry(lock)
                        .or_default()
                        .push((t, acquired_ns, row.time_ns));
                }
            }
            SyncOp::CondWait => {
                // The paired mutex release was emitted separately; the
                // wait itself releases the waiter's clock into the condvar.
                let Some(cv) = row.object else { continue };
                let e = object_vc.entry(cv).or_default();
                vc_join(e, &my_vc);
                tick(&mut vcs, &mut ticks, t);
            }
            SyncOp::CondSignal => {
                // The wake happens-before the waiter's resumption, which
                // the replay order places strictly later.
                if let Some(w) = row.target {
                    threads_seen.insert(w);
                    let mut wv = vc_of(&mut vcs, w);
                    vc_join(&mut wv, &my_vc);
                    vcs.insert(w, wv);
                    tick(&mut vcs, &mut ticks, t);
                }
            }
            SyncOp::RingPost | SyncOp::RingComplete => {
                // Symmetric merge through the ring object: the post/claim
                // hand-off orders caller and worker both ways.
                let Some(ring) = row.object else { continue };
                if let Some(rv) = object_vc.get(&ring) {
                    vc_join(&mut my_vc, rv);
                }
                object_vc.insert(ring, my_vc.clone());
                vcs.insert(t, my_vc.clone());
                if op == SyncOp::RingComplete {
                    if let Some(caller) = row.target {
                        threads_seen.insert(caller);
                        let mut cv = vc_of(&mut vcs, caller);
                        vc_join(&mut cv, &my_vc);
                        vcs.insert(caller, cv);
                    }
                }
                tick(&mut vcs, &mut ticks, t);
            }
            SyncOp::SharedRead | SyncOp::SharedWrite => {
                let Some(cell_id) = row.object else { continue };
                let write = op == SyncOp::SharedWrite;
                let access = Access {
                    thread: t,
                    clock: my_vc.get(&t).copied().unwrap_or(1),
                    write,
                    time_ns: row.time_ns,
                };
                let cell = cells.entry(cell_id).or_default();
                cell.threads.insert(t);
                cell.phase.access(t, write);
                if write {
                    cell.writes += 1;
                }
                // Happens-before check against the last write…
                let ordered = |prev: &Access, now_vc: &Vc| {
                    prev.thread == t || now_vc.get(&prev.thread).copied().unwrap_or(0) >= prev.clock
                };
                if cell.race.is_none() {
                    if let Some(w) = &cell.last_write {
                        if !ordered(w, &my_vc) {
                            cell.race = Some((w.clone(), access.clone()));
                        }
                    }
                    // …and, for writes, against reads since that write.
                    if write {
                        if let Some(r) = cell.reads.iter().find(|r| !ordered(r, &my_vc)) {
                            cell.race = Some((r.clone(), access.clone()));
                        }
                    }
                }
                if write {
                    cell.last_write = Some(access);
                    cell.reads.clear();
                } else {
                    cell.reads.retain(|r| r.thread != t);
                    cell.reads.push(access);
                }
                // Eraser lockset refinement.
                let held_now: BTreeSet<u64> = held
                    .get(&t)
                    .map(|v| v.iter().map(|&(l, _)| l).collect())
                    .unwrap_or_default();
                match &mut cell.lockset {
                    None => cell.lockset = Some(held_now),
                    Some(ls) => *ls = ls.intersection(&held_now).copied().collect(),
                }
            }
        }
    }

    // --- findings ---
    let mut findings = Vec::new();

    for (&cell_id, cell) in &cells {
        let lockset_empty = cell.lockset.as_ref().is_some_and(BTreeSet::is_empty);
        let shared = cell.phase == CellPhase::SharedModified;
        if let Some((a, b)) = &cell.race {
            findings.push(RaceFinding {
                code: codes::DATA_RACE,
                severity: Severity::Error,
                message: format!("data race on shared cell {}", display(cell_id)),
                notes: vec![
                    format!(
                        "{} and {} are unordered: no lock, condvar, spawn/join or ring edge connects them under any schedule",
                        access_label(a),
                        access_label(b)
                    ),
                    if lockset_empty {
                        "the lockset witness concurs: no common lock protects this cell".to_string()
                    } else {
                        "the observed run cannot exhibit the race (one thread runs at a time); real hardware can".to_string()
                    },
                ],
                help: Some(
                    "guard every access with one SgxThreadMutex, or order the accesses with thread spawn/join".to_string(),
                ),
                kind: RaceKind::DataRace {
                    cell: names.get(&cell_id).cloned().unwrap_or_else(|| format!("#{cell_id}")),
                    accesses: [access_label(a), access_label(b)],
                    lockset_empty,
                },
            });
        } else if shared && lockset_empty {
            findings.push(RaceFinding {
                code: codes::LOCKSET,
                severity: Severity::Warning,
                message: format!(
                    "no common lock protects shared cell {} ({} threads, {} writes)",
                    display(cell_id),
                    cell.threads.len(),
                    cell.writes
                ),
                notes: vec![
                    "fork/join or hand-off edges order the observed accesses, but the discipline is fragile"
                        .to_string(),
                ],
                help: Some("hold one designated mutex around every access".to_string()),
                kind: RaceKind::LocksetSuspicion {
                    cell: names.get(&cell_id).cloned().unwrap_or_else(|| format!("#{cell_id}")),
                    threads: cell.threads.len(),
                },
            });
        }
    }

    // Lock-order cycles: DFS over the edge set, canonicalised for dedup.
    for cycle in find_cycles(&order_edges) {
        let cycle_names: Vec<String> = cycle
            .iter()
            .map(|&l| names.get(&l).cloned().unwrap_or_else(|| format!("#{l}")))
            .collect();
        let edges: Vec<String> = cycle
            .iter()
            .zip(cycle.iter().cycle().skip(1))
            .map(|(&a, &b)| order_edges[&(a, b)].clone())
            .collect();
        let mut shown: Vec<String> = cycle_names.iter().map(|n| format!("`{n}`")).collect();
        shown.push(shown[0].clone());
        findings.push(RaceFinding {
            code: codes::LOCK_ORDER,
            severity: Severity::Error,
            message: format!("lock-order cycle: {}", shown.join(" -> ")),
            notes: edges.clone(),
            help: Some("impose a global acquisition order on these locks".to_string()),
            kind: RaceKind::LockOrderCycle {
                cycle: cycle_names,
                edges,
            },
        });
    }

    // Locks held across (non-sync) ocalls: the §3.4 re-entrancy hazard.
    let sym_names: HashMap<(u32, u32), &str> = trace
        .symbols
        .iter()
        .filter(|s| !s.kind_is_ecall)
        .map(|s| ((s.enclave, s.index), s.name.as_str()))
        .collect();
    let mut across: BTreeMap<(u64, String), usize> = BTreeMap::new();
    for (&lock, ivs) in &intervals {
        for &(thread, start, end) in ivs {
            for o in trace.ocalls.iter() {
                if o.thread != thread || o.start_ns < start || o.start_ns >= end {
                    continue;
                }
                let name = sym_names
                    .get(&(o.enclave, o.call_index))
                    .copied()
                    .unwrap_or("?");
                if sync_ocalls::is_sync_ocall(name) {
                    continue; // the lock's own sleep/wake traffic
                }
                *across.entry((lock, name.to_string())).or_default() += 1;
            }
        }
    }
    for ((lock, ocall), count) in across {
        findings.push(RaceFinding {
            code: codes::LOCK_ACROSS_OCALL,
            severity: Severity::Warning,
            message: format!(
                "lock {} held across ocall `{ocall}` ({count} time(s))",
                display(lock)
            ),
            notes: vec![
                "while the thread is outside, the host can re-enter the enclave on another TCS and block on this lock (§3.4 re-entrancy hazard)"
                    .to_string(),
            ],
            help: Some("release the lock before the ocall, or move the ocall out of the critical section".to_string()),
            kind: RaceKind::LockAcrossOcall {
                lock: names.get(&lock).cloned().unwrap_or_else(|| format!("#{lock}")),
                ocall,
                occurrences: count,
            },
        });
    }

    // Errors first, then warnings, each in construction (deterministic)
    // order.
    findings.sort_by_key(|f| match f.severity {
        Severity::Error => 0,
        Severity::Warning => 1,
        Severity::Note => 2,
    });

    RaceReport {
        findings,
        events: trace.syncev.len(),
        threads: threads_seen.len(),
        locks: locks_seen.len(),
        cells: cells.len(),
    }
}

/// Enumerates elementary cycles in the lock-order graph, canonicalised
/// (rotated so the smallest lock id leads) and deduplicated. The graphs
/// here are tiny — a handful of locks — so a DFS from every node is fine.
fn find_cycles(edges: &BTreeMap<(u64, u64), String>) -> Vec<Vec<u64>> {
    let mut adj: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    for &(a, b) in edges.keys() {
        adj.entry(a).or_default().push(b);
    }
    let mut seen: BTreeSet<Vec<u64>> = BTreeSet::new();
    let mut out = Vec::new();
    for &start in adj.keys() {
        let mut stack = vec![start];
        dfs_cycles(start, &adj, &mut stack, &mut seen, &mut out);
    }
    out
}

fn dfs_cycles(
    node: u64,
    adj: &BTreeMap<u64, Vec<u64>>,
    stack: &mut Vec<u64>,
    seen: &mut BTreeSet<Vec<u64>>,
    out: &mut Vec<Vec<u64>>,
) {
    let Some(nexts) = adj.get(&node) else { return };
    for &next in nexts {
        if let Some(pos) = stack.iter().position(|&n| n == next) {
            // Found a cycle: stack[pos..] + back edge.
            let mut cycle: Vec<u64> = stack[pos..].to_vec();
            // Canonical rotation: smallest id first.
            let min_pos = cycle
                .iter()
                .enumerate()
                .min_by_key(|&(_, &v)| v)
                .map(|(i, _)| i)
                .unwrap_or(0);
            cycle.rotate_left(min_pos);
            if seen.insert(cycle.clone()) {
                out.push(cycle);
            }
            continue;
        }
        if stack.len() > 64 {
            continue; // depth guard; real lock graphs are tiny
        }
        stack.push(next);
        dfs_cycles(next, adj, stack, seen, out);
        stack.pop();
    }
}

/// Decodes the lock path recorded in a lock-acquire `aux` word — exposed
/// so reports can show how contended the racing locks were.
#[must_use]
pub fn decode_lock_path(aux: u64) -> Option<LockPath> {
    LockPath::from_sync_aux(aux)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::SyncEvRow;

    fn ev(thread: u64, op: SyncOp, object: Option<u64>, target: Option<u64>) -> SyncEvRow {
        SyncEvRow {
            thread,
            op: op.code(),
            object,
            target,
            aux: 0,
            label: String::new(),
            time_ns: 0,
        }
    }

    fn named(mut row: SyncEvRow, label: &str, time_ns: u64) -> SyncEvRow {
        row.label = label.to_string();
        row.time_ns = time_ns;
        row
    }

    #[test]
    fn empty_trace_is_clean() {
        let report = analyze(&TraceDb::default());
        assert!(report.findings.is_empty());
        assert_eq!(report.exit_code(), 0);
    }

    #[test]
    fn unordered_writes_are_a_race() {
        let mut trace = TraceDb::default();
        // Two threads spawned by the driver write the same cell with no
        // lock: unordered.
        trace
            .syncev
            .insert(ev(EXTERNAL_THREAD, SyncOp::ThreadSpawn, None, Some(0)));
        trace
            .syncev
            .insert(ev(EXTERNAL_THREAD, SyncOp::ThreadSpawn, None, Some(1)));
        trace.syncev.insert(named(
            ev(0, SyncOp::SharedWrite, Some(7), None),
            "counter",
            100,
        ));
        trace.syncev.insert(named(
            ev(1, SyncOp::SharedWrite, Some(7), None),
            "counter",
            200,
        ));
        let report = analyze(&trace);
        assert_eq!(report.exit_code(), 3);
        assert!(report
            .findings
            .iter()
            .any(|f| f.code == codes::DATA_RACE && f.message.contains("counter")));
    }

    #[test]
    fn lock_protected_writes_are_ordered() {
        let mut trace = TraceDb::default();
        let lock = Some(3);
        trace
            .syncev
            .insert(ev(EXTERNAL_THREAD, SyncOp::ThreadSpawn, None, Some(0)));
        trace
            .syncev
            .insert(ev(EXTERNAL_THREAD, SyncOp::ThreadSpawn, None, Some(1)));
        for t in [0u64, 1] {
            trace.syncev.insert(ev(t, SyncOp::LockAcquire, lock, None));
            trace
                .syncev
                .insert(ev(t, SyncOp::SharedWrite, Some(7), None));
            trace.syncev.insert(ev(t, SyncOp::LockRelease, lock, None));
        }
        let report = analyze(&trace);
        assert_eq!(report.exit_code(), 0, "{}", report.render());
        assert!(report.findings.is_empty());
    }

    #[test]
    fn spawn_edge_orders_parent_initialisation() {
        let mut trace = TraceDb::default();
        // Driver writes, then spawns the reader: ordered, no finding.
        trace
            .syncev
            .insert(ev(EXTERNAL_THREAD, SyncOp::SharedWrite, Some(7), None));
        trace
            .syncev
            .insert(ev(EXTERNAL_THREAD, SyncOp::ThreadSpawn, None, Some(0)));
        trace
            .syncev
            .insert(ev(0, SyncOp::SharedRead, Some(7), None));
        trace.syncev.insert(ev(0, SyncOp::ThreadJoin, None, None));
        // And the driver reads back after the join: still ordered.
        trace
            .syncev
            .insert(ev(EXTERNAL_THREAD, SyncOp::SharedRead, Some(7), None));
        let report = analyze(&trace);
        assert!(report.findings.is_empty(), "{}", report.render());
    }

    #[test]
    fn read_read_is_never_a_race() {
        let mut trace = TraceDb::default();
        trace
            .syncev
            .insert(ev(0, SyncOp::SharedRead, Some(7), None));
        trace
            .syncev
            .insert(ev(1, SyncOp::SharedRead, Some(7), None));
        let report = analyze(&trace);
        assert!(report.findings.is_empty());
    }

    #[test]
    fn lock_inversion_is_a_cycle() {
        let mut trace = TraceDb::default();
        let (a, b) = (Some(1), Some(2));
        // lt0: A then B; lt1: B then A.
        for (t, first, second) in [(0u64, a, b), (1, b, a)] {
            trace.syncev.insert(ev(t, SyncOp::LockAcquire, first, None));
            trace
                .syncev
                .insert(ev(t, SyncOp::LockAcquire, second, None));
            trace
                .syncev
                .insert(ev(t, SyncOp::LockRelease, second, None));
            trace.syncev.insert(ev(t, SyncOp::LockRelease, first, None));
        }
        let report = analyze(&trace);
        assert_eq!(report.exit_code(), 3);
        let cycles: Vec<_> = report
            .findings
            .iter()
            .filter(|f| f.code == codes::LOCK_ORDER)
            .collect();
        assert_eq!(cycles.len(), 1, "{}", report.render());
    }

    #[test]
    fn consistent_nesting_is_not_a_cycle() {
        let mut trace = TraceDb::default();
        let (a, b) = (Some(1), Some(2));
        for t in [0u64, 1] {
            trace.syncev.insert(ev(t, SyncOp::LockAcquire, a, None));
            trace.syncev.insert(ev(t, SyncOp::LockAcquire, b, None));
            trace.syncev.insert(ev(t, SyncOp::LockRelease, b, None));
            trace.syncev.insert(ev(t, SyncOp::LockRelease, a, None));
        }
        let report = analyze(&trace);
        assert!(report.findings.is_empty());
    }

    #[test]
    fn ring_handoff_orders_caller_and_worker() {
        let mut trace = TraceDb::default();
        // Caller writes a cell, posts to the ring; the worker completes
        // and reads the cell: ordered through the ring edges.
        trace
            .syncev
            .insert(ev(0, SyncOp::SharedWrite, Some(9), None));
        trace.syncev.insert(ev(0, SyncOp::RingPost, Some(5), None));
        trace
            .syncev
            .insert(ev(2, SyncOp::RingComplete, Some(5), Some(0)));
        trace
            .syncev
            .insert(ev(2, SyncOp::SharedRead, Some(9), None));
        let report = analyze(&trace);
        assert!(report.findings.is_empty(), "{}", report.render());
    }

    #[test]
    fn condvar_signal_orders_waiter() {
        let mut trace = TraceDb::default();
        // lt0 waits (releasing lock 1 into cv 4); lt1 writes then signals;
        // lt0 reads after resuming: ordered by the signal edge.
        trace
            .syncev
            .insert(ev(0, SyncOp::LockAcquire, Some(1), None));
        trace
            .syncev
            .insert(ev(0, SyncOp::LockRelease, Some(1), None));
        trace.syncev.insert(ev(0, SyncOp::CondWait, Some(4), None));
        trace
            .syncev
            .insert(ev(1, SyncOp::SharedWrite, Some(9), None));
        trace
            .syncev
            .insert(ev(1, SyncOp::CondSignal, Some(4), Some(0)));
        trace
            .syncev
            .insert(ev(0, SyncOp::LockAcquire, Some(1), None));
        trace
            .syncev
            .insert(ev(0, SyncOp::SharedRead, Some(9), None));
        trace
            .syncev
            .insert(ev(0, SyncOp::LockRelease, Some(1), None));
        let report = analyze(&trace);
        assert!(report.findings.is_empty(), "{}", report.render());
    }

    #[test]
    fn lockset_warning_without_hb_race() {
        let mut trace = TraceDb::default();
        // Sequential spawn chains order the accesses (no HB race), but the
        // two threads use *different* locks: lockset-only warning.
        trace
            .syncev
            .insert(ev(EXTERNAL_THREAD, SyncOp::ThreadSpawn, None, Some(0)));
        trace
            .syncev
            .insert(ev(0, SyncOp::LockAcquire, Some(1), None));
        trace
            .syncev
            .insert(ev(0, SyncOp::SharedWrite, Some(9), None));
        trace
            .syncev
            .insert(ev(0, SyncOp::LockRelease, Some(1), None));
        trace.syncev.insert(ev(0, SyncOp::ThreadJoin, None, None));
        trace
            .syncev
            .insert(ev(EXTERNAL_THREAD, SyncOp::ThreadSpawn, None, Some(1)));
        trace
            .syncev
            .insert(ev(1, SyncOp::LockAcquire, Some(2), None));
        trace
            .syncev
            .insert(ev(1, SyncOp::SharedWrite, Some(9), None));
        trace
            .syncev
            .insert(ev(1, SyncOp::LockRelease, Some(2), None));
        let report = analyze(&trace);
        assert_eq!(report.exit_code(), 0, "{}", report.render());
        assert!(report.findings.iter().any(|f| f.code == codes::LOCKSET));
    }

    #[test]
    fn render_shapes() {
        let mut trace = TraceDb::default();
        trace
            .syncev
            .insert(ev(0, SyncOp::SharedWrite, Some(7), None));
        trace
            .syncev
            .insert(ev(1, SyncOp::SharedWrite, Some(7), None));
        let report = analyze(&trace);
        let text = report.render();
        assert!(text.contains("error[RACE-E001]"), "{text}");
        assert!(text.contains("= help:"), "{text}");
        let json = report.to_json();
        assert!(json.contains("\"exit_code\":3"), "{json}");
    }

    #[test]
    fn lock_path_decoding() {
        assert_eq!(decode_lock_path(0), Some(LockPath::Uncontended));
        assert_eq!(decode_lock_path((3 << 8) | 1), Some(LockPath::Spun(3)));
        assert_eq!(decode_lock_path((2 << 8) | 2), Some(LockPath::Slept(2)));
        assert_eq!(decode_lock_path(7), None);
    }
}
