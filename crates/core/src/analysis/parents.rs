//! The flattened call-instance view with direct and indirect parents
//! (Figure 4).
//!
//! *Direct* parents are logged by the event logger: an ecall E is the
//! direct parent of an ocall O iff O was called during E's execution (and
//! vice versa for nested ecalls). *Indirect* parents are derived here: the
//! previous completed call **of the same kind** that belongs to the **same
//! direct parent** (or, for top-level calls, the previous top-level call of
//! the same kind on the same thread).

use std::collections::HashMap;

use sim_core::CostModel;

use crate::events::{CallKind, CallRef};
use crate::trace::TraceDb;

/// One call occurrence with resolved parent links.
#[derive(Debug, Clone)]
pub struct CallInstance {
    /// Which call this is an instance of.
    pub call: CallRef,
    /// Row id in the source table (`ecalls` or `ocalls` depending on kind).
    pub row: u64,
    /// Issuing thread.
    pub thread: u64,
    /// Start timestamp (ns).
    pub start_ns: u64,
    /// End timestamp (ns).
    pub end_ns: u64,
    /// Raw duration (ns).
    pub duration_ns: u64,
    /// Duration with the transition overhead subtracted for ecalls
    /// (§4.1.2); equals `duration_ns` for ocalls.
    pub adjusted_ns: u64,
    /// Direct parent, as (kind, row id).
    pub direct_parent: Option<(CallKind, u64)>,
    /// Index (into [`Instances::all`]) of the indirect parent.
    pub indirect_parent: Option<usize>,
    /// AEXs observed during this call (ecalls only).
    pub aex_count: u64,
}

/// The instance view over a whole trace.
#[derive(Debug, Default)]
pub struct Instances {
    /// All instances, ordered by start time.
    pub all: Vec<CallInstance>,
    /// Maps (kind, row) to the index in [`Instances::all`].
    index: HashMap<(CallKind, u64), usize>,
}

impl Instances {
    /// Builds the view: merges the ecall and ocall tables, sorts by start
    /// time and resolves indirect parents.
    pub fn build(trace: &TraceDb, cost: &CostModel) -> Instances {
        let transition = cost.sdk_ecall_overhead().as_nanos();
        let mut all: Vec<CallInstance> = Vec::with_capacity(trace.event_count());
        for (row, e) in trace.ecalls.iter_with_ids() {
            let duration = e.end_ns.saturating_sub(e.start_ns);
            all.push(CallInstance {
                call: CallRef {
                    enclave: e.enclave,
                    kind: CallKind::Ecall,
                    index: e.call_index,
                },
                row: row.0 as u64,
                thread: e.thread,
                start_ns: e.start_ns,
                end_ns: e.end_ns,
                duration_ns: duration,
                adjusted_ns: duration.saturating_sub(transition),
                direct_parent: e.parent_ocall.map(|r| (CallKind::Ocall, r)),
                indirect_parent: None,
                aex_count: e.aex_count,
            });
        }
        for (row, o) in trace.ocalls.iter_with_ids() {
            let duration = o.end_ns.saturating_sub(o.start_ns);
            all.push(CallInstance {
                call: CallRef {
                    enclave: o.enclave,
                    kind: CallKind::Ocall,
                    index: o.call_index,
                },
                row: row.0 as u64,
                thread: o.thread,
                start_ns: o.start_ns,
                end_ns: o.end_ns,
                duration_ns: duration,
                adjusted_ns: duration,
                direct_parent: o.parent_ecall.map(|r| (CallKind::Ecall, r)),
                indirect_parent: None,
                aex_count: 0,
            });
        }
        all.sort_by_key(|i| (i.start_ns, i.call.kind, i.row));

        let index: HashMap<(CallKind, u64), usize> = all
            .iter()
            .enumerate()
            .map(|(idx, i)| ((i.call.kind, i.row), idx))
            .collect();

        // Indirect parents: within each (thread, direct-parent, kind)
        // group, link each call to the previous one (Figure 4).
        type GroupKey = (u64, Option<(CallKind, u64)>, CallKind);
        let mut last_in_group: HashMap<GroupKey, usize> = HashMap::new();
        for (idx, inst) in all.iter_mut().enumerate() {
            let key = (inst.thread, inst.direct_parent, inst.call.kind);
            if let Some(&prev) = last_in_group.get(&key) {
                inst.indirect_parent = Some(prev);
            }
            last_in_group.insert(key, idx);
        }

        Instances { all, index }
    }

    /// Looks up an instance by its source (kind, row id).
    pub fn by_row(&self, kind: CallKind, row: u64) -> Option<&CallInstance> {
        self.index.get(&(kind, row)).map(|&i| &self.all[i])
    }

    /// All instances of one call, in start order.
    pub fn of_call(&self, call: CallRef) -> impl Iterator<Item = &CallInstance> {
        self.all.iter().filter(move |i| i.call == call)
    }

    /// Distinct calls present in the trace, sorted.
    pub fn distinct_calls(&self) -> Vec<CallRef> {
        let mut calls: Vec<CallRef> = self.all.iter().map(|i| i.call).collect();
        calls.sort();
        calls.dedup();
        calls
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{EcallRow, OcallRow};
    use sim_core::HwProfile;

    fn ecall(thread: u64, idx: u32, start: u64, end: u64, parent: Option<u64>) -> EcallRow {
        EcallRow {
            thread,
            enclave: 1,
            call_index: idx,
            start_ns: start,
            end_ns: end,
            parent_ocall: parent,
            aex_count: 0,
            failed: false,
        }
    }

    fn ocall(thread: u64, idx: u32, start: u64, end: u64, parent: Option<u64>) -> OcallRow {
        OcallRow {
            thread,
            enclave: 1,
            call_index: idx,
            start_ns: start,
            end_ns: end,
            parent_ecall: parent,
            failed: false,
        }
    }

    fn build(trace: &TraceDb) -> Instances {
        Instances::build(trace, &HwProfile::Unpatched.cost_model())
    }

    /// Figure 4 case (1): successive top-level ecalls chain as indirect
    /// parents.
    #[test]
    fn fig4_case1_successive_ecalls() {
        let mut trace = TraceDb::default();
        trace.ecalls.insert(ecall(0, 0, 0, 10, None)); // E1
        trace.ecalls.insert(ecall(0, 0, 20, 30, None)); // E2
        trace.ecalls.insert(ecall(0, 0, 40, 50, None)); // E3
        let inst = build(&trace);
        assert_eq!(inst.all[0].indirect_parent, None);
        assert_eq!(inst.all[1].indirect_parent, Some(0));
        assert_eq!(inst.all[2].indirect_parent, Some(1));
    }

    /// Figure 4 case (2): two ocalls inside the same ecall — the second's
    /// indirect parent is the first.
    #[test]
    fn fig4_case2_sibling_ocalls() {
        let mut trace = TraceDb::default();
        trace.ecalls.insert(ecall(0, 0, 0, 100, None)); // E1, row 0
        trace.ocalls.insert(ocall(0, 0, 10, 20, Some(0))); // O2
        trace.ocalls.insert(ocall(0, 0, 30, 40, Some(0))); // O3
        let inst = build(&trace);
        let o2 = inst.by_row(CallKind::Ocall, 0).unwrap();
        let o3 = inst.by_row(CallKind::Ocall, 1).unwrap();
        assert_eq!(o2.indirect_parent, None);
        let o2_idx = inst
            .all
            .iter()
            .position(|i| i.call.kind == CallKind::Ocall && i.row == 0)
            .unwrap();
        assert_eq!(o3.indirect_parent, Some(o2_idx));
    }

    /// Figure 4 case (3): E1 → O2 → E3 (each nested in the previous): no
    /// indirect parents anywhere.
    #[test]
    fn fig4_case3_nested_chain() {
        let mut trace = TraceDb::default();
        trace.ecalls.insert(ecall(0, 0, 0, 100, None)); // E1, ecall row 0
        trace.ocalls.insert(ocall(0, 0, 10, 90, Some(0))); // O2, ocall row 0
        trace.ecalls.insert(ecall(0, 1, 20, 80, Some(0))); // E3 nested in O2
        let inst = build(&trace);
        for i in &inst.all {
            assert_eq!(i.indirect_parent, None, "{i:?}");
        }
    }

    /// Figure 4 case (4): E1, O2 (inside E1), E3 top-level: E3's indirect
    /// parent is E1, skipping the different-kind O2.
    #[test]
    fn fig4_case4_skips_different_kind() {
        let mut trace = TraceDb::default();
        trace.ecalls.insert(ecall(0, 0, 0, 50, None)); // E1
        trace.ocalls.insert(ocall(0, 0, 10, 20, Some(0))); // O2 inside E1
        trace.ecalls.insert(ecall(0, 0, 60, 90, None)); // E3
        let inst = build(&trace);
        let e3 = inst.by_row(CallKind::Ecall, 1).unwrap();
        let e1_idx = inst
            .all
            .iter()
            .position(|i| i.call.kind == CallKind::Ecall && i.row == 0)
            .unwrap();
        assert_eq!(e3.indirect_parent, Some(e1_idx));
    }

    /// Calls on different threads never link.
    #[test]
    fn threads_are_independent() {
        let mut trace = TraceDb::default();
        trace.ecalls.insert(ecall(0, 0, 0, 10, None));
        trace.ecalls.insert(ecall(1, 0, 20, 30, None));
        let inst = build(&trace);
        assert_eq!(inst.all[1].indirect_parent, None);
    }

    #[test]
    fn ecall_durations_are_transition_adjusted() {
        let mut trace = TraceDb::default();
        trace.ecalls.insert(ecall(0, 0, 0, 10_000, None));
        trace.ocalls.insert(ocall(0, 0, 0, 10_000, None));
        let inst = build(&trace);
        let e = inst.by_row(CallKind::Ecall, 0).unwrap();
        let o = inst.by_row(CallKind::Ocall, 0).unwrap();
        assert_eq!(e.duration_ns, 10_000);
        assert_eq!(e.adjusted_ns, 10_000 - 4_205);
        assert_eq!(o.adjusted_ns, 10_000);
    }

    #[test]
    fn distinct_calls_sorted_and_deduped() {
        let mut trace = TraceDb::default();
        trace.ecalls.insert(ecall(0, 1, 0, 1, None));
        trace.ecalls.insert(ecall(0, 0, 2, 3, None));
        trace.ecalls.insert(ecall(0, 1, 4, 5, None));
        let inst = build(&trace);
        let calls = inst.distinct_calls();
        assert_eq!(calls.len(), 2);
        assert!(calls[0].index < calls[1].index);
    }
}
