//! EDL lint driver with trace cross-checking.
//!
//! [`sgx_edl::lint`] is purely static: it sees the interface declaration
//! and nothing else. This module intersects its diagnostics with a
//! recorded [`TraceDb`], which settles questions the static pass can only
//! flag conservatively:
//!
//! * an `EDL-W001` `user_check` pointer on a call the trace proves was
//!   actually exercised is escalated from *warning* to *error* — the
//!   unchecked pointer is not dead interface, production code crosses it;
//! * a public ecall that never appears in the trace becomes `EDL-W009`,
//!   the static twin of the security analysis' make-private
//!   recommendation (§3.6): unused surface should be removed.

use std::collections::HashMap;

use sgx_edl::ast::EdlFile;
use sgx_edl::lint::{codes, lint_file, Diagnostic, LintConfig, Severity};

use crate::trace::TraceDb;

/// Lints a parsed EDL interface, cross-checking against `trace` when one
/// is supplied. Diagnostics come back sorted by source position.
pub fn lint_interface(
    file: &EdlFile,
    config: &LintConfig,
    trace: Option<&TraceDb>,
) -> Vec<Diagnostic> {
    let mut diags = lint_file(file, config);
    if let Some(trace) = trace {
        cross_check(file, trace, &mut diags);
        diags.sort_by_key(|d| (d.span.start.line, d.span.start.col, d.code));
    }
    diags
}

/// Number of recorded executions per symbol name (ecalls and ocalls).
fn execution_counts(trace: &TraceDb) -> HashMap<String, usize> {
    let mut counts: HashMap<String, usize> = HashMap::new();
    for sym in trace.symbols.iter() {
        let n = if sym.kind_is_ecall {
            trace
                .ecalls
                .iter()
                .filter(|r| r.enclave == sym.enclave && r.call_index == sym.index)
                .count()
        } else {
            trace
                .ocalls
                .iter()
                .filter(|r| r.enclave == sym.enclave && r.call_index == sym.index)
                .count()
        };
        *counts.entry(sym.name.clone()).or_default() += n;
    }
    counts
}

fn cross_check(file: &EdlFile, trace: &TraceDb, diags: &mut Vec<Diagnostic>) {
    let counts = execution_counts(trace);

    // Escalate user_check warnings on calls the trace exercises.
    for d in diags.iter_mut() {
        if d.code != codes::USER_CHECK || d.severity >= Severity::Error {
            continue;
        }
        let Some(func) = &d.function else { continue };
        let n = counts.get(func).copied().unwrap_or(0);
        if n > 0 {
            d.severity = Severity::Error;
            d.message
                .push_str(&format!("; the trace exercises `{func}` {n} time(s)"));
        }
    }

    // Public ecalls the trace never exercised: candidates for removal.
    for decl in file.trusted.iter().filter(|d| d.public) {
        if counts.get(&decl.name).copied().unwrap_or(0) > 0 {
            continue;
        }
        diags.push(Diagnostic {
            code: codes::UNUSED_ECALL,
            severity: Severity::Note,
            span: decl.name_span,
            message: format!(
                "public ecall `{}` is never exercised by the supplied trace",
                decl.name
            ),
            suggestion: Some(
                "remove the ecall, or make it private if it is only needed during ocalls"
                    .to_string(),
            ),
            function: Some(decl.name.clone()),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{EcallRow, SymbolRow};
    use sgx_edl::parse_file;

    const EDL: &str = "enclave { trusted {
        public void ecall_used([user_check] void* p);
        public void ecall_dead();
    }; };";

    fn trace_exercising_used() -> TraceDb {
        let mut trace = TraceDb::default();
        trace.symbols.insert(SymbolRow {
            enclave: 1,
            kind_is_ecall: true,
            index: 0,
            name: "ecall_used".into(),
            public: true,
            allowed_ecalls: vec![],
            user_check_params: vec!["p".into()],
        });
        trace.symbols.insert(SymbolRow {
            enclave: 1,
            kind_is_ecall: true,
            index: 1,
            name: "ecall_dead".into(),
            public: true,
            allowed_ecalls: vec![],
            user_check_params: vec![],
        });
        for k in 0..3u64 {
            trace.ecalls.insert(EcallRow {
                thread: 0,
                enclave: 1,
                call_index: 0,
                start_ns: k * 10_000,
                end_ns: k * 10_000 + 5_000,
                parent_ocall: None,
                aex_count: 0,
                failed: false,
            });
        }
        trace
    }

    #[test]
    fn static_pass_alone_keeps_warning_severity() {
        let file = parse_file(EDL).unwrap();
        let diags = lint_interface(&file, &LintConfig::default(), None);
        let w1 = diags.iter().find(|d| d.code == codes::USER_CHECK).unwrap();
        assert_eq!(w1.severity, Severity::Warning);
        assert!(!diags.iter().any(|d| d.code == codes::UNUSED_ECALL));
    }

    #[test]
    fn exercised_user_check_escalates_to_error() {
        let file = parse_file(EDL).unwrap();
        let trace = trace_exercising_used();
        let diags = lint_interface(&file, &LintConfig::default(), Some(&trace));
        let w1 = diags.iter().find(|d| d.code == codes::USER_CHECK).unwrap();
        assert_eq!(w1.severity, Severity::Error);
        assert!(w1.message.contains("3 time(s)"), "{w1:?}");
    }

    #[test]
    fn unexercised_public_ecall_reported_as_w009() {
        let file = parse_file(EDL).unwrap();
        let trace = trace_exercising_used();
        let diags = lint_interface(&file, &LintConfig::default(), Some(&trace));
        let w9 = diags
            .iter()
            .find(|d| d.code == codes::UNUSED_ECALL)
            .unwrap();
        assert_eq!(w9.function.as_deref(), Some("ecall_dead"));
        assert_eq!(w9.severity, Severity::Note);
        // Anchored at the ecall's name on line 3.
        assert_eq!(w9.span.start.line, 3);
        // The exercised ecall is not flagged.
        assert!(!diags
            .iter()
            .any(|d| d.code == codes::UNUSED_ECALL && d.function.as_deref() == Some("ecall_used")));
    }

    #[test]
    fn empty_trace_flags_every_public_ecall() {
        let file = parse_file(EDL).unwrap();
        let trace = TraceDb::default();
        let diags = lint_interface(&file, &LintConfig::default(), Some(&trace));
        let unused: Vec<_> = diags
            .iter()
            .filter(|d| d.code == codes::UNUSED_ECALL)
            .collect();
        assert_eq!(unused.len(), 2);
    }
}
