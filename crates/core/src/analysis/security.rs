//! Enclave interface security analysis (§3.6, §4.3.2).
//!
//! Three checks:
//!
//! 1. **Private-ecall candidates**: if every traced instance of a public
//!    ecall has a direct parent (it was only ever issued during ocalls),
//!    recommend declaring it private, listing the ocalls that need to
//!    `allow()` it. The recommendation is workload-dependent by nature.
//! 2. **Allow-list minimisation**: compare each ocall's declared `allow()`
//!    set (from the captured symbols, or a supplied EDL) with the ecalls
//!    actually observed during it; recommend removing the rest. Without a
//!    declared set, report the smallest sufficient set.
//! 3. **`user_check` pointers**: highlight calls with `user_check`
//!    parameters so the developer re-checks their validation.

use std::collections::{BTreeMap, BTreeSet};

use crate::events::{CallKind, CallRef};

use super::detect::{Detection, Problem, Recommendation, PRIO_SECURITY};
use super::parents::Instances;
use super::{symbol_name, Analyzer};

/// Runs the three security checks.
pub fn analyze(analyzer: &Analyzer<'_>, instances: &Instances) -> Vec<Detection> {
    let mut out = Vec::new();
    out.extend(private_candidates(analyzer, instances));
    out.extend(allow_list_minimisation(analyzer, instances));
    out.extend(user_check_review(analyzer));
    out
}

fn private_candidates(analyzer: &Analyzer<'_>, instances: &Instances) -> Vec<Detection> {
    let trace = analyzer.trace();
    let mut out = Vec::new();
    for sym in trace.symbols.iter().filter(|s| s.kind_is_ecall && s.public) {
        let call = sym.call_ref();
        let mut total = 0usize;
        let mut parent_ocalls: BTreeSet<CallRef> = BTreeSet::new();
        let mut all_nested = true;
        for i in instances.of_call(call) {
            total += 1;
            match i.direct_parent {
                Some((CallKind::Ocall, row)) => {
                    if let Some(parent) = instances.by_row(CallKind::Ocall, row) {
                        parent_ocalls.insert(parent.call);
                    }
                }
                _ => all_nested = false,
            }
        }
        if total == 0 || !all_nested {
            continue;
        }
        let allow_from: Vec<String> = parent_ocalls
            .iter()
            .map(|&o| symbol_name(trace, o))
            .collect();
        out.push(Detection {
            target: call,
            name: sym.name.clone(),
            problem: Problem::Interface,
            recommendation: Recommendation::MakePrivate { allow_from },
            evidence: format!(
                "all {total} executions were issued during ocalls (workload-dependent)"
            ),
            priority: PRIO_SECURITY,
        });
    }
    out
}

fn allow_list_minimisation(analyzer: &Analyzer<'_>, instances: &Instances) -> Vec<Detection> {
    let trace = analyzer.trace();
    // Observed nested-ecall sets per ocall.
    let mut observed: BTreeMap<CallRef, BTreeSet<u32>> = BTreeMap::new();
    for i in &instances.all {
        if i.call.kind != CallKind::Ecall {
            continue;
        }
        if let Some((CallKind::Ocall, row)) = i.direct_parent {
            if let Some(parent) = instances.by_row(CallKind::Ocall, row) {
                observed
                    .entry(parent.call)
                    .or_default()
                    .insert(i.call.index);
            }
        }
    }
    let mut out = Vec::new();
    for sym in trace.symbols.iter().filter(|s| !s.kind_is_ecall) {
        let call = sym.call_ref();
        // Prefer the supplied EDL's declaration when available.
        let declared: Option<Vec<u32>> = match analyzer.edl() {
            Some(spec) => spec
                .ocall_by_name(&sym.name)
                .map(|o| o.allowed_ecalls.iter().map(|&i| i as u32).collect()),
            None => Some(sym.allowed_ecalls.clone()),
        };
        let used = observed.get(&call).cloned().unwrap_or_default();
        let Some(declared) = declared else { continue };
        let excess: Vec<u32> = declared
            .iter()
            .copied()
            .filter(|i| !used.contains(i))
            .collect();
        if excess.is_empty() {
            continue;
        }
        let remove: Vec<String> = excess
            .iter()
            .map(|&i| {
                symbol_name(
                    trace,
                    CallRef {
                        enclave: call.enclave,
                        kind: CallKind::Ecall,
                        index: i,
                    },
                )
            })
            .collect();
        out.push(Detection {
            target: call,
            name: sym.name.clone(),
            problem: Problem::Interface,
            recommendation: Recommendation::RestrictAllowedEcalls { remove },
            evidence: format!(
                "allow() declares {} ecall(s), only {} observed",
                declared.len(),
                used.len()
            ),
            priority: PRIO_SECURITY,
        });
    }
    out
}

fn user_check_review(analyzer: &Analyzer<'_>) -> Vec<Detection> {
    let trace = analyzer.trace();
    let mut out = Vec::new();
    for sym in trace.symbols.iter() {
        if sym.user_check_params.is_empty() {
            continue;
        }
        out.push(Detection {
            target: sym.call_ref(),
            name: sym.name.clone(),
            problem: Problem::Interface,
            recommendation: Recommendation::ReviewUserCheck {
                params: sym.user_check_params.clone(),
            },
            evidence: "user_check pointers bypass SDK copying and checking".to_string(),
            priority: PRIO_SECURITY,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{EcallRow, OcallRow, SymbolRow};
    use crate::trace::TraceDb;
    use sim_core::HwProfile;

    fn symbol(
        trace: &mut TraceDb,
        is_ecall: bool,
        index: u32,
        name: &str,
        public: bool,
        allowed: Vec<u32>,
        user_check: Vec<String>,
    ) {
        trace.symbols.insert(SymbolRow {
            enclave: 1,
            kind_is_ecall: is_ecall,
            index,
            name: name.into(),
            public,
            allowed_ecalls: allowed,
            user_check_params: user_check,
        });
    }

    #[test]
    fn always_nested_public_ecall_flagged_private() {
        let mut trace = TraceDb::default();
        symbol(&mut trace, true, 0, "front", true, vec![], vec![]);
        symbol(&mut trace, true, 1, "helper_ecall", true, vec![], vec![]);
        symbol(&mut trace, false, 0, "ocall_cb", false, vec![1], vec![]);
        // front (top-level) calls ocall_cb which calls helper_ecall.
        for k in 0..3u64 {
            let base = k * 100_000;
            trace.ecalls.insert(EcallRow {
                thread: 0,
                enclave: 1,
                call_index: 0,
                start_ns: base,
                end_ns: base + 50_000,
                parent_ocall: None,
                aex_count: 0,
                failed: false,
            });
            trace.ocalls.insert(OcallRow {
                thread: 0,
                enclave: 1,
                call_index: 0,
                start_ns: base + 10_000,
                end_ns: base + 30_000,
                parent_ecall: Some(k * 2),
                failed: false,
            });
            trace.ecalls.insert(EcallRow {
                thread: 0,
                enclave: 1,
                call_index: 1,
                start_ns: base + 15_000,
                end_ns: base + 25_000,
                parent_ocall: Some(k),
                aex_count: 0,
                failed: false,
            });
        }
        let a = Analyzer::new(&trace, HwProfile::Unpatched.cost_model());
        let findings = analyze(&a, &a.instances());
        let private = findings
            .iter()
            .find(|d| matches!(&d.recommendation, Recommendation::MakePrivate { .. }))
            .expect("private candidate");
        assert_eq!(private.name, "helper_ecall");
        match &private.recommendation {
            Recommendation::MakePrivate { allow_from } => {
                assert_eq!(allow_from, &vec!["ocall_cb".to_string()]);
            }
            other => panic!("unexpected {other:?}"),
        }
        // `front` ran top-level: not a candidate.
        assert!(!findings
            .iter()
            .any(|d| d.name == "front"
                && matches!(d.recommendation, Recommendation::MakePrivate { .. })));
    }

    #[test]
    fn over_broad_allow_list_flagged() {
        let mut trace = TraceDb::default();
        symbol(&mut trace, true, 0, "used", true, vec![], vec![]);
        symbol(&mut trace, true, 1, "never_used", true, vec![], vec![]);
        symbol(&mut trace, false, 0, "ocall_cb", false, vec![0, 1], vec![]);
        trace.ocalls.insert(OcallRow {
            thread: 0,
            enclave: 1,
            call_index: 0,
            start_ns: 0,
            end_ns: 10_000,
            parent_ecall: None,
            failed: false,
        });
        trace.ecalls.insert(EcallRow {
            thread: 0,
            enclave: 1,
            call_index: 0,
            start_ns: 1_000,
            end_ns: 2_000,
            parent_ocall: Some(0),
            aex_count: 0,
            failed: false,
        });
        let a = Analyzer::new(&trace, HwProfile::Unpatched.cost_model());
        let findings = analyze(&a, &a.instances());
        let restrict = findings
            .iter()
            .find(|d| {
                matches!(
                    &d.recommendation,
                    Recommendation::RestrictAllowedEcalls { .. }
                )
            })
            .expect("restrict finding");
        match &restrict.recommendation {
            Recommendation::RestrictAllowedEcalls { remove } => {
                assert_eq!(remove, &vec!["never_used".to_string()]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn user_check_params_highlighted() {
        let mut trace = TraceDb::default();
        symbol(
            &mut trace,
            true,
            0,
            "ecall_write",
            true,
            vec![],
            vec!["buf".into()],
        );
        let a = Analyzer::new(&trace, HwProfile::Unpatched.cost_model());
        let findings = analyze(&a, &a.instances());
        assert!(findings.iter().any(|d| matches!(
            &d.recommendation,
            Recommendation::ReviewUserCheck { params } if params == &vec!["buf".to_string()]
        )));
    }

    #[test]
    fn clean_interface_produces_no_findings() {
        let mut trace = TraceDb::default();
        symbol(&mut trace, true, 0, "e", true, vec![], vec![]);
        trace.ecalls.insert(EcallRow {
            thread: 0,
            enclave: 1,
            call_index: 0,
            start_ns: 0,
            end_ns: 1_000,
            parent_ocall: None,
            aex_count: 0,
            failed: false,
        });
        let a = Analyzer::new(&trace, HwProfile::Unpatched.cost_model());
        assert!(analyze(&a, &a.instances()).is_empty());
    }
}
