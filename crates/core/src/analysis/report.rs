//! The assembled analysis report and its text rendering.

use std::fmt;

use sim_core::Nanos;

use crate::events::{CallKind, CallRef};
use crate::json::{f64 as json_f64, string as json_string};
use crate::trace::TraceDb;

use super::detect::Detection;
use super::fleet::FleetReport;
use super::stats::CallStats;
use super::symbol_name;

/// Aggregate counters over a whole trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Totals {
    /// Recorded ecall events.
    pub ecall_events: usize,
    /// Recorded ocall events.
    pub ocall_events: usize,
    /// Distinct ecalls seen.
    pub distinct_ecalls: usize,
    /// Distinct ocalls seen.
    pub distinct_ocalls: usize,
    /// Traced AEX events.
    pub aex_events: usize,
    /// Page-out events.
    pub page_outs: usize,
    /// Page-in events.
    pub page_ins: usize,
    /// Sleep events.
    pub sync_sleeps: usize,
    /// Wake events.
    pub sync_wakes: usize,
    /// Enclaves observed.
    pub enclaves: usize,
    /// Calls served switchlessly (no enclave transition).
    pub switchless_dispatched: usize,
    /// Switchless attempts that fell back to a synchronous transition.
    pub switchless_fallbacks: usize,
    /// Faults injected by the chaos harness.
    pub faults_injected: usize,
    /// Injected faults the SDK recovered from (retry/fallback succeeded).
    pub faults_recovered: usize,
    /// Injected faults that exhausted the retry budget and surfaced as
    /// errors.
    pub faults_gave_up: usize,
    /// Enclave losses (power transition / EPC poison).
    pub enclaves_lost: usize,
    /// Supervisor rebuilds performed in response to losses.
    pub restarts: usize,
    /// Virtual time spent rebuilding lost enclaves.
    pub rebuild_ns: u64,
    /// Virtual time spent replaying warm-up state after rebuilds.
    pub replay_ns: u64,
    /// Total loss-to-completion recovery time (the MTTR numerator).
    pub recovery_ns: u64,
}

/// A waker→sleeper dependency edge derived from the sync events
/// (§4.1.3: "track which thread wakes up which other threads to track
/// dependencies between them").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WakeEdge {
    /// The thread that issued the wake ocall.
    pub waker: u64,
    /// The thread that was woken.
    pub sleeper: u64,
    /// Number of wake events on this edge.
    pub count: usize,
}

/// The result of [`Analyzer::analyze`](super::Analyzer::analyze).
#[derive(Debug, Clone)]
pub struct Report {
    /// Per-call statistics, sorted by call.
    pub call_stats: Vec<(CallRef, CallStats)>,
    /// Names resolved for each entry of `call_stats` (same order).
    pub call_names: Vec<String>,
    /// All findings, sorted by priority.
    pub detections: Vec<Detection>,
    /// Aggregate counters.
    pub totals: Totals,
    /// Thread wake dependencies, sorted by descending count — dense edges
    /// indicate high-contention synchronisation.
    pub wake_edges: Vec<WakeEdge>,
    /// EDL lint diagnostics (populated when the analyzer was given an EDL
    /// file; see `analysis::lint`).
    pub lint: Vec<sgx_edl::Diagnostic>,
    /// Fleet-aggregate view — empty unless the trace was recorded by a
    /// fleet run (see `analysis::fleet` and `sgxperf fleet`).
    pub fleet: FleetReport,
}

impl Report {
    pub(crate) fn assemble(
        trace: &TraceDb,
        call_stats: Vec<(CallRef, CallStats)>,
        detections: Vec<Detection>,
    ) -> Report {
        let call_names = call_stats
            .iter()
            .map(|(call, _)| symbol_name(trace, *call))
            .collect();
        let totals = Totals {
            ecall_events: trace.ecalls.len(),
            ocall_events: trace.ocalls.len(),
            distinct_ecalls: call_stats
                .iter()
                .filter(|(c, _)| c.kind == CallKind::Ecall)
                .count(),
            distinct_ocalls: call_stats
                .iter()
                .filter(|(c, _)| c.kind == CallKind::Ocall)
                .count(),
            aex_events: trace.aex.len(),
            page_outs: trace.paging.iter().filter(|p| p.out).count(),
            page_ins: trace.paging.iter().filter(|p| !p.out).count(),
            sync_sleeps: trace.sync.iter().filter(|s| s.sleep).count(),
            sync_wakes: trace.sync.iter().filter(|s| !s.sleep).count(),
            enclaves: trace.enclaves.len(),
            // Kind codes 0/1 are ecall/ocall dispatches, 2/3 the fallbacks
            // (worker idle/busy transitions are not call outcomes).
            switchless_dispatched: trace.switchless.iter().filter(|s| s.kind <= 1).count(),
            switchless_fallbacks: trace
                .switchless
                .iter()
                .filter(|s| s.kind == 2 || s.kind == 3)
                .count(),
            // Action codes: 0 injected, 1 retried, 2 recovered, 3 gave up.
            faults_injected: trace.faults.iter().filter(|f| f.action == 0).count(),
            faults_recovered: trace.faults.iter().filter(|f| f.action == 2).count(),
            faults_gave_up: trace.faults.iter().filter(|f| f.action == 3).count(),
            // Stage codes: 0 lost, 1 rebuild, 2 replay, 3 retry,
            // 4 recovered, 5 gave up.
            enclaves_lost: trace.lifecycle.iter().filter(|l| l.stage == 0).count(),
            restarts: trace.lifecycle.iter().filter(|l| l.stage == 1).count(),
            rebuild_ns: trace
                .lifecycle
                .iter()
                .filter(|l| l.stage == 1)
                .map(|l| l.magnitude)
                .sum(),
            replay_ns: trace
                .lifecycle
                .iter()
                .filter(|l| l.stage == 2)
                .map(|l| l.magnitude)
                .sum(),
            recovery_ns: trace
                .lifecycle
                .iter()
                .filter(|l| l.stage == 4)
                .map(|l| l.magnitude)
                .sum(),
        };
        let mut edge_counts: std::collections::BTreeMap<(u64, u64), usize> =
            std::collections::BTreeMap::new();
        for s in trace.sync.iter() {
            if let (false, Some(target)) = (s.sleep, s.target_thread) {
                *edge_counts.entry((s.thread, target)).or_default() += 1;
            }
        }
        let mut wake_edges: Vec<WakeEdge> = edge_counts
            .into_iter()
            .map(|((waker, sleeper), count)| WakeEdge {
                waker,
                sleeper,
                count,
            })
            .collect();
        wake_edges.sort_by_key(|e| (std::cmp::Reverse(e.count), e.waker, e.sleeper));
        Report {
            call_stats,
            call_names,
            detections,
            totals,
            wake_edges,
            lint: Vec::new(),
            fleet: FleetReport::from_trace(trace),
        }
    }

    /// The statistics for a named call, if present.
    pub fn stats_for(&self, name: &str) -> Option<&CallStats> {
        self.call_names
            .iter()
            .position(|n| n == name)
            .map(|i| &self.call_stats[i].1)
    }

    /// The call's share of the total traced execution time of its kind —
    /// the §5.2.2-style "lseek, write and fsync are each responsible for
    /// 33% of the execution time" metric. Returns `None` for unknown
    /// names.
    pub fn time_share(&self, name: &str) -> Option<f64> {
        let idx = self.call_names.iter().position(|n| n == name)?;
        let (call, stats) = &self.call_stats[idx];
        let kind_total: u64 = self
            .call_stats
            .iter()
            .filter(|(c, _)| c.kind == call.kind)
            .map(|(_, s)| s.total_ns)
            .sum();
        if kind_total == 0 {
            return Some(0.0);
        }
        Some(stats.total_ns as f64 / kind_total as f64)
    }

    /// Fraction of ecall executions with an adjusted duration below 10 µs
    /// (the §5.2.1-style headline number).
    pub fn short_fraction(&self, kind: CallKind) -> f64 {
        let mut total = 0usize;
        let mut short = 0.0;
        for (call, stats) in &self.call_stats {
            if call.kind != kind {
                continue;
            }
            total += stats.count;
            short += stats.frac_under_10us * stats.count as f64;
        }
        if total == 0 {
            0.0
        } else {
            short / total as f64
        }
    }

    /// Renders the full text report (overview, per-call table, findings).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("== sgx-perf analysis report ==\n\n");
        let t = &self.totals;
        out.push_str(&format!(
            "events: {} ecalls ({} distinct), {} ocalls ({} distinct), {} AEX, \
             {} page-outs, {} page-ins, {} sleeps, {} wakes, {} enclave(s)\n\n",
            t.ecall_events,
            t.distinct_ecalls,
            t.ocall_events,
            t.distinct_ocalls,
            t.aex_events,
            t.page_outs,
            t.page_ins,
            t.sync_sleeps,
            t.sync_wakes,
            t.enclaves,
        ));
        if t.switchless_dispatched + t.switchless_fallbacks > 0 {
            out.push_str(&format!(
                "switchless: {} dispatched, {} fell back to a transition\n\n",
                t.switchless_dispatched, t.switchless_fallbacks,
            ));
        }
        if t.faults_injected > 0 {
            out.push_str(&format!(
                "faults: {} injected, {} recovered, {} gave up\n\n",
                t.faults_injected, t.faults_recovered, t.faults_gave_up,
            ));
        }
        if t.enclaves_lost > 0 {
            out.push_str(&format!(
                "recovery: {} enclave loss(es), {} restart(s); rebuild {}, replay {}, \
                 total recovery {}\n\n",
                t.enclaves_lost,
                t.restarts,
                Nanos::from_nanos(t.rebuild_ns),
                Nanos::from_nanos(t.replay_ns),
                Nanos::from_nanos(t.recovery_ns),
            ));
        }
        // Fleet-free traces keep the section out entirely, so pre-fleet
        // report output is unchanged byte for byte.
        if !self.fleet.is_empty() {
            out.push_str(&self.fleet.summary_line());
            out.push_str("\n\n");
        }
        out.push_str(&format!(
            "short calls (<10us adjusted): {:.2}% of ecalls, {:.2}% of ocalls\n\n",
            self.short_fraction(CallKind::Ecall) * 100.0,
            self.short_fraction(CallKind::Ocall) * 100.0,
        ));
        out.push_str("-- call statistics --\n");
        out.push_str(&format!(
            "{:<40} {:>6} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}\n",
            "call", "count", "mean", "median", "stddev", "p90", "p95", "p99"
        ));
        for ((call, stats), name) in self.call_stats.iter().zip(&self.call_names) {
            out.push_str(&format!(
                "{:<40} {:>6} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}\n",
                format!("{} ({})", name, call.kind),
                stats.count,
                Nanos::from_nanos(stats.mean_ns as u64).to_string(),
                Nanos::from_nanos(stats.median_ns).to_string(),
                Nanos::from_nanos(stats.stddev_ns as u64).to_string(),
                Nanos::from_nanos(stats.p90_ns).to_string(),
                Nanos::from_nanos(stats.p95_ns).to_string(),
                Nanos::from_nanos(stats.p99_ns).to_string(),
            ));
        }
        if !self.wake_edges.is_empty() {
            out.push_str("\n-- thread wake dependencies (waker -> sleeper) --\n");
            for e in self.wake_edges.iter().take(16) {
                out.push_str(&format!(
                    "t{} -> t{}: {} wake(s)\n",
                    e.waker, e.sleeper, e.count
                ));
            }
        }
        out.push_str("\n-- findings (sorted by priority; check applicability!) --\n");
        if self.detections.is_empty() {
            out.push_str("no problems detected\n");
        }
        for d in &self.detections {
            out.push_str(&format!("{d}\n"));
        }
        if !self.lint.is_empty() {
            out.push_str("\n-- edl lint findings (run `sgxperf lint` for source excerpts) --\n");
            for d in &self.lint {
                out.push_str(&format!(
                    "{}[{}] {}:{}: {}\n",
                    d.severity, d.code, d.span.start.line, d.span.start.col, d.message
                ));
            }
        }
        out
    }

    /// Renders the report as JSON for machine consumption
    /// (`sgxperf report --json`). The encoder is hand-rolled — the repo
    /// deliberately has no serialisation dependency — and emits a single
    /// object with `totals`, `short_fraction`, `calls`, `wake_edges`,
    /// `detections` and `lint` keys.
    pub fn to_json(&self) -> String {
        let t = &self.totals;
        let mut out = String::from("{\n  \"totals\": {");
        out.push_str(&format!(
            "\"ecall_events\": {}, \"ocall_events\": {}, \"distinct_ecalls\": {}, \
             \"distinct_ocalls\": {}, \"aex_events\": {}, \"page_outs\": {}, \
             \"page_ins\": {}, \"sync_sleeps\": {}, \"sync_wakes\": {}, \
             \"enclaves\": {}, \"switchless_dispatched\": {}, \"switchless_fallbacks\": {}, \
             \"faults_injected\": {}, \"faults_recovered\": {}, \"faults_gave_up\": {}, \
             \"enclaves_lost\": {}, \"restarts\": {}, \"rebuild_ns\": {}, \
             \"replay_ns\": {}, \"recovery_ns\": {}",
            t.ecall_events,
            t.ocall_events,
            t.distinct_ecalls,
            t.distinct_ocalls,
            t.aex_events,
            t.page_outs,
            t.page_ins,
            t.sync_sleeps,
            t.sync_wakes,
            t.enclaves,
            t.switchless_dispatched,
            t.switchless_fallbacks,
            t.faults_injected,
            t.faults_recovered,
            t.faults_gave_up,
            t.enclaves_lost,
            t.restarts,
            t.rebuild_ns,
            t.replay_ns,
            t.recovery_ns,
        ));
        out.push_str("},\n  \"fleet\": {");
        let ft = &self.fleet.totals;
        out.push_str(&format!(
            "\"slots\": {}, \"spin_ups\": {}, \"restarts\": {}, \"requests\": {}, \
             \"completed\": {}, \"shed\": {}, \"failed\": {}, \"page_ins\": {}, \
             \"page_outs\": {}, \"mean_p50_ns\": {}, \"max_p99_ns\": {}",
            ft.slots,
            ft.spin_ups,
            ft.restarts,
            ft.requests,
            ft.completed,
            ft.shed,
            ft.failed,
            ft.page_ins,
            ft.page_outs,
            ft.mean_p50_ns,
            ft.max_p99_ns,
        ));
        out.push_str("},\n  \"short_fraction\": {");
        out.push_str(&format!(
            "\"ecalls\": {}, \"ocalls\": {}",
            json_f64(self.short_fraction(CallKind::Ecall)),
            json_f64(self.short_fraction(CallKind::Ocall)),
        ));
        out.push_str("},\n  \"calls\": [\n");
        for (i, ((call, s), name)) in self.call_stats.iter().zip(&self.call_names).enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str(&format!(
                "    {{\"name\": {}, \"kind\": \"{}\", \"enclave\": {}, \"index\": {}, \
                 \"count\": {}, \"mean_ns\": {}, \"median_ns\": {}, \"stddev_ns\": {}, \
                 \"p90_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}, \"min_ns\": {}, \
                 \"max_ns\": {}, \"total_ns\": {}, \"mean_aex\": {}, \
                 \"frac_under_1us\": {}, \"frac_under_5us\": {}, \"frac_under_10us\": {}}}",
                json_string(name),
                call.kind,
                call.enclave,
                call.index,
                s.count,
                json_f64(s.mean_ns),
                s.median_ns,
                json_f64(s.stddev_ns),
                s.p90_ns,
                s.p95_ns,
                s.p99_ns,
                s.min_ns,
                s.max_ns,
                s.total_ns,
                json_f64(s.mean_aex),
                json_f64(s.frac_under_1us),
                json_f64(s.frac_under_5us),
                json_f64(s.frac_under_10us),
            ));
        }
        out.push_str("\n  ],\n  \"wake_edges\": [\n");
        for (i, e) in self.wake_edges.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str(&format!(
                "    {{\"waker\": {}, \"sleeper\": {}, \"count\": {}}}",
                e.waker, e.sleeper, e.count
            ));
        }
        out.push_str("\n  ],\n  \"detections\": [\n");
        for (i, d) in self.detections.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str(&format!(
                "    {{\"priority\": {}, \"problem\": {}, \"call\": {}, \"target\": {}, \
                 \"recommendation\": {}, \"evidence\": {}}}",
                d.priority,
                json_string(&d.problem.to_string()),
                json_string(&d.name),
                json_string(&d.target.to_string()),
                json_string(&d.recommendation.to_string()),
                json_string(&d.evidence),
            ));
        }
        out.push_str("\n  ],\n  \"lint\": [\n");
        for (i, d) in self.lint.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str(&format!(
                "    {{\"severity\": {}, \"code\": {}, \"line\": {}, \"col\": {}, \
                 \"message\": {}}}",
                json_string(&d.severity.to_string()),
                json_string(d.code),
                d.span.start.line,
                d.span.start.col,
                json_string(&d.message),
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::Analyzer;
    use crate::events::EcallRow;
    use sim_core::HwProfile;

    fn trace_with_short_ecalls(n: usize) -> TraceDb {
        let mut trace = TraceDb::default();
        let mut t = 0;
        for _ in 0..n {
            trace.ecalls.insert(EcallRow {
                thread: 0,
                enclave: 1,
                call_index: 0,
                start_ns: t,
                end_ns: t + 5_000,
                parent_ocall: None,
                aex_count: 0,
                failed: false,
            });
            t += 5_100;
        }
        trace
    }

    #[test]
    fn report_totals_and_render() {
        let trace = trace_with_short_ecalls(20);
        let report = Analyzer::new(&trace, HwProfile::Unpatched.cost_model()).analyze();
        assert_eq!(report.totals.ecall_events, 20);
        assert_eq!(report.totals.distinct_ecalls, 1);
        let text = report.render();
        assert!(text.contains("sgx-perf analysis report"));
        assert!(text.contains("call statistics"));
        // Short identical successive calls must be in the findings.
        assert!(text.contains("SISC") || text.contains("batch"), "{text}");
    }

    #[test]
    fn short_fraction_is_one_for_all_short_calls() {
        let trace = trace_with_short_ecalls(10);
        let report = Analyzer::new(&trace, HwProfile::Unpatched.cost_model()).analyze();
        assert!((report.short_fraction(CallKind::Ecall) - 1.0).abs() < 1e-9);
        assert_eq!(report.short_fraction(CallKind::Ocall), 0.0);
    }

    #[test]
    fn detections_sorted_by_priority() {
        let trace = trace_with_short_ecalls(50);
        let report = Analyzer::new(&trace, HwProfile::Unpatched.cost_model()).analyze();
        let priorities: Vec<u8> = report.detections.iter().map(|d| d.priority).collect();
        let mut sorted = priorities.clone();
        sorted.sort_unstable();
        assert_eq!(priorities, sorted);
    }

    #[test]
    fn time_share_partitions_by_kind() {
        use crate::events::OcallRow;
        let mut trace = TraceDb::default();
        // Two ocalls: 3 us and 1 us of total time.
        for (idx, dur) in [(0u32, 3_000u64), (1, 1_000)] {
            trace.ocalls.insert(OcallRow {
                thread: 0,
                enclave: 1,
                call_index: idx,
                start_ns: idx as u64 * 10_000,
                end_ns: idx as u64 * 10_000 + dur,
                parent_ecall: None,
                failed: false,
            });
        }
        let report = Analyzer::new(&trace, HwProfile::Unpatched.cost_model()).analyze();
        let share0 = report.time_share("enclave1/ocall#0").unwrap();
        let share1 = report.time_share("enclave1/ocall#1").unwrap();
        assert!((share0 - 0.75).abs() < 1e-9);
        assert!((share1 - 0.25).abs() < 1e-9);
        assert!(report.time_share("nope").is_none());
    }

    #[test]
    fn wake_edges_are_aggregated_and_sorted() {
        use crate::events::SyncRow;
        let mut trace = trace_with_short_ecalls(1);
        for _ in 0..3 {
            trace.sync.insert(SyncRow {
                thread: 0,
                time_ns: 1,
                sleep: false,
                target_thread: Some(2),
                ocall_row: 0,
            });
        }
        trace.sync.insert(SyncRow {
            thread: 1,
            time_ns: 2,
            sleep: false,
            target_thread: Some(0),
            ocall_row: 0,
        });
        // Sleeps don't create edges.
        trace.sync.insert(SyncRow {
            thread: 2,
            time_ns: 3,
            sleep: true,
            target_thread: None,
            ocall_row: 0,
        });
        let report = Analyzer::new(&trace, HwProfile::Unpatched.cost_model()).analyze();
        assert_eq!(report.wake_edges.len(), 2);
        assert_eq!(
            (
                report.wake_edges[0].waker,
                report.wake_edges[0].sleeper,
                report.wake_edges[0].count
            ),
            (0, 2, 3)
        );
        assert!(report.render().contains("t0 -> t2: 3 wake(s)"));
    }

    #[test]
    fn switchless_totals_split_dispatches_from_fallbacks() {
        use crate::events::SwitchlessRow;
        let mut trace = trace_with_short_ecalls(5);
        for kind in [0u8, 1, 2, 3, 4, 5, 0] {
            trace.switchless.insert(SwitchlessRow {
                thread: 0,
                enclave: 1,
                kind,
                call_index: Some(0),
                worker: None,
                spins: 0,
                time_ns: 1,
            });
        }
        let report = Analyzer::new(&trace, HwProfile::Unpatched.cost_model()).analyze();
        assert_eq!(report.totals.switchless_dispatched, 3);
        assert_eq!(report.totals.switchless_fallbacks, 2);
        assert!(report
            .render()
            .contains("switchless: 3 dispatched, 2 fell back"));
    }

    #[test]
    fn fault_totals_count_by_action() {
        use crate::events::FaultRow;
        let mut trace = trace_with_short_ecalls(5);
        for action in [0u8, 0, 0, 1, 2, 2, 3] {
            trace.faults.insert(FaultRow {
                thread: 0,
                enclave: 1,
                fault: 3,
                action,
                call_index: Some(0),
                magnitude: 1,
                time_ns: 1,
            });
        }
        let report = Analyzer::new(&trace, HwProfile::Unpatched.cost_model()).analyze();
        assert_eq!(report.totals.faults_injected, 3);
        assert_eq!(report.totals.faults_recovered, 2);
        assert_eq!(report.totals.faults_gave_up, 1);
        assert!(report
            .render()
            .contains("faults: 3 injected, 2 recovered, 1 gave up"));
        // Fault-free reports keep the line out entirely.
        let clean = Analyzer::new(
            &trace_with_short_ecalls(5),
            HwProfile::Unpatched.cost_model(),
        )
        .analyze();
        assert!(!clean.render().contains("faults:"));
    }

    #[test]
    fn recovery_totals_aggregate_lifecycle_stages() {
        use crate::events::LifecycleRow;
        let mut trace = trace_with_short_ecalls(5);
        for (stage, magnitude) in [(0u8, 0u64), (1, 10_000), (2, 30_000), (3, 2), (4, 45_000)] {
            trace.lifecycle.insert(LifecycleRow {
                enclave: 1,
                stage,
                thread: 0,
                attempt: 1,
                magnitude,
                time_ns: 1,
            });
        }
        let report = Analyzer::new(&trace, HwProfile::Unpatched.cost_model()).analyze();
        assert_eq!(report.totals.enclaves_lost, 1);
        assert_eq!(report.totals.restarts, 1);
        assert_eq!(report.totals.rebuild_ns, 10_000);
        assert_eq!(report.totals.replay_ns, 30_000);
        assert_eq!(report.totals.recovery_ns, 45_000);
        assert!(
            report
                .render()
                .contains("recovery: 1 enclave loss(es), 1 restart(s)"),
            "{}",
            report.render()
        );
        assert!(report.to_json().contains("\"enclaves_lost\": 1"));
        // Loss-free reports keep the line out entirely.
        let clean = Analyzer::new(
            &trace_with_short_ecalls(5),
            HwProfile::Unpatched.cost_model(),
        )
        .analyze();
        assert!(!clean.render().contains("recovery:"));
    }

    #[test]
    fn fleet_section_appears_only_with_a_fleet_table() {
        use crate::events::FleetRow;
        let mut trace = trace_with_short_ecalls(5);
        trace.fleet.insert(FleetRow {
            slot: 3,
            spin_ups: 2,
            restarts: 1,
            requests: 40,
            completed: 38,
            shed: 1,
            failed: 1,
            p50_ns: 2_000,
            p99_ns: 11_000,
            page_ins: 6,
            page_outs: 4,
        });
        let report = Analyzer::new(&trace, HwProfile::Unpatched.cost_model()).analyze();
        assert!(report
            .render()
            .contains("fleet: 1 slot(s), 2 spin-up(s), 1 restart(s)"));
        assert!(report.to_json().contains("\"requests\": 40"));
        // Fleet-free reports keep the section out entirely.
        let clean = Analyzer::new(
            &trace_with_short_ecalls(5),
            HwProfile::Unpatched.cost_model(),
        )
        .analyze();
        assert!(!clean.render().contains("fleet:"));
        assert!(clean.to_json().contains("\"fleet\": {\"slots\": 0"));
    }

    #[test]
    fn json_report_has_all_sections_and_escapes_strings() {
        use crate::events::SymbolRow;
        let mut trace = trace_with_short_ecalls(50);
        trace.symbols.insert(SymbolRow {
            enclave: 1,
            kind_is_ecall: true,
            index: 0,
            name: "ecall_\"quoted\"".into(),
            public: true,
            allowed_ecalls: vec![],
            user_check_params: vec![],
        });
        let report = Analyzer::new(&trace, HwProfile::Unpatched.cost_model()).analyze();
        let json = report.to_json();
        for key in [
            "\"totals\"",
            "\"short_fraction\"",
            "\"calls\"",
            "\"wake_edges\"",
            "\"detections\"",
            "\"lint\"",
            "\"switchless_dispatched\": 0",
            "\"faults_injected\": 0",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // The quote inside the symbol name must be escaped.
        assert!(json.contains("ecall_\\\"quoted\\\""), "{json}");
        // Balanced braces/brackets (cheap well-formedness check).
        let opens = json.matches('{').count() + json.matches('[').count();
        let closes = json.matches('}').count() + json.matches(']').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn stats_for_falls_back_to_positional_name() {
        let trace = trace_with_short_ecalls(5);
        let report = Analyzer::new(&trace, HwProfile::Unpatched.cost_model()).analyze();
        // No symbols captured: name is the CallRef display.
        assert!(report.stats_for("enclave1/ecall#0").is_some());
        assert!(report.stats_for("nope").is_none());
    }
}
