//! A/B trace differencing: regression analysis over two eventdb traces.
//!
//! sgx-perf's workflow is measure → analyze → apply mitigation →
//! re-measure (§4–§6); this module is the principled *compare* step that
//! closes it. [`TraceDiff::compute`] aligns two traces by call-site name
//! and event kind, computes per-call latency/count deltas plus aggregate
//! deltas (transitions, EWB/ELDU paging, AEX, fault ledger, switchless
//! dispatch-vs-fallback), gates each against a configurable relative
//! threshold and renders a verdict — human table, JSON, and a CI exit
//! code (0 = no regression, 3 = regression past threshold).
//!
//! Regressions in a candidate trace that carries injected faults are
//! *attributed*: an injected `FaultRow` whose timestamp lands inside one
//! of the regressed call's execution windows is counted against that
//! call, so a chaos-harness A/B pair reports not just "slower" but
//! "slower, coinciding with N injected fault(s)".
//!
//! # Examples
//!
//! ```
//! use sgx_perf::analysis::diff::{DiffConfig, TraceDiff, Verdict};
//! use sgx_perf::TraceDb;
//!
//! let trace = TraceDb::default();
//! let diff = TraceDiff::compute(&trace, &trace, DiffConfig::default());
//! assert_eq!(diff.verdict, Verdict::Neutral);
//! assert_eq!(diff.exit_code(), 0);
//! ```

use std::collections::BTreeMap;
use std::fmt;

use sim_core::Nanos;

use crate::events::CallKind;
use crate::json;
use crate::trace::TraceDb;

use super::symbol_name;

/// Exit status a CI gate maps a regression verdict to (`sgxperf diff`).
pub const REGRESSION_EXIT_CODE: u8 = 3;

/// Thresholds of the diff engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiffConfig {
    /// Relative worsening beyond which a metric counts as a regression
    /// (and, symmetrically, improving beyond which it counts as an
    /// improvement). `0.10` = 10%.
    pub threshold: f64,
    /// Minimum executions *in both traces* before a call's latency deltas
    /// gate the verdict — single-digit samples produce noise, not
    /// regressions.
    pub min_count: usize,
}

impl Default for DiffConfig {
    fn default() -> Self {
        DiffConfig {
            threshold: 0.10,
            min_count: 8,
        }
    }
}

/// Direction of a gated change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Verdict {
    /// Better than baseline beyond the threshold.
    Improvement,
    /// Within the threshold either way.
    Neutral,
    /// Worse than baseline beyond the threshold.
    Regression,
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Verdict::Improvement => "improvement",
            Verdict::Neutral => "neutral",
            Verdict::Regression => "regression",
        })
    }
}

/// One scalar metric in both traces.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MetricDelta {
    /// Baseline value.
    pub a: f64,
    /// Candidate value.
    pub b: f64,
}

impl MetricDelta {
    fn new(a: f64, b: f64) -> MetricDelta {
        MetricDelta { a, b }
    }

    /// Relative change from baseline to candidate; 0 when the baseline is
    /// zero and the candidate is too, +inf-degraded-to-1 when something
    /// appeared from nothing.
    pub fn rel_change(&self) -> f64 {
        if self.a == 0.0 {
            if self.b == 0.0 {
                0.0
            } else {
                1.0
            }
        } else {
            (self.b - self.a) / self.a
        }
    }

    /// Gates the change against a threshold. Higher = worse for every
    /// metric this engine tracks (latency, transition counts, paging,
    /// AEX, faults), so the polarity is fixed.
    pub fn verdict(&self, threshold: f64) -> Verdict {
        let change = self.rel_change();
        if change > threshold {
            Verdict::Regression
        } else if change < -threshold {
            Verdict::Improvement
        } else {
            Verdict::Neutral
        }
    }

    fn pct(&self) -> String {
        format!("{:+.1}%", self.rel_change() * 100.0)
    }
}

/// Per-call deltas for one aligned call site.
#[derive(Debug, Clone, PartialEq)]
pub struct CallDelta {
    /// Ecall or ocall.
    pub kind: CallKind,
    /// Resolved call-site name (symbol table, positional fallback).
    pub name: String,
    /// Execution counts.
    pub count: MetricDelta,
    /// Total virtual time spent in the call (ns).
    pub total_ns: MetricDelta,
    /// Mean latency (ns).
    pub mean_ns: MetricDelta,
    /// Median latency (ns).
    pub p50_ns: MetricDelta,
    /// 99th-percentile latency (ns).
    pub p99_ns: MetricDelta,
    /// AEXs observed during the call (ecalls only; total).
    pub aex: MetricDelta,
    /// The gated verdict over the latency metrics (counts and AEX are
    /// reported but do not gate).
    pub verdict: Verdict,
    /// Latency metrics past the threshold, e.g. `"mean +395.3%"`.
    pub flagged: Vec<String>,
    /// Injected faults (candidate trace) whose timestamp falls inside one
    /// of this call's execution windows — the chaos-attribution signal.
    pub attributed_faults: usize,
    /// Candidate executions of this call that overlap an enclave-lost
    /// recovery window (loss → recovered/gave-up): their latency includes
    /// rebuild/replay time, not an application slowdown.
    pub recovery_overlaps: usize,
}

/// Aggregate deltas over whole traces.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TotalsDelta {
    /// Synchronous enclave boundary round-trips (switchless-served ocalls
    /// excluded — the caller never left the enclave for them).
    pub transitions: MetricDelta,
    /// EPC page-outs (EWB).
    pub page_outs: MetricDelta,
    /// EPC page-ins (ELDU).
    pub page_ins: MetricDelta,
    /// Traced AEX events.
    pub aex_events: MetricDelta,
    /// Calls served by switchless workers.
    pub switchless_dispatched: MetricDelta,
    /// Switchless attempts that fell back to a transition.
    pub switchless_fallbacks: MetricDelta,
    /// Injected faults.
    pub faults_injected: MetricDelta,
    /// Faults the SDK recovered from.
    pub faults_recovered: MetricDelta,
    /// Faults that exhausted the retry budget.
    pub faults_gave_up: MetricDelta,
    /// Enclave losses.
    pub enclaves_lost: MetricDelta,
    /// Supervisor rebuilds.
    pub restarts: MetricDelta,
    /// Total loss-to-completion recovery time (ns).
    pub recovery_ns: MetricDelta,
    /// Virtual wall clock: the latest event timestamp in the trace.
    pub wall_ns: MetricDelta,
}

impl TotalsDelta {
    /// Fraction of switchless attempts that were served without a
    /// transition, per side. `None` when a side recorded no attempts.
    pub fn dispatch_ratio(&self) -> (Option<f64>, Option<f64>) {
        let ratio = |d: f64, f: f64| {
            if d + f == 0.0 {
                None
            } else {
                Some(d / (d + f))
            }
        };
        (
            ratio(self.switchless_dispatched.a, self.switchless_fallbacks.a),
            ratio(self.switchless_dispatched.b, self.switchless_fallbacks.b),
        )
    }
}

/// The result of diffing two traces.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceDiff {
    /// Thresholds used.
    pub config: DiffConfig,
    /// Aligned calls with their deltas, sorted by (kind, name).
    pub calls: Vec<CallDelta>,
    /// Call names present only in the baseline.
    pub only_in_a: Vec<String>,
    /// Call names present only in the candidate.
    pub only_in_b: Vec<String>,
    /// Aggregate deltas.
    pub totals: TotalsDelta,
    /// The overall gated verdict.
    pub verdict: Verdict,
    /// Human-readable regression lines (what made the verdict fail).
    pub regressions: Vec<String>,
    /// Human-readable improvement lines.
    pub improvements: Vec<String>,
}

/// Per-side aggregation of one call site.
#[derive(Debug, Default)]
struct SideStats {
    durations: Vec<u64>,
    aex_total: u64,
    /// Execution windows, for fault attribution.
    windows: Vec<(u64, u64)>,
}

impl SideStats {
    fn count(&self) -> usize {
        self.durations.len()
    }

    fn total(&self) -> u64 {
        self.durations.iter().sum()
    }

    fn mean(&self) -> f64 {
        if self.durations.is_empty() {
            0.0
        } else {
            self.total() as f64 / self.count() as f64
        }
    }

    /// Same nearest-rank definition as `CallStats`.
    fn percentile(&self, p: f64) -> u64 {
        let mut sorted = self.durations.clone();
        sorted.sort_unstable();
        if sorted.is_empty() {
            return 0;
        }
        let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        sorted[rank.clamp(1, sorted.len()) - 1]
    }
}

/// Synchronous boundary round-trips in a trace: every recorded
/// ecall/ocall row is one enter/exit pair, *minus* ocalls a switchless
/// worker served (kind code 1). Worker-served ocalls still appear as
/// ocall rows — the worker executes the logger's interposed table, so
/// duration statistics survive — but the calling thread never left the
/// enclave for them. Worker-served *ecalls* bypass `sgx_ecall` entirely
/// and produce no row, so only ocall dispatches are subtracted.
pub fn round_trips(trace: &TraceDb) -> usize {
    let served_ocalls = trace.switchless.iter().filter(|s| s.kind == 1).count();
    (trace.ecalls.len() + trace.ocalls.len()).saturating_sub(served_ocalls)
}

/// Latest event timestamp across every table — the trace's virtual wall
/// clock (harness clocks start at zero).
fn wall_ns(trace: &TraceDb) -> u64 {
    let mut wall = 0u64;
    for e in trace.ecalls.iter() {
        wall = wall.max(e.end_ns);
    }
    for o in trace.ocalls.iter() {
        wall = wall.max(o.end_ns);
    }
    for a in trace.aex.iter() {
        wall = wall.max(a.time_ns);
    }
    for p in trace.paging.iter() {
        wall = wall.max(p.time_ns);
    }
    for s in trace.sync.iter() {
        wall = wall.max(s.time_ns);
    }
    for s in trace.switchless.iter() {
        wall = wall.max(s.time_ns);
    }
    for f in trace.faults.iter() {
        wall = wall.max(f.time_ns);
    }
    for l in trace.lifecycle.iter() {
        wall = wall.max(l.time_ns);
    }
    wall
}

/// Enclave-lost recovery windows in a trace: each spans from a loss to
/// the recovery (or give-up) that closes it. A loss never closed extends
/// to the end of the trace.
fn recovery_windows(trace: &TraceDb) -> Vec<(u64, u64)> {
    let mut windows = Vec::new();
    let mut open: Option<u64> = None;
    for l in trace.lifecycle.iter() {
        match l.stage {
            // 0 = lost.
            0 => open = open.or(Some(l.time_ns)),
            // 4 = recovered, 5 = gave up.
            4 | 5 => {
                if let Some(start) = open.take() {
                    windows.push((start, l.time_ns));
                }
            }
            _ => {}
        }
    }
    if let Some(start) = open {
        windows.push((start, u64::MAX));
    }
    windows
}

/// Groups a trace's call events by (kind, resolved name). Calls with the
/// same name in different enclaves merge — the alignment unit is the
/// call *site* as a developer names it, which is what survives across
/// two separate runs (enclave ids need not).
fn per_name(trace: &TraceDb) -> BTreeMap<(CallKind, String), SideStats> {
    let mut grouped: BTreeMap<(CallKind, String), SideStats> = BTreeMap::new();
    for e in trace.ecalls.iter() {
        let name = symbol_name(
            trace,
            crate::events::CallRef {
                enclave: e.enclave,
                kind: CallKind::Ecall,
                index: e.call_index,
            },
        );
        let entry = grouped.entry((CallKind::Ecall, name)).or_default();
        entry.durations.push(e.end_ns.saturating_sub(e.start_ns));
        entry.aex_total += e.aex_count;
        entry.windows.push((e.start_ns, e.end_ns));
    }
    for o in trace.ocalls.iter() {
        let name = symbol_name(
            trace,
            crate::events::CallRef {
                enclave: o.enclave,
                kind: CallKind::Ocall,
                index: o.call_index,
            },
        );
        let entry = grouped.entry((CallKind::Ocall, name)).or_default();
        entry.durations.push(o.end_ns.saturating_sub(o.start_ns));
        entry.windows.push((o.start_ns, o.end_ns));
    }
    grouped
}

impl TraceDiff {
    /// Diffs candidate `b` against baseline `a`.
    pub fn compute(a: &TraceDb, b: &TraceDb, config: DiffConfig) -> TraceDiff {
        let mut side_a = per_name(a);
        let mut side_b = per_name(b);
        let injected: Vec<(Option<u32>, u64)> = b
            .faults
            .iter()
            .filter(|f| f.action == 0)
            .map(|f| (f.call_index, f.time_ns))
            .collect();
        let recoveries = recovery_windows(b);

        let keys: Vec<(CallKind, String)> = side_a
            .keys()
            .chain(side_b.keys())
            .cloned()
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();

        let mut calls = Vec::new();
        let mut only_in_a = Vec::new();
        let mut only_in_b = Vec::new();
        let mut regressions = Vec::new();
        let mut improvements = Vec::new();

        for key in keys {
            let (kind, name) = key.clone();
            let sa = side_a.remove(&key);
            let sb = side_b.remove(&key);
            match (sa, sb) {
                (Some(_), None) => only_in_a.push(format!("{name} ({kind})")),
                (None, Some(_)) => only_in_b.push(format!("{name} ({kind})")),
                (Some(sa), Some(sb)) => {
                    let mean = MetricDelta::new(sa.mean(), sb.mean());
                    let p50 =
                        MetricDelta::new(sa.percentile(50.0) as f64, sb.percentile(50.0) as f64);
                    let p99 =
                        MetricDelta::new(sa.percentile(99.0) as f64, sb.percentile(99.0) as f64);
                    let gated = sa.count() >= config.min_count && sb.count() >= config.min_count;
                    let mut flagged = Vec::new();
                    let mut verdict = Verdict::Neutral;
                    if gated {
                        for (label, m) in [("mean", &mean), ("p50", &p50), ("p99", &p99)] {
                            match m.verdict(config.threshold) {
                                Verdict::Regression => {
                                    verdict = Verdict::Regression;
                                    flagged.push(format!(
                                        "{label} {} ({} -> {})",
                                        m.pct(),
                                        Nanos::from_nanos(m.a as u64),
                                        Nanos::from_nanos(m.b as u64),
                                    ));
                                }
                                Verdict::Improvement if verdict != Verdict::Regression => {
                                    verdict = Verdict::Improvement;
                                }
                                _ => {}
                            }
                        }
                    }
                    let attributed = injected
                        .iter()
                        .filter(|(_, t)| sb.windows.iter().any(|(s, e)| t >= s && t <= e))
                        .count();
                    let overlapping = sb
                        .windows
                        .iter()
                        .filter(|(s, e)| recoveries.iter().any(|(rs, re)| s <= re && e >= rs))
                        .count();
                    let line = |flags: &[String]| {
                        let fault_note = if attributed > 0 {
                            format!(" [{attributed} injected fault(s) in window]")
                        } else {
                            String::new()
                        };
                        let recovery_note = if overlapping > 0 {
                            format!(" [{overlapping} execution(s) overlap an enclave recovery]")
                        } else {
                            String::new()
                        };
                        format!(
                            "{name} ({kind}): {}{fault_note}{recovery_note}",
                            flags.join(", ")
                        )
                    };
                    match verdict {
                        Verdict::Regression => regressions.push(line(&flagged)),
                        Verdict::Improvement => improvements.push(format!(
                            "{name} ({kind}): mean {} ({} -> {})",
                            mean.pct(),
                            Nanos::from_nanos(mean.a as u64),
                            Nanos::from_nanos(mean.b as u64),
                        )),
                        Verdict::Neutral => {}
                    }
                    calls.push(CallDelta {
                        kind,
                        name,
                        count: MetricDelta::new(sa.count() as f64, sb.count() as f64),
                        total_ns: MetricDelta::new(sa.total() as f64, sb.total() as f64),
                        mean_ns: mean,
                        p50_ns: p50,
                        p99_ns: p99,
                        aex: MetricDelta::new(sa.aex_total as f64, sb.aex_total as f64),
                        verdict,
                        flagged,
                        attributed_faults: attributed,
                        recovery_overlaps: overlapping,
                    });
                }
                (None, None) => unreachable!("key drawn from one of the sides"),
            }
        }

        let count = |n: usize| n as f64;
        let totals = TotalsDelta {
            transitions: MetricDelta::new(count(round_trips(a)), count(round_trips(b))),
            page_outs: MetricDelta::new(
                count(a.paging.iter().filter(|p| p.out).count()),
                count(b.paging.iter().filter(|p| p.out).count()),
            ),
            page_ins: MetricDelta::new(
                count(a.paging.iter().filter(|p| !p.out).count()),
                count(b.paging.iter().filter(|p| !p.out).count()),
            ),
            aex_events: MetricDelta::new(count(a.aex.len()), count(b.aex.len())),
            switchless_dispatched: MetricDelta::new(
                count(a.switchless.iter().filter(|s| s.kind <= 1).count()),
                count(b.switchless.iter().filter(|s| s.kind <= 1).count()),
            ),
            switchless_fallbacks: MetricDelta::new(
                count(
                    a.switchless
                        .iter()
                        .filter(|s| s.kind == 2 || s.kind == 3)
                        .count(),
                ),
                count(
                    b.switchless
                        .iter()
                        .filter(|s| s.kind == 2 || s.kind == 3)
                        .count(),
                ),
            ),
            faults_injected: MetricDelta::new(
                count(a.faults.iter().filter(|f| f.action == 0).count()),
                count(b.faults.iter().filter(|f| f.action == 0).count()),
            ),
            faults_recovered: MetricDelta::new(
                count(a.faults.iter().filter(|f| f.action == 2).count()),
                count(b.faults.iter().filter(|f| f.action == 2).count()),
            ),
            faults_gave_up: MetricDelta::new(
                count(a.faults.iter().filter(|f| f.action == 3).count()),
                count(b.faults.iter().filter(|f| f.action == 3).count()),
            ),
            enclaves_lost: MetricDelta::new(
                count(a.lifecycle.iter().filter(|l| l.stage == 0).count()),
                count(b.lifecycle.iter().filter(|l| l.stage == 0).count()),
            ),
            restarts: MetricDelta::new(
                count(a.lifecycle.iter().filter(|l| l.stage == 1).count()),
                count(b.lifecycle.iter().filter(|l| l.stage == 1).count()),
            ),
            recovery_ns: MetricDelta::new(
                a.lifecycle
                    .iter()
                    .filter(|l| l.stage == 4)
                    .map(|l| l.magnitude)
                    .sum::<u64>() as f64,
                b.lifecycle
                    .iter()
                    .filter(|l| l.stage == 4)
                    .map(|l| l.magnitude)
                    .sum::<u64>() as f64,
            ),
            wall_ns: MetricDelta::new(wall_ns(a) as f64, wall_ns(b) as f64),
        };

        // Aggregate gates. Latency regressions are caught per call; the
        // totals catch structural drift (more transitions, more paging,
        // longer wall clock) and hard failures (calls that gave up).
        for (label, m) in [
            ("transitions", &totals.transitions),
            ("page-outs (EWB)", &totals.page_outs),
            ("page-ins (ELDU)", &totals.page_ins),
            ("AEX events", &totals.aex_events),
            ("virtual wall clock", &totals.wall_ns),
        ] {
            match m.verdict(config.threshold) {
                Verdict::Regression => regressions.push(format!(
                    "{label}: {} ({} -> {})",
                    m.pct(),
                    m.a as u64,
                    m.b as u64
                )),
                Verdict::Improvement => improvements.push(format!(
                    "{label}: {} ({} -> {})",
                    m.pct(),
                    m.a as u64,
                    m.b as u64
                )),
                Verdict::Neutral => {}
            }
        }
        if totals.faults_gave_up.b > totals.faults_gave_up.a {
            regressions.push(format!(
                "faults gave up: {} -> {} (unrecovered failures)",
                totals.faults_gave_up.a as u64, totals.faults_gave_up.b as u64
            ));
        }

        let verdict = if !regressions.is_empty() {
            Verdict::Regression
        } else if !improvements.is_empty() {
            Verdict::Improvement
        } else {
            Verdict::Neutral
        };

        TraceDiff {
            config,
            calls,
            only_in_a,
            only_in_b,
            totals,
            verdict,
            regressions,
            improvements,
        }
    }

    /// Virtual-time speedup of the candidate (baseline wall / candidate
    /// wall); 0 when the candidate recorded nothing.
    pub fn speedup(&self) -> f64 {
        if self.totals.wall_ns.b == 0.0 {
            0.0
        } else {
            self.totals.wall_ns.a / self.totals.wall_ns.b
        }
    }

    /// The delta for a named call, if aligned.
    pub fn call(&self, name: &str) -> Option<&CallDelta> {
        self.calls.iter().find(|c| c.name == name)
    }

    /// Total injected faults (candidate) attributed to some regressed or
    /// aligned call window.
    pub fn attributed_faults(&self) -> usize {
        self.calls.iter().map(|c| c.attributed_faults).sum()
    }

    /// Process exit status for CI gates: [`REGRESSION_EXIT_CODE`] on
    /// regression, 0 otherwise.
    pub fn exit_code(&self) -> u8 {
        if self.verdict == Verdict::Regression {
            REGRESSION_EXIT_CODE
        } else {
            0
        }
    }

    /// Renders the human verdict report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("== sgx-perf A/B diff ==\n\n");
        out.push_str(&format!(
            "verdict: {} (threshold {:.0}%, min {} calls; exit {})\n",
            self.verdict.to_string().to_uppercase(),
            self.config.threshold * 100.0,
            self.config.min_count,
            self.exit_code(),
        ));
        out.push_str(&format!(
            "wall clock: {} -> {} ({:.2}x)\n\n",
            Nanos::from_nanos(self.totals.wall_ns.a as u64),
            Nanos::from_nanos(self.totals.wall_ns.b as u64),
            self.speedup(),
        ));

        out.push_str("-- totals --\n");
        out.push_str(&format!(
            "{:<24} {:>12} {:>12} {:>10}\n",
            "metric", "before", "after", "delta"
        ));
        let t = &self.totals;
        for (label, m) in [
            ("transitions", &t.transitions),
            ("page-outs (EWB)", &t.page_outs),
            ("page-ins (ELDU)", &t.page_ins),
            ("aex events", &t.aex_events),
            ("switchless dispatched", &t.switchless_dispatched),
            ("switchless fallbacks", &t.switchless_fallbacks),
            ("faults injected", &t.faults_injected),
            ("faults recovered", &t.faults_recovered),
            ("faults gave up", &t.faults_gave_up),
            ("enclaves lost", &t.enclaves_lost),
            ("supervisor restarts", &t.restarts),
            ("recovery time (ns)", &t.recovery_ns),
        ] {
            if m.a == 0.0 && m.b == 0.0 {
                continue;
            }
            out.push_str(&format!(
                "{:<24} {:>12} {:>12} {:>10}\n",
                label,
                m.a as u64,
                m.b as u64,
                m.pct()
            ));
        }
        if let (Some(ra), Some(rb)) = {
            let (ra, rb) = t.dispatch_ratio();
            (ra, rb)
        } {
            out.push_str(&format!(
                "{:<24} {:>11.1}% {:>11.1}% {:>10}\n",
                "dispatch ratio",
                ra * 100.0,
                rb * 100.0,
                "-"
            ));
        } else if let (None, Some(rb)) = t.dispatch_ratio() {
            out.push_str(&format!(
                "{:<24} {:>12} {:>11.1}% {:>10}\n",
                "dispatch ratio",
                "-",
                rb * 100.0,
                "-"
            ));
        }

        out.push_str("\n-- per-call deltas (aligned by kind + name) --\n");
        out.push_str(&format!(
            "{:<34} {:>13} {:>17} {:>17} {:>17} {:>12}\n",
            "call", "count", "mean", "p50", "p99", "verdict"
        ));
        for c in &self.calls {
            out.push_str(&format!(
                "{:<34} {:>13} {:>17} {:>17} {:>17} {:>12}\n",
                format!("{} ({})", c.name, c.kind),
                format!("{}->{}", c.count.a as u64, c.count.b as u64),
                format!(
                    "{}->{}",
                    Nanos::from_nanos(c.mean_ns.a as u64),
                    Nanos::from_nanos(c.mean_ns.b as u64)
                ),
                format!(
                    "{}->{}",
                    Nanos::from_nanos(c.p50_ns.a as u64),
                    Nanos::from_nanos(c.p50_ns.b as u64)
                ),
                format!(
                    "{}->{}",
                    Nanos::from_nanos(c.p99_ns.a as u64),
                    Nanos::from_nanos(c.p99_ns.b as u64)
                ),
                c.verdict.to_string(),
            ));
        }
        for (label, names) in [
            ("only in baseline", &self.only_in_a),
            ("only in candidate", &self.only_in_b),
        ] {
            if !names.is_empty() {
                out.push_str(&format!("{label}: {}\n", names.join(", ")));
            }
        }

        if !self.regressions.is_empty() {
            out.push_str("\n-- regressions --\n");
            for r in &self.regressions {
                out.push_str(&format!("{r}\n"));
            }
        }
        if !self.improvements.is_empty() {
            out.push_str("\n-- improvements --\n");
            for i in &self.improvements {
                out.push_str(&format!("{i}\n"));
            }
        }
        if self.regressions.is_empty() && self.improvements.is_empty() {
            out.push_str("\nno change past threshold\n");
        }
        out
    }

    /// Renders the diff as JSON (the `sgxperf diff --json` / CI artifact
    /// format), via the same hand-rolled serializer as `report --json`.
    pub fn to_json(&self) -> String {
        let metric = |m: &MetricDelta| {
            format!(
                "{{\"a\": {}, \"b\": {}, \"rel_change\": {}}}",
                json::f64(m.a),
                json::f64(m.b),
                json::f64(m.rel_change())
            )
        };
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"verdict\": {},\n  \"exit_code\": {},\n  \"threshold\": {},\n  \"min_count\": {},\n  \"speedup\": {},\n",
            json::string(&self.verdict.to_string()),
            self.exit_code(),
            json::f64(self.config.threshold),
            self.config.min_count,
            json::f64(self.speedup()),
        ));
        let t = &self.totals;
        out.push_str("  \"totals\": {");
        for (i, (label, m)) in [
            ("transitions", &t.transitions),
            ("page_outs", &t.page_outs),
            ("page_ins", &t.page_ins),
            ("aex_events", &t.aex_events),
            ("switchless_dispatched", &t.switchless_dispatched),
            ("switchless_fallbacks", &t.switchless_fallbacks),
            ("faults_injected", &t.faults_injected),
            ("faults_recovered", &t.faults_recovered),
            ("faults_gave_up", &t.faults_gave_up),
            ("enclaves_lost", &t.enclaves_lost),
            ("restarts", &t.restarts),
            ("recovery_ns", &t.recovery_ns),
            ("wall_ns", &t.wall_ns),
        ]
        .iter()
        .enumerate()
        {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{label}\": {}", metric(m)));
        }
        out.push_str("},\n  \"calls\": [\n");
        for (i, c) in self.calls.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str(&format!(
                "    {{\"name\": {}, \"kind\": \"{}\", \"verdict\": {}, \
                 \"count\": {}, \"total_ns\": {}, \"mean_ns\": {}, \"p50_ns\": {}, \
                 \"p99_ns\": {}, \"aex\": {}, \"attributed_faults\": {}, \
                 \"recovery_overlaps\": {}, \"flagged\": [{}]}}",
                json::string(&c.name),
                c.kind,
                json::string(&c.verdict.to_string()),
                metric(&c.count),
                metric(&c.total_ns),
                metric(&c.mean_ns),
                metric(&c.p50_ns),
                metric(&c.p99_ns),
                metric(&c.aex),
                c.attributed_faults,
                c.recovery_overlaps,
                c.flagged
                    .iter()
                    .map(|f| json::string(f))
                    .collect::<Vec<_>>()
                    .join(", "),
            ));
        }
        let names = |list: &[String]| {
            list.iter()
                .map(|n| json::string(n))
                .collect::<Vec<_>>()
                .join(", ")
        };
        out.push_str(&format!(
            "\n  ],\n  \"only_in_a\": [{}],\n  \"only_in_b\": [{}],\n",
            names(&self.only_in_a),
            names(&self.only_in_b),
        ));
        out.push_str(&format!(
            "  \"regressions\": [{}],\n  \"improvements\": [{}]\n}}\n",
            names(&self.regressions),
            names(&self.improvements),
        ));
        out
    }
}

impl fmt::Display for TraceDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{EcallRow, FaultRow, OcallRow, PagingRow, SwitchlessRow};

    fn trace_with_ecalls(durations: &[u64]) -> TraceDb {
        let mut trace = TraceDb::default();
        let mut t = 0;
        for &d in durations {
            trace.ecalls.insert(EcallRow {
                thread: 0,
                enclave: 1,
                call_index: 0,
                start_ns: t,
                end_ns: t + d,
                parent_ocall: None,
                aex_count: 0,
                failed: false,
            });
            t += d + 100;
        }
        trace
    }

    #[test]
    fn self_diff_is_all_zero_and_neutral() {
        let trace = trace_with_ecalls(&[5_000; 20]);
        let diff = TraceDiff::compute(&trace, &trace, DiffConfig::default());
        assert_eq!(diff.verdict, Verdict::Neutral);
        assert_eq!(diff.exit_code(), 0);
        assert_eq!(diff.calls.len(), 1);
        let c = &diff.calls[0];
        for m in [
            &c.count,
            &c.total_ns,
            &c.mean_ns,
            &c.p50_ns,
            &c.p99_ns,
            &c.aex,
        ] {
            assert_eq!(m.a, m.b);
            assert_eq!(m.rel_change(), 0.0);
        }
        assert!(diff.regressions.is_empty() && diff.improvements.is_empty());
        assert!((diff.speedup() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn slower_candidate_regresses_past_threshold() {
        let a = trace_with_ecalls(&[5_000; 20]);
        let b = trace_with_ecalls(&[6_000; 20]); // +20% mean/p50/p99
        let diff = TraceDiff::compute(&a, &b, DiffConfig::default());
        assert_eq!(diff.verdict, Verdict::Regression);
        assert_eq!(diff.exit_code(), REGRESSION_EXIT_CODE);
        let c = &diff.calls[0];
        assert_eq!(c.verdict, Verdict::Regression);
        assert!(c.flagged.iter().any(|f| f.starts_with("mean ")), "{c:?}");
        // Swapping sides yields the symmetric improvement verdict.
        let diff = TraceDiff::compute(&b, &a, DiffConfig::default());
        assert_eq!(diff.verdict, Verdict::Improvement);
        assert_eq!(diff.exit_code(), 0);
    }

    #[test]
    fn small_samples_do_not_gate() {
        let a = trace_with_ecalls(&[5_000; 4]);
        let b = trace_with_ecalls(&[50_000; 4]);
        let diff = TraceDiff::compute(&a, &b, DiffConfig::default());
        // Per-call gate is off (count < min_count) but the wall clock
        // still catches the 10x drift.
        assert_eq!(diff.calls[0].verdict, Verdict::Neutral);
        assert!(
            diff.regressions.iter().all(|r| r.contains("wall clock")),
            "{:?}",
            diff.regressions
        );
    }

    #[test]
    fn disjoint_calls_are_reported_not_aligned() {
        let a = trace_with_ecalls(&[5_000; 10]);
        let mut b = TraceDb::default();
        b.ocalls.insert(OcallRow {
            thread: 0,
            enclave: 1,
            call_index: 0,
            start_ns: 0,
            end_ns: 1_000,
            parent_ecall: None,
            failed: false,
        });
        let diff = TraceDiff::compute(&a, &b, DiffConfig::default());
        assert!(diff.calls.is_empty());
        assert_eq!(diff.only_in_a, vec!["enclave1/ecall#0 (ecall)"]);
        assert_eq!(diff.only_in_b, vec!["enclave1/ocall#0 (ocall)"]);
    }

    #[test]
    fn switchless_served_ocalls_leave_the_transition_count() {
        let mut trace = trace_with_ecalls(&[5_000; 10]);
        for i in 0..6u64 {
            trace.ocalls.insert(OcallRow {
                thread: 0,
                enclave: 1,
                call_index: 0,
                start_ns: i * 10,
                end_ns: i * 10 + 5,
                parent_ecall: None,
                failed: false,
            });
        }
        for _ in 0..4 {
            trace.switchless.insert(SwitchlessRow {
                thread: 0,
                enclave: 1,
                kind: 1,
                call_index: Some(0),
                worker: Some(0),
                spins: 0,
                time_ns: 1,
            });
        }
        assert_eq!(round_trips(&trace), 10 + 6 - 4);
    }

    #[test]
    fn injected_faults_attributed_to_overlapping_windows() {
        let a = trace_with_ecalls(&[5_000; 20]);
        let mut b = trace_with_ecalls(&[7_000; 20]);
        // One injected fault inside the first call's window, one far out.
        b.faults.insert(FaultRow {
            thread: 0,
            enclave: 1,
            fault: 0,
            action: 0,
            call_index: None,
            magnitude: 4,
            time_ns: 2_500,
        });
        b.faults.insert(FaultRow {
            thread: 0,
            enclave: 1,
            fault: 0,
            action: 0,
            call_index: None,
            magnitude: 4,
            time_ns: 999_999_999,
        });
        let diff = TraceDiff::compute(&a, &b, DiffConfig::default());
        assert_eq!(diff.verdict, Verdict::Regression);
        assert_eq!(diff.calls[0].attributed_faults, 1);
        assert_eq!(diff.attributed_faults(), 1);
        assert_eq!(diff.totals.faults_injected.b, 2.0);
        assert!(
            diff.regressions
                .iter()
                .any(|r| r.contains("injected fault(s) in window")),
            "{:?}",
            diff.regressions
        );
    }

    #[test]
    fn regressions_overlapping_a_recovery_window_are_attributed() {
        use crate::events::LifecycleRow;
        let a = trace_with_ecalls(&[5_000; 20]);
        let mut b = trace_with_ecalls(&[7_000; 20]);
        // One recovery window covering the first few calls.
        for (stage, time_ns) in [(0u8, 1_000u64), (1, 5_000), (2, 9_000), (4, 12_000)] {
            b.lifecycle.insert(LifecycleRow {
                enclave: 1,
                stage,
                thread: 0,
                attempt: 1,
                magnitude: if stage == 4 { 11_000 } else { 4_000 },
                time_ns,
            });
        }
        let diff = TraceDiff::compute(&a, &b, DiffConfig::default());
        assert_eq!(diff.verdict, Verdict::Regression);
        assert!(diff.calls[0].recovery_overlaps > 0, "{:?}", diff.calls[0]);
        assert_eq!(diff.totals.enclaves_lost.b, 1.0);
        assert_eq!(diff.totals.restarts.b, 1.0);
        assert_eq!(diff.totals.recovery_ns.b, 11_000.0);
        assert!(
            diff.regressions
                .iter()
                .any(|r| r.contains("overlap an enclave recovery")),
            "{:?}",
            diff.regressions
        );
        assert!(diff.to_json().contains("\"recovery_overlaps\""));
        assert!(diff.render().contains("enclaves lost"));
    }

    #[test]
    fn an_unclosed_loss_extends_to_the_end_of_the_trace() {
        use crate::events::LifecycleRow;
        let mut b = trace_with_ecalls(&[5_000; 4]);
        b.lifecycle.insert(LifecycleRow {
            enclave: 1,
            stage: 0,
            thread: 0,
            attempt: 0,
            magnitude: 0,
            time_ns: 2_000,
        });
        assert_eq!(super::recovery_windows(&b), vec![(2_000, u64::MAX)]);
    }

    #[test]
    fn gave_up_faults_regress_regardless_of_latency() {
        let a = trace_with_ecalls(&[5_000; 20]);
        let mut b = trace_with_ecalls(&[5_000; 20]);
        b.faults.insert(FaultRow {
            thread: 0,
            enclave: 1,
            fault: 4,
            action: 3,
            call_index: Some(0),
            magnitude: 4,
            time_ns: 10,
        });
        let diff = TraceDiff::compute(&a, &b, DiffConfig::default());
        assert_eq!(diff.verdict, Verdict::Regression);
        assert!(diff.regressions.iter().any(|r| r.contains("gave up")));
    }

    #[test]
    fn paging_deltas_use_ewb_eldu_split() {
        let a = trace_with_ecalls(&[5_000; 10]);
        let mut b = trace_with_ecalls(&[5_000; 10]);
        for i in 0..4 {
            b.paging.insert(PagingRow {
                enclave: 1,
                out: i % 2 == 0,
                vaddr: 0x1000 * i,
                time_ns: 10 + i,
            });
        }
        let diff = TraceDiff::compute(&a, &b, DiffConfig::default());
        assert_eq!(diff.totals.page_outs.b, 2.0);
        assert_eq!(diff.totals.page_ins.b, 2.0);
        assert_eq!(diff.verdict, Verdict::Regression); // paging appeared from nothing
    }

    #[test]
    fn render_and_json_are_well_formed() {
        let a = trace_with_ecalls(&[5_000; 20]);
        let b = trace_with_ecalls(&[6_000; 20]);
        let diff = TraceDiff::compute(&a, &b, DiffConfig::default());
        let text = diff.render();
        assert!(text.contains("sgx-perf A/B diff"), "{text}");
        assert!(text.contains("verdict: REGRESSION"), "{text}");
        assert!(text.contains("per-call deltas"), "{text}");
        let json = diff.to_json();
        for key in [
            "\"verdict\"",
            "\"exit_code\": 3",
            "\"totals\"",
            "\"calls\"",
            "\"regressions\"",
            "\"improvements\"",
            "\"transitions\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        let opens = json.matches('{').count() + json.matches('[').count();
        let closes = json.matches('}').count() + json.matches(']').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn dispatch_ratio_handles_absent_sides() {
        let mut t = TotalsDelta::default();
        assert_eq!(t.dispatch_ratio(), (None, None));
        t.switchless_dispatched = MetricDelta::new(0.0, 9.0);
        t.switchless_fallbacks = MetricDelta::new(0.0, 1.0);
        let (a, b) = t.dispatch_ratio();
        assert_eq!(a, None);
        assert!((b.unwrap() - 0.9).abs() < 1e-12);
    }
}
