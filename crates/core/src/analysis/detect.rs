//! Problem detection (§4.3.2): the SGX-specific performance anti-patterns
//! of §3 and their mitigation recommendations (Table 1).

use std::collections::BTreeMap;
use std::fmt;

use crate::events::{CallKind, CallRef};

use super::parents::Instances;
use super::stats::CallStats;
use super::{symbol_name, Analyzer};

/// The problem classes of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Problem {
    /// Short Identical Successive Calls (§3.1).
    Sisc,
    /// Short Different Successive Calls (§3.2).
    Sdsc,
    /// Short Nested Calls (§3.3).
    Snc,
    /// Short Synchronisation Calls (§3.4).
    Ssc,
    /// EPC paging (§3.5).
    Paging,
    /// Permissive enclave interface (§3.6).
    Interface,
    /// Enclave-lost recovery cost (supervisor restarts, warm-up replay).
    Recovery,
    /// Concurrency hazard found by the race analyses (`sgxperf races`).
    Concurrency,
}

impl fmt::Display for Problem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Problem::Sisc => "short identical successive calls (SISC)",
            Problem::Sdsc => "short different successive calls (SDSC)",
            Problem::Snc => "short nested calls (SNC)",
            Problem::Ssc => "short synchronisation calls (SSC)",
            Problem::Paging => "EPC paging",
            Problem::Interface => "permissive enclave interface",
            Problem::Recovery => "enclave-lost recovery cost",
            Problem::Concurrency => "concurrency hazard",
        })
    }
}

/// A concrete mitigation recommendation (Table 1 solutions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Recommendation {
    /// Batch successive executions of the same call into one transition.
    BatchCalls {
        /// The call to batch (it is its own indirect parent).
        with: String,
    },
    /// Merge different successive calls into a single call.
    MergeCalls {
        /// The indirect parent to merge with.
        with: String,
    },
    /// Move the calling function inside the enclave (no extra security
    /// risk, but grows the TCB).
    MoveCallerIntoEnclave,
    /// Move the called function outside the enclave (requires a security
    /// evaluation — it may handle sensitive data).
    MoveCallerOutOfEnclave,
    /// Execute the nested call before its parent starts.
    ReorderBeforeParent,
    /// Execute the nested call after its parent ends.
    ReorderAfterParent,
    /// Duplicate the (short) ocall's functionality inside the enclave
    /// (grows the TCB).
    DuplicateInsideEnclave,
    /// Replace sleep-based locking with hybrid spin-then-sleep locks or
    /// lock-free data structures.
    HybridSynchronisation,
    /// Reduce memory usage / pre-load pages before the ecall / use an
    /// alternative in-enclave memory management scheme.
    MitigatePaging,
    /// Declare the ecall private; it was only ever called during ocalls.
    MakePrivate {
        /// The ocalls that must then `allow()` it.
        allow_from: Vec<String>,
    },
    /// Shrink an ocall's `allow()` list to the ecalls actually used.
    RestrictAllowedEcalls {
        /// Declared-but-never-used ecalls to remove.
        remove: Vec<String>,
    },
    /// Review `user_check` pointer parameters for missing validation.
    ReviewUserCheck {
        /// The flagged parameter names.
        params: Vec<String>,
    },
    /// Serve the call switchlessly (`transition_using_threads`): worker
    /// threads polling a shared ring replace the enclave transition.
    UseSwitchless,
    /// Shrink the state re-established by supervisor warm-up hooks after an
    /// enclave loss (e.g. seal state instead of recomputing it): replay
    /// dominates the mean time to recovery.
    ReduceRecoveryState,
    /// Guard every access to a shared cell with one lock (or order the
    /// accesses through spawn/join): the happens-before analysis found a
    /// data race.
    FixDataRace {
        /// The racing shared cell.
        cell: String,
    },
    /// Impose a global lock-acquisition order: the lock-order graph has a
    /// cycle (potential deadlock).
    FixLockOrder {
        /// The locks along the cycle.
        cycle: Vec<String>,
    },
    /// Release the lock before the ocall (or move the ocall out of the
    /// critical section): holding it across the boundary invites §3.4
    /// re-entrancy deadlocks.
    AvoidLockAcrossOcall {
        /// The ocall crossed while holding a lock.
        ocall: String,
    },
}

impl fmt::Display for Recommendation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Recommendation::BatchCalls { with } => write!(f, "batch successive calls to {with}"),
            Recommendation::MergeCalls { with } => write!(f, "merge with preceding call {with}"),
            Recommendation::MoveCallerIntoEnclave => {
                f.write_str("move the calling function inside the enclave")
            }
            Recommendation::MoveCallerOutOfEnclave => f.write_str(
                "move the calling function outside the enclave (needs security evaluation)",
            ),
            Recommendation::ReorderBeforeParent => {
                f.write_str("reorder the call to execute before its parent")
            }
            Recommendation::ReorderAfterParent => {
                f.write_str("reorder the call to execute after its parent")
            }
            Recommendation::DuplicateInsideEnclave => {
                f.write_str("duplicate the functionality inside the enclave (grows TCB)")
            }
            Recommendation::HybridSynchronisation => {
                f.write_str("use hybrid spin-then-sleep locks or lock-free data structures")
            }
            Recommendation::MitigatePaging => f.write_str(
                "reduce enclave memory usage, pre-load pages before ecalls, or manage memory \
                 inside the enclave instead of relying on SGX paging",
            ),
            Recommendation::MakePrivate { allow_from } => write!(
                f,
                "declare this ecall private and allow() it from: {}",
                allow_from.join(", ")
            ),
            Recommendation::RestrictAllowedEcalls { remove } => write!(
                f,
                "remove never-used ecalls from the allow() list: {}",
                remove.join(", ")
            ),
            Recommendation::ReviewUserCheck { params } => write!(
                f,
                "review user_check pointer parameter(s): {}",
                params.join(", ")
            ),
            Recommendation::UseSwitchless => f.write_str(
                "mark the call switchless (transition_using_threads) so ring workers serve it \
                 without a transition",
            ),
            Recommendation::ReduceRecoveryState => f.write_str(
                "reduce the state replayed after an enclave loss (seal state instead of \
                 recomputing it in warm-up hooks)",
            ),
            Recommendation::FixDataRace { cell } => write!(
                f,
                "guard every access to `{cell}` with one mutex, or order the accesses with \
                 thread spawn/join"
            ),
            Recommendation::FixLockOrder { cycle } => write!(
                f,
                "impose a global acquisition order on locks: {}",
                cycle.join(", ")
            ),
            Recommendation::AvoidLockAcrossOcall { ocall } => write!(
                f,
                "release the lock before `{ocall}`, or move the ocall out of the critical \
                 section"
            ),
        }
    }
}

/// Recommendation priority (§4.3.2): lower is to be evaluated first.
/// Reordering does not grow the TCB, so it comes before moving/duplicating;
/// moving code *out* of the enclave needs a security evaluation and comes
/// last among the performance recommendations.
pub type Priority = u8;

/// One finding: a problem on a call with a recommendation and evidence.
#[derive(Debug, Clone, PartialEq)]
pub struct Detection {
    /// The call the finding is about.
    pub target: CallRef,
    /// The call's symbol name.
    pub name: String,
    /// The detected problem class.
    pub problem: Problem,
    /// The suggested mitigation.
    pub recommendation: Recommendation,
    /// Human-readable evidence (counts, ratios).
    pub evidence: String,
    /// Evaluation priority.
    pub priority: Priority,
}

impl fmt::Display for Detection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[P{}] {} `{}`: {} — {} ({})",
            self.priority, self.problem, self.name, self.recommendation, self.evidence, self.target
        )
    }
}

const PRIO_CORRECTNESS: Priority = 1;
const PRIO_REORDER: Priority = 1;
const PRIO_SWITCHLESS: Priority = 2;
const PRIO_BATCH_MERGE: Priority = 2;
const PRIO_SYNC: Priority = 2;
const PRIO_PAGING: Priority = 2;
const PRIO_RECOVERY: Priority = 2;
const PRIO_DUP_MOVE_IN: Priority = 3;
const PRIO_MOVE_OUT: Priority = 4;
pub(crate) const PRIO_SECURITY: Priority = 5;

/// Runs all performance detectors.
pub fn detect_all(
    analyzer: &Analyzer<'_>,
    instances: &Instances,
    call_stats: &[(CallRef, CallStats)],
) -> Vec<Detection> {
    let mut out = Vec::new();
    out.extend(detect_move_duplicate(analyzer, call_stats, instances));
    out.extend(detect_switchless(analyzer, call_stats));
    out.extend(detect_reorder(analyzer, instances));
    out.extend(detect_merge_batch(analyzer, instances));
    out.extend(detect_ssc(analyzer, instances));
    out.extend(detect_paging(analyzer));
    out.extend(detect_recovery(analyzer));
    out.extend(detect_concurrency(analyzer));
    out
}

/// Equation 1: moving/duplication opportunities from short mean execution
/// times. For ecalls the mitigation is moving the caller across the
/// boundary (SISC/SDSC family); for nested ocalls it is duplicating the
/// functionality inside the enclave (SNC family).
fn detect_move_duplicate(
    analyzer: &Analyzer<'_>,
    call_stats: &[(CallRef, CallStats)],
    instances: &Instances,
) -> Vec<Detection> {
    let w = analyzer.weights();
    let mut out = Vec::new();
    for (call, stats) in call_stats {
        if stats.count < w.min_calls {
            continue;
        }
        let hit = stats.frac_under_1us >= w.move_alpha
            || stats.frac_under_5us >= w.move_beta
            || stats.frac_under_10us >= w.move_gamma;
        if !hit {
            continue;
        }
        let evidence = format!(
            "{} calls; {:.1}% < 1us, {:.1}% < 5us, {:.1}% < 10us (transition-adjusted)",
            stats.count,
            stats.frac_under_1us * 100.0,
            stats.frac_under_5us * 100.0,
            stats.frac_under_10us * 100.0,
        );
        let name = symbol_name(analyzer.trace(), *call);
        // Identical-successor ratio decides SISC vs SDSC for ecalls.
        let self_parent = instances
            .of_call(*call)
            .filter(|i| {
                i.indirect_parent
                    .is_some_and(|p| instances.all[p].call == *call)
            })
            .count();
        let mostly_identical = self_parent * 2 >= stats.count;
        match call.kind {
            CallKind::Ecall => {
                out.push(Detection {
                    target: *call,
                    name: name.clone(),
                    problem: if mostly_identical {
                        Problem::Sisc
                    } else {
                        Problem::Sdsc
                    },
                    recommendation: Recommendation::MoveCallerIntoEnclave,
                    evidence: evidence.clone(),
                    priority: PRIO_DUP_MOVE_IN,
                });
                out.push(Detection {
                    target: *call,
                    name,
                    problem: if mostly_identical {
                        Problem::Sisc
                    } else {
                        Problem::Sdsc
                    },
                    recommendation: Recommendation::MoveCallerOutOfEnclave,
                    evidence,
                    priority: PRIO_MOVE_OUT,
                });
            }
            CallKind::Ocall => {
                out.push(Detection {
                    target: *call,
                    name,
                    problem: Problem::Snc,
                    recommendation: Recommendation::DuplicateInsideEnclave,
                    evidence,
                    priority: PRIO_DUP_MOVE_IN,
                });
            }
        }
    }
    out
}

/// Switchless candidates: calls frequent and short enough that the
/// transition dominates, so serving them from worker threads polling a
/// shared ring (`transition_using_threads`) pays off. Unlike moving or
/// duplicating code this is a pure configuration change — no TCB growth,
/// no security evaluation — so it shares the batching priority tier.
fn detect_switchless(
    analyzer: &Analyzer<'_>,
    call_stats: &[(CallRef, CallStats)],
) -> Vec<Detection> {
    let w = analyzer.weights();
    let cost = analyzer.cost_model();
    let mut out = Vec::new();
    for (call, stats) in call_stats {
        if stats.count < w.switchless_min_calls {
            continue;
        }
        if stats.frac_under_10us < w.switchless_fraction {
            continue;
        }
        let saving = match call.kind {
            CallKind::Ecall => cost.switchless_ecall_saving(),
            CallKind::Ocall => cost.switchless_ocall_saving(),
        };
        let total = sim_core::Nanos::from_nanos(saving.as_nanos() * stats.count as u64);
        out.push(Detection {
            target: *call,
            name: symbol_name(analyzer.trace(), *call),
            problem: if call.kind == CallKind::Ecall {
                Problem::Sdsc
            } else {
                Problem::Snc
            },
            recommendation: Recommendation::UseSwitchless,
            evidence: format!(
                "{} calls, {:.1}% shorter than 10us adjusted; switchless saves ~{} per \
                 call (~{} over the trace)",
                stats.count,
                stats.frac_under_10us * 100.0,
                saving,
                total
            ),
            priority: PRIO_SWITCHLESS,
        });
    }
    out
}

/// Equation 2: reordering opportunities — nested calls clustered at the
/// start or end of their direct parent.
fn detect_reorder(analyzer: &Analyzer<'_>, instances: &Instances) -> Vec<Detection> {
    let w = analyzer.weights();
    // Group nested instances by child call.
    #[derive(Default)]
    struct Acc {
        total: usize,
        start_10: usize,
        start_20: usize,
        end_10: usize,
        end_20: usize,
    }
    let mut groups: BTreeMap<CallRef, Acc> = BTreeMap::new();
    for i in &instances.all {
        let Some((pkind, prow)) = i.direct_parent else {
            continue;
        };
        let Some(parent) = instances.by_row(pkind, prow) else {
            continue;
        };
        let acc = groups.entry(i.call).or_default();
        acc.total += 1;
        let from_start = i.start_ns.saturating_sub(parent.start_ns);
        let to_end = parent.end_ns.saturating_sub(i.end_ns);
        if from_start < 10_000 {
            acc.start_10 += 1;
        } else if from_start < 20_000 {
            acc.start_20 += 1;
        }
        if to_end < 10_000 {
            acc.end_10 += 1;
        } else if to_end < 20_000 {
            acc.end_20 += 1;
        }
    }
    let mut out = Vec::new();
    for (call, acc) in groups {
        if acc.total < w.min_calls {
            continue;
        }
        let total = acc.total as f64;
        let score_start = acc.start_10 as f64 / total * w.reorder_alpha
            + acc.start_20 as f64 / total * w.reorder_beta;
        let score_end = acc.end_10 as f64 / total * w.reorder_alpha
            + acc.end_20 as f64 / total * w.reorder_beta;
        let name = symbol_name(analyzer.trace(), call);
        if score_start >= w.reorder_gamma {
            out.push(Detection {
                target: call,
                name: name.clone(),
                problem: Problem::Snc,
                recommendation: Recommendation::ReorderBeforeParent,
                evidence: format!(
                    "{}/{} nested executions within 10us of parent start (score {:.2})",
                    acc.start_10, acc.total, score_start
                ),
                priority: PRIO_REORDER,
            });
        }
        if score_end >= w.reorder_gamma {
            out.push(Detection {
                target: call,
                name,
                problem: Problem::Snc,
                recommendation: Recommendation::ReorderAfterParent,
                evidence: format!(
                    "{}/{} nested executions within 10us of parent end (score {:.2})",
                    acc.end_10, acc.total, score_end
                ),
                priority: PRIO_REORDER,
            });
        }
    }
    out
}

/// Equation 3: merging/batching opportunities from indirect-parent gaps.
/// Batching is the special case where the call is its own indirect parent.
fn detect_merge_batch(analyzer: &Analyzer<'_>, instances: &Instances) -> Vec<Detection> {
    let w = analyzer.weights();
    #[derive(Default)]
    struct Acc {
        pairs: usize,
        gap_1: usize,
        gap_5: usize,
        gap_10: usize,
        gap_20: usize,
    }
    let mut pair_stats: BTreeMap<(CallRef, CallRef), Acc> = BTreeMap::new();
    let mut call_counts: BTreeMap<CallRef, usize> = BTreeMap::new();
    for i in &instances.all {
        *call_counts.entry(i.call).or_default() += 1;
        let Some(p) = i.indirect_parent else { continue };
        let parent = &instances.all[p];
        let acc = pair_stats.entry((i.call, parent.call)).or_default();
        acc.pairs += 1;
        let gap = i.start_ns.saturating_sub(parent.end_ns);
        if gap < 1_000 {
            acc.gap_1 += 1;
        } else if gap < 5_000 {
            acc.gap_5 += 1;
        } else if gap < 10_000 {
            acc.gap_10 += 1;
        } else if gap < 20_000 {
            acc.gap_20 += 1;
        }
    }
    let mut out = Vec::new();
    for ((child, parent), acc) in pair_stats {
        let child_total = call_counts[&child];
        if child_total < w.min_calls {
            continue;
        }
        // λ: the parent must be this call's indirect parent often enough.
        if (acc.pairs as f64) < w.merge_lambda * child_total as f64 {
            continue;
        }
        let pairs = acc.pairs as f64;
        let score = acc.gap_1 as f64 / pairs * w.merge_alpha
            + acc.gap_5 as f64 / pairs * w.merge_beta
            + acc.gap_10 as f64 / pairs * w.merge_gamma
            + acc.gap_20 as f64 / pairs * w.merge_delta;
        if score < w.merge_epsilon {
            continue;
        }
        let child_name = symbol_name(analyzer.trace(), child);
        let parent_name = symbol_name(analyzer.trace(), parent);
        let evidence = format!(
            "{} of {} executions follow `{}` closely (gap score {:.2})",
            acc.pairs, child_total, parent_name, score
        );
        if child == parent {
            out.push(Detection {
                target: child,
                name: child_name,
                problem: Problem::Sisc,
                recommendation: Recommendation::BatchCalls { with: parent_name },
                evidence,
                priority: PRIO_BATCH_MERGE,
            });
        } else {
            out.push(Detection {
                target: child,
                name: child_name,
                problem: Problem::Sdsc,
                recommendation: Recommendation::MergeCalls { with: parent_name },
                evidence,
                priority: PRIO_BATCH_MERGE,
            });
        }
    }
    out
}

/// §3.4: short synchronisation calls — sleeps that are so short that the
/// transitions dominate; recommend hybrid locks.
fn detect_ssc(analyzer: &Analyzer<'_>, instances: &Instances) -> Vec<Detection> {
    let w = analyzer.weights();
    let trace = analyzer.trace();
    let mut sleeps_per_ocall: BTreeMap<CallRef, (usize, usize)> = BTreeMap::new();
    for s in trace.sync.iter() {
        if !s.sleep {
            continue;
        }
        let Some(row) = trace.ocalls.get(eventdb::RowId(s.ocall_row as usize)) else {
            continue;
        };
        let call = CallRef {
            enclave: row.enclave,
            kind: CallKind::Ocall,
            index: row.call_index,
        };
        let duration = instances
            .by_row(CallKind::Ocall, s.ocall_row)
            .map(|i| i.duration_ns)
            .unwrap_or(0);
        let entry = sleeps_per_ocall.entry(call).or_default();
        entry.0 += 1;
        if duration < w.ssc_short_us * 1_000 {
            entry.1 += 1;
        }
    }
    let mut out = Vec::new();
    for (call, (total, short)) in sleeps_per_ocall {
        if total < w.min_calls {
            continue;
        }
        if (short as f64) < w.ssc_fraction * total as f64 {
            continue;
        }
        out.push(Detection {
            target: call,
            name: symbol_name(trace, call),
            problem: Problem::Ssc,
            recommendation: Recommendation::HybridSynchronisation,
            evidence: format!(
                "{short} of {total} sleep ocalls shorter than {}us — lock hold times are \
                 shorter than a transition",
                w.ssc_short_us
            ),
            priority: PRIO_SYNC,
        });
    }
    out
}

/// §3.5: paging events observed at all mean the enclave's working set
/// exceeded the (shared) EPC.
fn detect_paging(analyzer: &Analyzer<'_>) -> Vec<Detection> {
    let trace = analyzer.trace();
    let mut per_enclave: BTreeMap<u32, (usize, usize)> = BTreeMap::new();
    for p in trace.paging.iter() {
        let entry = per_enclave.entry(p.enclave).or_default();
        if p.out {
            entry.0 += 1;
        } else {
            entry.1 += 1;
        }
    }
    let mut out = Vec::new();
    for (enclave, (outs, ins)) in per_enclave {
        if outs == 0 && ins == 0 {
            continue;
        }
        // Page-ins during creation are normal; only report enclaves with
        // actual evictions or faulted re-loads.
        if outs == 0 {
            continue;
        }
        let target = CallRef {
            enclave,
            kind: CallKind::Ecall,
            index: 0,
        };
        out.push(Detection {
            target,
            name: format!("enclave{enclave}"),
            problem: Problem::Paging,
            recommendation: Recommendation::MitigatePaging,
            evidence: format!("{outs} page-outs and {ins} page-ins observed"),
            priority: PRIO_PAGING,
        });
    }
    out
}

/// Enclave-lost recovery: when warm-up replay accounts for most of the
/// time spent recovering, the supervisor's restart policy is paying for
/// state that could be sealed or shrunk.
fn detect_recovery(analyzer: &Analyzer<'_>) -> Vec<Detection> {
    use sim_core::LifecycleStage;
    let trace = analyzer.trace();
    let mut lost_enclave = None;
    let mut restarts = 0usize;
    let mut replay_ns = 0u64;
    let mut recovery_ns = 0u64;
    for row in trace.lifecycle.iter() {
        match LifecycleStage::from_code(row.stage) {
            Some(LifecycleStage::Lost) => lost_enclave = lost_enclave.or(Some(row.enclave)),
            Some(LifecycleStage::Rebuild) => restarts += 1,
            Some(LifecycleStage::Replay) => replay_ns += row.magnitude,
            Some(LifecycleStage::Recovered) => recovery_ns += row.magnitude,
            _ => {}
        }
    }
    let Some(enclave) = lost_enclave else {
        return Vec::new();
    };
    if restarts == 0 || recovery_ns == 0 || replay_ns * 2 <= recovery_ns {
        return Vec::new();
    }
    vec![Detection {
        target: CallRef {
            enclave,
            kind: CallKind::Ecall,
            index: 0,
        },
        name: format!("enclave{enclave}"),
        problem: Problem::Recovery,
        recommendation: Recommendation::ReduceRecoveryState,
        evidence: format!(
            "{restarts} restart(s); warm-up replay took {replay_ns} ns of {recovery_ns} ns \
             total recovery ({:.0}% of MTTR)",
            replay_ns as f64 / recovery_ns as f64 * 100.0
        ),
        priority: PRIO_RECOVERY,
    }]
}

/// Concurrency hazards from the race analyses (`sgxperf races`): data
/// races, lock-order cycles and locks held across ocalls surface in the
/// regular report too, at the highest priority — a correctness bug
/// trumps any performance tuning. Runs only when the trace carries a
/// sync-event table (recording with `track_syncev` opted in).
fn detect_concurrency(analyzer: &Analyzer<'_>) -> Vec<Detection> {
    use super::races::{self, RaceKind};
    let trace = analyzer.trace();
    if trace.syncev.is_empty() {
        return Vec::new();
    }
    // No single ecall/ocall owns a sync finding; anchor on the first
    // observed enclave (the Paging/Recovery precedent for whole-enclave
    // findings).
    let enclave = trace.enclaves.iter().map(|e| e.enclave).next().unwrap_or(0);
    let target = CallRef {
        enclave,
        kind: CallKind::Ecall,
        index: 0,
    };
    races::analyze(trace)
        .findings
        .into_iter()
        .map(|f| {
            let recommendation = match &f.kind {
                RaceKind::DataRace { cell, .. } | RaceKind::LocksetSuspicion { cell, .. } => {
                    Recommendation::FixDataRace { cell: cell.clone() }
                }
                RaceKind::LockOrderCycle { cycle, .. } => Recommendation::FixLockOrder {
                    cycle: cycle.clone(),
                },
                RaceKind::LockAcrossOcall { ocall, .. } => Recommendation::AvoidLockAcrossOcall {
                    ocall: ocall.clone(),
                },
            };
            Detection {
                target,
                name: format!("enclave{enclave}"),
                problem: Problem::Concurrency,
                recommendation,
                evidence: format!("{}: {}", f.code, f.message),
                priority: PRIO_CORRECTNESS,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{EcallRow, LifecycleRow, OcallRow, PagingRow, SymbolRow, SyncRow};
    use crate::trace::TraceDb;
    use sim_core::HwProfile;

    fn analyzer(trace: &TraceDb) -> Analyzer<'_> {
        Analyzer::new(trace, HwProfile::Unpatched.cost_model())
    }

    fn symbol(trace: &mut TraceDb, is_ecall: bool, index: u32, name: &str) {
        trace.symbols.insert(SymbolRow {
            enclave: 1,
            kind_is_ecall: is_ecall,
            index,
            name: name.into(),
            public: true,
            allowed_ecalls: vec![],
            user_check_params: vec![],
        });
    }

    /// Many short successive identical ecalls trigger batching (SISC) and
    /// move recommendations.
    #[test]
    fn sisc_batching_detected() {
        let mut trace = TraceDb::default();
        symbol(&mut trace, true, 0, "ecall_tiny");
        let mut t = 0;
        for _ in 0..100 {
            // 5 us call (under 1 us adjusted), 200 ns gap.
            trace.ecalls.insert(EcallRow {
                thread: 0,
                enclave: 1,
                call_index: 0,
                start_ns: t,
                end_ns: t + 5_000,
                parent_ocall: None,
                aex_count: 0,
                failed: false,
            });
            t += 5_200;
        }
        let a = analyzer(&trace);
        let report_detections = detect_all(
            &a,
            &a.instances(),
            &super::super::stats::per_call_stats(&a.instances()),
        );
        let batch = report_detections
            .iter()
            .find(|d| matches!(d.recommendation, Recommendation::BatchCalls { .. }));
        assert!(batch.is_some(), "{report_detections:?}");
        assert_eq!(batch.unwrap().problem, Problem::Sisc);
        assert!(report_detections
            .iter()
            .any(|d| d.recommendation == Recommendation::MoveCallerIntoEnclave));
    }

    /// Alternating short calls trigger merging (SDSC).
    #[test]
    fn sdsc_merging_detected() {
        let mut trace = TraceDb::default();
        symbol(&mut trace, false, 0, "ocall_lseek");
        symbol(&mut trace, false, 1, "ocall_write");
        symbol(&mut trace, true, 0, "ecall_insert");
        let mut t = 0;
        for _ in 0..50 {
            // Parent ecall wrapping an lseek+write pair.
            let e_start = t;
            let row = trace.ecalls.len() as u64;
            t += 2_000;
            trace.ocalls.insert(OcallRow {
                thread: 0,
                enclave: 1,
                call_index: 0,
                start_ns: t,
                end_ns: t + 4_000,
                parent_ecall: Some(row),
                failed: false,
            });
            t += 4_300; // 300 ns gap
            trace.ocalls.insert(OcallRow {
                thread: 0,
                enclave: 1,
                call_index: 1,
                start_ns: t,
                end_ns: t + 17_000,
                parent_ecall: Some(row),
                failed: false,
            });
            t += 20_000;
            trace.ecalls.insert(EcallRow {
                thread: 0,
                enclave: 1,
                call_index: 0,
                start_ns: e_start,
                end_ns: t,
                parent_ocall: None,
                aex_count: 0,
                failed: false,
            });
            t += 1_000;
        }
        let a = analyzer(&trace);
        let inst = a.instances();
        let detections = detect_merge_batch(&a, &inst);
        let merge = detections
            .iter()
            .find(|d| matches!(&d.recommendation, Recommendation::MergeCalls { with } if with == "ocall_lseek"));
        assert!(merge.is_some(), "{detections:?}");
        assert_eq!(merge.unwrap().problem, Problem::Sdsc);
        assert_eq!(merge.unwrap().name, "ocall_write");
    }

    /// Ocalls clustered at the start of their parent trigger reordering.
    #[test]
    fn snc_reorder_detected() {
        let mut trace = TraceDb::default();
        symbol(&mut trace, false, 0, "ocall_alloc");
        symbol(&mut trace, true, 0, "ecall_work");
        let mut t = 0;
        for _ in 0..20 {
            let row = trace.ecalls.len() as u64;
            trace.ocalls.insert(OcallRow {
                thread: 0,
                enclave: 1,
                call_index: 0,
                start_ns: t + 1_000, // 1 us after parent start
                end_ns: t + 3_000,
                parent_ecall: Some(row),
                failed: false,
            });
            trace.ecalls.insert(EcallRow {
                thread: 0,
                enclave: 1,
                call_index: 0,
                start_ns: t,
                end_ns: t + 100_000,
                parent_ocall: None,
                aex_count: 0,
                failed: false,
            });
            t += 110_000;
        }
        let a = analyzer(&trace);
        let detections = detect_reorder(&a, &a.instances());
        assert!(
            detections
                .iter()
                .any(|d| d.recommendation == Recommendation::ReorderBeforeParent
                    && d.name == "ocall_alloc"),
            "{detections:?}"
        );
        // Priority: reorder comes before move/duplicate.
        assert_eq!(detections[0].priority, PRIO_REORDER);
    }

    /// High-frequency short calls also get the switchless recommendation,
    /// with the cost-model saving in the evidence.
    #[test]
    fn switchless_recommended_for_frequent_short_calls() {
        let mut trace = TraceDb::default();
        symbol(&mut trace, true, 0, "ecall_tiny");
        let mut t = 0;
        for _ in 0..100 {
            trace.ecalls.insert(EcallRow {
                thread: 0,
                enclave: 1,
                call_index: 0,
                start_ns: t,
                end_ns: t + 5_000,
                parent_ocall: None,
                aex_count: 0,
                failed: false,
            });
            t += 5_200;
        }
        let a = analyzer(&trace);
        let detections =
            detect_switchless(&a, &super::super::stats::per_call_stats(&a.instances()));
        assert_eq!(detections.len(), 1, "{detections:?}");
        let d = &detections[0];
        assert_eq!(d.recommendation, Recommendation::UseSwitchless);
        assert_eq!(d.name, "ecall_tiny");
        assert_eq!(d.priority, PRIO_SWITCHLESS);
        assert!(d.evidence.contains("switchless saves"), "{}", d.evidence);
    }

    /// A short call below the switchless frequency floor stays quiet even
    /// though the generic move heuristics may still fire.
    #[test]
    fn switchless_needs_sustained_frequency() {
        let mut trace = TraceDb::default();
        symbol(&mut trace, true, 0, "ecall_rare");
        let mut t = 0;
        for _ in 0..10 {
            trace.ecalls.insert(EcallRow {
                thread: 0,
                enclave: 1,
                call_index: 0,
                start_ns: t,
                end_ns: t + 5_000,
                parent_ocall: None,
                aex_count: 0,
                failed: false,
            });
            t += 5_200;
        }
        let a = analyzer(&trace);
        let detections =
            detect_switchless(&a, &super::super::stats::per_call_stats(&a.instances()));
        assert!(detections.is_empty(), "{detections:?}");
    }

    /// Long calls trigger nothing.
    #[test]
    fn long_calls_are_clean() {
        let mut trace = TraceDb::default();
        symbol(&mut trace, true, 0, "ecall_long");
        let mut t = 0;
        for _ in 0..50 {
            trace.ecalls.insert(EcallRow {
                thread: 0,
                enclave: 1,
                call_index: 0,
                start_ns: t,
                end_ns: t + 500_000, // 500 us
                parent_ocall: None,
                aex_count: 0,
                failed: false,
            });
            t += 600_000;
        }
        let a = analyzer(&trace);
        let inst = a.instances();
        let stats = super::super::stats::per_call_stats(&inst);
        let detections = detect_all(&a, &inst, &stats);
        assert!(detections.is_empty(), "{detections:?}");
    }

    /// Short sleeps under contention trigger the SSC hint.
    #[test]
    fn ssc_detected_for_short_sleeps() {
        let mut trace = TraceDb::default();
        symbol(
            &mut trace,
            false,
            0,
            "sgx_thread_wait_untrusted_event_ocall",
        );
        let mut t = 0;
        for i in 0..20 {
            let row = trace.ocalls.insert(OcallRow {
                thread: 0,
                enclave: 1,
                call_index: 0,
                start_ns: t,
                end_ns: t + 3_000, // 3 us sleep: shorter than a transition
                parent_ecall: None,
                failed: false,
            });
            trace.sync.insert(SyncRow {
                thread: 0,
                time_ns: t,
                sleep: true,
                target_thread: None,
                ocall_row: row.0 as u64,
            });
            t += 10_000 + i;
        }
        let a = analyzer(&trace);
        let detections = detect_ssc(&a, &a.instances());
        assert_eq!(detections.len(), 1, "{detections:?}");
        assert_eq!(detections[0].problem, Problem::Ssc);
        assert_eq!(
            detections[0].recommendation,
            Recommendation::HybridSynchronisation
        );
    }

    /// Page-outs trigger the paging mitigation hint; creation-only
    /// page-ins do not.
    #[test]
    fn paging_detected_only_with_evictions() {
        let mut trace = TraceDb::default();
        for i in 0..10 {
            trace.paging.insert(PagingRow {
                enclave: 1,
                out: false,
                vaddr: 0x1000 * i,
                time_ns: i,
            });
        }
        let a = analyzer(&trace);
        assert!(detect_paging(&a).is_empty());
        trace.paging.insert(PagingRow {
            enclave: 1,
            out: true,
            vaddr: 0x9000,
            time_ns: 99,
        });
        let a = analyzer(&trace);
        let detections = detect_paging(&a);
        assert_eq!(detections.len(), 1);
        assert_eq!(detections[0].problem, Problem::Paging);
    }

    fn lifecycle(trace: &mut TraceDb, stage: u8, attempt: u32, magnitude: u64, time_ns: u64) {
        trace.lifecycle.insert(LifecycleRow {
            enclave: 1,
            stage,
            thread: 0,
            attempt,
            magnitude,
            time_ns,
        });
    }

    /// Replay dominating the recovery time fires ReduceRecoveryState;
    /// rebuild-dominated recovery stays quiet.
    #[test]
    fn replay_dominated_recovery_detected() {
        let mut trace = TraceDb::default();
        lifecycle(&mut trace, 0, 0, 0, 1_000); // lost
        lifecycle(&mut trace, 1, 1, 10_000, 11_000); // rebuild: 10 us
        lifecycle(&mut trace, 2, 1, 80_000, 91_000); // replay: 80 us
        lifecycle(&mut trace, 4, 1, 100_000, 101_000); // recovered: 100 us MTTR
        let a = analyzer(&trace);
        let detections = detect_recovery(&a);
        assert_eq!(detections.len(), 1, "{detections:?}");
        let d = &detections[0];
        assert_eq!(d.problem, Problem::Recovery);
        assert_eq!(d.recommendation, Recommendation::ReduceRecoveryState);
        assert!(d.evidence.contains("1 restart"), "{}", d.evidence);

        // Same shape but replay is a sliver of the MTTR: no finding.
        let mut quiet = TraceDb::default();
        lifecycle(&mut quiet, 0, 0, 0, 1_000);
        lifecycle(&mut quiet, 1, 1, 80_000, 81_000);
        lifecycle(&mut quiet, 2, 1, 10_000, 91_000);
        lifecycle(&mut quiet, 4, 1, 100_000, 101_000);
        let a = analyzer(&quiet);
        assert!(detect_recovery(&a).is_empty());
    }

    /// A trace with racy sync events surfaces a top-priority concurrency
    /// detection; a sync-free trace does not run the analysis at all.
    #[test]
    fn concurrency_hazards_surface_in_detections() {
        use crate::events::SyncEvRow;
        use sim_core::syncev::SyncOp;

        let mut trace = TraceDb::default();
        assert!(detect_concurrency(&analyzer(&trace)).is_empty());
        for thread in [0u64, 1] {
            trace.syncev.insert(SyncEvRow {
                thread,
                op: SyncOp::SharedWrite.code(),
                object: Some(7),
                target: None,
                aux: 0,
                label: "counter".into(),
                time_ns: thread * 100,
            });
        }
        let a = analyzer(&trace);
        let detections = detect_concurrency(&a);
        assert_eq!(detections.len(), 1, "{detections:?}");
        let d = &detections[0];
        assert_eq!(d.problem, Problem::Concurrency);
        assert_eq!(d.priority, PRIO_CORRECTNESS);
        assert!(
            matches!(&d.recommendation, Recommendation::FixDataRace { cell } if cell == "counter"),
            "{d:?}"
        );
        assert!(d.evidence.contains("RACE-E001"), "{}", d.evidence);
    }

    /// Below the minimum sample size nothing fires.
    #[test]
    fn few_samples_do_not_fire() {
        let mut trace = TraceDb::default();
        symbol(&mut trace, true, 0, "ecall_tiny");
        for i in 0..3u64 {
            trace.ecalls.insert(EcallRow {
                thread: 0,
                enclave: 1,
                call_index: 0,
                start_ns: i * 6_000,
                end_ns: i * 6_000 + 5_000,
                parent_ocall: None,
                aex_count: 0,
                failed: false,
            });
        }
        let a = analyzer(&trace);
        let inst = a.instances();
        let stats = super::super::stats::per_call_stats(&inst);
        assert!(detect_all(&a, &inst, &stats).is_empty());
    }
}
