//! Call graphs (Figure 5): nodes are ecalls/ocalls, solid edges are direct
//! parent relationships, dashed edges indirect parents, edge labels carry
//! call counts.

use std::collections::BTreeMap;

use crate::events::{CallKind, CallRef};
use crate::trace::TraceDb;

use super::parents::Instances;
use super::symbol_name;

/// One node of the call graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphNode {
    /// The call.
    pub call: CallRef,
    /// Its symbol name.
    pub name: String,
    /// How many times it executed.
    pub count: usize,
}

/// One edge of the call graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphEdge {
    /// Source call (the parent).
    pub from: CallRef,
    /// Destination call (the child).
    pub to: CallRef,
    /// Number of observed parent→child occurrences.
    pub count: usize,
    /// `false` for direct-parent (solid) edges, `true` for indirect-parent
    /// (dashed) edges.
    pub indirect: bool,
}

/// The assembled call graph of a trace.
#[derive(Debug, Clone, Default)]
pub struct CallGraph {
    /// All nodes, sorted by call.
    pub nodes: Vec<GraphNode>,
    /// All edges, sorted by (from, to, indirect).
    pub edges: Vec<GraphEdge>,
}

impl CallGraph {
    /// Builds the graph from the instance view.
    pub fn build(trace: &TraceDb, instances: &Instances) -> CallGraph {
        let mut counts: BTreeMap<CallRef, usize> = BTreeMap::new();
        let mut direct: BTreeMap<(CallRef, CallRef), usize> = BTreeMap::new();
        let mut indirect: BTreeMap<(CallRef, CallRef), usize> = BTreeMap::new();
        for i in &instances.all {
            *counts.entry(i.call).or_default() += 1;
            if let Some((kind, row)) = i.direct_parent {
                if let Some(parent) = instances.by_row(kind, row) {
                    *direct.entry((parent.call, i.call)).or_default() += 1;
                }
            }
            if let Some(p) = i.indirect_parent {
                let parent = &instances.all[p];
                *indirect.entry((parent.call, i.call)).or_default() += 1;
            }
        }
        let nodes = counts
            .into_iter()
            .map(|(call, count)| GraphNode {
                call,
                name: symbol_name(trace, call),
                count,
            })
            .collect();
        let mut edges: Vec<GraphEdge> = direct
            .into_iter()
            .map(|((from, to), count)| GraphEdge {
                from,
                to,
                count,
                indirect: false,
            })
            .chain(indirect.into_iter().map(|((from, to), count)| GraphEdge {
                from,
                to,
                count,
                indirect: true,
            }))
            .collect();
        edges.sort_by_key(|e| (e.from, e.to, e.indirect));
        CallGraph { nodes, edges }
    }

    /// Renders the graph in Graphviz DOT: square nodes for ecalls, round
    /// nodes for ocalls, solid edges for direct parents, dashed for
    /// indirect parents — the exact conventions of Figure 5.
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph calls {\n  rankdir=TB;\n");
        for n in &self.nodes {
            let shape = match n.call.kind {
                CallKind::Ecall => "box",
                CallKind::Ocall => "ellipse",
            };
            out.push_str(&format!(
                "  \"{}\" [shape={shape}, label=\"[{}] {}\"];\n",
                node_id(n.call),
                n.call.index,
                n.name
            ));
        }
        for e in &self.edges {
            let style = if e.indirect { ", style=dashed" } else { "" };
            out.push_str(&format!(
                "  \"{}\" -> \"{}\" [label=\"{}\"{}];\n",
                node_id(e.from),
                node_id(e.to),
                e.count,
                style
            ));
        }
        out.push_str("}\n");
        out
    }

    /// Total number of direct edges.
    pub fn direct_edge_count(&self) -> usize {
        self.edges.iter().filter(|e| !e.indirect).count()
    }
}

fn node_id(call: CallRef) -> String {
    format!(
        "e{}_{}{}",
        call.enclave,
        match call.kind {
            CallKind::Ecall => "ec",
            CallKind::Ocall => "oc",
        },
        call.index
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{EcallRow, OcallRow, SymbolRow};
    use sim_core::HwProfile;

    fn sample_trace() -> TraceDb {
        let mut trace = TraceDb::default();
        trace.symbols.insert(SymbolRow {
            enclave: 1,
            kind_is_ecall: true,
            index: 0,
            name: "ecall_read".into(),
            public: true,
            allowed_ecalls: vec![],
            user_check_params: vec![],
        });
        trace.symbols.insert(SymbolRow {
            enclave: 1,
            kind_is_ecall: false,
            index: 0,
            name: "ocall_io".into(),
            public: false,
            allowed_ecalls: vec![],
            user_check_params: vec![],
        });
        for k in 0..3u64 {
            trace.ecalls.insert(EcallRow {
                thread: 0,
                enclave: 1,
                call_index: 0,
                start_ns: k * 100,
                end_ns: k * 100 + 80,
                parent_ocall: None,
                aex_count: 0,
                failed: false,
            });
            trace.ocalls.insert(OcallRow {
                thread: 0,
                enclave: 1,
                call_index: 0,
                start_ns: k * 100 + 10,
                end_ns: k * 100 + 50,
                parent_ecall: Some(k),
                failed: false,
            });
        }
        trace
    }

    #[test]
    fn graph_counts_nodes_and_edges() {
        let trace = sample_trace();
        let inst = Instances::build(&trace, &HwProfile::Unpatched.cost_model());
        let graph = CallGraph::build(&trace, &inst);
        assert_eq!(graph.nodes.len(), 2);
        let ecall_node = graph
            .nodes
            .iter()
            .find(|n| n.call.kind == CallKind::Ecall)
            .unwrap();
        assert_eq!(ecall_node.count, 3);
        // One direct edge ecall→ocall (count 3) and one dashed indirect
        // edge ecall→ecall (count 2).
        let direct = graph.edges.iter().find(|e| !e.indirect).unwrap();
        assert_eq!(direct.count, 3);
        assert_eq!(direct.from.kind, CallKind::Ecall);
        assert_eq!(direct.to.kind, CallKind::Ocall);
        let indirect = graph.edges.iter().find(|e| e.indirect).unwrap();
        assert_eq!(indirect.count, 2);
        assert_eq!(graph.direct_edge_count(), 1);
    }

    #[test]
    fn dot_uses_figure5_conventions() {
        let trace = sample_trace();
        let inst = Instances::build(&trace, &HwProfile::Unpatched.cost_model());
        let dot = CallGraph::build(&trace, &inst).to_dot();
        assert!(dot.contains("shape=box"), "{dot}");
        assert!(dot.contains("shape=ellipse"), "{dot}");
        assert!(dot.contains("style=dashed"), "{dot}");
        assert!(dot.contains("[0] ecall_read"), "{dot}");
        assert!(dot.starts_with("digraph"));
    }
}
