//! Fleet-scale reporting (`sgxperf fleet`).
//!
//! A fleet run records one `fleet` table row per logical enclave slot —
//! throughput, latency percentiles, eviction pressure and restart counts
//! produced by the fleet manager. This module turns that table into the
//! per-slot and fleet-aggregate views: the aggregate also appears in
//! `sgxperf report` whenever the table is non-empty.
//!
//! The trace carries per-slot percentiles, not raw latency samples, so the
//! fleet-wide view reports the *completed-weighted mean* of the slot p50s
//! and the *maximum* slot p99 — an upper bound on the true fleet p99.

use sim_core::Nanos;

use crate::events::FleetRow;
use crate::trace::TraceDb;

/// Fleet-wide totals folded from every slot row.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FleetTotals {
    /// Logical enclave slots recorded.
    pub slots: usize,
    /// Total enclave creations (cold starts).
    pub spin_ups: u64,
    /// Total supervisor rebuilds after losses.
    pub restarts: u64,
    /// Requests routed to the fleet.
    pub requests: u64,
    /// Requests completed.
    pub completed: u64,
    /// Requests shed by the fleet circuit breaker.
    pub shed: u64,
    /// Requests that failed terminally.
    pub failed: u64,
    /// EPC pages paged in across the fleet.
    pub page_ins: u64,
    /// EPC pages evicted across the fleet.
    pub page_outs: u64,
    /// Completed-weighted mean of the per-slot median latencies.
    pub mean_p50_ns: u64,
    /// Worst per-slot 99th-percentile latency (fleet p99 upper bound).
    pub max_p99_ns: u64,
}

/// Per-slot and aggregate views over a trace's `fleet` table.
#[derive(Debug, Clone, Default)]
pub struct FleetReport {
    /// One row per slot, in slot order.
    pub slots: Vec<FleetRow>,
    /// Fleet-wide totals.
    pub totals: FleetTotals,
}

impl FleetReport {
    /// Builds the report from a trace. Empty when the trace has no fleet
    /// table (i.e. was not recorded by a fleet run).
    pub fn from_trace(trace: &TraceDb) -> FleetReport {
        let slots: Vec<FleetRow> = trace.fleet.iter().cloned().collect();
        let mut totals = FleetTotals {
            slots: slots.len(),
            ..FleetTotals::default()
        };
        let mut weighted_p50 = 0u128;
        for s in &slots {
            totals.spin_ups += u64::from(s.spin_ups);
            totals.restarts += u64::from(s.restarts);
            totals.requests += s.requests;
            totals.completed += s.completed;
            totals.shed += s.shed;
            totals.failed += s.failed;
            totals.page_ins += s.page_ins;
            totals.page_outs += s.page_outs;
            totals.max_p99_ns = totals.max_p99_ns.max(s.p99_ns);
            weighted_p50 += u128::from(s.p50_ns) * u128::from(s.completed);
        }
        if totals.completed > 0 {
            totals.mean_p50_ns = (weighted_p50 / u128::from(totals.completed)) as u64;
        }
        FleetReport { slots, totals }
    }

    /// Whether the trace carried any fleet rows.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The aggregate as a single report line (the section `sgxperf report`
    /// prints when the fleet table is non-empty).
    pub fn summary_line(&self) -> String {
        let t = &self.totals;
        format!(
            "fleet: {} slot(s), {} spin-up(s), {} restart(s); {} request(s) \
             ({} completed, {} shed, {} failed); p50 {}, worst p99 {}; \
             {} page-in(s), {} eviction(s)",
            t.slots,
            t.spin_ups,
            t.restarts,
            t.requests,
            t.completed,
            t.shed,
            t.failed,
            Nanos::from_nanos(t.mean_p50_ns),
            Nanos::from_nanos(t.max_p99_ns),
            t.page_ins,
            t.page_outs,
        )
    }

    /// Renders the full fleet report: the aggregate plus a per-slot table
    /// of the `top` busiest slots (by requests), plus every slot that
    /// restarted, shed or failed (the interesting tail).
    pub fn render(&self, top: usize) -> String {
        if self.is_empty() {
            return "no fleet table in this trace — record with a fleet run\n".to_string();
        }
        let mut out = String::from("== sgx-perf fleet report ==\n\n");
        out.push_str(&self.summary_line());
        out.push_str("\n\n");
        let mut by_requests: Vec<&FleetRow> = self.slots.iter().collect();
        by_requests.sort_by_key(|s| (std::cmp::Reverse(s.requests), s.slot));
        let mut shown: Vec<&FleetRow> = by_requests.iter().take(top).copied().collect();
        for s in &self.slots {
            if (s.restarts > 0 || s.shed > 0 || s.failed > 0)
                && !shown.iter().any(|r| r.slot == s.slot)
            {
                shown.push(s);
            }
        }
        shown.sort_by_key(|s| (std::cmp::Reverse(s.requests), s.slot));
        out.push_str(&format!(
            "-- {} of {} slot(s) (busiest, plus any that restarted/shed/failed) --\n",
            shown.len(),
            self.slots.len()
        ));
        out.push_str(&format!(
            "{:>6} {:>8} {:>6} {:>5} {:>5} {:>6} {:>12} {:>12} {:>9} {:>9}\n",
            "slot",
            "requests",
            "spinup",
            "rstrt",
            "shed",
            "failed",
            "p50",
            "p99",
            "page-ins",
            "evicted"
        ));
        for s in shown {
            out.push_str(&format!(
                "{:>6} {:>8} {:>6} {:>5} {:>5} {:>6} {:>12} {:>12} {:>9} {:>9}\n",
                s.slot,
                s.requests,
                s.spin_ups,
                s.restarts,
                s.shed,
                s.failed,
                Nanos::from_nanos(s.p50_ns).to_string(),
                Nanos::from_nanos(s.p99_ns).to_string(),
                s.page_ins,
                s.page_outs,
            ));
        }
        out
    }

    /// The report as a JSON object (for `--json`).
    pub fn to_json(&self) -> String {
        let t = &self.totals;
        let mut out = String::from("{\n  \"totals\": {");
        out.push_str(&format!(
            "\"slots\": {}, \"spin_ups\": {}, \"restarts\": {}, \"requests\": {}, \
             \"completed\": {}, \"shed\": {}, \"failed\": {}, \"page_ins\": {}, \
             \"page_outs\": {}, \"mean_p50_ns\": {}, \"max_p99_ns\": {}",
            t.slots,
            t.spin_ups,
            t.restarts,
            t.requests,
            t.completed,
            t.shed,
            t.failed,
            t.page_ins,
            t.page_outs,
            t.mean_p50_ns,
            t.max_p99_ns,
        ));
        out.push_str("},\n  \"slots\": [\n");
        for (i, s) in self.slots.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str(&format!(
                "    {{\"slot\": {}, \"spin_ups\": {}, \"restarts\": {}, \"requests\": {}, \
                 \"completed\": {}, \"shed\": {}, \"failed\": {}, \"p50_ns\": {}, \
                 \"p99_ns\": {}, \"page_ins\": {}, \"page_outs\": {}}}",
                s.slot,
                s.spin_ups,
                s.restarts,
                s.requests,
                s.completed,
                s.shed,
                s.failed,
                s.p50_ns,
                s.p99_ns,
                s.page_ins,
                s.page_outs,
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(slot: u32, requests: u64, completed: u64) -> FleetRow {
        FleetRow {
            slot,
            spin_ups: 1,
            restarts: 0,
            requests,
            completed,
            shed: 0,
            failed: 0,
            p50_ns: 1_000,
            p99_ns: 5_000,
            page_ins: 2,
            page_outs: 1,
        }
    }

    #[test]
    fn totals_fold_all_slots() {
        let mut trace = TraceDb::default();
        trace.fleet.insert(row(0, 10, 10));
        trace.fleet.insert(FleetRow {
            restarts: 2,
            shed: 3,
            p50_ns: 3_000,
            p99_ns: 9_000,
            ..row(1, 8, 5)
        });
        let report = FleetReport::from_trace(&trace);
        assert_eq!(report.totals.slots, 2);
        assert_eq!(report.totals.requests, 18);
        assert_eq!(report.totals.completed, 15);
        assert_eq!(report.totals.shed, 3);
        assert_eq!(report.totals.restarts, 2);
        assert_eq!(report.totals.max_p99_ns, 9_000);
        // (1000*10 + 3000*5) / 15
        assert_eq!(report.totals.mean_p50_ns, 1_666);
        assert_eq!(report.totals.page_outs, 2);
    }

    #[test]
    fn render_shows_busiest_and_troubled_slots() {
        let mut trace = TraceDb::default();
        for slot in 0..20 {
            trace.fleet.insert(row(slot, 100 - u64::from(slot), 100));
        }
        // Slot 19 is the least busy but restarted — it must still show.
        trace.fleet.insert(FleetRow {
            restarts: 1,
            ..row(20, 1, 1)
        });
        let report = FleetReport::from_trace(&trace);
        let text = report.render(5);
        assert!(text.contains("fleet: 21 slot(s)"));
        assert!(text.contains("6 of 21 slot(s)"));
        let json = report.to_json();
        assert!(json.contains("\"slots\": 21"));
        let opens = json.matches('{').count() + json.matches('[').count();
        let closes = json.matches('}').count() + json.matches(']').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn empty_trace_renders_a_note() {
        let report = FleetReport::from_trace(&TraceDb::default());
        assert!(report.is_empty());
        assert!(report.render(10).contains("no fleet table"));
    }
}
