//! Data analysis and developer hints (§4.3).
//!
//! The [`Analyzer`] replays a [`TraceDb`] and produces a [`Report`]:
//! general statistics for all ecalls and ocalls (§4.3.1), direct/indirect
//! parent relationships (Figure 4), detections of the SGX-specific
//! performance problems of §3 with mitigation recommendations (§4.3.2), the
//! interface security analysis (§3.6), plus call graphs, histograms and
//! scatter series.

pub mod aex;
pub mod detect;
pub mod diff;
pub mod fleet;
pub mod graph;
pub mod lint;
pub mod parents;
pub mod races;
pub mod report;
pub mod security;
pub mod stats;

use sim_core::CostModel;

use crate::events::CallRef;
use crate::trace::TraceDb;

pub use detect::{Detection, Priority, Problem, Recommendation};
pub use diff::{DiffConfig, TraceDiff, Verdict};
pub use fleet::{FleetReport, FleetTotals};
pub use graph::CallGraph;
pub use parents::{CallInstance, Instances};
pub use races::{RaceFinding, RaceKind, RaceReport};
pub use report::Report;
pub use stats::CallStats;

/// The configurable weights of the detection heuristics, with the paper's
/// defaults ("obtained through experimentation", §4.3.2).
#[derive(Debug, Clone)]
pub struct Weights {
    /// Equation 1 (move/duplicate): fraction of calls shorter than 1 µs.
    pub move_alpha: f64,
    /// Equation 1: fraction of calls shorter than 5 µs.
    pub move_beta: f64,
    /// Equation 1: fraction of calls shorter than 10 µs.
    pub move_gamma: f64,
    /// Equation 2 (reorder): weight of calls within 10 µs of the parent's
    /// start/end.
    pub reorder_alpha: f64,
    /// Equation 2: weight of calls within 10–20 µs.
    pub reorder_beta: f64,
    /// Equation 2: detection threshold.
    pub reorder_gamma: f64,
    /// Equation 3 (merge/batch): weight of indirect-parent gaps < 1 µs.
    pub merge_alpha: f64,
    /// Equation 3: weight of gaps in 1–5 µs.
    pub merge_beta: f64,
    /// Equation 3: weight of gaps in 5–10 µs.
    pub merge_gamma: f64,
    /// Equation 3: weight of gaps in 10–20 µs.
    pub merge_delta: f64,
    /// Equation 3: detection threshold.
    pub merge_epsilon: f64,
    /// Equation 3: minimum fraction of instances with this indirect parent.
    pub merge_lambda: f64,
    /// SSC: a sleep shorter than this many µs counts as "short".
    pub ssc_short_us: u64,
    /// SSC: minimum fraction of short sleeps to flag the problem.
    pub ssc_fraction: f64,
    /// Minimum instances of a call before any heuristic fires (avoids
    /// recommendations from single-digit samples).
    pub min_calls: usize,
    /// Switchless: minimum executions before a call counts as
    /// "high-frequency" (worker threads only pay off under sustained load).
    pub switchless_min_calls: usize,
    /// Switchless: minimum fraction of adjusted durations under 10 µs.
    pub switchless_fraction: f64,
}

impl Default for Weights {
    fn default() -> Self {
        Weights {
            move_alpha: 0.35,
            move_beta: 0.50,
            move_gamma: 0.65,
            reorder_alpha: 1.00,
            reorder_beta: 0.75,
            reorder_gamma: 0.50,
            merge_alpha: 1.00,
            merge_beta: 0.75,
            merge_gamma: 0.50,
            merge_delta: 0.35,
            merge_epsilon: 0.35,
            merge_lambda: 0.35,
            // A sleep below ~4 transition times means the lock hold was
            // far shorter than the two ocalls the contention cost.
            ssc_short_us: 20,
            ssc_fraction: 0.5,
            min_calls: 8,
            switchless_min_calls: 32,
            switchless_fraction: 0.75,
        }
    }
}

/// The sgx-perf analyzer.
///
/// # Examples
///
/// See the [crate-level quickstart](crate).
#[derive(Debug)]
pub struct Analyzer<'t> {
    trace: &'t TraceDb,
    cost: CostModel,
    weights: Weights,
    edl: Option<sgx_edl::InterfaceSpec>,
    lint: Vec<sgx_edl::Diagnostic>,
}

impl<'t> Analyzer<'t> {
    /// Creates an analyzer over a trace. The cost model supplies the
    /// transition time that is subtracted from ecall durations before
    /// applying thresholds (§4.1.2) and the "calls shorter than the
    /// transition are wasteful" premise (§3).
    pub fn new(trace: &'t TraceDb, cost: CostModel) -> Analyzer<'t> {
        Analyzer {
            trace,
            cost,
            weights: Weights::default(),
            edl: None,
            lint: Vec::new(),
        }
    }

    /// Overrides the detection weights.
    pub fn with_weights(mut self, weights: Weights) -> Self {
        self.weights = weights;
        self
    }

    /// Supplies the enclave's EDL so the security analysis can diff the
    /// declared `allow()` lists against the observed calls (§4.3.2).
    pub fn with_edl(mut self, spec: sgx_edl::InterfaceSpec) -> Self {
        self.edl = Some(spec);
        self
    }

    /// Supplies pre-computed EDL lint diagnostics (see
    /// [`lint::lint_interface`]) so the report can show them alongside the
    /// trace-derived findings.
    pub fn with_lint(mut self, diagnostics: Vec<sgx_edl::Diagnostic>) -> Self {
        self.lint = diagnostics;
        self
    }

    /// The trace under analysis.
    pub fn trace(&self) -> &TraceDb {
        self.trace
    }

    /// The cost model in effect.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// The weights in effect.
    pub fn weights(&self) -> &Weights {
        &self.weights
    }

    /// Builds the flattened, parent-annotated call-instance view.
    pub fn instances(&self) -> Instances {
        Instances::build(self.trace, &self.cost)
    }

    /// Runs the full analysis: statistics, detections, security findings.
    pub fn analyze(&self) -> Report {
        let instances = self.instances();
        let call_stats = stats::per_call_stats(&instances);
        let mut detections = detect::detect_all(self, &instances, &call_stats);
        detections.extend(security::analyze(self, &instances));
        detections.sort_by_key(|d| (d.priority, d.target));
        let mut report = Report::assemble(self.trace, call_stats, detections);
        report.lint = self.lint.clone();
        report
    }

    /// Builds the call graph (Figure 5).
    pub fn call_graph(&self) -> CallGraph {
        let instances = self.instances();
        graph::CallGraph::build(self.trace, &instances)
    }

    /// Per-ecall AEX duration impact (§4.1.4) — requires AEX counting or
    /// tracing to have been enabled during recording.
    pub fn aex_impact(&self) -> Vec<aex::AexImpact> {
        aex::aex_impact(self, &self.instances())
    }

    /// Per-thread AEX bursts (§4.1.4's "bursts of interruption") —
    /// requires AEX *tracing* during recording. `window_ns` is the maximum
    /// gap within a burst; `min_count` the minimum burst size.
    pub fn aex_bursts(&self, window_ns: u64, min_count: usize) -> Vec<aex::AexBurst> {
        aex::aex_bursts(self, window_ns, min_count)
    }

    pub(crate) fn edl(&self) -> Option<&sgx_edl::InterfaceSpec> {
        self.edl.as_ref()
    }
}

/// Looks up the recorded symbol name for a call, falling back to a
/// positional name.
pub(crate) fn symbol_name(trace: &TraceDb, call: CallRef) -> String {
    trace
        .symbols
        .iter()
        .find(|s| s.call_ref() == call)
        .map(|s| s.name.clone())
        .unwrap_or_else(|| call.to_string())
}
