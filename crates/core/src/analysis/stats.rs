//! General per-call statistics (§4.3.1): counts, mean, median, standard
//! deviation, 90th/95th/99th percentiles, histograms and scatter series.

use std::collections::BTreeMap;

use crate::events::CallRef;

use super::parents::Instances;

/// Summary statistics for one call across all its instances.
#[derive(Debug, Clone, PartialEq)]
pub struct CallStats {
    /// Number of recorded executions.
    pub count: usize,
    /// Mean raw duration in ns.
    pub mean_ns: f64,
    /// Median raw duration in ns.
    pub median_ns: u64,
    /// Standard deviation of the raw duration in ns.
    pub stddev_ns: f64,
    /// 90th percentile (ns).
    pub p90_ns: u64,
    /// 95th percentile (ns).
    pub p95_ns: u64,
    /// 99th percentile (ns).
    pub p99_ns: u64,
    /// Minimum (ns).
    pub min_ns: u64,
    /// Maximum (ns).
    pub max_ns: u64,
    /// Total time spent in this call (ns).
    pub total_ns: u64,
    /// Mean AEX count per call (ecalls with AEX observation only).
    pub mean_aex: f64,
    /// Fraction of *adjusted* durations shorter than 1 µs.
    pub frac_under_1us: f64,
    /// Fraction of adjusted durations shorter than 5 µs.
    pub frac_under_5us: f64,
    /// Fraction of adjusted durations shorter than 10 µs.
    pub frac_under_10us: f64,
}

impl CallStats {
    /// Computes statistics from raw and adjusted durations (both in ns)
    /// plus per-instance AEX counts.
    ///
    /// # Panics
    ///
    /// Panics if `durations` is empty.
    pub fn from_durations(durations: &[u64], adjusted: &[u64], aex: &[u64]) -> CallStats {
        assert!(!durations.is_empty(), "no durations to summarise");
        let mut sorted = durations.to_vec();
        sorted.sort_unstable();
        let count = sorted.len();
        let total: u64 = sorted.iter().sum();
        let mean = total as f64 / count as f64;
        let variance = sorted
            .iter()
            .map(|&d| {
                let diff = d as f64 - mean;
                diff * diff
            })
            .sum::<f64>()
            / count as f64;
        let pct = |p: f64| -> u64 {
            let rank = ((p / 100.0) * count as f64).ceil() as usize;
            sorted[rank.clamp(1, count) - 1]
        };
        let frac_under = |limit_ns: u64| -> f64 {
            adjusted.iter().filter(|&&d| d < limit_ns).count() as f64 / count as f64
        };
        CallStats {
            count,
            mean_ns: mean,
            median_ns: pct(50.0),
            stddev_ns: variance.sqrt(),
            p90_ns: pct(90.0),
            p95_ns: pct(95.0),
            p99_ns: pct(99.0),
            min_ns: sorted[0],
            max_ns: sorted[count - 1],
            total_ns: total,
            mean_aex: aex.iter().sum::<u64>() as f64 / count as f64,
            frac_under_1us: frac_under(1_000),
            frac_under_5us: frac_under(5_000),
            frac_under_10us: frac_under(10_000),
        }
    }
}

/// Computes [`CallStats`] for every distinct call in the trace, sorted by
/// call reference.
pub fn per_call_stats(instances: &Instances) -> Vec<(CallRef, CallStats)> {
    type DurationGroups = BTreeMap<CallRef, (Vec<u64>, Vec<u64>, Vec<u64>)>;
    let mut grouped: DurationGroups = BTreeMap::new();
    for i in &instances.all {
        let entry = grouped.entry(i.call).or_default();
        entry.0.push(i.duration_ns);
        entry.1.push(i.adjusted_ns);
        entry.2.push(i.aex_count);
    }
    grouped
        .into_iter()
        .map(|(call, (dur, adj, aex))| (call, CallStats::from_durations(&dur, &adj, &aex)))
        .collect()
}

/// A histogram of call execution times (Figure 7).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Inclusive lower bound of the first bin (ns).
    pub min_ns: u64,
    /// Width of each bin (ns, at least 1).
    pub bin_width_ns: u64,
    /// Execution count per bin.
    pub bins: Vec<u64>,
}

impl Histogram {
    /// Builds a histogram of the call's raw durations grouped into
    /// `bin_count` bins (the paper's Figure 7 uses 100).
    ///
    /// Returns `None` when the call has no instances.
    pub fn of_call(instances: &Instances, call: CallRef, bin_count: usize) -> Option<Histogram> {
        let durations: Vec<u64> = instances.of_call(call).map(|i| i.duration_ns).collect();
        if durations.is_empty() || bin_count == 0 {
            return None;
        }
        let min = *durations.iter().min().expect("non-empty");
        let max = *durations.iter().max().expect("non-empty");
        let width = ((max - min) / bin_count as u64 + 1).max(1);
        let mut bins = vec![0u64; bin_count];
        for d in durations {
            let idx = (((d - min) / width) as usize).min(bin_count - 1);
            bins[idx] += 1;
        }
        Some(Histogram {
            min_ns: min,
            bin_width_ns: width,
            bins,
        })
    }

    /// Renders a terminal-friendly bar chart (one row per non-empty bin
    /// group), for quick inspection without external plotting.
    ///
    /// `rows` caps the output height by re-bucketing; `width` is the bar
    /// length of the fullest bin.
    pub fn render_ascii(&self, rows: usize, width: usize) -> String {
        if self.bins.is_empty() || rows == 0 {
            return String::new();
        }
        // Re-bucket into at most `rows` groups.
        let group = self.bins.len().div_ceil(rows);
        let grouped: Vec<u64> = self.bins.chunks(group).map(|c| c.iter().sum()).collect();
        let max = grouped.iter().copied().max().unwrap_or(1).max(1);
        let mut out = String::new();
        for (i, count) in grouped.iter().enumerate() {
            let lo = self.min_ns + (i * group) as u64 * self.bin_width_ns;
            let bar = (*count as usize * width).div_ceil(max as usize);
            out.push_str(&format!(
                "{:>10} |{:<width$}| {}\n",
                sim_core::Nanos::from_nanos(lo).to_string(),
                "#".repeat(if *count > 0 { bar.max(1) } else { 0 }),
                count,
                width = width
            ));
        }
        out
    }

    /// Renders as CSV (`bin_start_ns,count` lines) for external plotting.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("bin_start_ns,count\n");
        for (i, count) in self.bins.iter().enumerate() {
            out.push_str(&format!(
                "{},{}\n",
                self.min_ns + i as u64 * self.bin_width_ns,
                count
            ));
        }
        out
    }

    /// Renders as JSON (`sgxperf hist --json`), sharing the hand-rolled
    /// serializer with the other `--json` surfaces.
    pub fn to_json(&self) -> String {
        let bins: Vec<String> = self.bins.iter().map(|c| c.to_string()).collect();
        format!(
            "{{\"min_ns\": {}, \"bin_width_ns\": {}, \"bins\": [{}]}}\n",
            self.min_ns,
            self.bin_width_ns,
            bins.join(", ")
        )
    }
}

/// A scatter series of call execution times over application time
/// (Figure 8): one `(start_time, duration)` point per execution.
pub fn scatter(instances: &Instances, call: CallRef) -> Vec<(u64, u64)> {
    instances
        .of_call(call)
        .map(|i| (i.start_ns, i.duration_ns))
        .collect()
}

/// Renders a scatter series as CSV (`time_ns,duration_ns`).
pub fn scatter_csv(points: &[(u64, u64)]) -> String {
    let mut out = String::from("time_ns,duration_ns\n");
    for (t, d) in points {
        out.push_str(&format!("{t},{d}\n"));
    }
    out
}

/// Renders a scatter series as JSON (`sgxperf scatter --json`): an array
/// of `[time_ns, duration_ns]` pairs.
pub fn scatter_json(points: &[(u64, u64)]) -> String {
    let pairs: Vec<String> = points.iter().map(|(t, d)| format!("[{t}, {d}]")).collect();
    format!("{{\"points\": [{}]}}\n", pairs.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{CallKind, EcallRow};
    use crate::trace::TraceDb;
    use sim_core::HwProfile;

    #[test]
    fn basic_stats() {
        let durations: Vec<u64> = (1..=100).collect();
        let stats = CallStats::from_durations(&durations, &durations, &vec![0; 100]);
        assert_eq!(stats.count, 100);
        assert!((stats.mean_ns - 50.5).abs() < 1e-9);
        assert_eq!(stats.median_ns, 50);
        assert_eq!(stats.p90_ns, 90);
        assert_eq!(stats.p95_ns, 95);
        assert_eq!(stats.p99_ns, 99);
        assert_eq!(stats.min_ns, 1);
        assert_eq!(stats.max_ns, 100);
        assert_eq!(stats.total_ns, 5050);
    }

    #[test]
    fn stddev_of_constant_is_zero() {
        let stats = CallStats::from_durations(&[7, 7, 7], &[7, 7, 7], &[0, 0, 0]);
        assert_eq!(stats.stddev_ns, 0.0);
        assert_eq!(stats.median_ns, 7);
    }

    #[test]
    fn short_fractions_use_adjusted_durations() {
        // Raw durations all 5 us but adjusted (transition-subtracted) 0.8 us.
        let raw = vec![5_000u64; 10];
        let adj = vec![800u64; 10];
        let stats = CallStats::from_durations(&raw, &adj, &[0; 10]);
        assert_eq!(stats.frac_under_1us, 1.0);
        assert_eq!(stats.frac_under_10us, 1.0);
    }

    #[test]
    #[should_panic(expected = "no durations")]
    fn empty_durations_panic() {
        let _ = CallStats::from_durations(&[], &[], &[]);
    }

    fn trace_with_durations(durations: &[u64]) -> TraceDb {
        let mut trace = TraceDb::default();
        let mut t = 0;
        for &d in durations {
            trace.ecalls.insert(EcallRow {
                thread: 0,
                enclave: 1,
                call_index: 0,
                start_ns: t,
                end_ns: t + d,
                parent_ocall: None,
                aex_count: 0,
                failed: false,
            });
            t += d + 100;
        }
        trace
    }

    #[test]
    fn histogram_buckets_counts() {
        let trace = trace_with_durations(&[1_000, 1_000, 2_000, 10_000]);
        let inst = Instances::build(&trace, &HwProfile::Unpatched.cost_model());
        let call = CallRef {
            enclave: 1,
            kind: CallKind::Ecall,
            index: 0,
        };
        let hist = Histogram::of_call(&inst, call, 10).unwrap();
        assert_eq!(hist.bins.iter().sum::<u64>(), 4);
        assert_eq!(hist.bins[0], 2); // the two 1,000 ns calls
        assert_eq!(*hist.bins.last().unwrap(), 1); // the 10,000 ns call
        let csv = hist.to_csv();
        assert!(csv.starts_with("bin_start_ns,count\n"));
        assert_eq!(csv.lines().count(), 11);
    }

    #[test]
    fn ascii_render_shows_all_counts() {
        let trace = trace_with_durations(&[1_000, 1_000, 2_000, 10_000]);
        let inst = Instances::build(&trace, &HwProfile::Unpatched.cost_model());
        let call = CallRef {
            enclave: 1,
            kind: CallKind::Ecall,
            index: 0,
        };
        let hist = Histogram::of_call(&inst, call, 20).unwrap();
        let text = hist.render_ascii(10, 30);
        assert_eq!(text.lines().count(), 10);
        // Total count is preserved across the re-bucketing.
        let total: u64 = text
            .lines()
            .map(|l| l.rsplit('|').next().unwrap().trim().parse::<u64>().unwrap())
            .sum();
        assert_eq!(total, 4);
        assert!(text.contains('#'));
    }

    #[test]
    fn histogram_of_absent_call_is_none() {
        let trace = TraceDb::default();
        let inst = Instances::build(&trace, &HwProfile::Unpatched.cost_model());
        let call = CallRef {
            enclave: 1,
            kind: CallKind::Ecall,
            index: 0,
        };
        assert!(Histogram::of_call(&inst, call, 10).is_none());
    }

    #[test]
    fn histogram_and_scatter_json_shapes() {
        let hist = Histogram {
            min_ns: 100,
            bin_width_ns: 50,
            bins: vec![3, 0, 1],
        };
        assert_eq!(
            hist.to_json(),
            "{\"min_ns\": 100, \"bin_width_ns\": 50, \"bins\": [3, 0, 1]}\n"
        );
        assert_eq!(
            scatter_json(&[(0, 500), (600, 700)]),
            "{\"points\": [[0, 500], [600, 700]]}\n"
        );
        assert_eq!(scatter_json(&[]), "{\"points\": []}\n");
    }

    #[test]
    fn scatter_preserves_order_and_times() {
        let trace = trace_with_durations(&[500, 700]);
        let inst = Instances::build(&trace, &HwProfile::Unpatched.cost_model());
        let call = CallRef {
            enclave: 1,
            kind: CallKind::Ecall,
            index: 0,
        };
        let pts = scatter(&inst, call);
        assert_eq!(pts, vec![(0, 500), (600, 700)]);
        assert!(scatter_csv(&pts).contains("600,700"));
    }
}
