//! AEX correlation analysis (§4.1.4).
//!
//! Traced AEXs let the analyser separate slow *calls* from slow
//! *environments*: "multiple AEX in short succession will delay an ecall
//! significantly while not being an issue with the ecall itself. Such
//! bursts of interruption can be caused by high system load or other
//! external factors", e.g. a high interrupt rate on the enclave's core —
//! the fix is pinning, not call restructuring.

use crate::events::{CallKind, CallRef};

use super::parents::Instances;
use super::{symbol_name, Analyzer};

/// Duration impact of AEXs on one ecall: compares instances that took
/// AEXs against undisturbed ones.
#[derive(Debug, Clone, PartialEq)]
pub struct AexImpact {
    /// The affected ecall.
    pub call: CallRef,
    /// Its symbol name.
    pub name: String,
    /// Instances interrupted by at least one AEX.
    pub interrupted: usize,
    /// Undisturbed instances.
    pub undisturbed: usize,
    /// Mean duration of interrupted instances (ns).
    pub mean_interrupted_ns: f64,
    /// Mean duration of undisturbed instances (ns).
    pub mean_undisturbed_ns: f64,
    /// Mean AEX count over the interrupted instances.
    pub mean_aex: f64,
}

impl AexImpact {
    /// Extra time per call attributable to the environment, as a ratio.
    pub fn slowdown(&self) -> f64 {
        if self.mean_undisturbed_ns == 0.0 {
            0.0
        } else {
            self.mean_interrupted_ns / self.mean_undisturbed_ns
        }
    }
}

/// A cluster of AEXs in short succession on one thread — the "burst of
/// interruption" signature of external interference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AexBurst {
    /// Thread whose execution was interrupted.
    pub thread: u64,
    /// Time of the first AEX of the burst.
    pub start_ns: u64,
    /// Time of the last AEX of the burst.
    pub end_ns: u64,
    /// AEXs in the burst.
    pub count: usize,
}

/// Computes per-ecall AEX duration impact. Only calls observed both with
/// and without AEXs are reported (otherwise there is nothing to compare),
/// sorted by descending slowdown.
pub fn aex_impact(analyzer: &Analyzer<'_>, instances: &Instances) -> Vec<AexImpact> {
    use std::collections::BTreeMap;
    #[derive(Default)]
    struct Acc {
        interrupted: Vec<u64>,
        undisturbed: Vec<u64>,
        aex_total: u64,
    }
    let mut groups: BTreeMap<CallRef, Acc> = BTreeMap::new();
    for i in &instances.all {
        if i.call.kind != CallKind::Ecall {
            continue;
        }
        let acc = groups.entry(i.call).or_default();
        if i.aex_count > 0 {
            acc.interrupted.push(i.duration_ns);
            acc.aex_total += i.aex_count;
        } else {
            acc.undisturbed.push(i.duration_ns);
        }
    }
    let mut out: Vec<AexImpact> = groups
        .into_iter()
        .filter(|(_, acc)| !acc.interrupted.is_empty() && !acc.undisturbed.is_empty())
        .map(|(call, acc)| {
            let mean = |v: &[u64]| v.iter().sum::<u64>() as f64 / v.len() as f64;
            AexImpact {
                call,
                name: symbol_name(analyzer.trace(), call),
                interrupted: acc.interrupted.len(),
                undisturbed: acc.undisturbed.len(),
                mean_interrupted_ns: mean(&acc.interrupted),
                mean_undisturbed_ns: mean(&acc.undisturbed),
                mean_aex: acc.aex_total as f64 / acc.interrupted.len() as f64,
            }
        })
        .collect();
    out.sort_by(|a, b| {
        b.slowdown()
            .partial_cmp(&a.slowdown())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    out
}

/// Finds per-thread AEX bursts: at least `min_count` AEXs where each
/// follows the previous within `window_ns`. Requires
/// [`AexMode::Trace`](crate::AexMode::Trace) traces.
pub fn aex_bursts(analyzer: &Analyzer<'_>, window_ns: u64, min_count: usize) -> Vec<AexBurst> {
    use std::collections::BTreeMap;
    let mut per_thread: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    for row in analyzer.trace().aex.iter() {
        per_thread.entry(row.thread).or_default().push(row.time_ns);
    }
    let mut bursts = Vec::new();
    for (thread, mut times) in per_thread {
        times.sort_unstable();
        let mut start = 0usize;
        for i in 1..=times.len() {
            let broke = i == times.len() || times[i] - times[i - 1] > window_ns;
            if broke {
                let count = i - start;
                if count >= min_count {
                    bursts.push(AexBurst {
                        thread,
                        start_ns: times[start],
                        end_ns: times[i - 1],
                        count,
                    });
                }
                start = i;
            }
        }
    }
    bursts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{AexRow, EcallRow};
    use crate::trace::TraceDb;
    use sim_core::HwProfile;

    fn ecall(idx: u32, start: u64, dur: u64, aex: u64) -> EcallRow {
        EcallRow {
            thread: 0,
            enclave: 1,
            call_index: idx,
            start_ns: start,
            end_ns: start + dur,
            parent_ocall: None,
            aex_count: aex,
            failed: false,
        }
    }

    #[test]
    fn impact_separates_interrupted_from_undisturbed() {
        let mut trace = TraceDb::default();
        let mut t = 0;
        for k in 0..20 {
            // Every 4th instance takes 2 AEXs and runs 3x longer.
            let (dur, aex) = if k % 4 == 0 { (30_000, 2) } else { (10_000, 0) };
            trace.ecalls.insert(ecall(0, t, dur, aex));
            t += 50_000;
        }
        let analyzer = Analyzer::new(&trace, HwProfile::Unpatched.cost_model());
        let impact = aex_impact(&analyzer, &analyzer.instances());
        assert_eq!(impact.len(), 1);
        let i = &impact[0];
        assert_eq!(i.interrupted, 5);
        assert_eq!(i.undisturbed, 15);
        assert!((i.slowdown() - 3.0).abs() < 1e-9, "{}", i.slowdown());
        assert!((i.mean_aex - 2.0).abs() < 1e-9);
    }

    #[test]
    fn impact_skips_calls_without_both_populations() {
        let mut trace = TraceDb::default();
        trace.ecalls.insert(ecall(0, 0, 5_000, 0));
        trace.ecalls.insert(ecall(0, 10_000, 5_000, 0));
        trace.ecalls.insert(ecall(1, 20_000, 5_000, 3));
        let analyzer = Analyzer::new(&trace, HwProfile::Unpatched.cost_model());
        assert!(aex_impact(&analyzer, &analyzer.instances()).is_empty());
    }

    #[test]
    fn bursts_group_by_gap_and_thread() {
        let mut trace = TraceDb::default();
        let mut aex = |thread: u64, time_ns: u64| {
            trace.aex.insert(AexRow {
                thread,
                enclave: 1,
                time_ns,
                during_ecall: None,
                cause: None,
            });
        };
        // Thread 0: a 4-AEX burst (gaps 50 us) then an isolated AEX.
        for t in [0u64, 50_000, 100_000, 150_000, 5_000_000] {
            aex(0, t);
        }
        // Thread 1: regular timer ticks far apart: no burst.
        for k in 0..5u64 {
            aex(1, k * 4_000_000);
        }
        let analyzer = Analyzer::new(&trace, HwProfile::Unpatched.cost_model());
        let bursts = aex_bursts(&analyzer, 100_000, 3);
        assert_eq!(bursts.len(), 1, "{bursts:?}");
        assert_eq!(bursts[0].thread, 0);
        assert_eq!(bursts[0].count, 4);
        assert_eq!(bursts[0].start_ns, 0);
        assert_eq!(bursts[0].end_ns, 150_000);
    }

    #[test]
    fn unordered_aex_rows_are_handled() {
        let mut trace = TraceDb::default();
        for t in [150_000u64, 0, 100_000, 50_000] {
            trace.aex.insert(AexRow {
                thread: 0,
                enclave: 1,
                time_ns: t,
                during_ecall: None,
                cause: None,
            });
        }
        let analyzer = Analyzer::new(&trace, HwProfile::Unpatched.cost_model());
        let bursts = aex_bursts(&analyzer, 100_000, 4);
        assert_eq!(bursts.len(), 1);
    }
}
