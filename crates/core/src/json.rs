//! Hand-rolled JSON emission, shared by every `--json` surface (`report`,
//! `diff`, `hist`, `scatter`) and the chrome-trace exporter. The repo
//! deliberately carries no serialisation dependency, so the encoder is a
//! pair of escape helpers plus a tiny array/object builder.

use std::fmt::Write;

/// Escapes and quotes a string for JSON output.
pub fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a float as a JSON number (the JSON grammar has no NaN or
/// infinity, so those degrade to 0 — they cannot occur for real traces).
pub fn f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn strings_are_escaped() {
        assert_eq!(super::string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(super::string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn numbers_are_finite() {
        assert_eq!(super::f64(0.5), "0.5");
        assert_eq!(super::f64(f64::NAN), "0");
        assert_eq!(super::f64(f64::INFINITY), "0");
    }
}
