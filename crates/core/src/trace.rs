//! The trace database produced by the logger and consumed by the analyzer.

use std::path::Path;

use eventdb::{DbError, Record, Store, Table};

use crate::events::{
    AexRow, EcallRow, EnclaveRow, FaultRow, FleetRow, LifecycleRow, OcallRow, PagingRow,
    SwitchlessRow, SymbolRow, SyncEvRow, SyncRow,
};

/// A complete sgx-perf trace: every table the logger records, serialisable
/// to a single file (the SQLite stand-in — §4).
///
/// # Examples
///
/// ```
/// use sgx_perf::TraceDb;
///
/// let trace = TraceDb::default();
/// let bytes = trace.to_bytes();
/// let back = TraceDb::from_bytes(&bytes)?;
/// assert_eq!(back.ecalls.len(), 0);
/// # Ok::<(), eventdb::DbError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceDb {
    /// Completed ecalls.
    pub ecalls: Table<EcallRow>,
    /// Completed ocalls.
    pub ocalls: Table<OcallRow>,
    /// Traced AEXs (only under [`AexMode::Trace`](crate::AexMode::Trace)).
    pub aex: Table<AexRow>,
    /// EPC paging events.
    pub paging: Table<PagingRow>,
    /// Sleep/wake classification of sync ocalls.
    pub sync: Table<SyncRow>,
    /// Observed enclaves.
    pub enclaves: Table<EnclaveRow>,
    /// Interface symbols.
    pub symbols: Table<SymbolRow>,
    /// Switchless-subsystem events (dispatches, fallbacks, worker state).
    pub switchless: Table<SwitchlessRow>,
    /// Injected faults and SDK recovery steps (the chaos harness).
    pub faults: Table<FaultRow>,
    /// Enclave losses and supervisor recovery steps.
    pub lifecycle: Table<LifecycleRow>,
    /// Synchronisation events (locks, condvars, threads, rings, shared
    /// cells) for the `sgxperf races` analyses.
    pub syncev: Table<SyncEvRow>,
    /// Per-slot fleet summaries (only fleet workloads write this).
    pub fleet: Table<FleetRow>,
}

/// Reads a table, treating its absence as empty — traces written before the
/// table existed stay loadable.
fn get_or_empty<R: Record>(store: &Store) -> Result<Table<R>, DbError> {
    match store.get() {
        Err(DbError::MissingTable(_)) => Ok(Table::default()),
        other => other,
    }
}

impl TraceDb {
    /// Serialises all tables into the container format.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.to_store().to_bytes()
    }

    /// Lowers the trace to the generic table container — the form both the
    /// monolithic writer ([`save`](TraceDb::save)) and the crash-consistent
    /// segmented writer ([`eventdb::SegmentedWriter`]) serialise.
    pub fn to_store(&self) -> Store {
        let mut store = Store::new();
        store.put(&self.ecalls);
        store.put(&self.ocalls);
        store.put(&self.aex);
        store.put(&self.paging);
        store.put(&self.sync);
        store.put(&self.enclaves);
        store.put(&self.symbols);
        store.put(&self.switchless);
        // Written only when non-empty: fault-free traces stay byte-for-byte
        // identical to those of versions without the chaos harness or the
        // enclave-lost supervisor.
        if !self.faults.is_empty() {
            store.put(&self.faults);
        }
        if !self.lifecycle.is_empty() {
            store.put(&self.lifecycle);
        }
        if !self.syncev.is_empty() {
            store.put(&self.syncev);
        }
        if !self.fleet.is_empty() {
            store.put(&self.fleet);
        }
        store
    }

    /// Parses a trace from container bytes.
    ///
    /// # Errors
    ///
    /// Corruption or missing tables.
    pub fn from_bytes(data: &[u8]) -> Result<TraceDb, DbError> {
        let store = Store::from_bytes(data)?;
        TraceDb::from_store(&store)
    }

    /// Parses a trace from a generic table container (e.g. one salvaged
    /// from a segmented recording).
    ///
    /// # Errors
    ///
    /// Corruption or missing tables.
    pub fn from_store(store: &Store) -> Result<TraceDb, DbError> {
        Ok(TraceDb {
            ecalls: store.get()?,
            ocalls: store.get()?,
            aex: store.get()?,
            paging: store.get()?,
            sync: store.get()?,
            enclaves: store.get()?,
            symbols: store.get()?,
            switchless: get_or_empty(store)?,
            faults: get_or_empty(store)?,
            lifecycle: get_or_empty(store)?,
            syncev: get_or_empty(store)?,
            fleet: get_or_empty(store)?,
        })
    }

    /// Writes the trace to a file.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), DbError> {
        self.to_store().save(path)
    }

    /// Loads a trace from a file.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors and corruption.
    pub fn load(path: impl AsRef<Path>) -> Result<TraceDb, DbError> {
        let store = Store::load(path)?;
        TraceDb::from_store(&store)
    }

    /// Total recorded call events (ecalls + ocalls).
    pub fn event_count(&self) -> usize {
        self.ecalls.len() + self.ocalls.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_with_rows() {
        let mut trace = TraceDb::default();
        trace.ecalls.insert(EcallRow {
            thread: 0,
            enclave: 1,
            call_index: 0,
            start_ns: 100,
            end_ns: 200,
            parent_ocall: None,
            aex_count: 0,
            failed: false,
        });
        trace.paging.insert(PagingRow {
            enclave: 1,
            out: true,
            vaddr: 0x1000,
            time_ns: 150,
        });
        let back = TraceDb::from_bytes(&trace.to_bytes()).unwrap();
        assert_eq!(back.ecalls.len(), 1);
        assert_eq!(back.paging.len(), 1);
        assert_eq!(back.event_count(), 1);
    }

    #[test]
    fn switchless_rows_roundtrip() {
        let mut trace = TraceDb::default();
        trace.switchless.insert(SwitchlessRow {
            thread: 1,
            enclave: 1,
            kind: 1,
            call_index: Some(0),
            worker: Some(0),
            spins: 3,
            time_ns: 42,
        });
        let back = TraceDb::from_bytes(&trace.to_bytes()).unwrap();
        assert_eq!(back.switchless.len(), 1);
    }

    #[test]
    fn traces_without_a_switchless_table_still_load() {
        // A store written before the switchless table existed.
        let mut store = Store::new();
        let t = TraceDb::default();
        store.put(&t.ecalls);
        store.put(&t.ocalls);
        store.put(&t.aex);
        store.put(&t.paging);
        store.put(&t.sync);
        store.put(&t.enclaves);
        store.put(&t.symbols);
        let back = TraceDb::from_bytes(&store.to_bytes()).unwrap();
        assert_eq!(back.switchless.len(), 0);
        assert_eq!(back.faults.len(), 0);
        assert_eq!(back.lifecycle.len(), 0);
    }

    #[test]
    fn fault_free_traces_serialise_without_a_fault_table() {
        // Byte-compatibility contract: a trace with no fault rows writes
        // the same store as a pre-chaos-harness version...
        let trace = TraceDb::default();
        let mut old_style = Store::new();
        old_style.put(&trace.ecalls);
        old_style.put(&trace.ocalls);
        old_style.put(&trace.aex);
        old_style.put(&trace.paging);
        old_style.put(&trace.sync);
        old_style.put(&trace.enclaves);
        old_style.put(&trace.symbols);
        old_style.put(&trace.switchless);
        assert_eq!(trace.to_bytes(), old_style.to_bytes());
        // ...while fault rows round-trip once present.
        let mut faulted = TraceDb::default();
        faulted.faults.insert(FaultRow {
            thread: 1,
            enclave: 1,
            fault: 0,
            action: 0,
            call_index: None,
            magnitude: 6,
            time_ns: 7,
        });
        let back = TraceDb::from_bytes(&faulted.to_bytes()).unwrap();
        assert_eq!(back.faults.len(), 1);
    }

    #[test]
    fn recovery_free_traces_serialise_without_a_lifecycle_table() {
        // Byte-compatibility contract: a run that never loses its enclave
        // writes the same store as a pre-supervisor version...
        let trace = TraceDb::default();
        let mut old_style = Store::new();
        old_style.put(&trace.ecalls);
        old_style.put(&trace.ocalls);
        old_style.put(&trace.aex);
        old_style.put(&trace.paging);
        old_style.put(&trace.sync);
        old_style.put(&trace.enclaves);
        old_style.put(&trace.symbols);
        old_style.put(&trace.switchless);
        assert_eq!(trace.to_bytes(), old_style.to_bytes());
        // ...while lifecycle rows round-trip once present.
        let mut recovered = TraceDb::default();
        recovered.lifecycle.insert(LifecycleRow {
            enclave: 1,
            stage: 0,
            thread: 2,
            attempt: 0,
            magnitude: 0,
            time_ns: 9,
        });
        let back = TraceDb::from_bytes(&recovered.to_bytes()).unwrap();
        assert_eq!(back.lifecycle.len(), 1);
    }

    #[test]
    fn sync_free_traces_serialise_without_a_syncev_table() {
        // Byte-compatibility contract: a run with sync-event tracking off
        // (the default) writes the same store as a pre-races version...
        let trace = TraceDb::default();
        let mut old_style = Store::new();
        old_style.put(&trace.ecalls);
        old_style.put(&trace.ocalls);
        old_style.put(&trace.aex);
        old_style.put(&trace.paging);
        old_style.put(&trace.sync);
        old_style.put(&trace.enclaves);
        old_style.put(&trace.symbols);
        old_style.put(&trace.switchless);
        assert_eq!(trace.to_bytes(), old_style.to_bytes());
        // ...while sync events round-trip once present.
        let mut synced = TraceDb::default();
        synced.syncev.insert(SyncEvRow {
            thread: 0,
            op: 0,
            object: Some(1),
            target: None,
            aux: 0,
            label: "m".into(),
            time_ns: 11,
        });
        let back = TraceDb::from_bytes(&synced.to_bytes()).unwrap();
        assert_eq!(back.syncev.len(), 1);
    }

    #[test]
    fn fleet_free_traces_serialise_without_a_fleet_table() {
        // Byte-compatibility contract: single-enclave workloads write the
        // same store as pre-fleet versions...
        let trace = TraceDb::default();
        let mut old_style = Store::new();
        old_style.put(&trace.ecalls);
        old_style.put(&trace.ocalls);
        old_style.put(&trace.aex);
        old_style.put(&trace.paging);
        old_style.put(&trace.sync);
        old_style.put(&trace.enclaves);
        old_style.put(&trace.symbols);
        old_style.put(&trace.switchless);
        assert_eq!(trace.to_bytes(), old_style.to_bytes());
        // ...while fleet rows round-trip once present.
        let mut fleet = TraceDb::default();
        fleet.fleet.insert(FleetRow {
            slot: 4,
            spin_ups: 1,
            restarts: 0,
            requests: 10,
            completed: 10,
            shed: 0,
            failed: 0,
            p50_ns: 100,
            p99_ns: 200,
            page_ins: 3,
            page_outs: 1,
        });
        let back = TraceDb::from_bytes(&fleet.to_bytes()).unwrap();
        assert_eq!(back.fleet.len(), 1);
        assert_eq!(back.fleet.iter().next().unwrap().slot, 4);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("sgx-perf-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.evdb");
        let trace = TraceDb::default();
        trace.save(&path).unwrap();
        let back = TraceDb::load(&path).unwrap();
        assert_eq!(back.event_count(), 0);
        std::fs::remove_file(path).unwrap();
    }
}
