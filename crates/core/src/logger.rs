//! The sgx-perf event logger (§4, §4.1).
//!
//! The logger attaches to an *unmodified* application through the dynamic
//! loader: [`Logger::attach`] preloads an interposing `sgx_ecall`
//! implementation (Figure 2), swaps every ocall table passed through it for
//! a generated stub table (`oT_logger`, Figure 3), optionally patches the
//! AEP to count or trace AEXs (§4.1.4), and hooks the kernel driver's
//! paging functions (§4.1.5). The four SDK synchronisation ocalls are
//! additionally classified into sleep/wake events with waker→sleeper
//! dependency edges (§4.1.3).
//!
//! All bookkeeping costs virtual time, calibrated against Table 2 of the
//! paper: ≈1,366 ns per ecall, ≈1,320 ns per ocall, ≈1,076 ns per counted
//! AEX and ≈1,118 ns per traced AEX.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};

use sgx_sdk::{
    CallData, EcallDispatcher, OcallTable, Runtime, SdkResult, SwitchlessEvent, ThreadCtx, Urts,
};
use sgx_sim::{AexEvent, DriverEvent, EnclaveId, Machine, PagingDirection};
use sim_core::fault::FaultEvent;
use sim_core::sync::Mutex;
use sim_core::{LifecycleEvent, Nanos, SyncEvent};

use crate::events::{
    AexMode, AexRow, CallKind, EcallRow, EnclaveRow, FaultRow, LifecycleRow, OcallRow, PagingRow,
    SwitchlessRow, SymbolRow, SyncEvRow, SyncRow,
};
use crate::trace::TraceDb;

/// Configuration of the event logger.
#[derive(Debug, Clone)]
pub struct LoggerConfig {
    /// How AEXs are observed. [`AexMode::Off`] leaves the AEP unpatched.
    pub aex: AexMode,
    /// Whether to hook the driver's paging functions.
    pub trace_paging: bool,
    /// Whether to classify the SDK sync ocalls into sleep/wake events.
    pub track_sync: bool,
    /// Whether to record raw synchronisation events (lock acquire/release,
    /// condvar wait/signal, thread spawn/join, ring post/complete, tagged
    /// shared-cell accesses) for the `sgxperf races` analyses. Off by
    /// default: traces of un-instrumented runs stay byte-identical to
    /// pre-races versions.
    pub track_syncev: bool,
    /// Bookkeeping cost per traced ecall (Table 2: ≈1,366 ns).
    pub ecall_overhead: Nanos,
    /// Bookkeeping cost per traced ocall (Table 2: ≈1,320 ns).
    pub ocall_overhead: Nanos,
    /// Bookkeeping cost per counted AEX (Table 2: ≈1,076 ns).
    pub aex_count_overhead: Nanos,
    /// Bookkeeping cost per traced AEX (Table 2: ≈1,118 ns).
    pub aex_trace_overhead: Nanos,
    /// Bookkeeping cost per switchless event. Recording is a lock-free ring
    /// append on the caller/worker thread, far cheaper than the call stubs.
    pub switchless_overhead: Nanos,
    /// Bookkeeping cost per fault-injection/recovery event (same shape of
    /// append as switchless events). Charged only when a fault actually
    /// fires, so zero-fault runs cost nothing extra.
    pub fault_overhead: Nanos,
    /// Bookkeeping cost per enclave-lifecycle event (loss, rebuild, replay,
    /// retry, recovery). Charged only when an enclave is actually lost, so
    /// loss-free runs cost nothing extra.
    pub lifecycle_overhead: Nanos,
    /// Bookkeeping cost per recorded synchronisation event (same shape of
    /// append as switchless events). Charged only when `track_syncev` is
    /// on.
    pub syncev_overhead: Nanos,
}

impl Default for LoggerConfig {
    fn default() -> Self {
        LoggerConfig {
            aex: AexMode::Off,
            trace_paging: true,
            track_sync: true,
            track_syncev: false,
            ecall_overhead: Nanos::from_nanos(1_366),
            ocall_overhead: Nanos::from_nanos(1_320),
            aex_count_overhead: Nanos::from_nanos(1_076),
            aex_trace_overhead: Nanos::from_nanos(1_118),
            switchless_overhead: Nanos::from_nanos(90),
            fault_overhead: Nanos::from_nanos(90),
            lifecycle_overhead: Nanos::from_nanos(90),
            syncev_overhead: Nanos::from_nanos(90),
        }
    }
}

impl LoggerConfig {
    /// Convenience: default configuration with the given AEX mode.
    pub fn with_aex(aex: AexMode) -> LoggerConfig {
        LoggerConfig {
            aex,
            ..LoggerConfig::default()
        }
    }

    /// Convenience: default configuration with raw sync-event recording
    /// enabled — what a `sgxperf races` recording run uses.
    pub fn with_syncev() -> LoggerConfig {
        LoggerConfig {
            track_syncev: true,
            ..LoggerConfig::default()
        }
    }
}

#[derive(Debug)]
struct FrameEntry {
    kind: CallKind,
    row: u64,
    aex: u64,
}

#[derive(Default)]
struct LogState {
    trace: TraceDb,
    /// Per-thread stack of in-flight calls (for direct parents and AEX
    /// attribution).
    stacks: HashMap<u64, Vec<FrameEntry>>,
    /// Generated stub tables, keyed by the original table's pointer
    /// identity. "Call stub and table creation is only needed once per
    /// ocall table" (§4.1.2).
    stub_cache: Vec<(Weak<OcallTable>, Arc<OcallTable>)>,
    /// Enclaves whose interface symbols were already captured.
    seen_enclaves: HashSet<u32>,
}

/// The attached event logger. See the [module docs](crate::logger).
pub struct Logger {
    machine: Arc<Machine>,
    urts: Arc<Urts>,
    config: LoggerConfig,
    enabled: AtomicBool,
    state: Mutex<LogState>,
}

impl std::fmt::Debug for Logger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock();
        f.debug_struct("Logger")
            .field("enabled", &self.enabled.load(Ordering::SeqCst))
            .field("ecalls", &st.trace.ecalls.len())
            .field("ocalls", &st.trace.ocalls.len())
            .finish()
    }
}

impl Logger {
    /// Attaches the logger to a runtime — the `LD_PRELOAD` step. After
    /// this, every `sgx_ecall` issued through the runtime's loader, every
    /// ocall dispatched through a table that passed through the logger,
    /// every paging event and (depending on config) every AEX is recorded.
    pub fn attach(runtime: &Arc<Runtime>, config: LoggerConfig) -> Arc<Logger> {
        let logger = Arc::new(Logger {
            machine: Arc::clone(runtime.machine()),
            urts: Arc::clone(runtime.urts()),
            config,
            enabled: AtomicBool::new(true),
            state: Mutex::new(LogState::default()),
        });

        // Shadow sgx_ecall.
        let shim_logger = Arc::clone(&logger);
        runtime.loader().preload(move |next| {
            Arc::new(LoggerShim {
                logger: shim_logger,
                next,
            })
        });

        // kprobe the driver's paging path.
        if logger.config.trace_paging {
            let weak = Arc::downgrade(&logger);
            runtime
                .machine()
                .add_driver_hook(Arc::new(move |ev: &DriverEvent| {
                    if let Some(logger) = weak.upgrade() {
                        logger.on_driver_event(ev);
                    }
                }));
        }

        // Observe the switchless subsystem: its calls bypass sgx_ecall and
        // the ocall table, so interposition alone would miss them.
        {
            let weak = Arc::downgrade(&logger);
            runtime
                .urts()
                .set_switchless_observer(Arc::new(move |ev: &SwitchlessEvent| {
                    if let Some(logger) = weak.upgrade() {
                        logger.on_switchless(ev);
                    }
                }));
        }

        // Observe the chaos harness: injected faults and SDK recovery
        // steps are first-class events, so the analyzer can distinguish
        // "slow because paging" from "slow because faulted".
        {
            let weak = Arc::downgrade(&logger);
            runtime
                .machine()
                .set_fault_observer(Some(Arc::new(move |ev: &FaultEvent| {
                    if let Some(logger) = weak.upgrade() {
                        logger.on_fault(ev);
                    }
                })));
        }

        // Observe enclave-lifecycle events: losses and every step of a
        // supervisor recovery, so the analyzer can report restart counts
        // and MTTR (mean time to recovery) in virtual time.
        {
            let weak = Arc::downgrade(&logger);
            runtime
                .machine()
                .set_lifecycle_observer(Some(Arc::new(move |ev: &LifecycleEvent| {
                    if let Some(logger) = weak.upgrade() {
                        logger.on_lifecycle(ev);
                    }
                })));
        }

        // Observe the synchronisation bus: lock/condvar/thread/ring/cell
        // events are the input of the `sgxperf races` analyses. Opt-in so
        // default recordings stay byte-identical to pre-races versions.
        if logger.config.track_syncev {
            let weak = Arc::downgrade(&logger);
            runtime
                .machine()
                .sync_bus()
                .set_observer(Some(Arc::new(move |ev: &SyncEvent| {
                    if let Some(logger) = weak.upgrade() {
                        logger.on_syncev(ev);
                    }
                })));
        }

        // Patch the AEP.
        if logger.config.aex != AexMode::Off {
            let weak = Arc::downgrade(&logger);
            runtime
                .machine()
                .set_aep_observer(Some(Arc::new(move |ev: &AexEvent| {
                    if let Some(logger) = weak.upgrade() {
                        logger.on_aex(ev);
                    }
                })));
        }

        logger
    }

    /// Stops recording and returns the collected trace. The interposition
    /// shims stay in place but become pass-through.
    pub fn finish(&self) -> TraceDb {
        self.enabled.store(false, Ordering::SeqCst);
        self.machine.set_aep_observer(None);
        self.machine.set_fault_observer(None);
        self.machine.set_lifecycle_observer(None);
        self.machine.sync_bus().set_observer(None);
        std::mem::take(&mut self.state.lock().trace)
    }

    /// A consistent copy of the trace recorded so far, without stopping the
    /// logger. This is what a crash-consistent run persists after each unit
    /// of work (via [`eventdb::SegmentedWriter`]): every snapshot frame is
    /// a valid trace, so a `SIGKILL` between frames loses at most the work
    /// since the last snapshot.
    pub fn snapshot(&self) -> TraceDb {
        self.state.lock().trace.clone()
    }

    /// Whether the logger is currently recording.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::SeqCst)
    }

    /// Temporarily pauses/resumes recording (e.g. to skip a warmup phase).
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::SeqCst);
    }

    /// Numbers of events recorded so far (ecalls, ocalls).
    pub fn counts(&self) -> (usize, usize) {
        let st = self.state.lock();
        (st.trace.ecalls.len(), st.trace.ocalls.len())
    }

    // ------------------------------------------------------------------
    // Event sinks
    // ------------------------------------------------------------------

    fn on_driver_event(&self, ev: &DriverEvent) {
        if !self.is_enabled() {
            return;
        }
        let mut st = self.state.lock();
        match *ev {
            DriverEvent::Paging {
                direction,
                enclave,
                vaddr,
                time,
            } => {
                st.trace.paging.insert(PagingRow {
                    enclave: enclave.0,
                    out: direction == PagingDirection::Out,
                    vaddr,
                    time_ns: time.as_nanos(),
                });
            }
            DriverEvent::EnclaveCreated {
                enclave,
                pages,
                time,
            } => {
                st.trace.enclaves.insert(EnclaveRow {
                    enclave: enclave.0,
                    total_pages: pages as u64,
                    created_ns: time.as_nanos(),
                });
            }
            DriverEvent::EnclaveDestroyed { .. } => {}
            // The loss itself is recorded through the lifecycle observer
            // (with attempt/MTTR context the driver does not have).
            DriverEvent::EnclaveLost { .. } => {}
        }
    }

    fn on_switchless(&self, ev: &SwitchlessEvent) {
        if !self.is_enabled() {
            return;
        }
        self.machine
            .clock()
            .advance(self.config.switchless_overhead);
        let mut st = self.state.lock();
        st.trace.switchless.insert(SwitchlessRow {
            thread: ev.thread.0 as u64,
            enclave: ev.enclave.0,
            kind: ev.kind.code(),
            call_index: ev.call_index.map(|i| i as u32),
            worker: ev.worker.map(|w| w as u32),
            spins: ev.spins,
            time_ns: ev.time.as_nanos(),
        });
    }

    fn on_fault(&self, ev: &FaultEvent) {
        if !self.is_enabled() {
            return;
        }
        self.machine.clock().advance(self.config.fault_overhead);
        let mut st = self.state.lock();
        st.trace.faults.insert(FaultRow {
            thread: ev.thread,
            enclave: ev.enclave,
            fault: ev.code,
            action: ev.action.code(),
            call_index: ev.call_index,
            magnitude: ev.magnitude,
            time_ns: ev.time.as_nanos(),
        });
    }

    fn on_lifecycle(&self, ev: &LifecycleEvent) {
        if !self.is_enabled() {
            return;
        }
        self.machine.clock().advance(self.config.lifecycle_overhead);
        let mut st = self.state.lock();
        st.trace.lifecycle.insert(LifecycleRow {
            enclave: ev.enclave,
            stage: ev.stage.code(),
            thread: ev.thread,
            attempt: ev.attempt,
            magnitude: ev.magnitude,
            time_ns: ev.time.as_nanos(),
        });
    }

    fn on_syncev(&self, ev: &SyncEvent) {
        if !self.is_enabled() {
            return;
        }
        self.machine.clock().advance(self.config.syncev_overhead);
        let mut st = self.state.lock();
        st.trace.syncev.insert(SyncEvRow {
            thread: ev.thread,
            op: ev.op.code(),
            object: ev.object,
            target: ev.target,
            aux: ev.aux,
            label: ev.label.clone(),
            time_ns: ev.time.as_nanos(),
        });
    }

    fn on_aex(&self, ev: &AexEvent) {
        if !self.is_enabled() {
            return;
        }
        let overhead = match self.config.aex {
            AexMode::Off => return,
            AexMode::Count => self.config.aex_count_overhead,
            AexMode::Trace => self.config.aex_trace_overhead,
        };
        self.machine.clock().advance(overhead);
        let mut st = self.state.lock();
        let thread = ev.thread.0 as u64;
        let during_ecall = st.stacks.get_mut(&thread).and_then(|stack| {
            stack
                .iter_mut()
                .rev()
                .find(|f| f.kind == CallKind::Ecall)
                .map(|f| {
                    f.aex += 1;
                    f.row
                })
        });
        if self.config.aex == AexMode::Trace {
            // On SGX v2 debug enclaves the exit type is recorded in the
            // enclave state and readable by tooling (§4.1.4); on v1 the
            // cause stays opaque even though the simulator knows it.
            let cause = if self.machine.aex_cause_visible(ev.enclave) {
                Some(match ev.cause {
                    sgx_sim::AexCause::Interrupt => crate::events::AexCauseCode::Interrupt,
                    sgx_sim::AexCause::PageFault => crate::events::AexCauseCode::PageFault,
                    sgx_sim::AexCause::AccessFault => crate::events::AexCauseCode::AccessFault,
                })
            } else {
                None
            };
            st.trace.aex.insert(AexRow {
                thread,
                enclave: ev.enclave.0,
                time_ns: ev.time.as_nanos(),
                during_ecall,
                cause,
            });
        }
    }

    /// Captures the interface symbols of an enclave the first time a call
    /// for it is traced (debug enclaves expose their interface).
    fn capture_symbols(&self, eid: EnclaveId) {
        {
            let st = self.state.lock();
            if st.seen_enclaves.contains(&eid.0) {
                return;
            }
        }
        let Ok(enclave) = self.urts.enclave(eid) else {
            return;
        };
        let spec = enclave.spec().clone();
        let mut st = self.state.lock();
        if !st.seen_enclaves.insert(eid.0) {
            return;
        }
        for e in spec.ecalls() {
            st.trace.symbols.insert(SymbolRow {
                enclave: eid.0,
                kind_is_ecall: true,
                index: e.index as u32,
                name: e.name.clone(),
                public: e.public,
                allowed_ecalls: Vec::new(),
                user_check_params: e
                    .params
                    .iter()
                    .filter(|p| p.is_user_check())
                    .map(|p| p.name.clone())
                    .collect(),
            });
        }
        for o in spec.ocalls() {
            st.trace.symbols.insert(SymbolRow {
                enclave: eid.0,
                kind_is_ecall: false,
                index: o.index as u32,
                name: o.name.clone(),
                public: false,
                allowed_ecalls: o.allowed_ecalls.iter().map(|&i| i as u32).collect(),
                user_check_params: o
                    .params
                    .iter()
                    .filter(|p| p.is_user_check())
                    .map(|p| p.name.clone())
                    .collect(),
            });
        }
    }

    /// Returns the stub table for `table`, generating it on first sight.
    /// If `table` already *is* one of our stub tables (a nested ecall
    /// passing the saved table back in), it is reused as-is.
    fn stub_table(self: &Arc<Self>, eid: EnclaveId, table: &Arc<OcallTable>) -> Arc<OcallTable> {
        let mut st = self.state.lock();
        st.stub_cache.retain(|(orig, _)| orig.strong_count() > 0);
        for (orig, stub) in &st.stub_cache {
            if Arc::ptr_eq(stub, table) {
                return Arc::clone(stub);
            }
            if orig.upgrade().is_some_and(|o| Arc::ptr_eq(&o, table)) {
                return Arc::clone(stub);
            }
        }
        let logger = Arc::downgrade(self);
        let stub = Arc::new(table.wrap(|index, name, orig| {
            let logger = Weak::clone(&logger);
            let name = name.to_string();
            Arc::new(move |host, data: &mut CallData| match logger.upgrade() {
                Some(l) if l.is_enabled() => l.traced_ocall(eid, index, &name, &orig, host, data),
                _ => orig(host, data),
            })
        }));
        st.stub_cache
            .push((Arc::downgrade(table), Arc::clone(&stub)));
        stub
    }

    /// The body of a generated ocall stub: record, forward, record.
    fn traced_ocall(
        &self,
        eid: EnclaveId,
        index: usize,
        name: &str,
        orig: &sgx_sdk::ocall::OcallFn,
        host: &mut sgx_sdk::HostCtx<'_>,
        data: &mut CallData,
    ) -> SdkResult<()> {
        let clock = self.machine.clock();
        let half = self.config.ocall_overhead / 2;
        clock.advance(half);
        let thread = host.thread.token.0 as u64;
        let row = {
            let mut st = self.state.lock();
            let parent_ecall = st.stacks.get(&thread).and_then(|s| {
                s.iter()
                    .rev()
                    .find(|f| f.kind == CallKind::Ecall)
                    .map(|f| f.row)
            });
            let start = clock.now().as_nanos();
            let row = st.trace.ocalls.insert(OcallRow {
                thread,
                enclave: eid.0,
                call_index: index as u32,
                start_ns: start,
                end_ns: start,
                parent_ecall,
                failed: false,
            });
            st.stacks.entry(thread).or_default().push(FrameEntry {
                kind: CallKind::Ocall,
                row: row.0 as u64,
                aex: 0,
            });
            row
        };

        let result = orig(host, data);

        let end = clock.now().as_nanos();
        {
            let mut st = self.state.lock();
            if let Some(stack) = st.stacks.get_mut(&thread) {
                stack.pop();
            }
            if let Some(r) = st.trace.ocalls.get_mut(row) {
                r.end_ns = end;
                r.failed = result.is_err();
            }
            if self.config.track_sync {
                self.classify_sync(&mut st, thread, row.0 as u64, name, data, end);
            }
        }
        clock.advance(half);
        result
    }

    /// §4.1.3: the four sync ocalls reduce to sleep and wake-up events.
    fn classify_sync(
        &self,
        st: &mut LogState,
        thread: u64,
        ocall_row: u64,
        name: &str,
        data: &CallData,
        time_ns: u64,
    ) {
        use sgx_sdk::sync_ocalls as so;
        match name {
            so::WAIT => {
                st.trace.sync.insert(SyncRow {
                    thread,
                    time_ns,
                    sleep: true,
                    target_thread: None,
                    ocall_row,
                });
            }
            so::SET => {
                st.trace.sync.insert(SyncRow {
                    thread,
                    time_ns,
                    sleep: false,
                    target_thread: Some(data.scalar),
                    ocall_row,
                });
            }
            so::SETWAIT => {
                st.trace.sync.insert(SyncRow {
                    thread,
                    time_ns,
                    sleep: false,
                    target_thread: Some(data.scalar),
                    ocall_row,
                });
                st.trace.sync.insert(SyncRow {
                    thread,
                    time_ns,
                    sleep: true,
                    target_thread: None,
                    ocall_row,
                });
            }
            so::SET_MULTIPLE => {
                for &target in &data.aux {
                    st.trace.sync.insert(SyncRow {
                        thread,
                        time_ns,
                        sleep: false,
                        target_thread: Some(target),
                        ocall_row,
                    });
                }
            }
            _ => {}
        }
    }
}

/// The interposed `sgx_ecall` (Figure 2): records a timestamp and the
/// issuing thread, substitutes the stub ocall table, forwards to the real
/// URTS, and records the completion timestamp.
struct LoggerShim {
    logger: Arc<Logger>,
    next: Arc<dyn EcallDispatcher>,
}

impl EcallDispatcher for LoggerShim {
    fn sgx_ecall(
        &self,
        tcx: &ThreadCtx<'_>,
        eid: EnclaveId,
        index: usize,
        table: &Arc<OcallTable>,
        data: &mut CallData,
    ) -> SdkResult<()> {
        let logger = &self.logger;
        if !logger.is_enabled() {
            return self.next.sgx_ecall(tcx, eid, index, table, data);
        }
        let clock = logger.machine.clock();
        let half = logger.config.ecall_overhead / 2;
        clock.advance(half);
        logger.capture_symbols(eid);
        // We always replace the table, even if the ecall performs no
        // ocalls — we cannot know beforehand (§4.1.2).
        let stub = logger.stub_table(eid, table);
        let thread = tcx.token.0 as u64;
        let row = {
            let mut st = logger.state.lock();
            let parent_ocall = st.stacks.get(&thread).and_then(|s| {
                s.iter()
                    .rev()
                    .find(|f| f.kind == CallKind::Ocall)
                    .map(|f| f.row)
            });
            let start = clock.now().as_nanos();
            let row = st.trace.ecalls.insert(EcallRow {
                thread,
                enclave: eid.0,
                call_index: index as u32,
                start_ns: start,
                end_ns: start,
                parent_ocall,
                aex_count: 0,
                failed: false,
            });
            st.stacks.entry(thread).or_default().push(FrameEntry {
                kind: CallKind::Ecall,
                row: row.0 as u64,
                aex: 0,
            });
            row
        };

        let result = self.next.sgx_ecall(tcx, eid, index, &stub, data);

        let end = clock.now().as_nanos();
        {
            let mut st = logger.state.lock();
            let aex = st
                .stacks
                .get_mut(&thread)
                .and_then(|s| s.pop())
                .map(|f| f.aex)
                .unwrap_or(0);
            if let Some(r) = st.trace.ecalls.get_mut(row) {
                r.end_ns = end;
                r.aex_count = aex;
                r.failed = result.is_err();
            }
        }
        clock.advance(half);
        result
    }
}
