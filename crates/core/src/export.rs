//! Trace exporters for external visualisers.
//!
//! Two formats, both derived from a recorded [`TraceDb`]:
//!
//! * **chrome trace** ([`chrome_trace`]) — the Trace Event JSON format
//!   understood by `chrome://tracing` and Perfetto. Each logical thread
//!   gets its own lane; ecalls/ocalls become complete (`"X"`) spans with
//!   an inner `[enclave]` span marking the portion spent inside the
//!   enclave (the transition overhead frames it), AEX/switchless/fault
//!   events become instants on their thread's lane, and EPC evictions
//!   become async (`"b"`/`"e"`) spans on a dedicated paging lane, from
//!   page-out (EWB) to the page-in (ELDU) that brings the page back.
//! * **collapsed stacks** ([`folded_stacks`]) — the
//!   `parent;child;leaf value` format consumed by flamegraph tooling.
//!   Stacks follow the logger's *direct parent* links (ocall inside
//!   ecall, nested ecall inside ocall); values are self-time
//!   nanoseconds, i.e. a frame's duration minus its direct children's.
//!
//! # Examples
//!
//! ```
//! use sgx_perf::export;
//! use sgx_perf::TraceDb;
//! use sim_core::HwProfile;
//!
//! let trace = TraceDb::default();
//! let cost = HwProfile::Unpatched.cost_model();
//! let json = export::chrome_trace(&trace, &cost);
//! assert!(json.contains("\"traceEvents\""));
//! assert_eq!(export::folded_stacks(&trace, &cost), "");
//! ```

use std::collections::BTreeMap;

use sim_core::CostModel;

use crate::analysis::{symbol_name, Instances};
use crate::events::CallKind;
use crate::json;
use crate::trace::TraceDb;

/// Timestamps in the Trace Event format are fractional microseconds.
fn us(ns: u64) -> String {
    json::f64(ns as f64 / 1_000.0)
}

/// Stable lane numbering: thread tokens in order of first appearance.
fn thread_lanes(trace: &TraceDb) -> BTreeMap<u64, u64> {
    let mut lanes = BTreeMap::new();
    let mut order: Vec<u64> = Vec::new();
    let mut events: Vec<(u64, u64)> = Vec::new();
    for e in trace.ecalls.iter() {
        events.push((e.start_ns, e.thread));
    }
    for o in trace.ocalls.iter() {
        events.push((o.start_ns, o.thread));
    }
    for a in trace.aex.iter() {
        events.push((a.time_ns, a.thread));
    }
    for s in trace.switchless.iter() {
        events.push((s.time_ns, s.thread));
    }
    for f in trace.faults.iter() {
        events.push((f.time_ns, f.thread));
    }
    events.sort();
    for (_, t) in events {
        if !order.contains(&t) {
            order.push(t);
        }
    }
    for (i, t) in order.into_iter().enumerate() {
        lanes.insert(t, i as u64);
    }
    lanes
}

/// Renders a trace as Trace Event JSON (object form, with a
/// `traceEvents` array), loadable in `chrome://tracing` / Perfetto. The
/// cost model frames the inner `[enclave]` span of each ecall.
pub fn chrome_trace(trace: &TraceDb, cost: &CostModel) -> String {
    let lanes = thread_lanes(trace);
    let overhead = cost.sdk_ecall_overhead().as_nanos();
    let mut ev: Vec<String> = Vec::new();

    // Lane metadata: one named lane per logical thread, plus a paging lane
    // past the last thread.
    let paging_lane = lanes.len() as u64;
    for (token, lane) in &lanes {
        ev.push(format!(
            "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": {lane}, \
             \"args\": {{\"name\": {}}}}}",
            json::string(&format!("thread {token}"))
        ));
    }
    if !trace.paging.is_empty() {
        ev.push(format!(
            "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": {paging_lane}, \
             \"args\": {{\"name\": \"EPC paging\"}}}}"
        ));
    }

    // Calls: complete spans. Ecalls additionally get the nested [enclave]
    // span — the slice between the enter and exit transitions.
    for (row, e) in trace.ecalls.iter_with_ids() {
        let lane = lanes[&e.thread];
        let name = symbol_name(
            trace,
            crate::events::CallRef {
                enclave: e.enclave,
                kind: CallKind::Ecall,
                index: e.call_index,
            },
        );
        let dur = e.end_ns.saturating_sub(e.start_ns);
        ev.push(format!(
            "{{\"name\": {}, \"cat\": \"ecall\", \"ph\": \"X\", \"pid\": 1, \"tid\": {lane}, \
             \"ts\": {}, \"dur\": {}, \
             \"args\": {{\"row\": {}, \"enclave\": {}, \"aex_count\": {}, \"failed\": {}}}}}",
            json::string(&name),
            us(e.start_ns),
            us(dur),
            row.0,
            e.enclave,
            e.aex_count,
            e.failed,
        ));
        if dur > overhead {
            let enter = overhead / 2;
            ev.push(format!(
                "{{\"name\": \"[enclave]\", \"cat\": \"transition\", \"ph\": \"X\", \
                 \"pid\": 1, \"tid\": {lane}, \"ts\": {}, \"dur\": {}, \
                 \"args\": {{\"row\": {}}}}}",
                us(e.start_ns + enter),
                us(dur - overhead),
                row.0,
            ));
        }
    }
    for (row, o) in trace.ocalls.iter_with_ids() {
        let lane = lanes[&o.thread];
        let name = symbol_name(
            trace,
            crate::events::CallRef {
                enclave: o.enclave,
                kind: CallKind::Ocall,
                index: o.call_index,
            },
        );
        ev.push(format!(
            "{{\"name\": {}, \"cat\": \"ocall\", \"ph\": \"X\", \"pid\": 1, \"tid\": {lane}, \
             \"ts\": {}, \"dur\": {}, \
             \"args\": {{\"row\": {}, \"enclave\": {}, \"failed\": {}}}}}",
            json::string(&name),
            us(o.start_ns),
            us(o.end_ns.saturating_sub(o.start_ns)),
            row.0,
            o.enclave,
            o.failed,
        ));
    }

    // AEXs, switchless events and faults: instants on the thread's lane.
    for a in trace.aex.iter() {
        ev.push(format!(
            "{{\"name\": \"AEX\", \"cat\": \"aex\", \"ph\": \"i\", \"s\": \"t\", \
             \"pid\": 1, \"tid\": {}, \"ts\": {}}}",
            lanes[&a.thread],
            us(a.time_ns),
        ));
    }
    for s in trace.switchless.iter() {
        let name = match s.kind {
            0 => "switchless ecall",
            1 => "switchless ocall",
            2 | 3 => "switchless fallback",
            _ => "switchless worker",
        };
        ev.push(format!(
            "{{\"name\": {}, \"cat\": \"switchless\", \"ph\": \"i\", \"s\": \"t\", \
             \"pid\": 1, \"tid\": {}, \"ts\": {}, \"args\": {{\"spins\": {}}}}}",
            json::string(name),
            lanes[&s.thread],
            us(s.time_ns),
            s.spins,
        ));
    }
    for f in trace.faults.iter() {
        let action = match f.action {
            0 => "injected",
            1 => "retried",
            2 => "recovered",
            _ => "gave up",
        };
        ev.push(format!(
            "{{\"name\": {}, \"cat\": \"fault\", \"ph\": \"i\", \"s\": \"t\", \
             \"pid\": 1, \"tid\": {}, \"ts\": {}, \
             \"args\": {{\"fault\": {}, \"magnitude\": {}}}}}",
            json::string(&format!("fault {action}")),
            lanes[&f.thread],
            us(f.time_ns),
            f.fault,
            f.magnitude,
        ));
    }

    // Paging: an async span per eviction, from EWB to the matching ELDU.
    // `id` carries the page address so begin/end pair up; an eviction with
    // no later page-in stays open (chrome renders it to the trace end).
    let mut async_id = 0u64;
    let mut open: BTreeMap<(u32, u64), u64> = BTreeMap::new();
    for p in trace.paging.iter() {
        let addr = format!("0x{:x}", p.vaddr);
        if p.out {
            async_id += 1;
            open.insert((p.enclave, p.vaddr), async_id);
            ev.push(format!(
                "{{\"name\": {}, \"cat\": \"paging\", \"ph\": \"b\", \"id\": {async_id}, \
                 \"pid\": 1, \"tid\": {paging_lane}, \"ts\": {}, \
                 \"args\": {{\"vaddr\": {}, \"enclave\": {}}}}}",
                json::string("evicted"),
                us(p.time_ns),
                json::string(&addr),
                p.enclave,
            ));
        } else if let Some(id) = open.remove(&(p.enclave, p.vaddr)) {
            ev.push(format!(
                "{{\"name\": {}, \"cat\": \"paging\", \"ph\": \"e\", \"id\": {id}, \
                 \"pid\": 1, \"tid\": {paging_lane}, \"ts\": {}}}",
                json::string("evicted"),
                us(p.time_ns),
            ));
        } else {
            // Page-in without a recorded eviction (trace started late).
            ev.push(format!(
                "{{\"name\": \"page-in\", \"cat\": \"paging\", \"ph\": \"i\", \"s\": \"p\", \
                 \"pid\": 1, \"tid\": {paging_lane}, \"ts\": {}, \
                 \"args\": {{\"vaddr\": {}}}}}",
                us(p.time_ns),
                json::string(&addr),
            ));
        }
    }

    let mut out = String::from("{\n\"displayTimeUnit\": \"ns\",\n\"traceEvents\": [\n");
    out.push_str(&ev.join(",\n"));
    out.push_str("\n]\n}\n");
    out
}

/// Renders a trace in the collapsed-stack format consumed by flamegraph
/// tooling: one `frame;frame;leaf value` line per distinct stack, where
/// frames follow the logger's direct-parent links and values are
/// self-time nanoseconds. Lines are sorted for deterministic output.
pub fn folded_stacks(trace: &TraceDb, cost: &CostModel) -> String {
    let instances = Instances::build(trace, cost);

    // Self time: duration minus time spent in direct children.
    let mut child_time: BTreeMap<(CallKind, u64), u64> = BTreeMap::new();
    for inst in &instances.all {
        if let Some(parent) = inst.direct_parent {
            *child_time.entry(parent).or_default() += inst.duration_ns;
        }
    }

    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    for inst in &instances.all {
        // Stack: walk the direct-parent chain to the top-level call.
        let mut frames = vec![symbol_name(trace, inst.call)];
        let mut cursor = inst.direct_parent;
        while let Some((kind, row)) = cursor {
            match instances.by_row(kind, row) {
                Some(parent) => {
                    frames.push(symbol_name(trace, parent.call));
                    cursor = parent.direct_parent;
                }
                None => break,
            }
        }
        frames.push(format!("thread-{}", inst.thread));
        frames.reverse();
        let spent = child_time
            .get(&(inst.call.kind, inst.row))
            .copied()
            .unwrap_or(0);
        let self_ns = inst.duration_ns.saturating_sub(spent);
        *folded.entry(frames.join(";")).or_default() += self_ns;
    }

    let mut out = String::new();
    for (stack, value) in folded {
        out.push_str(&format!("{stack} {value}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{EcallRow, OcallRow, PagingRow, SymbolRow};
    use sim_core::HwProfile;

    fn cost() -> CostModel {
        HwProfile::Unpatched.cost_model()
    }

    fn sample_trace() -> TraceDb {
        let mut trace = TraceDb::default();
        trace.symbols.insert(SymbolRow {
            enclave: 1,
            kind_is_ecall: true,
            index: 0,
            name: "ecall_work".into(),
            public: true,
            allowed_ecalls: vec![],
            user_check_params: vec![],
        });
        trace.symbols.insert(SymbolRow {
            enclave: 1,
            kind_is_ecall: false,
            index: 0,
            name: "ocall_log".into(),
            public: false,
            allowed_ecalls: vec![],
            user_check_params: vec![],
        });
        // Ecall on thread 0 with a nested ocall; second ecall on thread 7.
        trace.ecalls.insert(EcallRow {
            thread: 0,
            enclave: 1,
            call_index: 0,
            start_ns: 0,
            end_ns: 50_000,
            parent_ocall: None,
            aex_count: 1,
            failed: false,
        });
        trace.ocalls.insert(OcallRow {
            thread: 0,
            enclave: 1,
            call_index: 0,
            start_ns: 10_000,
            end_ns: 18_000,
            parent_ecall: Some(0),
            failed: false,
        });
        trace.ecalls.insert(EcallRow {
            thread: 7,
            enclave: 1,
            call_index: 0,
            start_ns: 5_000,
            end_ns: 12_000,
            parent_ocall: None,
            aex_count: 0,
            failed: false,
        });
        trace.paging.insert(PagingRow {
            enclave: 1,
            out: true,
            vaddr: 0x4000,
            time_ns: 20_000,
        });
        trace.paging.insert(PagingRow {
            enclave: 1,
            out: false,
            vaddr: 0x4000,
            time_ns: 30_000,
        });
        trace
    }

    #[test]
    fn chrome_trace_has_a_lane_per_thread() {
        let json = chrome_trace(&sample_trace(), &cost());
        assert!(json.contains("\"traceEvents\""));
        // Threads 0 and 7 get lanes 0 and 1 (order of first appearance),
        // paging gets lane 2.
        assert!(
            json.contains("\"args\": {\"name\": \"thread 0\"}"),
            "{json}"
        );
        assert!(
            json.contains("\"args\": {\"name\": \"thread 7\"}"),
            "{json}"
        );
        assert!(
            json.contains("\"args\": {\"name\": \"EPC paging\"}"),
            "{json}"
        );
        assert!(json.contains("\"name\": \"ecall_work\""));
        assert!(json.contains("\"name\": \"ocall_log\""));
    }

    #[test]
    fn chrome_trace_nests_the_enclave_span() {
        let json = chrome_trace(&sample_trace(), &cost());
        // 50µs ecall minus the 4205ns transition → inner span of 45.795µs
        // starting at overhead/2.
        assert!(json.contains("\"name\": \"[enclave]\""), "{json}");
        assert!(json.contains("\"ts\": 2.102, \"dur\": 45.795"), "{json}");
    }

    #[test]
    fn chrome_trace_pairs_paging_async_spans() {
        let json = chrome_trace(&sample_trace(), &cost());
        assert!(json.contains("\"ph\": \"b\", \"id\": 1"), "{json}");
        assert!(json.contains("\"ph\": \"e\", \"id\": 1"), "{json}");
        assert!(json.contains("\"vaddr\": \"0x4000\""), "{json}");
    }

    #[test]
    fn chrome_trace_is_balanced_json() {
        let json = chrome_trace(&sample_trace(), &cost());
        assert_eq!(
            json.matches('{').count() + json.matches('[').count(),
            json.matches('}').count() + json.matches(']').count()
        );
    }

    #[test]
    fn folded_stacks_follow_direct_parents_with_self_time() {
        let folded = folded_stacks(&sample_trace(), &cost());
        let lines: Vec<&str> = folded.lines().collect();
        // Nested ocall subtracts from the outer ecall's self time:
        // 50_000 - 8_000 = 42_000.
        assert!(lines.contains(&"thread-0;ecall_work 42000"), "{lines:?}");
        assert!(
            lines.contains(&"thread-0;ecall_work;ocall_log 8000"),
            "{lines:?}"
        );
        assert!(lines.contains(&"thread-7;ecall_work 7000"), "{lines:?}");
        // Sorted, deterministic.
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted);
    }

    #[test]
    fn empty_trace_exports_cleanly() {
        let trace = TraceDb::default();
        let json = chrome_trace(&trace, &cost());
        assert!(json.contains("\"traceEvents\": [\n\n]"), "{json}");
        assert_eq!(folded_stacks(&trace, &cost()), "");
    }
}
