//! # sgx-perf: a performance analysis tool for (simulated) Intel SGX enclaves
//!
//! A from-scratch Rust reproduction of *sgx-perf: A Performance Analysis
//! Tool for Intel SGX Enclaves* (Weichbrodt, Aublin, Kapitza — Middleware
//! 2018), running against the simulated SGX stack in this workspace
//! (`sgx-sim` + `sgx-sdk`).
//!
//! sgx-perf is a collection of tools that work together:
//!
//! * the **event logger** ([`Logger`]) traces ecalls, ocalls, AEXs and EPC
//!   paging *without modifying the application*: it is "preloaded" into the
//!   process and shadows `sgx_ecall`, rewrites ocall tables with generated
//!   call stubs, patches the asynchronous exit pointer and hooks the kernel
//!   driver's paging functions (§4.1),
//! * the **working-set estimator** ([`WorkingSetEstimator`]) measures how
//!   many enclave pages are actually touched between two points in time by
//!   stripping page permissions and catching access faults (§4.2),
//! * the **analyzer** ([`Analyzer`]) computes per-call statistics, derives
//!   direct/indirect parent relationships, detects the SGX-specific
//!   performance anti-patterns of §3 (SISC, SDSC, SNC, SSC, paging) and the
//!   interface security issues of §3.6, and emits prioritised
//!   recommendations plus call graphs, histograms and scatter series
//!   (§4.3).
//!
//! # Quickstart
//!
//! ```
//! use sgx_perf::{Analyzer, Logger, LoggerConfig};
//! use sgx_sdk::{CallData, OcallTableBuilder, Runtime, ThreadCtx};
//! use sgx_sim::{EnclaveConfig, Machine};
//! use sim_core::{Clock, HwProfile, Nanos};
//! use std::sync::Arc;
//!
//! // An application with one enclave.
//! let machine = Arc::new(Machine::new(Clock::new(), HwProfile::Unpatched));
//! let runtime = Runtime::new(machine);
//! let spec = sgx_edl::parse(
//!     "enclave { trusted { public void ecall_tick(); }; };",
//! )?;
//! let enclave = runtime.create_enclave(&spec, &EnclaveConfig::default())?;
//! enclave.register_ecall("ecall_tick", |ctx, _| {
//!     ctx.compute(Nanos::from_micros(2))?;
//!     Ok(())
//! })?;
//! let table = Arc::new(OcallTableBuilder::new(enclave.spec()).build()?);
//!
//! // Attach sgx-perf (the LD_PRELOAD step) and run the workload.
//! let logger = Logger::attach(&runtime, LoggerConfig::default());
//! let tcx = ThreadCtx::main();
//! for _ in 0..100 {
//!     runtime.ecall(&tcx, enclave.id(), "ecall_tick", &table, &mut CallData::default())?;
//! }
//!
//! // Analyse the trace.
//! let trace = logger.finish();
//! let analyzer = Analyzer::new(&trace, HwProfile::Unpatched.cost_model());
//! let report = analyzer.analyze();
//! assert_eq!(report.call_stats.len(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod analysis;
pub mod events;
pub mod export;
pub mod json;
pub mod logger;
pub mod trace;
pub mod wse;

pub use analysis::detect::{Detection, Priority, Problem, Recommendation};
pub use analysis::fleet::{FleetReport, FleetTotals};
pub use analysis::races::{RaceFinding, RaceKind, RaceReport};
pub use analysis::report::Report;
pub use analysis::stats::CallStats;
pub use analysis::{Analyzer, Weights};
pub use events::{AexMode, CallKind, CallRef, FleetRow};
pub use logger::{Logger, LoggerConfig};
pub use trace::TraceDb;
pub use wse::WorkingSetEstimator;
