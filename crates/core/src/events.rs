//! Trace event schema — the rows sgx-perf serialises to its event database.

use eventdb::{DbError, Decoder, Encoder, Record};

/// Whether a call is an ecall or an ocall.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CallKind {
    /// A call into the enclave.
    Ecall,
    /// A call out of the enclave.
    Ocall,
}

impl std::fmt::Display for CallKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CallKind::Ecall => "ecall",
            CallKind::Ocall => "ocall",
        })
    }
}

/// Identifies one call symbol of one enclave — the analyzer's unit of
/// aggregation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CallRef {
    /// Enclave id.
    pub enclave: u32,
    /// Ecall or ocall.
    pub kind: CallKind,
    /// Call index within the interface.
    pub index: u32,
}

impl std::fmt::Display for CallRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "enclave{}/{}#{}", self.enclave, self.kind, self.index)
    }
}

/// How the logger observes asynchronous enclave exits (§4.1.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AexMode {
    /// Leave the AEP unpatched: no AEX observation.
    Off,
    /// Count AEXs per ecall (cheaper: ≈1,076 ns per AEX).
    #[default]
    Count,
    /// Record each AEX with its timestamp (≈1,118 ns per AEX).
    Trace,
}

/// One completed ecall.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EcallRow {
    /// Issuing thread token.
    pub thread: u64,
    /// Enclave id.
    pub enclave: u32,
    /// Ecall index within the enclave interface.
    pub call_index: u32,
    /// Timestamp before `sgx_ecall` was forwarded (includes transitions).
    pub start_ns: u64,
    /// Timestamp after `sgx_ecall` returned.
    pub end_ns: u64,
    /// Row id of the ocall this (nested) ecall was issued from, if any —
    /// the *direct parent* (§4.3.2).
    pub parent_ocall: Option<u64>,
    /// AEXs observed during this ecall (when counting/tracing is enabled).
    pub aex_count: u64,
    /// Whether the call returned an error (still traced).
    pub failed: bool,
}

impl Record for EcallRow {
    const TAG: &'static str = "ecalls";
    fn encode(&self, out: &mut Encoder) {
        out.u64(self.thread);
        out.u32(self.enclave);
        out.u32(self.call_index);
        out.u64(self.start_ns);
        out.u64(self.end_ns);
        out.option(&self.parent_ocall, |e, v| e.u64(*v));
        out.u64(self.aex_count);
        out.bool(self.failed);
    }
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DbError> {
        Ok(EcallRow {
            thread: r.u64()?,
            enclave: r.u32()?,
            call_index: r.u32()?,
            start_ns: r.u64()?,
            end_ns: r.u64()?,
            parent_ocall: r.option(|r| r.u64())?,
            aex_count: r.u64()?,
            failed: r.bool()?,
        })
    }
}

/// One completed ocall. Timestamps are taken in the logger's generated
/// call stub, i.e. *outside* the enclave, so — unlike ecalls — the duration
/// excludes the transition time (§4.1.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OcallRow {
    /// Issuing thread token.
    pub thread: u64,
    /// Enclave id.
    pub enclave: u32,
    /// Ocall index within the (effective) enclave interface.
    pub call_index: u32,
    /// Timestamp when the stub was entered.
    pub start_ns: u64,
    /// Timestamp when the real ocall function returned.
    pub end_ns: u64,
    /// Row id of the ecall this ocall was issued from — the *direct
    /// parent*. `None` can only occur if tracing started mid-call.
    pub parent_ecall: Option<u64>,
    /// Whether the call returned an error (still traced).
    pub failed: bool,
}

impl Record for OcallRow {
    const TAG: &'static str = "ocalls";
    fn encode(&self, out: &mut Encoder) {
        out.u64(self.thread);
        out.u32(self.enclave);
        out.u32(self.call_index);
        out.u64(self.start_ns);
        out.u64(self.end_ns);
        out.option(&self.parent_ecall, |e, v| e.u64(*v));
        out.bool(self.failed);
    }
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DbError> {
        Ok(OcallRow {
            thread: r.u64()?,
            enclave: r.u32()?,
            call_index: r.u32()?,
            start_ns: r.u64()?,
            end_ns: r.u64()?,
            parent_ecall: r.option(|r| r.u64())?,
            failed: r.bool()?,
        })
    }
}

/// Why an AEX happened, when observable. On SGX v1 the reason cannot be
/// inferred (§4.1.4); on SGX v2 debug enclaves the logger reads the
/// recorded exit type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AexCauseCode {
    /// Timer or device interrupt.
    Interrupt,
    /// EPC page fault.
    PageFault,
    /// MMU access fault (e.g. stripped permissions).
    AccessFault,
}

impl AexCauseCode {
    fn encode(self) -> u8 {
        match self {
            AexCauseCode::Interrupt => 0,
            AexCauseCode::PageFault => 1,
            AexCauseCode::AccessFault => 2,
        }
    }

    fn decode(v: u8) -> Result<AexCauseCode, DbError> {
        match v {
            0 => Ok(AexCauseCode::Interrupt),
            1 => Ok(AexCauseCode::PageFault),
            2 => Ok(AexCauseCode::AccessFault),
            other => Err(DbError::Corrupt(format!("bad AexCauseCode {other}"))),
        }
    }
}

/// One traced AEX (only in [`AexMode::Trace`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AexRow {
    /// Thread that was interrupted.
    pub thread: u64,
    /// Enclave that was exited.
    pub enclave: u32,
    /// Time of the exit.
    pub time_ns: u64,
    /// Row id of the ecall in progress, if the logger could attribute one.
    pub during_ecall: Option<u64>,
    /// Exit cause — `Some` only on SGX v2 debug enclaves (§4.1.4).
    pub cause: Option<AexCauseCode>,
}

impl Record for AexRow {
    const TAG: &'static str = "aex";
    fn encode(&self, out: &mut Encoder) {
        out.u64(self.thread);
        out.u32(self.enclave);
        out.u64(self.time_ns);
        out.option(&self.during_ecall, |e, v| e.u64(*v));
        out.option(&self.cause, |e, v| e.u8(v.encode()));
    }
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DbError> {
        Ok(AexRow {
            thread: r.u64()?,
            enclave: r.u32()?,
            time_ns: r.u64()?,
            during_ecall: r.option(|r| r.u64())?,
            cause: r.option(|r| AexCauseCode::decode(r.u8()?))?,
        })
    }
}

/// One EPC paging event captured from the driver hooks (§4.1.5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PagingRow {
    /// Enclave whose page moved.
    pub enclave: u32,
    /// `true` = page-out (eviction), `false` = page-in.
    pub out: bool,
    /// Virtual address of the page.
    pub vaddr: u64,
    /// Time of the operation.
    pub time_ns: u64,
}

impl Record for PagingRow {
    const TAG: &'static str = "paging";
    fn encode(&self, out: &mut Encoder) {
        out.u32(self.enclave);
        out.bool(self.out);
        out.u64(self.vaddr);
        out.u64(self.time_ns);
    }
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DbError> {
        Ok(PagingRow {
            enclave: r.u32()?,
            out: r.bool()?,
            vaddr: r.u64()?,
            time_ns: r.u64()?,
        })
    }
}

/// Classification of a synchronisation ocall event (§4.1.3): the four SDK
/// sync ocalls reduce to sleep and wake-up events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyncRow {
    /// Thread that issued the sync ocall.
    pub thread: u64,
    /// Time the event was recorded.
    pub time_ns: u64,
    /// `true` = sleep, `false` = wake-up.
    pub sleep: bool,
    /// For wake-ups: the thread being woken (dependency edge waker→sleeper).
    pub target_thread: Option<u64>,
    /// Row id of the underlying ocall.
    pub ocall_row: u64,
}

impl Record for SyncRow {
    const TAG: &'static str = "sync";
    fn encode(&self, out: &mut Encoder) {
        out.u64(self.thread);
        out.u64(self.time_ns);
        out.bool(self.sleep);
        out.option(&self.target_thread, |e, v| e.u64(*v));
        out.u64(self.ocall_row);
    }
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DbError> {
        Ok(SyncRow {
            thread: r.u64()?,
            time_ns: r.u64()?,
            sleep: r.bool()?,
            target_thread: r.option(|r| r.u64())?,
            ocall_row: r.u64()?,
        })
    }
}

/// One switchless-subsystem event (worker dispatch, fallback to the
/// synchronous path, worker idle/busy). Switchless calls bypass `sgx_ecall`
/// and the ocall table entirely, so the interposition shims never see them;
/// the logger records them through the URTS switchless observer instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwitchlessRow {
    /// Thread the event happened on (caller for dispatch/fallback, worker
    /// for idle/busy).
    pub thread: u64,
    /// Enclave id.
    pub enclave: u32,
    /// Event kind, encoded as
    /// [`SwitchlessEventKind::code`](sgx_sdk::SwitchlessEventKind::code).
    pub kind: u8,
    /// The ecall/ocall index, for dispatch and fallback events.
    pub call_index: Option<u32>,
    /// Worker slot within its pool, for worker events.
    pub worker: Option<u32>,
    /// Poll iterations the caller spent waiting (dispatch events).
    pub spins: u64,
    /// Time of the event.
    pub time_ns: u64,
}

impl Record for SwitchlessRow {
    const TAG: &'static str = "switchless";
    fn encode(&self, out: &mut Encoder) {
        out.u64(self.thread);
        out.u32(self.enclave);
        out.u8(self.kind);
        out.option(&self.call_index, |e, v| e.u32(*v));
        out.option(&self.worker, |e, v| e.u32(*v));
        out.u64(self.spins);
        out.u64(self.time_ns);
    }
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DbError> {
        Ok(SwitchlessRow {
            thread: r.u64()?,
            enclave: r.u32()?,
            kind: r.u8()?,
            call_index: r.option(|r| r.u32())?,
            worker: r.option(|r| r.u32())?,
            spins: r.u64()?,
            time_ns: r.u64()?,
        })
    }
}

/// One fault-injection or recovery event (from the chaos harness).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRow {
    /// Thread at the injection site.
    pub thread: u64,
    /// Affected enclave (0 when not tied to one).
    pub enclave: u32,
    /// Fault kind, encoded as
    /// [`FaultKind::code`](sim_core::fault::FaultKind::code).
    pub fault: u8,
    /// Injection/recovery step, encoded as
    /// [`FaultAction::code`](sim_core::fault::FaultAction::code).
    pub action: u8,
    /// Ecall/ocall index at the site, when meaningful.
    pub call_index: Option<u32>,
    /// Kind-specific magnitude (AEX count, pages evicted, delay/backoff
    /// nanoseconds, slowdown factor, attempts).
    pub magnitude: u64,
    /// Time of the event.
    pub time_ns: u64,
}

impl Record for FaultRow {
    const TAG: &'static str = "faults";
    fn encode(&self, out: &mut Encoder) {
        out.u64(self.thread);
        out.u32(self.enclave);
        out.u8(self.fault);
        out.u8(self.action);
        out.option(&self.call_index, |e, v| e.u32(*v));
        out.u64(self.magnitude);
        out.u64(self.time_ns);
    }
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DbError> {
        Ok(FaultRow {
            thread: r.u64()?,
            enclave: r.u32()?,
            fault: r.u8()?,
            action: r.u8()?,
            call_index: r.option(|r| r.u32())?,
            magnitude: r.u64()?,
            time_ns: r.u64()?,
        })
    }
}

/// One enclave-lifecycle event: a loss (`SGX_ERROR_ENCLAVE_LOST`), or one
/// step of a supervisor recovery (rebuild, warm-up replay, retry, overall
/// recovery, circuit-breaker give-up).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LifecycleRow {
    /// Affected enclave. For rebuild/replay/retry rows this is the *new*
    /// enclave id; for lost/gave-up rows the one that died.
    pub enclave: u32,
    /// Stage, encoded as
    /// [`LifecycleStage::code`](sim_core::LifecycleStage::code).
    pub stage: u8,
    /// Thread driving the recovery.
    pub thread: u64,
    /// Restart attempt number (0 for the loss itself).
    pub attempt: u32,
    /// Stage-specific cost in virtual nanoseconds: rebuild/replay duration,
    /// retry backoff, or — for recovered rows — the full loss-to-completion
    /// MTTR.
    pub magnitude: u64,
    /// Time of the event.
    pub time_ns: u64,
}

impl Record for LifecycleRow {
    const TAG: &'static str = "lifecycle";
    fn encode(&self, out: &mut Encoder) {
        out.u32(self.enclave);
        out.u8(self.stage);
        out.u64(self.thread);
        out.u32(self.attempt);
        out.u64(self.magnitude);
        out.u64(self.time_ns);
    }
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DbError> {
        Ok(LifecycleRow {
            enclave: r.u32()?,
            stage: r.u8()?,
            thread: r.u64()?,
            attempt: r.u32()?,
            magnitude: r.u64()?,
            time_ns: r.u64()?,
        })
    }
}

/// One synchronisation event (lock/condvar/thread/ring/shared-cell), the
/// raw material for the `sgxperf races` analyses. Codes mirror
/// [`SyncOp::code`](sim_core::SyncOp::code).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyncEvRow {
    /// Acting logical thread (`u64::MAX` for the external driver).
    pub thread: u64,
    /// Operation code ([`SyncOp::code`](sim_core::SyncOp::code)).
    pub op: u8,
    /// Synchronisation object id (lock, condvar, ring, cell), if any.
    pub object: Option<u64>,
    /// Other thread involved (woken waiter, spawned child, caller), if any.
    pub target: Option<u64>,
    /// Operation-specific payload (lock path, mutex id, ring slot).
    pub aux: u64,
    /// Human name of the object (shared cells, named locks); empty
    /// otherwise.
    pub label: String,
    /// Time of the event.
    pub time_ns: u64,
}

impl Record for SyncEvRow {
    const TAG: &'static str = "syncev";
    fn encode(&self, out: &mut Encoder) {
        out.u64(self.thread);
        out.u8(self.op);
        out.option(&self.object, |e, v| e.u64(*v));
        out.option(&self.target, |e, v| e.u64(*v));
        out.u64(self.aux);
        out.str(&self.label);
        out.u64(self.time_ns);
    }
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DbError> {
        Ok(SyncEvRow {
            thread: r.u64()?,
            op: r.u8()?,
            object: r.option(|r| r.u64())?,
            target: r.option(|r| r.u64())?,
            aux: r.u64()?,
            label: r.str()?,
            time_ns: r.u64()?,
        })
    }
}

/// Per-slot summary of a fleet run. A *slot* is a logical client enclave
/// managed by the fleet manager; its concrete enclave ids change across
/// spin-ups and rebuilds, so the row aggregates by slot. Written only for
/// fleet workloads — single-enclave traces carry no fleet table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetRow {
    /// Slot index within the fleet (0-based zipf popularity rank order is
    /// workload-defined, not implied).
    pub slot: u32,
    /// Enclave creations for this slot (cold starts after pool retirement).
    pub spin_ups: u32,
    /// Supervisor rebuilds after enclave losses.
    pub restarts: u32,
    /// Requests routed to this slot.
    pub requests: u64,
    /// Requests completed successfully.
    pub completed: u64,
    /// Requests shed by the fleet circuit breaker.
    pub shed: u64,
    /// Requests that failed terminally (e.g. recovery exhausted).
    pub failed: u64,
    /// Median request latency in virtual nanoseconds (arrival → completion).
    pub p50_ns: u64,
    /// 99th-percentile request latency in virtual nanoseconds.
    pub p99_ns: u64,
    /// EPC pages paged in for this slot's enclaves.
    pub page_ins: u64,
    /// EPC pages of this slot's enclaves evicted by EPC pressure.
    pub page_outs: u64,
}

impl Record for FleetRow {
    const TAG: &'static str = "fleet";
    fn encode(&self, out: &mut Encoder) {
        out.u32(self.slot);
        out.u32(self.spin_ups);
        out.u32(self.restarts);
        out.u64(self.requests);
        out.u64(self.completed);
        out.u64(self.shed);
        out.u64(self.failed);
        out.u64(self.p50_ns);
        out.u64(self.p99_ns);
        out.u64(self.page_ins);
        out.u64(self.page_outs);
    }
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DbError> {
        Ok(FleetRow {
            slot: r.u32()?,
            spin_ups: r.u32()?,
            restarts: r.u32()?,
            requests: r.u64()?,
            completed: r.u64()?,
            shed: r.u64()?,
            failed: r.u64()?,
            p50_ns: r.u64()?,
            p99_ns: r.u64()?,
            page_ins: r.u64()?,
            page_outs: r.u64()?,
        })
    }
}

/// One observed enclave (from driver lifecycle events).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnclaveRow {
    /// Enclave id.
    pub enclave: u32,
    /// Total pages (power of two).
    pub total_pages: u64,
    /// Creation time.
    pub created_ns: u64,
}

impl Record for EnclaveRow {
    const TAG: &'static str = "enclaves";
    fn encode(&self, out: &mut Encoder) {
        out.u32(self.enclave);
        out.u64(self.total_pages);
        out.u64(self.created_ns);
    }
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DbError> {
        Ok(EnclaveRow {
            enclave: r.u32()?,
            total_pages: r.u64()?,
            created_ns: r.u64()?,
        })
    }
}

/// One interface symbol (captured from the enclave's registered interface —
/// the analogue of reading names from debug symbols / the EDL).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymbolRow {
    /// Enclave id.
    pub enclave: u32,
    /// Ecall or ocall.
    pub kind_is_ecall: bool,
    /// Call index.
    pub index: u32,
    /// Function name.
    pub name: String,
    /// Ecalls: declared `public`. Ocalls: always `false`.
    pub public: bool,
    /// Ocalls: the declared `allow()` ecall indexes.
    pub allowed_ecalls: Vec<u32>,
    /// Names of parameters annotated `user_check`.
    pub user_check_params: Vec<String>,
}

impl Record for SymbolRow {
    const TAG: &'static str = "symbols";
    fn encode(&self, out: &mut Encoder) {
        out.u32(self.enclave);
        out.bool(self.kind_is_ecall);
        out.u32(self.index);
        out.str(&self.name);
        out.bool(self.public);
        out.usize(self.allowed_ecalls.len());
        for a in &self.allowed_ecalls {
            out.u32(*a);
        }
        out.usize(self.user_check_params.len());
        for p in &self.user_check_params {
            out.str(p);
        }
    }
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DbError> {
        let enclave = r.u32()?;
        let kind_is_ecall = r.bool()?;
        let index = r.u32()?;
        let name = r.str()?;
        let public = r.bool()?;
        let n = r.usize()?;
        let mut allowed_ecalls = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            allowed_ecalls.push(r.u32()?);
        }
        let m = r.usize()?;
        let mut user_check_params = Vec::with_capacity(m.min(1024));
        for _ in 0..m {
            user_check_params.push(r.str()?);
        }
        Ok(SymbolRow {
            enclave,
            kind_is_ecall,
            index,
            name,
            public,
            allowed_ecalls,
            user_check_params,
        })
    }
}

impl SymbolRow {
    /// The [`CallRef`] this symbol describes.
    pub fn call_ref(&self) -> CallRef {
        CallRef {
            enclave: self.enclave,
            kind: if self.kind_is_ecall {
                CallKind::Ecall
            } else {
                CallKind::Ocall
            },
            index: self.index,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eventdb::Table;

    fn roundtrip<R: Record + Clone + PartialEq + std::fmt::Debug>(rows: Vec<R>) {
        let table: Table<R> = rows.clone().into_iter().collect();
        let mut enc = Encoder::new();
        table.encode(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let back = Table::<R>::decode(&mut dec).unwrap();
        let got: Vec<R> = back.iter().cloned().collect();
        assert_eq!(got, rows);
    }

    #[test]
    fn ecall_row_roundtrip() {
        roundtrip(vec![
            EcallRow {
                thread: 1,
                enclave: 2,
                call_index: 3,
                start_ns: 4,
                end_ns: 5,
                parent_ocall: Some(6),
                aex_count: 7,
                failed: false,
            },
            EcallRow {
                thread: 0,
                enclave: 0,
                call_index: 0,
                start_ns: 0,
                end_ns: 0,
                parent_ocall: None,
                aex_count: 0,
                failed: true,
            },
        ]);
    }

    #[test]
    fn ocall_row_roundtrip() {
        roundtrip(vec![OcallRow {
            thread: 9,
            enclave: 1,
            call_index: 2,
            start_ns: 10,
            end_ns: 20,
            parent_ecall: Some(0),
            failed: false,
        }]);
    }

    #[test]
    fn aex_paging_sync_roundtrip() {
        roundtrip(vec![
            AexRow {
                thread: 1,
                enclave: 1,
                time_ns: 99,
                during_ecall: None,
                cause: None,
            },
            AexRow {
                thread: 2,
                enclave: 1,
                time_ns: 100,
                during_ecall: Some(4),
                cause: Some(AexCauseCode::PageFault),
            },
        ]);
        roundtrip(vec![PagingRow {
            enclave: 1,
            out: true,
            vaddr: 0x2000,
            time_ns: 5,
        }]);
        roundtrip(vec![SyncRow {
            thread: 2,
            time_ns: 7,
            sleep: false,
            target_thread: Some(3),
            ocall_row: 11,
        }]);
    }

    #[test]
    fn switchless_row_roundtrip() {
        roundtrip(vec![
            SwitchlessRow {
                thread: 1,
                enclave: 1,
                kind: 1, // OcallDispatched
                call_index: Some(3),
                worker: None,
                spins: 12,
                time_ns: 400,
            },
            SwitchlessRow {
                thread: 0,
                enclave: 1,
                kind: 4, // WorkerIdle
                call_index: None,
                worker: Some(0),
                spins: 0,
                time_ns: 500,
            },
        ]);
    }

    #[test]
    fn fault_row_roundtrip() {
        roundtrip(vec![
            FaultRow {
                thread: 1,
                enclave: 1,
                fault: 0, // aex-storm
                action: 0,
                call_index: None,
                magnitude: 6,
                time_ns: 1_000,
            },
            FaultRow {
                thread: 2,
                enclave: 1,
                fault: 4, // ocall-timeout
                action: 2,
                call_index: Some(1),
                magnitude: 2,
                time_ns: 9_999,
            },
        ]);
    }

    #[test]
    fn lifecycle_row_roundtrip() {
        roundtrip(vec![
            LifecycleRow {
                enclave: 1,
                stage: 0, // lost
                thread: 3,
                attempt: 0,
                magnitude: 0,
                time_ns: 500,
            },
            LifecycleRow {
                enclave: 2,
                stage: 4, // recovered
                thread: 3,
                attempt: 1,
                magnitude: 12_345,
                time_ns: 13_000,
            },
        ]);
    }

    #[test]
    fn syncev_row_roundtrip() {
        roundtrip(vec![
            SyncEvRow {
                thread: u64::MAX,
                op: 4, // thread-spawn
                object: None,
                target: Some(0),
                aux: 0,
                label: "client".into(),
                time_ns: 100,
            },
            SyncEvRow {
                thread: 0,
                op: 0, // lock-acquire
                object: Some(3),
                target: None,
                aux: (2 << 8) | 2, // slept twice
                label: "map_mutex".into(),
                time_ns: 2_000,
            },
            SyncEvRow {
                thread: 1,
                op: 9, // shared-write
                object: Some(5),
                target: None,
                aux: 0,
                label: "counter".into(),
                time_ns: 3_000,
            },
        ]);
    }

    #[test]
    fn fleet_row_roundtrip() {
        roundtrip(vec![
            FleetRow {
                slot: 0,
                spin_ups: 3,
                restarts: 1,
                requests: 12_000,
                completed: 11_990,
                shed: 8,
                failed: 2,
                p50_ns: 42_000,
                p99_ns: 910_000,
                page_ins: 512,
                page_outs: 480,
            },
            FleetRow {
                slot: 999,
                spin_ups: 1,
                restarts: 0,
                requests: 1,
                completed: 1,
                shed: 0,
                failed: 0,
                p50_ns: 7_000,
                p99_ns: 7_000,
                page_ins: 16,
                page_outs: 0,
            },
        ]);
    }

    #[test]
    fn symbol_row_roundtrip() {
        roundtrip(vec![SymbolRow {
            enclave: 1,
            kind_is_ecall: false,
            index: 4,
            name: "ocall_read".into(),
            public: false,
            allowed_ecalls: vec![0, 2],
            user_check_params: vec!["p".into()],
        }]);
    }

    #[test]
    fn call_ref_display() {
        let r = CallRef {
            enclave: 1,
            kind: CallKind::Ocall,
            index: 3,
        };
        assert_eq!(r.to_string(), "enclave1/ocall#3");
    }
}
