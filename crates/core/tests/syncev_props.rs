//! Property tests for the sync-event table: arbitrary rows must survive
//! the binary codec, the store container, and crash-truncated segmented
//! recordings.

use proptest::prelude::*;

use eventdb::{Decoder, Encoder, Record, Store, Table};
use sgx_perf::events::SyncEvRow;
use sgx_perf::TraceDb;

fn arb_syncev_row() -> impl Strategy<Value = SyncEvRow> {
    (
        any::<u64>(),
        0u8..10,
        proptest::option::of(any::<u64>()),
        proptest::option::of(any::<u64>()),
        any::<u64>(),
        "[a-z_]{0,24}",
        any::<u64>(),
    )
        .prop_map(
            |(thread, op, object, target, aux, label, time_ns)| SyncEvRow {
                thread,
                op,
                object,
                target,
                aux,
                label,
                time_ns,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Codec-level roundtrip: every field (including the optional ids and
    /// free-form label) survives encode/decode exactly.
    #[test]
    fn syncev_rows_roundtrip_through_the_codec(
        rows in proptest::collection::vec(arb_syncev_row(), 0..64),
    ) {
        let table: Table<SyncEvRow> = rows.clone().into_iter().collect();
        let mut enc = Encoder::new();
        table.encode(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let back = Table::<SyncEvRow>::decode(&mut dec).unwrap();
        prop_assert!(dec.is_exhausted());
        let got: Vec<SyncEvRow> = back.iter().cloned().collect();
        prop_assert_eq!(got, rows);
    }

    /// Container-level roundtrip through a full trace, plus the
    /// write-only-when-non-empty contract.
    #[test]
    fn syncev_table_roundtrips_through_the_trace_container(
        rows in proptest::collection::vec(arb_syncev_row(), 0..48),
    ) {
        let mut trace = TraceDb::default();
        for r in &rows {
            trace.syncev.insert(r.clone());
        }
        let bytes = trace.to_bytes();
        let back = TraceDb::from_bytes(&bytes).unwrap();
        let got: Vec<SyncEvRow> = back.syncev.iter().cloned().collect();
        prop_assert_eq!(got, rows.clone());
        // The section exists physically iff there are rows.
        let store = Store::from_bytes(&bytes).unwrap();
        let has_section = store.tags().contains(&SyncEvRow::TAG);
        prop_assert_eq!(has_section, !rows.is_empty());
    }

    /// Crash consistency: truncating a segmented recording at any byte
    /// must salvage a loadable prefix whose sync rows are a prefix of the
    /// written snapshots (never corrupt, never trailing garbage).
    #[test]
    fn truncated_segmented_recordings_salvage_a_syncev_prefix(
        rows in proptest::collection::vec(arb_syncev_row(), 1..24),
        cut_fraction in 0.0f64..1.0,
    ) {
        let dir = std::env::temp_dir().join("sgx-perf-syncev-props");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("salvage-{}.evdb", rows.len()));
        // Write snapshots of growing prefixes, as the live logger does.
        let mut writer = Store::open_segmented(&path).unwrap();
        let mut table: Table<SyncEvRow> = Table::default();
        for r in &rows {
            table.insert(r.clone());
            writer.append(&table).unwrap();
        }
        drop(writer);
        let full = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        let cut = ((full.len() as f64) * cut_fraction) as usize;
        let (store, dropped) = Store::salvage_segmented(&full[..cut]).unwrap();
        let salvaged: Vec<SyncEvRow> = match store.get::<SyncEvRow>() {
            Ok(t) => t.iter().cloned().collect(),
            Err(eventdb::DbError::MissingTable(_)) => Vec::new(),
            Err(e) => return Err(TestCaseError::fail(format!("salvage: {e}"))),
        };
        // Whatever survived is an exact prefix of what was recorded.
        prop_assert!(salvaged.len() <= rows.len());
        prop_assert_eq!(&rows[..salvaged.len()], &salvaged[..]);
        // And a clean (untruncated) file drops nothing and keeps all rows.
        if cut == full.len() {
            prop_assert_eq!(dropped, 0);
            prop_assert_eq!(salvaged.len(), rows.len());
        }
    }
}
