//! End-to-end logger tests against the simulated SDK: the interposition
//! mechanics of §4.1 and the overhead numbers of Table 2.

use std::sync::Arc;

use sgx_perf::{AexMode, Logger, LoggerConfig};
use sgx_sdk::{CallData, OcallTableBuilder, Runtime, SgxThreadMutex, ThreadCtx};
use sgx_sim::{EnclaveConfig, Machine};
use sim_core::{Clock, HwProfile, Nanos};
use sim_threads::Simulation;

struct App {
    rt: Arc<Runtime>,
    enclave: Arc<sgx_sdk::Enclave>,
    table: Arc<sgx_sdk::OcallTable>,
}

/// Builds the standard test app: `ecall_work` computing for
/// `data.scalar` ns, `ecall_io` doing one ocall, `ocall_io` computing
/// 1 us outside.
fn app(profile: HwProfile) -> App {
    let machine = Arc::new(Machine::new(Clock::new(), profile));
    let rt = Runtime::new(machine);
    let spec = sgx_edl::parse(
        "enclave {
            trusted {
                public void ecall_work(uint64_t ns);
                public void ecall_io();
            };
            untrusted { void ocall_io(); };
        };",
    )
    .unwrap();
    let enclave = rt
        .create_enclave(
            &spec,
            &EnclaveConfig {
                tcs_count: 4,
                ..EnclaveConfig::default()
            },
        )
        .unwrap();
    enclave
        .register_ecall("ecall_work", |ctx, data| {
            ctx.compute(Nanos::from_nanos(data.scalar))?;
            Ok(())
        })
        .unwrap();
    enclave
        .register_ecall("ecall_io", |ctx, _| {
            ctx.ocall("ocall_io", &mut CallData::default())
        })
        .unwrap();
    let mut builder = OcallTableBuilder::new(enclave.spec());
    builder
        .register("ocall_io", |host, _| {
            host.compute(Nanos::from_micros(1));
            Ok(())
        })
        .unwrap();
    let table = Arc::new(builder.build().unwrap());
    App { rt, enclave, table }
}

#[test]
fn logged_empty_ecall_costs_5572ns() {
    // Table 2 (1): 4,205 ns native + ~1,366 ns logging = 5,571 ns.
    let app = app(HwProfile::Unpatched);
    let logger = Logger::attach(&app.rt, LoggerConfig::default());
    let tcx = ThreadCtx::main();
    let before = app.rt.machine().clock().now();
    app.rt
        .ecall(
            &tcx,
            app.enclave.id(),
            "ecall_work",
            &app.table,
            &mut CallData::new(0),
        )
        .unwrap();
    let elapsed = app.rt.machine().clock().now() - before;
    assert_eq!(elapsed, Nanos::from_nanos(5_571)); // paper: 5,572 (rounding)
    let trace = logger.finish();
    assert_eq!(trace.ecalls.len(), 1);
}

#[test]
fn logged_ecall_plus_ocall_costs_10699ns() {
    // Table 2 (2): 8,013 ns native + 1,366 (ecall) + 1,320 (ocall).
    let machine = Arc::new(Machine::new(Clock::new(), HwProfile::Unpatched));
    let rt = Runtime::new(machine);
    let spec = sgx_edl::parse(
        "enclave { trusted { public void ecall_io(); };
                   untrusted { void ocall_empty(); }; };",
    )
    .unwrap();
    let enclave = rt.create_enclave(&spec, &EnclaveConfig::default()).unwrap();
    enclave
        .register_ecall("ecall_io", |ctx, _| {
            ctx.ocall("ocall_empty", &mut CallData::default())
        })
        .unwrap();
    let mut builder = OcallTableBuilder::new(enclave.spec());
    builder.register("ocall_empty", |_, _| Ok(())).unwrap();
    let table = Arc::new(builder.build().unwrap());
    let logger = Logger::attach(&rt, LoggerConfig::default());
    let before = rt.machine().clock().now();
    rt.ecall(
        &ThreadCtx::main(),
        enclave.id(),
        "ecall_io",
        &table,
        &mut CallData::default(),
    )
    .unwrap();
    let elapsed = rt.machine().clock().now() - before;
    assert_eq!(elapsed, Nanos::from_nanos(10_699));
    let trace = logger.finish();
    assert_eq!(trace.ecalls.len(), 1);
    assert_eq!(trace.ocalls.len(), 1);
}

#[test]
fn ocall_duration_excludes_transition_ecall_includes_it() {
    // §4.1.2: ocall timestamps are recorded outside the enclave, so the
    // same 1 us of work appears shorter for the ocall than the ecall.
    let app = app(HwProfile::Unpatched);
    let logger = Logger::attach(&app.rt, LoggerConfig::default());
    let tcx = ThreadCtx::main();
    // ecall doing 1 us of in-enclave work.
    app.rt
        .ecall(
            &tcx,
            app.enclave.id(),
            "ecall_work",
            &app.table,
            &mut CallData::new(1_000),
        )
        .unwrap();
    // ecall performing the 1 us ocall.
    app.rt
        .ecall(
            &tcx,
            app.enclave.id(),
            "ecall_io",
            &app.table,
            &mut CallData::default(),
        )
        .unwrap();
    let trace = logger.finish();
    let work = trace.ecalls.iter().next().unwrap();
    let io_ocall = trace.ocalls.iter().next().unwrap();
    let work_duration = work.end_ns - work.start_ns;
    let ocall_duration = io_ocall.end_ns - io_ocall.start_ns;
    // Both did 1 us of work; the ecall's measured duration carries the
    // 4,205 ns of transition+dispatch on top, the ocall's doesn't.
    assert_eq!(ocall_duration, 1_000);
    assert_eq!(work_duration, 1_000 + 4_205);
}

#[test]
fn direct_parents_are_recorded() {
    let app = app(HwProfile::Unpatched);
    let logger = Logger::attach(&app.rt, LoggerConfig::default());
    let tcx = ThreadCtx::main();
    app.rt
        .ecall(
            &tcx,
            app.enclave.id(),
            "ecall_io",
            &app.table,
            &mut CallData::default(),
        )
        .unwrap();
    let trace = logger.finish();
    let ocall = trace.ocalls.iter().next().unwrap();
    assert_eq!(ocall.parent_ecall, Some(0));
}

#[test]
fn aex_counting_and_tracing_match_table2() {
    // Table 2 (3): a 45,377 us ecall sees ≈11.5 AEXs; counting costs
    // ≈1,076 ns per AEX, tracing ≈1,118 ns.
    for (mode, per_aex) in [(AexMode::Count, 1_076u64), (AexMode::Trace, 1_118u64)] {
        let app = app(HwProfile::Unpatched);
        let logger = Logger::attach(&app.rt, LoggerConfig::with_aex(mode));
        let tcx = ThreadCtx::main();
        let before = app.rt.machine().clock().now();
        app.rt
            .ecall(
                &tcx,
                app.enclave.id(),
                "ecall_work",
                &app.table,
                &mut CallData::new(45_377_000),
            )
            .unwrap();
        let elapsed = (app.rt.machine().clock().now() - before).as_nanos();
        let trace = logger.finish();
        let row = trace.ecalls.iter().next().unwrap();
        assert!((11..=12).contains(&row.aex_count), "{:?}", row.aex_count);
        // The AEX observation overhead is part of the elapsed time.
        let base = 45_377_000 + 5_571; // work + logged empty-ecall cost
        let aex_hw = row.aex_count * app.rt.machine().cost_model().aex_roundtrip().as_nanos();
        assert_eq!(elapsed, base + aex_hw + row.aex_count * per_aex);
        match mode {
            AexMode::Trace => assert_eq!(trace.aex.len() as u64, row.aex_count),
            _ => assert_eq!(trace.aex.len(), 0),
        }
    }
}

#[test]
fn paging_events_are_traced() {
    let app = app(HwProfile::Unpatched);
    let logger = Logger::attach(&app.rt, LoggerConfig::default());
    // Evict everything, then run an ecall: entry pages fault back in.
    app.rt.machine().evict_all(app.enclave.id()).unwrap();
    let tcx = ThreadCtx::main();
    app.rt
        .ecall(
            &tcx,
            app.enclave.id(),
            "ecall_work",
            &app.table,
            &mut CallData::new(0),
        )
        .unwrap();
    let trace = logger.finish();
    let ins = trace.paging.iter().filter(|p| !p.out).count();
    let outs = trace.paging.iter().filter(|p| p.out).count();
    assert!(ins >= 2, "expected entry-page page-ins, got {ins}");
    // The forced eviction itself was traced as page-outs (one per
    // resident page), timestamped before the page-ins.
    let info = app.rt.machine().enclave_info(app.enclave.id()).unwrap();
    assert_eq!(outs, info.total_pages);
    let first_in = trace.paging.iter().find(|p| !p.out).unwrap();
    assert!(trace
        .paging
        .iter()
        .filter(|p| p.out)
        .all(|p| p.time_ns <= first_in.time_ns));
}

#[test]
fn sync_ocalls_are_classified() {
    let machine = Arc::new(Machine::new(Clock::new(), HwProfile::Unpatched));
    let rt = Runtime::new(machine);
    let spec = sgx_edl::parse("enclave { trusted { public void ecall_crit(); }; };").unwrap();
    let enclave = rt
        .create_enclave(
            &spec,
            &EnclaveConfig {
                tcs_count: 2,
                ..EnclaveConfig::default()
            },
        )
        .unwrap();
    let mutex = Arc::new(SgxThreadMutex::new());
    let m2 = Arc::clone(&mutex);
    enclave
        .register_ecall("ecall_crit", move |ctx, _| {
            m2.lock(ctx)?;
            if let Some(sim) = ctx.thread().sim {
                sim.yield_now();
            }
            ctx.compute(Nanos::from_micros(1))?;
            m2.unlock(ctx)?;
            Ok(())
        })
        .unwrap();
    let table = Arc::new(OcallTableBuilder::new(enclave.spec()).build().unwrap());
    let logger = Logger::attach(&rt, LoggerConfig::default());

    let sim = Simulation::new(rt.machine().clock().clone());
    for _ in 0..2 {
        let rt = Arc::clone(&rt);
        let table = Arc::clone(&table);
        let eid = enclave.id();
        sim.spawn("worker", move |ctx| {
            let tcx = ThreadCtx::from_sim(ctx);
            rt.ecall(&tcx, eid, "ecall_crit", &table, &mut CallData::default())
                .unwrap();
        });
    }
    sim.run();
    let trace = logger.finish();
    let sleeps = trace.sync.iter().filter(|s| s.sleep).count();
    let wakes = trace.sync.iter().filter(|s| !s.sleep).count();
    assert_eq!(sleeps, 1, "{:?}", trace.sync);
    assert_eq!(wakes, 1);
    // The dependency edge: waker thread 0 woke sleeper thread 1.
    let wake = trace.sync.iter().find(|s| !s.sleep).unwrap();
    assert_eq!(wake.target_thread, Some(1));
    assert_eq!(wake.thread, 0);
}

#[test]
fn symbols_are_captured_once_per_enclave() {
    let app = app(HwProfile::Unpatched);
    let logger = Logger::attach(&app.rt, LoggerConfig::default());
    let tcx = ThreadCtx::main();
    for _ in 0..3 {
        app.rt
            .ecall(
                &tcx,
                app.enclave.id(),
                "ecall_work",
                &app.table,
                &mut CallData::new(0),
            )
            .unwrap();
    }
    let trace = logger.finish();
    // 2 ecalls + 1 ocall + 4 implicit sync ocalls = 7 symbols, once.
    assert_eq!(trace.symbols.len(), 7);
    assert!(trace
        .symbols
        .iter()
        .any(|s| s.kind_is_ecall && s.name == "ecall_work" && s.public));
}

#[test]
fn disabled_logger_is_pass_through() {
    let app = app(HwProfile::Unpatched);
    let logger = Logger::attach(&app.rt, LoggerConfig::default());
    logger.set_enabled(false);
    let tcx = ThreadCtx::main();
    let before = app.rt.machine().clock().now();
    app.rt
        .ecall(
            &tcx,
            app.enclave.id(),
            "ecall_work",
            &app.table,
            &mut CallData::new(0),
        )
        .unwrap();
    let elapsed = app.rt.machine().clock().now() - before;
    // Native cost, no logging overhead, nothing recorded.
    assert_eq!(elapsed, Nanos::from_nanos(4_205));
    assert_eq!(logger.counts(), (0, 0));
}

#[test]
fn trace_roundtrips_through_file() {
    let app = app(HwProfile::Unpatched);
    let logger = Logger::attach(&app.rt, LoggerConfig::default());
    let tcx = ThreadCtx::main();
    for i in 0..10 {
        app.rt
            .ecall(
                &tcx,
                app.enclave.id(),
                "ecall_work",
                &app.table,
                &mut CallData::new(i * 100),
            )
            .unwrap();
    }
    let trace = logger.finish();
    let dir = std::env::temp_dir().join("sgx-perf-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace.evdb");
    trace.save(&path).unwrap();
    let back = sgx_perf::TraceDb::load(&path).unwrap();
    assert_eq!(back.ecalls.len(), 10);
    assert_eq!(back.symbols.len(), trace.symbols.len());
    std::fs::remove_file(path).unwrap();
}

#[test]
fn stub_table_created_once_per_ocall_table() {
    // §4.1.2: "Call stub and table creation is only needed once per ocall
    // table." Repeated calls must reuse the cached stub table; we verify
    // indirectly: repeated calls all get traced and costs stay constant.
    let app = app(HwProfile::Unpatched);
    let logger = Logger::attach(&app.rt, LoggerConfig::default());
    let tcx = ThreadCtx::main();
    let mut costs = Vec::new();
    for _ in 0..5 {
        let before = app.rt.machine().clock().now();
        app.rt
            .ecall(
                &tcx,
                app.enclave.id(),
                "ecall_io",
                &app.table,
                &mut CallData::default(),
            )
            .unwrap();
        costs.push((app.rt.machine().clock().now() - before).as_nanos());
    }
    assert!(costs.windows(2).all(|w| w[0] == w[1]), "{costs:?}");
    let trace = logger.finish();
    assert_eq!(trace.ocalls.len(), 5);
}
