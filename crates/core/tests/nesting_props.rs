//! Property test: for arbitrary ecall/ocall nesting trees, the logger's
//! parent links and timestamps are always well-formed — every nested
//! call's recorded interval lies inside its direct parent's interval.

use std::sync::Arc;

use proptest::prelude::*;
use sgx_perf::{Logger, LoggerConfig, TraceDb};
use sgx_sdk::{CallData, EcallCtx, HostCtx, OcallTableBuilder, Runtime, SdkResult, ThreadCtx};
use sgx_sim::{EnclaveConfig, Machine};
use sim_core::{Clock, HwProfile, Nanos};

/// A call-tree plan: at each level, how many children to spawn (ocalls
/// from ecalls, nested ecalls from ocalls), decremented per level so the
/// tree terminates.
#[derive(Debug, Clone)]
struct Plan {
    fanouts: Vec<u8>,
}

fn arb_plan() -> impl Strategy<Value = Plan> {
    proptest::collection::vec(0u8..3, 1..5).prop_map(|fanouts| Plan { fanouts })
}

fn run_plan(plan: &Plan) -> TraceDb {
    let machine = Arc::new(Machine::new(Clock::new(), HwProfile::Unpatched));
    let rt = Runtime::new(machine);
    let spec = sgx_edl::parse(
        "enclave { trusted { public void ecall_node(uint64_t depth); };
                   untrusted { void ocall_node(uint64_t depth) allow(ecall_node); }; };",
    )
    .unwrap();
    let enclave = rt.create_enclave(&spec, &EnclaveConfig::default()).unwrap();
    let fanouts = Arc::new(plan.fanouts.clone());

    let f_ecall = Arc::clone(&fanouts);
    enclave
        .register_ecall("ecall_node", move |ctx: &mut EcallCtx<'_>, data| {
            let depth = data.scalar as usize;
            ctx.compute(Nanos::from_nanos(300))?;
            let children = f_ecall.get(depth).copied().unwrap_or(0);
            for _ in 0..children {
                ctx.ocall("ocall_node", &mut CallData::new(depth as u64 + 1))?;
            }
            ctx.compute(Nanos::from_nanos(200))?;
            Ok(())
        })
        .unwrap();

    let f_ocall = Arc::clone(&fanouts);
    let mut builder = OcallTableBuilder::new(enclave.spec());
    builder
        .register(
            "ocall_node",
            move |host: &mut HostCtx<'_>, data| -> SdkResult<()> {
                let depth = data.scalar as usize;
                host.compute(Nanos::from_nanos(250));
                let children = f_ocall.get(depth).copied().unwrap_or(0);
                for _ in 0..children {
                    host.ecall("ecall_node", &mut CallData::new(depth as u64 + 1))?;
                }
                Ok(())
            },
        )
        .unwrap();
    let table = Arc::new(builder.build().unwrap());

    let logger = Logger::attach(&rt, LoggerConfig::default());
    let tcx = ThreadCtx::main();
    // Three top-level roots so indirect parents exist too.
    for _ in 0..3 {
        rt.ecall(
            &tcx,
            enclave.id(),
            "ecall_node",
            &table,
            &mut CallData::new(0),
        )
        .unwrap();
    }
    logger.finish()
}

fn interval_of_ecall(trace: &TraceDb, row: u64) -> (u64, u64) {
    let e = trace.ecalls.get(eventdb::RowId(row as usize)).unwrap();
    (e.start_ns, e.end_ns)
}

fn interval_of_ocall(trace: &TraceDb, row: u64) -> (u64, u64) {
    let o = trace.ocalls.get(eventdb::RowId(row as usize)).unwrap();
    (o.start_ns, o.end_ns)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn nesting_links_are_well_formed(plan in arb_plan()) {
        let trace = run_plan(&plan);

        // Expected node counts: roots spawn fanout[0] ocalls each, which
        // spawn fanout[1] ecalls each, and so on.
        let mut expect_ecalls = 3u64;
        let mut expect_ocalls = 0u64;
        let mut level_count = 3u64;
        for (depth, &f) in plan.fanouts.iter().enumerate() {
            level_count *= f as u64;
            if depth % 2 == 0 {
                expect_ocalls += level_count;
            } else {
                expect_ecalls += level_count;
            }
            if level_count == 0 {
                break;
            }
        }
        prop_assert_eq!(trace.ecalls.len() as u64, expect_ecalls);
        prop_assert_eq!(trace.ocalls.len() as u64, expect_ocalls);

        // Every ocall interval nests strictly inside its parent ecall.
        for o in trace.ocalls.iter() {
            prop_assert!(o.start_ns <= o.end_ns);
            let parent = o.parent_ecall.expect("ocalls always have a parent here");
            let (ps, pe) = interval_of_ecall(&trace, parent);
            prop_assert!(ps <= o.start_ns && o.end_ns <= pe,
                "ocall [{},{}] outside parent [{ps},{pe}]", o.start_ns, o.end_ns);
        }
        // Every nested ecall interval nests inside its parent ocall.
        for e in trace.ecalls.iter() {
            prop_assert!(e.start_ns <= e.end_ns);
            if let Some(parent) = e.parent_ocall {
                let (ps, pe) = interval_of_ocall(&trace, parent);
                prop_assert!(ps <= e.start_ns && e.end_ns <= pe);
            }
        }
        // Exactly three parentless (top-level) ecalls, non-overlapping.
        let mut roots: Vec<(u64, u64)> = trace
            .ecalls
            .iter()
            .filter(|e| e.parent_ocall.is_none())
            .map(|e| (e.start_ns, e.end_ns))
            .collect();
        prop_assert_eq!(roots.len(), 3);
        roots.sort_unstable();
        for w in roots.windows(2) {
            prop_assert!(w[0].1 <= w[1].0, "roots overlap: {roots:?}");
        }
    }
}
