//! End-to-end tests of the simulated SDK call paths.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use sgx_sdk::{
    CallData, EcallDispatcher, OcallTable, OcallTableBuilder, Runtime, SdkError, SgxThreadMutex,
    ThreadCtx,
};
use sgx_sim::{EnclaveConfig, EnclaveId, Machine};
use sim_core::sync::Mutex;
use sim_core::{Clock, HwProfile, Nanos};
use sim_threads::Simulation;

fn runtime() -> Arc<Runtime> {
    let machine = Arc::new(Machine::new(Clock::new(), HwProfile::Unpatched));
    Runtime::new(machine)
}

#[test]
fn empty_ecall_costs_4205ns() {
    // Table 2, experiment (1): a single empty SDK ecall takes 4,205 ns.
    let rt = runtime();
    let spec = sgx_edl::parse("enclave { trusted { public void ecall_empty(); }; };").unwrap();
    let enclave = rt.create_enclave(&spec, &EnclaveConfig::default()).unwrap();
    enclave
        .register_ecall("ecall_empty", |_, _| Ok(()))
        .unwrap();
    let table = Arc::new(OcallTableBuilder::new(enclave.spec()).build().unwrap());
    let tcx = ThreadCtx::main();

    let before = rt.machine().clock().now();
    rt.ecall(
        &tcx,
        enclave.id(),
        "ecall_empty",
        &table,
        &mut CallData::default(),
    )
    .unwrap();
    let elapsed = rt.machine().clock().now() - before;
    assert_eq!(elapsed, Nanos::from_nanos(4_205));
}

#[test]
fn ecall_with_one_ocall_costs_8013ns() {
    // Table 2, experiment (2): ecall + one empty ocall = 8,013 ns.
    let rt = runtime();
    let spec = sgx_edl::parse(
        "enclave { trusted { public void ecall_outer(); };
                   untrusted { void ocall_inner(); }; };",
    )
    .unwrap();
    let enclave = rt.create_enclave(&spec, &EnclaveConfig::default()).unwrap();
    enclave
        .register_ecall("ecall_outer", |ctx, _| {
            ctx.ocall("ocall_inner", &mut CallData::default())
        })
        .unwrap();
    let mut builder = OcallTableBuilder::new(enclave.spec());
    builder.register("ocall_inner", |_, _| Ok(())).unwrap();
    let table = Arc::new(builder.build().unwrap());
    let tcx = ThreadCtx::main();

    let before = rt.machine().clock().now();
    rt.ecall(
        &tcx,
        enclave.id(),
        "ecall_outer",
        &table,
        &mut CallData::default(),
    )
    .unwrap();
    let elapsed = rt.machine().clock().now() - before;
    assert_eq!(elapsed, Nanos::from_nanos(8_013));
}

#[test]
fn transition_costs_scale_with_hw_profile() {
    let mut totals = Vec::new();
    for profile in HwProfile::ALL {
        let machine = Arc::new(Machine::new(Clock::new(), profile));
        let rt = Runtime::new(machine);
        let spec = sgx_edl::parse("enclave { trusted { public void ecall_empty(); }; };").unwrap();
        let enclave = rt.create_enclave(&spec, &EnclaveConfig::default()).unwrap();
        enclave
            .register_ecall("ecall_empty", |_, _| Ok(()))
            .unwrap();
        let table = Arc::new(OcallTableBuilder::new(enclave.spec()).build().unwrap());
        let before = rt.machine().clock().now();
        rt.ecall(
            &ThreadCtx::main(),
            enclave.id(),
            "ecall_empty",
            &table,
            &mut CallData::default(),
        )
        .unwrap();
        totals.push(rt.machine().clock().now() - before);
    }
    assert!(totals[0] < totals[1] && totals[1] < totals[2], "{totals:?}");
}

#[test]
fn marshalling_cost_scales_with_buffer_size() {
    let rt = runtime();
    let spec = sgx_edl::parse(
        "enclave { trusted { public void ecall_buf([in, size=len] char* buf, size_t len); }; };",
    )
    .unwrap();
    let enclave = rt.create_enclave(&spec, &EnclaveConfig::default()).unwrap();
    enclave.register_ecall("ecall_buf", |_, _| Ok(())).unwrap();
    let table = Arc::new(OcallTableBuilder::new(enclave.spec()).build().unwrap());
    let tcx = ThreadCtx::main();

    let t0 = rt.machine().clock().now();
    rt.ecall(
        &tcx,
        enclave.id(),
        "ecall_buf",
        &table,
        &mut CallData::default(),
    )
    .unwrap();
    let small = rt.machine().clock().now() - t0;
    let t1 = rt.machine().clock().now();
    rt.ecall(
        &tcx,
        enclave.id(),
        "ecall_buf",
        &table,
        &mut CallData::default().with_in_bytes(1 << 20),
    )
    .unwrap();
    let big = rt.machine().clock().now() - t1;
    assert!(big > small, "big {big} <= small {small}");
}

#[test]
fn private_ecall_rejected_from_application() {
    let rt = runtime();
    let spec = sgx_edl::parse(
        "enclave { trusted { public void front(); void secret(); };
                   untrusted { void helper() allow(secret); }; };",
    )
    .unwrap();
    let enclave = rt.create_enclave(&spec, &EnclaveConfig::default()).unwrap();
    enclave.register_ecall("front", |_, _| Ok(())).unwrap();
    enclave.register_ecall("secret", |_, _| Ok(())).unwrap();
    let mut builder = OcallTableBuilder::new(enclave.spec());
    builder.register("helper", |_, _| Ok(())).unwrap();
    let table = Arc::new(builder.build().unwrap());

    let err = rt
        .ecall(
            &ThreadCtx::main(),
            enclave.id(),
            "secret",
            &table,
            &mut CallData::default(),
        )
        .unwrap_err();
    assert!(matches!(err, SdkError::PrivateEcall(name) if name == "secret"));
}

#[test]
fn private_ecall_allowed_from_allowing_ocall() {
    let rt = runtime();
    let spec = sgx_edl::parse(
        "enclave { trusted { public void front(); void secret(); };
                   untrusted { void helper() allow(secret); }; };",
    )
    .unwrap();
    let enclave = rt.create_enclave(&spec, &EnclaveConfig::default()).unwrap();
    let secret_ran = Arc::new(AtomicUsize::new(0));
    let sr = Arc::clone(&secret_ran);
    enclave
        .register_ecall("front", |ctx, _| {
            ctx.ocall("helper", &mut CallData::default())
        })
        .unwrap();
    enclave
        .register_ecall("secret", move |_, _| {
            sr.fetch_add(1, Ordering::SeqCst);
            Ok(())
        })
        .unwrap();
    let mut builder = OcallTableBuilder::new(enclave.spec());
    builder
        .register("helper", |host, _| {
            host.ecall("secret", &mut CallData::default())
        })
        .unwrap();
    let table = Arc::new(builder.build().unwrap());
    rt.ecall(
        &ThreadCtx::main(),
        enclave.id(),
        "front",
        &table,
        &mut CallData::default(),
    )
    .unwrap();
    assert_eq!(secret_ran.load(Ordering::SeqCst), 1);
}

#[test]
fn nested_ecall_outside_allow_list_rejected() {
    let rt = runtime();
    let spec = sgx_edl::parse(
        "enclave { trusted { public void front(); public void other(); };
                   untrusted { void helper(); }; };",
    )
    .unwrap();
    let enclave = rt.create_enclave(&spec, &EnclaveConfig::default()).unwrap();
    enclave
        .register_ecall("front", |ctx, _| {
            ctx.ocall("helper", &mut CallData::default())
        })
        .unwrap();
    enclave.register_ecall("other", |_, _| Ok(())).unwrap();
    let mut builder = OcallTableBuilder::new(enclave.spec());
    builder
        .register("helper", |host, _| {
            host.ecall("other", &mut CallData::default())
        })
        .unwrap();
    let table = Arc::new(builder.build().unwrap());
    let err = rt
        .ecall(
            &ThreadCtx::main(),
            enclave.id(),
            "front",
            &table,
            &mut CallData::default(),
        )
        .unwrap_err();
    assert!(
        matches!(&err, SdkError::EcallNotAllowed { ecall, ocall }
            if ecall == "other" && ocall == "helper"),
        "{err}"
    );
}

#[test]
fn tcs_exhaustion_reported() {
    // One TCS, two logical threads entering concurrently: the second one
    // must get SGX_ERROR_OUT_OF_TCS while the first is inside.
    let machine = Arc::new(Machine::new(Clock::new(), HwProfile::Unpatched));
    let rt = Runtime::new(machine);
    let spec = sgx_edl::parse(
        "enclave { trusted { public void ecall_block(); };
                   untrusted { void ocall_pause(); }; };",
    )
    .unwrap();
    let config = EnclaveConfig {
        tcs_count: 1,
        ..EnclaveConfig::default()
    };
    let enclave = rt.create_enclave(&spec, &config).unwrap();
    enclave
        .register_ecall("ecall_block", |ctx, _| {
            ctx.ocall("ocall_pause", &mut CallData::default())
        })
        .unwrap();
    let mut builder = OcallTableBuilder::new(enclave.spec());
    builder
        .register("ocall_pause", |host, _| {
            // While thread 0 is inside the enclave (in an ocall frame,
            // TCS still bound), yield so thread 1 tries to enter.
            if let Some(sim) = host.thread.sim {
                sim.yield_now();
            }
            Ok(())
        })
        .unwrap();
    let table = Arc::new(builder.build().unwrap());

    let sim = Simulation::new(rt.machine().clock().clone());
    let errors: Arc<Mutex<Vec<SdkError>>> = Arc::new(Mutex::new(Vec::new()));
    for _ in 0..2 {
        let rt = Arc::clone(&rt);
        let table = Arc::clone(&table);
        let errors = Arc::clone(&errors);
        let eid = enclave.id();
        sim.spawn("caller", move |ctx| {
            let tcx = ThreadCtx::from_sim(ctx);
            if let Err(e) = rt.ecall(&tcx, eid, "ecall_block", &table, &mut CallData::default()) {
                errors.lock().push(e);
            }
        });
    }
    sim.run();
    let errs = errors.lock();
    assert_eq!(errs.len(), 1, "{errs:?}");
    assert!(matches!(errs[0], SdkError::OutOfTcs(_)));
}

#[test]
fn contended_mutex_issues_sleep_and_wake_ocalls() {
    // §2.3.2: a contended lock costs two ocalls (sleep by the waiter, wake
    // by the holder). Count sync ocalls through an interposed table.
    let machine = Arc::new(Machine::new(Clock::new(), HwProfile::Unpatched));
    let rt = Runtime::new(machine);
    let spec = sgx_edl::parse("enclave { trusted { public void ecall_work(); }; };").unwrap();
    let config = EnclaveConfig {
        tcs_count: 2,
        ..EnclaveConfig::default()
    };
    let enclave = rt.create_enclave(&spec, &config).unwrap();
    let mutex = Arc::new(SgxThreadMutex::new());
    let m2 = Arc::clone(&mutex);
    enclave
        .register_ecall("ecall_work", move |ctx, _| {
            let path = m2.lock(ctx)?;
            let _ = path;
            // Hold the lock across a yield so the other thread contends.
            if let Some(sim) = ctx.thread().sim {
                sim.yield_now();
            }
            ctx.compute(Nanos::from_micros(2))?;
            m2.unlock(ctx)?;
            Ok(())
        })
        .unwrap();
    let base = OcallTableBuilder::new(enclave.spec()).build().unwrap();
    let sync_count = Arc::new(AtomicUsize::new(0));
    let sc = Arc::clone(&sync_count);
    let table = Arc::new(base.wrap(move |_, name, orig| {
        let sc = Arc::clone(&sc);
        let is_sync = sgx_sdk::sync_ocalls::is_sync_ocall(name);
        Arc::new(move |host, data| {
            if is_sync {
                sc.fetch_add(1, Ordering::SeqCst);
            }
            orig(host, data)
        })
    }));

    let sim = Simulation::new(rt.machine().clock().clone());
    for _ in 0..2 {
        let rt = Arc::clone(&rt);
        let table = Arc::clone(&table);
        let eid = enclave.id();
        sim.spawn("worker", move |ctx| {
            let tcx = ThreadCtx::from_sim(ctx);
            rt.ecall(&tcx, eid, "ecall_work", &table, &mut CallData::default())
                .unwrap();
        });
    }
    sim.run();
    // Exactly one contention: one sleep + one wake.
    assert_eq!(sync_count.load(Ordering::SeqCst), 2);
}

#[test]
fn preloaded_interposer_sees_every_ecall() {
    struct CountingShim {
        next: Arc<dyn EcallDispatcher>,
        count: Arc<AtomicUsize>,
    }
    impl EcallDispatcher for CountingShim {
        fn sgx_ecall(
            &self,
            tcx: &ThreadCtx<'_>,
            eid: EnclaveId,
            index: usize,
            table: &Arc<OcallTable>,
            data: &mut CallData,
        ) -> Result<(), SdkError> {
            self.count.fetch_add(1, Ordering::SeqCst);
            self.next.sgx_ecall(tcx, eid, index, table, data)
        }
    }

    let rt = runtime();
    let spec = sgx_edl::parse("enclave { trusted { public void ecall_x(); }; };").unwrap();
    let enclave = rt.create_enclave(&spec, &EnclaveConfig::default()).unwrap();
    enclave.register_ecall("ecall_x", |_, _| Ok(())).unwrap();
    let table = Arc::new(OcallTableBuilder::new(enclave.spec()).build().unwrap());

    let count = Arc::new(AtomicUsize::new(0));
    let c2 = Arc::clone(&count);
    rt.loader()
        .preload(move |next| Arc::new(CountingShim { next, count: c2 }));

    let tcx = ThreadCtx::main();
    for _ in 0..5 {
        rt.ecall(
            &tcx,
            enclave.id(),
            "ecall_x",
            &table,
            &mut CallData::default(),
        )
        .unwrap();
    }
    assert_eq!(count.load(Ordering::SeqCst), 5);
}

#[test]
fn unregistered_ecall_is_reported() {
    let rt = runtime();
    let spec = sgx_edl::parse("enclave { trusted { public void ecall_missing(); }; };").unwrap();
    let enclave = rt.create_enclave(&spec, &EnclaveConfig::default()).unwrap();
    let table = Arc::new(OcallTableBuilder::new(enclave.spec()).build().unwrap());
    let err = rt
        .ecall(
            &ThreadCtx::main(),
            enclave.id(),
            "ecall_missing",
            &table,
            &mut CallData::default(),
        )
        .unwrap_err();
    assert!(matches!(err, SdkError::UnregisteredEcall(_)));
}

#[test]
fn destroy_enclave_then_call_fails() {
    let rt = runtime();
    let spec = sgx_edl::parse("enclave { trusted { public void e(); }; };").unwrap();
    let enclave = rt.create_enclave(&spec, &EnclaveConfig::default()).unwrap();
    enclave.register_ecall("e", |_, _| Ok(())).unwrap();
    let table = Arc::new(OcallTableBuilder::new(enclave.spec()).build().unwrap());
    rt.destroy_enclave(enclave.id()).unwrap();
    let err = rt
        .ecall(
            &ThreadCtx::main(),
            enclave.id(),
            "e",
            &table,
            &mut CallData::default(),
        )
        .unwrap_err();
    assert!(matches!(err, SdkError::UnknownEnclave(_)));
}

#[test]
fn long_ecall_takes_timer_aexs() {
    let rt = runtime();
    let spec = sgx_edl::parse("enclave { trusted { public void ecall_long(); }; };").unwrap();
    let enclave = rt.create_enclave(&spec, &EnclaveConfig::default()).unwrap();
    let aex = Arc::new(AtomicUsize::new(0));
    let a2 = Arc::clone(&aex);
    enclave
        .register_ecall("ecall_long", move |ctx, _| {
            let n = ctx.compute(Nanos::from_micros(45_377))?;
            a2.store(n as usize, Ordering::SeqCst);
            Ok(())
        })
        .unwrap();
    let table = Arc::new(OcallTableBuilder::new(enclave.spec()).build().unwrap());
    rt.ecall(
        &ThreadCtx::main(),
        enclave.id(),
        "ecall_long",
        &table,
        &mut CallData::default(),
    )
    .unwrap();
    let n = aex.load(Ordering::SeqCst);
    assert!((11..=12).contains(&n), "AEX count {n}");
}

#[test]
fn multiple_preloads_stack_in_lifo_order() {
    // Like LD_PRELOAD with two libraries: the most recently preloaded
    // interposer resolves first and forwards to the previous one.
    struct TagShim {
        next: Arc<dyn EcallDispatcher>,
        tag: &'static str,
        log: Arc<Mutex<Vec<&'static str>>>,
    }
    impl EcallDispatcher for TagShim {
        fn sgx_ecall(
            &self,
            tcx: &ThreadCtx<'_>,
            eid: sgx_sim::EnclaveId,
            index: usize,
            table: &Arc<OcallTable>,
            data: &mut CallData,
        ) -> Result<(), SdkError> {
            self.log.lock().push(self.tag);
            self.next.sgx_ecall(tcx, eid, index, table, data)
        }
    }

    let rt = runtime();
    let spec = sgx_edl::parse("enclave { trusted { public void e(); }; };").unwrap();
    let enclave = rt.create_enclave(&spec, &EnclaveConfig::default()).unwrap();
    enclave.register_ecall("e", |_, _| Ok(())).unwrap();
    let table = Arc::new(OcallTableBuilder::new(enclave.spec()).build().unwrap());

    let log: Arc<Mutex<Vec<&'static str>>> = Arc::new(Mutex::new(Vec::new()));
    for tag in ["first", "second"] {
        let log = Arc::clone(&log);
        rt.loader()
            .preload(move |next| Arc::new(TagShim { next, tag, log }));
    }
    rt.ecall(
        &ThreadCtx::main(),
        enclave.id(),
        "e",
        &table,
        &mut CallData::default(),
    )
    .unwrap();
    assert_eq!(log.lock().as_slice(), &["second", "first"]);
}
