//! SGX v2 features through the SDK: dynamic heap growth from trusted code.

use std::sync::Arc;

use sgx_sdk::{CallData, OcallTableBuilder, Runtime, SdkError, ThreadCtx};
use sgx_sim::{AccessKind, EnclaveConfig, Machine, MachineParams, SgxVersion, SimError};
use sim_core::{Clock, HwProfile};

fn runtime(version: SgxVersion) -> Arc<Runtime> {
    let machine = Arc::new(Machine::with_params(
        Clock::new(),
        HwProfile::Unpatched,
        MachineParams {
            sgx_version: version,
            ..MachineParams::default()
        },
    ));
    Runtime::new(machine)
}

fn setup(rt: &Arc<Runtime>) -> (sgx_sim::EnclaveId, Arc<sgx_sdk::OcallTable>) {
    let spec = sgx_edl::parse(
        "enclave { trusted { public uint64_t ecall_grow_and_use(uint64_t pages); }; };",
    )
    .unwrap();
    let enclave = rt
        .create_enclave(
            &spec,
            &EnclaveConfig {
                heap_kib: 16, // deliberately tiny: 4 heap pages
                ..EnclaveConfig::default()
            },
        )
        .unwrap();
    enclave
        .register_ecall("ecall_grow_and_use", |ctx, data| {
            // The trusted allocator ran out of its 4-page heap; grow.
            let new_pages = ctx.sbrk(data.scalar as usize)?;
            ctx.touch(new_pages.clone(), AccessKind::Write)?;
            data.ret = new_pages.len() as u64;
            Ok(())
        })
        .unwrap();
    let table = Arc::new(OcallTableBuilder::new(enclave.spec()).build().unwrap());
    (enclave.id(), table)
}

#[test]
fn trusted_code_grows_heap_on_v2() {
    let rt = runtime(SgxVersion::V2);
    let (eid, table) = setup(&rt);
    let mut data = CallData::new(16);
    rt.ecall(
        &ThreadCtx::main(),
        eid,
        "ecall_grow_and_use",
        &table,
        &mut data,
    )
    .unwrap();
    assert_eq!(data.ret, 16);
    // Growth persists across calls: a second grow takes the last of the
    // 18-page padding reserve...
    let mut data2 = CallData::new(2);
    rt.ecall(
        &ThreadCtx::main(),
        eid,
        "ecall_grow_and_use",
        &table,
        &mut data2,
    )
    .unwrap();
    assert_eq!(data2.ret, 2);
    // ...after which the reserve is exhausted.
    let err = rt
        .ecall(
            &ThreadCtx::main(),
            eid,
            "ecall_grow_and_use",
            &table,
            &mut CallData::new(1),
        )
        .unwrap_err();
    assert!(matches!(
        err,
        SdkError::Sim(SimError::OutOfEnclaveSpace { .. })
    ));
}

#[test]
fn sbrk_fails_cleanly_on_v1() {
    let rt = runtime(SgxVersion::V1);
    let (eid, table) = setup(&rt);
    let err = rt
        .ecall(
            &ThreadCtx::main(),
            eid,
            "ecall_grow_and_use",
            &table,
            &mut CallData::new(16),
        )
        .unwrap_err();
    assert!(matches!(err, SdkError::Sim(SimError::RequiresSgxV2)));
}

// The end-to-end "v2 AEX causes reach the trace" test lives in the
// workspace integration tests (tests/tests/sgx_v2.rs), since it needs the
// sgx-perf logger on top of this crate.
