//! Tests of the trusted synchronisation primitives: condition variables
//! (fused setwait, broadcast via set-multiple) and the hybrid mutex.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use sgx_sdk::{
    CallData, OcallTableBuilder, Runtime, SgxCondvar, SgxHybridMutex, SgxThreadMutex, ThreadCtx,
};
use sgx_sim::{EnclaveConfig, Machine};
use sim_core::sync::Mutex;
use sim_core::{Clock, HwProfile, Nanos};
use sim_threads::Simulation;

struct SyncApp {
    rt: Arc<Runtime>,
    enclave: Arc<sgx_sdk::Enclave>,
    sync_ocalls: Arc<Mutex<Vec<String>>>,
}

/// Builds an enclave whose ocall table records every sync ocall by name.
fn sync_app(tcs: usize, edl: &str) -> (SyncApp, Arc<sgx_sdk::OcallTable>) {
    let machine = Arc::new(Machine::new(Clock::new(), HwProfile::Unpatched));
    let rt = Runtime::new(machine);
    let spec = sgx_edl::parse(edl).unwrap();
    let enclave = rt
        .create_enclave(
            &spec,
            &EnclaveConfig {
                tcs_count: tcs,
                ..EnclaveConfig::default()
            },
        )
        .unwrap();
    let base = OcallTableBuilder::new(enclave.spec()).build().unwrap();
    let seen: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let seen2 = Arc::clone(&seen);
    let table = Arc::new(base.wrap(move |_, name, orig| {
        let seen = Arc::clone(&seen2);
        let name = name.to_string();
        Arc::new(move |host, data| {
            if sgx_sdk::sync_ocalls::is_sync_ocall(&name) {
                seen.lock().push(name.clone());
            }
            orig(host, data)
        })
    }));
    (
        SyncApp {
            rt,
            enclave,
            sync_ocalls: seen,
        },
        table,
    )
}

/// A bounded queue guarded by the SDK mutex + condvar: the producer blocks
/// the consumer until items exist; waking uses the fused "setwait" ocall
/// when the mutex has a waiter, otherwise the plain wait/set pair.
#[test]
fn condvar_producer_consumer() {
    let (app, table) = sync_app(
        2,
        "enclave { trusted {
            public void ecall_produce(uint64_t n);
            public uint64_t ecall_consume(uint64_t n);
        }; };",
    );
    let queue: Arc<Mutex<VecDeque<u64>>> = Arc::new(Mutex::new(VecDeque::new()));
    let mutex = Arc::new(SgxThreadMutex::new());
    let not_empty = Arc::new(SgxCondvar::new());

    {
        let queue = Arc::clone(&queue);
        let mutex = Arc::clone(&mutex);
        let not_empty = Arc::clone(&not_empty);
        app.enclave
            .register_ecall("ecall_produce", move |ctx, data| {
                mutex.lock(ctx)?;
                queue.lock().push_back(data.scalar);
                ctx.compute(Nanos::from_nanos(500))?;
                not_empty.signal(ctx)?;
                mutex.unlock(ctx)?;
                Ok(())
            })
            .unwrap();
    }
    {
        let queue = Arc::clone(&queue);
        let mutex = Arc::clone(&mutex);
        let not_empty = Arc::clone(&not_empty);
        app.enclave
            .register_ecall("ecall_consume", move |ctx, data| {
                mutex.lock(ctx)?;
                loop {
                    if let Some(v) = queue.lock().pop_front() {
                        data.ret = v;
                        break;
                    }
                    not_empty.wait(ctx, &mutex)?;
                }
                mutex.unlock(ctx)?;
                Ok(())
            })
            .unwrap();
    }

    let sim = Simulation::new(app.rt.machine().clock().clone());
    let consumed: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    {
        let rt = Arc::clone(&app.rt);
        let table = Arc::clone(&table);
        let eid = app.enclave.id();
        let consumed = Arc::clone(&consumed);
        sim.spawn("consumer", move |ctx| {
            let tcx = ThreadCtx::from_sim(ctx);
            for _ in 0..8 {
                let mut data = CallData::default();
                rt.ecall(&tcx, eid, "ecall_consume", &table, &mut data)
                    .unwrap();
                consumed.lock().push(data.ret);
            }
        });
    }
    {
        let rt = Arc::clone(&app.rt);
        let table = Arc::clone(&table);
        let eid = app.enclave.id();
        sim.spawn("producer", move |ctx| {
            let tcx = ThreadCtx::from_sim(ctx);
            for i in 0..8u64 {
                rt.ecall(&tcx, eid, "ecall_produce", &table, &mut CallData::new(i))
                    .unwrap();
                ctx.sleep(Nanos::from_micros(50));
            }
        });
    }
    sim.run();

    // All items arrive in order.
    assert_eq!(consumed.lock().clone(), (0..8).collect::<Vec<u64>>());
    // The consumer slept at least once, and the producer woke it.
    let names = app.sync_ocalls.lock().clone();
    let sleeps = names
        .iter()
        .filter(|n| *n == sgx_sdk::sync_ocalls::WAIT)
        .count();
    assert!(sleeps >= 1, "{names:?}");
    let wakes = names
        .iter()
        .filter(|n| *n == sgx_sdk::sync_ocalls::SET || *n == sgx_sdk::sync_ocalls::SETWAIT)
        .count();
    assert!(wakes >= sleeps, "{names:?}");
}

/// Broadcast wakes every waiter with a single "set multiple" ocall.
#[test]
fn condvar_broadcast_uses_set_multiple() {
    let (app, table) = sync_app(
        4,
        "enclave { trusted {
            public void ecall_wait_for_go();
            public void ecall_go();
        }; };",
    );
    let mutex = Arc::new(SgxThreadMutex::new());
    let go = Arc::new(SgxCondvar::new());
    let released = Arc::new(AtomicUsize::new(0));
    let flag = Arc::new(AtomicUsize::new(0));
    {
        let mutex = Arc::clone(&mutex);
        let go = Arc::clone(&go);
        let released = Arc::clone(&released);
        let flag = Arc::clone(&flag);
        app.enclave
            .register_ecall("ecall_wait_for_go", move |ctx, _| {
                mutex.lock(ctx)?;
                while flag.load(Ordering::SeqCst) == 0 {
                    go.wait(ctx, &mutex)?;
                }
                released.fetch_add(1, Ordering::SeqCst);
                mutex.unlock(ctx)?;
                Ok(())
            })
            .unwrap();
    }
    {
        let mutex = Arc::clone(&mutex);
        let go = Arc::clone(&go);
        let flag = Arc::clone(&flag);
        app.enclave
            .register_ecall("ecall_go", move |ctx, _| {
                mutex.lock(ctx)?;
                flag.store(1, Ordering::SeqCst);
                go.broadcast(ctx)?;
                mutex.unlock(ctx)?;
                Ok(())
            })
            .unwrap();
    }

    let sim = Simulation::new(app.rt.machine().clock().clone());
    for i in 0..3 {
        let rt = Arc::clone(&app.rt);
        let table = Arc::clone(&table);
        let eid = app.enclave.id();
        sim.spawn(&format!("waiter-{i}"), move |ctx| {
            let tcx = ThreadCtx::from_sim(ctx);
            rt.ecall(
                &tcx,
                eid,
                "ecall_wait_for_go",
                &table,
                &mut CallData::default(),
            )
            .unwrap();
        });
    }
    {
        let rt = Arc::clone(&app.rt);
        let table = Arc::clone(&table);
        let eid = app.enclave.id();
        sim.spawn("broadcaster", move |ctx| {
            // Let all waiters park first.
            ctx.sleep(Nanos::from_millis(1));
            let tcx = ThreadCtx::from_sim(ctx);
            rt.ecall(&tcx, eid, "ecall_go", &table, &mut CallData::default())
                .unwrap();
        });
    }
    sim.run();
    assert_eq!(released.load(Ordering::SeqCst), 3);
    let names = app.sync_ocalls.lock().clone();
    assert!(
        names
            .iter()
            .any(|n| n == sgx_sdk::sync_ocalls::SET_MULTIPLE),
        "{names:?}"
    );
}

/// The hybrid mutex's uncontended fast path never leaves the enclave, and
/// its spin path absorbs yield-length contention without ocalls.
#[test]
fn hybrid_mutex_avoids_ocalls() {
    let (app, table) = sync_app(
        2,
        "enclave { trusted { public void ecall_hybrid_op(uint64_t i); }; };",
    );
    let lock = Arc::new(SgxHybridMutex::new(8));
    {
        let lock = Arc::clone(&lock);
        app.enclave
            .register_ecall("ecall_hybrid_op", move |ctx, _| {
                lock.lock(ctx)?;
                if let Some(sim) = ctx.thread().sim {
                    sim.yield_now();
                }
                ctx.compute(Nanos::from_nanos(200))?;
                lock.unlock(ctx)?;
                Ok(())
            })
            .unwrap();
    }
    let sim = Simulation::new(app.rt.machine().clock().clone());
    for _ in 0..2 {
        let rt = Arc::clone(&app.rt);
        let table = Arc::clone(&table);
        let eid = app.enclave.id();
        sim.spawn("worker", move |ctx| {
            let tcx = ThreadCtx::from_sim(ctx);
            for i in 0..50 {
                rt.ecall(&tcx, eid, "ecall_hybrid_op", &table, &mut CallData::new(i))
                    .unwrap();
                ctx.yield_now();
            }
        });
    }
    sim.run();
    assert!(
        app.sync_ocalls.lock().is_empty(),
        "{:?}",
        app.sync_ocalls.lock()
    );
}
