//! Process signal registration, shadowable like `signal`/`sigaction`.
//!
//! The sgx-perf logger overloads the handler-registering functions so that
//! handlers registered by the application are saved and called *after* the
//! logger has processed the signal itself (§4) — important for tracing
//! e.g. JVM-hosted enclaves where the runtime uses signals internally.
//! This module models that registration surface.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use sim_core::sync::Mutex;

/// A signal handler.
pub type SignalHandler = Arc<dyn Fn(i32) + Send + Sync>;

/// Common signal numbers used in the simulation.
pub mod signum {
    /// Segmentation fault — what stripped page permissions raise.
    pub const SIGSEGV: i32 = 11;
    /// Bus error.
    pub const SIGBUS: i32 = 7;
    /// User-defined signal 1 (used by managed runtimes for thread control).
    pub const SIGUSR1: i32 = 10;
}

/// The process's signal-handler table, with `signal(2)` semantics: each
/// registration returns the previously installed handler so an interposer
/// can chain to it.
#[derive(Default)]
pub struct SignalRegistry {
    handlers: Mutex<HashMap<i32, SignalHandler>>,
}

impl fmt::Debug for SignalRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SignalRegistry({} handlers)", self.handlers.lock().len())
    }
}

impl SignalRegistry {
    /// Creates an empty registry.
    pub fn new() -> SignalRegistry {
        SignalRegistry::default()
    }

    /// Installs `handler` for `sig`, returning the previous handler (the
    /// `signal(2)` contract an interposer relies on).
    pub fn register(&self, sig: i32, handler: SignalHandler) -> Option<SignalHandler> {
        self.handlers.lock().insert(sig, handler)
    }

    /// Removes the handler for `sig`.
    pub fn unregister(&self, sig: i32) -> Option<SignalHandler> {
        self.handlers.lock().remove(&sig)
    }

    /// Delivers `sig`; returns whether a handler ran.
    pub fn raise(&self, sig: i32) -> bool {
        let handler = self.handlers.lock().get(&sig).cloned();
        match handler {
            Some(h) => {
                h(sig);
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn register_and_raise() {
        let reg = SignalRegistry::new();
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        reg.register(
            signum::SIGUSR1,
            Arc::new(move |_| {
                h.fetch_add(1, Ordering::SeqCst);
            }),
        );
        assert!(reg.raise(signum::SIGUSR1));
        assert!(!reg.raise(signum::SIGSEGV));
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn interposition_chains_to_previous_handler() {
        // The logger pattern: wrap the existing handler and call it after
        // doing its own processing.
        let reg = SignalRegistry::new();
        let order = Arc::new(Mutex::new(Vec::new()));
        let o1 = Arc::clone(&order);
        reg.register(signum::SIGSEGV, Arc::new(move |_| o1.lock().push("app")));
        let prev = reg
            .register(signum::SIGSEGV, Arc::new(|_| {}))
            .expect("previous handler");
        let o2 = Arc::clone(&order);
        reg.register(
            signum::SIGSEGV,
            Arc::new(move |sig| {
                o2.lock().push("logger");
                prev(sig);
            }),
        );
        reg.raise(signum::SIGSEGV);
        assert_eq!(order.lock().as_slice(), &["logger", "app"]);
    }

    #[test]
    fn unregister_removes_handler() {
        let reg = SignalRegistry::new();
        reg.register(signum::SIGBUS, Arc::new(|_| {}));
        assert!(reg.unregister(signum::SIGBUS).is_some());
        assert!(!reg.raise(signum::SIGBUS));
    }
}
