//! Enclave-loss recovery: restart/replay supervision.
//!
//! On real hardware a power transition or machine check destroys EPC
//! contents and every subsequent ecall returns `SGX_ERROR_ENCLAVE_LOST`
//! ([`SdkError::EnclaveLost`] here). The SDK's transient-fault machinery
//! (bounded retry + backoff) cannot help: the enclave and all its state
//! are gone. Recovery means *rebuilding* — destroy the dead enclave,
//! create a fresh one from the same recipe, replay the ecalls that
//! re-establish its state, then decide what to do with the call that was
//! interrupted.
//!
//! [`Supervisor`] packages that loop: it wraps a [`Runtime`] plus an
//! enclave build recipe, intercepts [`SdkError::EnclaveLost`] from both
//! the synchronous and the switchless call paths (the switchless rings
//! are drained and poisoned via [`Switchless::shutdown`] before teardown),
//! rebuilds with exponential backoff, replays registered warm-up hooks in
//! registration order, and retries the interrupted ecall according to a
//! per-call [`IdempotencyPolicy`]. A circuit breaker caps the total
//! restart budget: once it trips, the loss surfaces as a clean terminal
//! [`SdkError::RecoveryExhausted`] instead of looping forever.
//!
//! Every stage is reported through the machine's lifecycle observer
//! ([`sgx_sim::Machine::notify_lifecycle`]), so the logger can reconstruct
//! restart counts and the virtual-time MTTR ledger.

use std::sync::Arc;

use sgx_sim::EnclaveId;
use sim_core::{LifecycleEvent, LifecycleStage};

use crate::args::CallData;
use crate::enclave::{fault_backoff, Enclave};
use crate::error::{SdkError, SdkResult};
use crate::ocall::OcallTable;
use crate::runtime::Runtime;
use crate::switchless::{Switchless, SwitchlessConfig};
use crate::thread_ctx::ThreadCtx;
use sim_core::sync::Mutex;

/// What the supervisor does with the *interrupted* ecall after a rebuild.
///
/// Warm-up hooks (state re-establishment) are orthogonal: they run on
/// every rebuild except under [`IdempotencyPolicy::Retry`], which is for
/// enclaves whose calls carry all their state with them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdempotencyPolicy {
    /// Rebuild and retry the call without replaying warm-ups — for
    /// stateless enclaves where re-issuing the call is always safe.
    Retry,
    /// Rebuild (and replay warm-ups, so the application can continue) but
    /// surface [`SdkError::EnclaveLost`] for this call — for calls whose
    /// effects are not idempotent and must not be silently re-applied.
    FailFast,
    /// Rebuild, replay every registered warm-up in registration order,
    /// then retry the call — the default for stateful enclaves.
    ReplayThenRetry,
}

/// Supervisor tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct SupervisorConfig {
    /// Total restart budget (the circuit breaker): once more than this
    /// many rebuilds have been attempted over the supervisor's lifetime,
    /// recovery stops and [`SdkError::RecoveryExhausted`] surfaces.
    pub max_restarts: u32,
    /// Policy applied by [`Supervisor::ecall`]; per-call overrides go
    /// through [`Supervisor::ecall_with_policy`].
    pub default_policy: IdempotencyPolicy,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            max_restarts: 3,
            default_policy: IdempotencyPolicy::ReplayThenRetry,
        }
    }
}

/// An enclave build recipe: everything needed to go from a bare runtime to
/// a fully registered enclave (parse interface, create, register ecalls).
pub type EnclaveRecipe = Arc<dyn Fn(&Arc<Runtime>) -> SdkResult<Arc<Enclave>> + Send + Sync>;

/// A state re-establishment hook, replayed after every rebuild (except
/// under [`IdempotencyPolicy::Retry`]). Receives the thread context, the
/// runtime, the *new* enclave id and the ocall table of the interrupted
/// call.
pub type WarmupFn = Arc<
    dyn Fn(&ThreadCtx<'_>, &Arc<Runtime>, EnclaveId, &Arc<OcallTable>) -> SdkResult<()>
        + Send
        + Sync,
>;

/// A fleet-level restart gate, invoked before every rebuild with the
/// attempt number. A fleet manager installs one shared gate across all its
/// supervisors to throttle restart storms (e.g. advance the virtual clock
/// to enforce a minimum spacing between rebuilds) and to feed its
/// circuit-breaker window. Per-supervisor backoff still applies after the
/// gate runs.
pub type RestartGate = Arc<dyn Fn(u32) + Send + Sync>;

struct SupState {
    enclave: Arc<Enclave>,
    switchless: Option<Arc<Switchless>>,
    restarts: u32,
}

/// Wraps a [`Runtime`] + enclave recipe and keeps the enclave alive across
/// losses. See the [module documentation](self) for the recovery flow.
pub struct Supervisor {
    runtime: Arc<Runtime>,
    recipe: EnclaveRecipe,
    config: SupervisorConfig,
    state: Mutex<SupState>,
    warmups: Mutex<Vec<(String, WarmupFn)>>,
    restart_gate: Mutex<Option<RestartGate>>,
}

impl std::fmt::Debug for Supervisor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock();
        f.debug_struct("Supervisor")
            .field("enclave", &st.enclave.id())
            .field("restarts", &st.restarts)
            .field("max_restarts", &self.config.max_restarts)
            .finish()
    }
}

impl Supervisor {
    /// Builds the initial enclave from `recipe` and wraps it.
    ///
    /// # Errors
    ///
    /// Whatever the recipe returns.
    pub fn launch(
        runtime: &Arc<Runtime>,
        config: SupervisorConfig,
        recipe: impl Fn(&Arc<Runtime>) -> SdkResult<Arc<Enclave>> + Send + Sync + 'static,
    ) -> SdkResult<Arc<Supervisor>> {
        let recipe: EnclaveRecipe = Arc::new(recipe);
        let enclave = recipe(runtime)?;
        Ok(Arc::new(Supervisor {
            runtime: Arc::clone(runtime),
            recipe,
            config,
            state: Mutex::new(SupState {
                enclave,
                switchless: None,
                restarts: 0,
            }),
            warmups: Mutex::new(Vec::new()),
            restart_gate: Mutex::new(None),
        }))
    }

    /// Installs (or clears) the fleet restart gate. The gate runs on every
    /// rebuild attempt, after the circuit-breaker check and before the
    /// enclave teardown, so a fleet manager can space out restarts across
    /// the whole fleet and account them in its own breaker window.
    pub fn set_restart_gate(&self, gate: Option<RestartGate>) {
        *self.restart_gate.lock() = gate;
    }

    /// The currently live enclave id (changes after every rebuild).
    pub fn enclave_id(&self) -> EnclaveId {
        self.state.lock().enclave.id()
    }

    /// The currently live enclave.
    pub fn enclave(&self) -> Arc<Enclave> {
        Arc::clone(&self.state.lock().enclave)
    }

    /// Rebuilds attempted so far.
    pub fn restarts(&self) -> u32 {
        self.state.lock().restarts
    }

    /// Registers a warm-up hook, replayed after every rebuild in
    /// registration order. `name` labels the hook in logs and errors.
    pub fn register_warmup(
        &self,
        name: &str,
        f: impl Fn(&ThreadCtx<'_>, &Arc<Runtime>, EnclaveId, &Arc<OcallTable>) -> SdkResult<()>
            + Send
            + Sync
            + 'static,
    ) {
        self.warmups.lock().push((name.to_string(), Arc::new(f)));
    }

    /// Enables the switchless subsystem on the live enclave. The caller
    /// still spawns workers ([`Switchless::spawn_workers`]). After a loss
    /// the supervisor shuts the rings down and recovered calls fall back
    /// to the synchronous path — worker threads cannot be respawned from
    /// inside a running simulation.
    ///
    /// # Errors
    ///
    /// Validation errors of the switchless config.
    pub fn enable_switchless(&self, config: SwitchlessConfig) -> SdkResult<Arc<Switchless>> {
        let eid = self.enclave_id();
        let sw = self.runtime.enable_switchless(eid, config)?;
        self.state.lock().switchless = Some(Arc::clone(&sw));
        Ok(sw)
    }

    /// Detaches the live switchless subsystem, if any — workloads use this
    /// to shut the rings down at the end of a loss-free run. After a loss
    /// the supervisor has already drained and dropped the rings itself, so
    /// this returns `None` and no second shutdown happens.
    pub fn take_switchless(&self) -> Option<Arc<Switchless>> {
        self.state.lock().switchless.take()
    }

    /// Issues an ecall under the config's default policy.
    ///
    /// # Errors
    ///
    /// The call's own errors, [`SdkError::EnclaveLost`] under
    /// [`IdempotencyPolicy::FailFast`], or
    /// [`SdkError::RecoveryExhausted`] once the circuit breaker trips.
    pub fn ecall(
        &self,
        tcx: &ThreadCtx<'_>,
        name: &str,
        table: &Arc<OcallTable>,
        data: &mut CallData,
    ) -> SdkResult<()> {
        self.ecall_with_policy(tcx, name, table, data, self.config.default_policy)
    }

    /// Issues an ecall under an explicit per-call idempotency policy,
    /// supervising enclave losses end to end.
    ///
    /// # Errors
    ///
    /// See [`Supervisor::ecall`].
    pub fn ecall_with_policy(
        &self,
        tcx: &ThreadCtx<'_>,
        name: &str,
        table: &Arc<OcallTable>,
        data: &mut CallData,
        policy: IdempotencyPolicy,
    ) -> SdkResult<()> {
        let machine = self.runtime.machine();
        let mut lost_at = None;
        loop {
            let eid = self.enclave_id();
            match self.runtime.ecall(tcx, eid, name, table, data) {
                Err(SdkError::EnclaveLost(_)) => {
                    lost_at.get_or_insert(machine.clock().now());
                    let replay = policy != IdempotencyPolicy::Retry;
                    self.recover(tcx, table, replay)?;
                    if policy == IdempotencyPolicy::FailFast {
                        return Err(SdkError::EnclaveLost(eid));
                    }
                }
                Ok(()) => {
                    if let Some(t0) = lost_at {
                        let attempt = self.restarts();
                        machine.notify_lifecycle(&LifecycleEvent {
                            stage: LifecycleStage::Recovered,
                            enclave: self.enclave_id().0,
                            thread: tcx.token.0 as u64,
                            attempt,
                            magnitude: (machine.clock().now() - t0).as_nanos(),
                            time: machine.clock().now(),
                        });
                    }
                    return Ok(());
                }
                other => return other,
            }
        }
    }

    /// One full recovery: backoff, teardown (draining any switchless
    /// rings), rebuild, warm-up replay. Loops internally if the replay
    /// itself finds the fresh enclave lost again; every rebuild counts
    /// against the circuit breaker.
    fn recover(&self, tcx: &ThreadCtx<'_>, table: &Arc<OcallTable>, replay: bool) -> SdkResult<()> {
        let machine = Arc::clone(self.runtime.machine());
        'rebuild: loop {
            let (old_eid, switchless, attempt) = {
                let mut st = self.state.lock();
                st.restarts += 1;
                (st.enclave.id(), st.switchless.take(), st.restarts)
            };
            let event = |stage: LifecycleStage, enclave: u32, magnitude: u64| LifecycleEvent {
                stage,
                enclave,
                thread: tcx.token.0 as u64,
                attempt,
                magnitude,
                time: machine.clock().now(),
            };
            // Drain the switchless rings first — even when the circuit
            // breaker is about to trip. Workers parked on dead slots must
            // wake and exit (a parked worker would deadlock the scheduler),
            // pending slots resolve to errors instead of hanging callers.
            if let (Some(sw), Some(sim)) = (switchless, tcx.sim) {
                sw.shutdown(sim);
            }
            if attempt > self.config.max_restarts {
                machine.notify_lifecycle(&event(LifecycleStage::GaveUp, old_eid.0, 0));
                return Err(SdkError::RecoveryExhausted {
                    enclave: old_eid,
                    restarts: attempt - 1,
                });
            }
            // Fleet-level throttling: the shared gate may advance the
            // virtual clock to space this rebuild out from other
            // supervisors' rebuilds and records it in the fleet window.
            let gate = self.restart_gate.lock().clone();
            if let Some(gate) = gate {
                gate(attempt);
            }
            self.runtime.destroy_enclave(old_eid)?;
            // Exponential backoff before the rebuild — on real hardware
            // the platform needs time to come back from the transition.
            let backoff = fault_backoff(attempt);
            machine.clock().advance(backoff);
            // Rebuild from the recipe.
            let rebuild_start = machine.clock().now();
            let enclave = (self.recipe)(&self.runtime)?;
            let new_eid = enclave.id();
            self.state.lock().enclave = enclave;
            machine.notify_lifecycle(&event(
                LifecycleStage::Rebuild,
                new_eid.0,
                (machine.clock().now() - rebuild_start).as_nanos(),
            ));
            // Replay warm-ups in registration order.
            if replay {
                let warmups: Vec<(String, WarmupFn)> = self.warmups.lock().clone();
                for (name, hook) in &warmups {
                    let replay_start = machine.clock().now();
                    match hook(tcx, &self.runtime, new_eid, table) {
                        Ok(()) => {}
                        // The fresh enclave was lost during its own warm-up
                        // (a fault plan can poison successive entries):
                        // count another restart and rebuild again.
                        Err(SdkError::EnclaveLost(_)) => continue 'rebuild,
                        Err(other) => {
                            return Err(SdkError::Interface(format!(
                                "warm-up `{name}` failed during recovery: {other}"
                            )))
                        }
                    }
                    machine.notify_lifecycle(&event(
                        LifecycleStage::Replay,
                        new_eid.0,
                        (machine.clock().now() - replay_start).as_nanos(),
                    ));
                }
            }
            machine.notify_lifecycle(&event(LifecycleStage::Retry, new_eid.0, backoff.as_nanos()));
            return Ok(());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ocall::OcallTableBuilder;
    use sgx_sim::{EnclaveConfig, Machine};
    use sim_core::fault::FaultPlan;
    use sim_core::{Clock, HwProfile, Nanos};
    use std::sync::atomic::{AtomicU64, Ordering};

    const EDL: &str =
        "enclave { trusted { public void ecall_init(); public void ecall_work(); }; };";

    fn supervisor_fixture(
        counter: Arc<AtomicU64>,
    ) -> (Arc<Runtime>, Arc<Supervisor>, Arc<OcallTable>) {
        let machine = Arc::new(Machine::new(Clock::new(), HwProfile::Unpatched));
        let runtime = Runtime::new(machine);
        let sup = Supervisor::launch(&runtime, SupervisorConfig::default(), move |rt| {
            let spec = sgx_edl::parse(EDL).map_err(|e| SdkError::Interface(e.to_string()))?;
            let enclave = rt.create_enclave(&spec, &EnclaveConfig::default())?;
            let session = Arc::new(AtomicU64::new(0));
            let s1 = Arc::clone(&session);
            enclave.register_ecall("ecall_init", move |ctx, _| {
                ctx.compute(Nanos::from_micros(2))?;
                s1.store(7, Ordering::SeqCst);
                Ok(())
            })?;
            let s2 = Arc::clone(&session);
            let counter = Arc::clone(&counter);
            enclave.register_ecall("ecall_work", move |ctx, _| {
                ctx.compute(Nanos::from_micros(5))?;
                counter.fetch_add(s2.load(Ordering::SeqCst), Ordering::SeqCst);
                Ok(())
            })?;
            Ok(enclave)
        })
        .unwrap();
        let table = {
            let enclave = sup.enclave();
            Arc::new(OcallTableBuilder::new(enclave.spec()).build().unwrap())
        };
        (Arc::clone(sup.runtime()), sup, table)
    }

    impl Supervisor {
        fn runtime(&self) -> &Arc<Runtime> {
            &self.runtime
        }
    }

    #[test]
    fn recovers_and_replays_state_after_a_loss() {
        let counter = Arc::new(AtomicU64::new(0));
        let (_rt, sup, table) = supervisor_fixture(Arc::clone(&counter));
        sup.register_warmup("init-session", |tcx, rt, eid, table| {
            let mut data = CallData::default();
            rt.ecall(tcx, eid, "ecall_init", table, &mut data)
        });
        let tcx = ThreadCtx::main();
        let mut data = CallData::default();
        // Establish the session, then arm a plan that kills the enclave at
        // the next entry.
        sup.ecall(&tcx, "ecall_init", &table, &mut data).unwrap();
        let plan: FaultPlan = "enclave_lost@call=1;seed=5".parse().unwrap();
        sup.runtime().machine().set_fault_plan(Some(&plan));
        sup.ecall(&tcx, "ecall_work", &table, &mut data).unwrap();
        // The warm-up replayed (session re-established), so the retried
        // call saw session == 7, and exactly one rebuild happened.
        assert_eq!(counter.load(Ordering::SeqCst), 7);
        assert_eq!(sup.restarts(), 1);
        // The supervisor tracks the fresh enclave.
        assert!(!sup.runtime().machine().is_lost(sup.enclave_id()).unwrap());
    }

    #[test]
    fn retry_policy_skips_warmup_replay() {
        let counter = Arc::new(AtomicU64::new(0));
        let (_rt, sup, table) = supervisor_fixture(Arc::clone(&counter));
        sup.register_warmup("init-session", |tcx, rt, eid, table| {
            let mut data = CallData::default();
            rt.ecall(tcx, eid, "ecall_init", table, &mut data)
        });
        let tcx = ThreadCtx::main();
        let mut data = CallData::default();
        sup.ecall(&tcx, "ecall_init", &table, &mut data).unwrap();
        let plan: FaultPlan = "enclave_lost@call=1;seed=5".parse().unwrap();
        sup.runtime().machine().set_fault_plan(Some(&plan));
        sup.ecall_with_policy(
            &tcx,
            "ecall_work",
            &table,
            &mut data,
            IdempotencyPolicy::Retry,
        )
        .unwrap();
        // No replay: the fresh enclave's session stayed 0.
        assert_eq!(counter.load(Ordering::SeqCst), 0);
        assert_eq!(sup.restarts(), 1);
    }

    #[test]
    fn fail_fast_surfaces_the_loss_but_still_rebuilds() {
        let counter = Arc::new(AtomicU64::new(0));
        let (_rt, sup, table) = supervisor_fixture(Arc::clone(&counter));
        let tcx = ThreadCtx::main();
        let mut data = CallData::default();
        let plan: FaultPlan = "enclave_lost@call=1;seed=5".parse().unwrap();
        sup.runtime().machine().set_fault_plan(Some(&plan));
        let err = sup
            .ecall_with_policy(
                &tcx,
                "ecall_work",
                &table,
                &mut data,
                IdempotencyPolicy::FailFast,
            )
            .unwrap_err();
        assert!(matches!(err, SdkError::EnclaveLost(_)));
        // The enclave was still rebuilt, so the application can continue.
        sup.ecall(&tcx, "ecall_work", &table, &mut data).unwrap();
        assert_eq!(sup.restarts(), 1);
    }

    #[test]
    fn circuit_breaker_trips_cleanly() {
        let counter = Arc::new(AtomicU64::new(0));
        let (_rt, sup, table) = supervisor_fixture(Arc::clone(&counter));
        let tcx = ThreadCtx::main();
        let mut data = CallData::default();
        // Every entry loses the enclave: 4 consecutive EENTERs, one more
        // than the default budget of 3 restarts.
        let plan: FaultPlan =
            "enclave_lost@call=1;enclave_lost@call=2;enclave_lost@call=3;enclave_lost@call=4;seed=5"
                .parse()
                .unwrap();
        sup.runtime().machine().set_fault_plan(Some(&plan));
        let err = sup
            .ecall(&tcx, "ecall_work", &table, &mut data)
            .unwrap_err();
        assert_eq!(
            err,
            SdkError::RecoveryExhausted {
                enclave: sup.enclave_id(),
                restarts: 3,
            }
        );
        // The failure is terminal but clean: disarm the plan and the
        // supervisor still cannot silently resurrect — but a fresh call
        // works because the last rebuild never happened. The enclave that
        // remains is the lost one.
        assert!(sup.runtime().machine().is_lost(sup.enclave_id()).unwrap());
    }

    #[test]
    fn restart_gate_runs_before_every_rebuild() {
        let counter = Arc::new(AtomicU64::new(0));
        let (_rt, sup, table) = supervisor_fixture(Arc::clone(&counter));
        let machine = Arc::clone(sup.runtime().machine());
        let gate_hits = Arc::new(sim_core::sync::Mutex::new(Vec::new()));
        let g2 = Arc::clone(&gate_hits);
        let m2 = Arc::clone(&machine);
        sup.set_restart_gate(Some(Arc::new(move |attempt| {
            g2.lock().push(attempt);
            // A fleet gate may space rebuilds out in virtual time.
            m2.clock().advance(Nanos::from_micros(100));
        })));
        let tcx = ThreadCtx::main();
        let mut data = CallData::default();
        let plan: FaultPlan = "enclave_lost@call=1;enclave_lost@call=2;seed=5"
            .parse()
            .unwrap();
        machine.set_fault_plan(Some(&plan));
        let before = machine.clock().now();
        sup.ecall(&tcx, "ecall_work", &table, &mut data).unwrap();
        assert_eq!(gate_hits.lock().as_slice(), &[1, 2]);
        assert!(machine.clock().now() - before >= Nanos::from_micros(200));
        assert_eq!(sup.restarts(), 2);
        // Clearing the gate stops the callbacks.
        sup.set_restart_gate(None);
        let plan: FaultPlan = "enclave_lost@call=1;seed=5".parse().unwrap();
        machine.set_fault_plan(Some(&plan));
        sup.ecall(&tcx, "ecall_work", &table, &mut data).unwrap();
        assert_eq!(gate_hits.lock().len(), 2);
    }

    #[test]
    fn lifecycle_stages_are_reported_in_order() {
        let counter = Arc::new(AtomicU64::new(0));
        let (_rt, sup, table) = supervisor_fixture(Arc::clone(&counter));
        sup.register_warmup("init-session", |tcx, rt, eid, table| {
            let mut data = CallData::default();
            rt.ecall(tcx, eid, "ecall_init", table, &mut data)
        });
        let stages = Arc::new(sim_core::sync::Mutex::new(Vec::new()));
        let s2 = Arc::clone(&stages);
        sup.runtime()
            .machine()
            .set_lifecycle_observer(Some(Arc::new(move |ev: &LifecycleEvent| {
                s2.lock().push((ev.stage, ev.attempt));
            })));
        let tcx = ThreadCtx::main();
        let mut data = CallData::default();
        let plan: FaultPlan = "enclave_lost@call=1;seed=5".parse().unwrap();
        sup.runtime().machine().set_fault_plan(Some(&plan));
        sup.ecall(&tcx, "ecall_work", &table, &mut data).unwrap();
        assert_eq!(
            stages.lock().as_slice(),
            &[
                (LifecycleStage::Lost, 0),
                (LifecycleStage::Rebuild, 1),
                (LifecycleStage::Replay, 1),
                (LifecycleStage::Retry, 1),
                (LifecycleStage::Recovered, 1),
            ]
        );
    }
}
