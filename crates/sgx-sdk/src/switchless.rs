//! Switchless calls: asynchronous ecalls/ocalls served by worker threads.
//!
//! Classic calls pay an `EENTER`/`EEXIT` round trip whose cost *grows* with
//! every side-channel mitigation (§2.3.1 of the paper measures 2,130 ns →
//! 4,890 ns from Unpatched to Foreshadow). Switchless calls sidestep the
//! transition entirely: the caller posts a request into a ring buffer in
//! untrusted shared memory, a worker thread on the other side of the
//! enclave boundary polls the ring and executes the call, and the caller
//! spins on the response slot. This is the design of HotCalls and of the
//! SDK's `transition_using_threads` attribute — and it is what sgx-perf's
//! `UseSwitchless` recommendation tells the developer to apply.
//!
//! The simulation keeps the semantics and the cost shape of the real thing:
//!
//! * requests and responses travel through a bounded slot ring
//!   ([`SwitchlessConfig::ring_capacity`]); when no slot is free the call
//!   falls back to the classic synchronous transition,
//! * the caller spins for a bounded budget
//!   ([`SwitchlessConfig::spin_budget`], charged per poll iteration at the
//!   simulated clock rate) before falling back,
//! * **untrusted** workers serve switchless *ocalls*, **trusted** workers
//!   serve switchless *ecalls*; each worker parks when its queue is empty
//!   and is unparked by the next caller,
//! * a successful switchless call charges only the post/poll/complete
//!   costs — no `EENTER`/`EEXIT`, no URTS/TRTS dispatch — which is exactly
//!   the transition-count drop sgx-perf's re-measurement observes.
//!
//! Workers are logical threads of the workload's deterministic
//! [`Simulation`](sim_threads::Simulation): scheduling stays round-robin
//! and bit-deterministic. Call [`Switchless::shutdown`] before the driver
//! thread exits, otherwise the parked workers trip the scheduler's
//! deadlock detector.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};

use sgx_sim::{EnclaveId, ThreadToken};
use sim_core::fault::{FaultAction, FaultEvent, FaultKind};
use sim_core::sync::Mutex;
use sim_core::syncev::SyncOp;
use sim_core::{Cycles, Nanos};
use sim_threads::{LogicalThreadId, SimCtx, Simulation};

use crate::args::CallData;
use crate::enclave::{EcallCtx, Enclave, Frame};
use crate::error::{SdkError, SdkResult};
use crate::ocall::HostCtx;
use crate::sync_ocalls;
use crate::thread_ctx::ThreadCtx;
use crate::urts::Urts;

/// Configuration of one enclave's switchless subsystem.
#[derive(Debug, Clone)]
pub struct SwitchlessConfig {
    /// Untrusted worker threads serving switchless **ocalls**. With zero
    /// workers every switchless ocall degrades to a classic transition.
    pub untrusted_workers: usize,
    /// Trusted worker threads serving switchless **ecalls**.
    pub trusted_workers: usize,
    /// How long a caller busy-polls its response slot before giving up and
    /// taking the synchronous path. Charged per poll iteration
    /// ([`CostModel::switchless_poll_iteration`]) at the simulated clock
    /// rate.
    ///
    /// [`CostModel::switchless_poll_iteration`]: sim_core::CostModel::switchless_poll_iteration
    pub spin_budget: Cycles,
    /// Slots in the shared request/response ring (per enclave, both
    /// directions). A full ring forces fallback.
    pub ring_capacity: usize,
    /// Ecalls to treat as switchless even though their EDL declaration
    /// lacks `transition_using_threads` — this is how a workload *applies*
    /// sgx-perf's `UseSwitchless` recommendation without editing the
    /// interface. Only public ecalls can be switchless.
    pub force_ecalls: Vec<String>,
    /// Ocalls to treat as switchless, same as [`force_ecalls`]
    /// (`SwitchlessConfig::force_ecalls`). The four SDK sleep/wake ocalls
    /// are never switchless: their park semantics need the caller's own
    /// thread.
    pub force_ocalls: Vec<String>,
}

impl Default for SwitchlessConfig {
    fn default() -> SwitchlessConfig {
        SwitchlessConfig {
            untrusted_workers: 1,
            trusted_workers: 0,
            // ~100 poll iterations ≈ 5 µs at the nominal 3.4 GHz — well
            // above the worker's dispatch latency, well below a transition.
            spin_budget: Cycles::new(17_000),
            ring_capacity: 8,
            force_ecalls: Vec::new(),
            force_ocalls: Vec::new(),
        }
    }
}

/// What happened, reported through the URTS switchless observer so the
/// sgx-perf logger can record it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwitchlessEventKind {
    /// A switchless ecall was served by a trusted worker.
    EcallDispatched,
    /// A switchless ocall was served by an untrusted worker.
    OcallDispatched,
    /// A switchless-eligible ecall fell back to the synchronous path.
    EcallFallback,
    /// A switchless-eligible ocall fell back to the synchronous path.
    OcallFallback,
    /// A worker found its queue empty and parked.
    WorkerIdle,
    /// A parked worker was woken by a caller.
    WorkerBusy,
}

impl SwitchlessEventKind {
    /// Stable numeric encoding for trace records.
    pub fn code(self) -> u8 {
        match self {
            SwitchlessEventKind::EcallDispatched => 0,
            SwitchlessEventKind::OcallDispatched => 1,
            SwitchlessEventKind::EcallFallback => 2,
            SwitchlessEventKind::OcallFallback => 3,
            SwitchlessEventKind::WorkerIdle => 4,
            SwitchlessEventKind::WorkerBusy => 5,
        }
    }

    /// Inverse of [`SwitchlessEventKind::code`].
    pub fn from_code(code: u8) -> Option<SwitchlessEventKind> {
        Some(match code {
            0 => SwitchlessEventKind::EcallDispatched,
            1 => SwitchlessEventKind::OcallDispatched,
            2 => SwitchlessEventKind::EcallFallback,
            3 => SwitchlessEventKind::OcallFallback,
            4 => SwitchlessEventKind::WorkerIdle,
            5 => SwitchlessEventKind::WorkerBusy,
            _ => return None,
        })
    }
}

/// One switchless-subsystem event, emitted through
/// [`Urts::set_switchless_observer`].
#[derive(Debug, Clone, Copy)]
pub struct SwitchlessEvent {
    /// The enclave whose ring this event belongs to.
    pub enclave: EnclaveId,
    /// What happened.
    pub kind: SwitchlessEventKind,
    /// The ecall/ocall index, when the event concerns a specific call.
    pub call_index: Option<usize>,
    /// The thread the event happened on (caller for dispatch/fallback,
    /// worker for idle/busy).
    pub thread: ThreadToken,
    /// Worker slot within its pool, for worker events.
    pub worker: Option<usize>,
    /// Poll iterations the caller spent waiting (dispatch events).
    pub spins: u64,
    /// Virtual time of the event.
    pub time: Nanos,
}

/// Which direction a ring slot carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CallKind {
    Ecall,
    Ocall,
}

/// Lifecycle of a ring slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotState {
    Free,
    /// Posted by a caller, not yet picked up — the caller may still
    /// withdraw it and fall back.
    Queued,
    /// A worker is executing it — the caller must wait for completion.
    Claimed,
    /// Finished; the result waits for the caller.
    Done,
}

struct Slot {
    state: SlotState,
    kind: CallKind,
    index: usize,
    caller: ThreadToken,
    data: CallData,
    result: Option<SdkResult<()>>,
}

struct WorkerHandle {
    thread: LogicalThreadId,
    idle: bool,
}

struct RingState {
    slots: Vec<Slot>,
    free: Vec<usize>,
    ecall_queue: VecDeque<usize>,
    ocall_queue: VecDeque<usize>,
    untrusted: Vec<WorkerHandle>,
    trusted: Vec<WorkerHandle>,
}

impl RingState {
    fn queue(&mut self, kind: CallKind) -> &mut VecDeque<usize> {
        match kind {
            CallKind::Ecall => &mut self.ecall_queue,
            CallKind::Ocall => &mut self.ocall_queue,
        }
    }

    fn pool(&mut self, kind: CallKind) -> &mut Vec<WorkerHandle> {
        match kind {
            CallKind::Ecall => &mut self.trusted,
            CallKind::Ocall => &mut self.untrusted,
        }
    }
}

/// The per-enclave switchless subsystem: eligibility masks, the shared slot
/// ring and the worker pools.
///
/// Created with [`Runtime::enable_switchless`](crate::Runtime::enable_switchless);
/// workers are logical threads spawned onto the workload's simulation with
/// [`Switchless::spawn_workers`].
pub struct Switchless {
    enclave: Weak<Enclave>,
    urts: Arc<Urts>,
    config: SwitchlessConfig,
    ecall_eligible: Vec<bool>,
    ocall_eligible: Vec<bool>,
    stop: AtomicBool,
    state: Mutex<RingState>,
    /// Sync-bus object ids for the two rings (ecall ring, ocall ring).
    ring_ids: [u64; 2],
}

impl fmt::Debug for Switchless {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Switchless")
            .field("untrusted_workers", &self.config.untrusted_workers)
            .field("trusted_workers", &self.config.trusted_workers)
            .field("ring_capacity", &self.config.ring_capacity)
            .finish()
    }
}

impl Switchless {
    /// Builds the subsystem for `enclave`, resolving the force lists
    /// against its interface.
    ///
    /// # Errors
    ///
    /// [`SdkError::BadEcall`]/[`SdkError::BadOcall`] for unknown names in
    /// the force lists, [`SdkError::PrivateEcall`] when a forced ecall is
    /// private (a worker inside the enclave could otherwise bypass the
    /// `allow()` rules).
    pub(crate) fn new(
        enclave: &Arc<Enclave>,
        urts: Arc<Urts>,
        config: SwitchlessConfig,
    ) -> SdkResult<Switchless> {
        let spec = enclave.spec();
        let mut ecall_eligible: Vec<bool> = spec
            .ecalls()
            .iter()
            .map(|e| e.switchless && e.public)
            .collect();
        let mut ocall_eligible: Vec<bool> = spec
            .ocalls()
            .iter()
            .map(|o| o.switchless && !sync_ocalls::is_sync_ocall(&o.name))
            .collect();
        for name in &config.force_ecalls {
            let e = spec
                .ecall_by_name(name)
                .ok_or_else(|| SdkError::BadEcall(name.clone()))?;
            if !e.public {
                return Err(SdkError::PrivateEcall(name.clone()));
            }
            ecall_eligible[e.index] = true;
        }
        for name in &config.force_ocalls {
            let o = spec
                .ocall_by_name(name)
                .ok_or_else(|| SdkError::BadOcall(name.clone()))?;
            if !sync_ocalls::is_sync_ocall(name) {
                ocall_eligible[o.index] = true;
            }
        }
        let slots = (0..config.ring_capacity)
            .map(|_| Slot {
                state: SlotState::Free,
                kind: CallKind::Ecall,
                index: 0,
                caller: ThreadToken::MAIN,
                data: CallData::default(),
                result: None,
            })
            .collect();
        let free = (0..config.ring_capacity).rev().collect();
        let bus = urts.machine().sync_bus();
        let ring_ids = [bus.alloc_object(), bus.alloc_object()];
        Ok(Switchless {
            enclave: Arc::downgrade(enclave),
            urts,
            config,
            ecall_eligible,
            ocall_eligible,
            stop: AtomicBool::new(false),
            state: Mutex::new(RingState {
                slots,
                free,
                ecall_queue: VecDeque::new(),
                ocall_queue: VecDeque::new(),
                untrusted: Vec::new(),
                trusted: Vec::new(),
            }),
            ring_ids,
        })
    }

    /// Publishes a ring post/complete edge on the machine's sync bus (a
    /// no-op unless sync-event tracking is enabled).
    fn emit_ring(
        &self,
        thread: ThreadToken,
        op: SyncOp,
        kind: CallKind,
        target: Option<ThreadToken>,
        slot: u64,
    ) {
        let (ring, label) = match kind {
            CallKind::Ecall => (self.ring_ids[0], "switchless-ecall-ring"),
            CallKind::Ocall => (self.ring_ids[1], "switchless-ocall-ring"),
        };
        self.urts.machine().sync_bus().emit(
            thread.0 as u64,
            op,
            Some(ring),
            target.map(|t| t.0 as u64),
            slot,
            label,
        );
    }

    /// The configuration this subsystem was built with.
    pub fn config(&self) -> &SwitchlessConfig {
        &self.config
    }

    /// Whether the ecall at `index` may take the switchless path.
    pub fn is_ecall_switchless(&self, index: usize) -> bool {
        self.ecall_eligible.get(index).copied().unwrap_or(false)
    }

    /// Whether the ocall at `index` may take the switchless path.
    pub fn is_ocall_switchless(&self, index: usize) -> bool {
        self.ocall_eligible.get(index).copied().unwrap_or(false)
    }

    /// Spawns the configured worker pools as logical threads of `sim`.
    /// Idempotent per pool: calling twice adds nothing.
    pub fn spawn_workers(self: &Arc<Switchless>, sim: &Simulation) {
        let mut st = self.state.lock();
        if st.untrusted.is_empty() {
            for slot in 0..self.config.untrusted_workers {
                let me = Arc::clone(self);
                let id = sim.spawn(&format!("switchless-untrusted-{slot}"), move |ctx| {
                    me.worker_loop(ctx, CallKind::Ocall, slot);
                });
                st.untrusted.push(WorkerHandle {
                    thread: id,
                    idle: false,
                });
            }
        }
        if st.trusted.is_empty() {
            for slot in 0..self.config.trusted_workers {
                let me = Arc::clone(self);
                let id = sim.spawn(&format!("switchless-trusted-{slot}"), move |ctx| {
                    me.worker_loop(ctx, CallKind::Ecall, slot);
                });
                st.trusted.push(WorkerHandle {
                    thread: id,
                    idle: false,
                });
            }
        }
    }

    /// Stops the worker pools: sets the stop flag and unparks every worker
    /// so it can observe it. Must run on a logical thread of the same
    /// simulation, before the driver exits — parked workers would otherwise
    /// trip the scheduler's deadlock detector.
    pub fn shutdown(&self, ctx: &SimCtx) {
        self.stop.store(true, Ordering::SeqCst);
        let workers: Vec<LogicalThreadId> = {
            let mut st = self.state.lock();
            let mut ids = Vec::with_capacity(st.untrusted.len() + st.trusted.len());
            let RingState {
                untrusted, trusted, ..
            } = &mut *st;
            for w in untrusted.iter_mut().chain(trusted.iter_mut()) {
                w.idle = false;
                ids.push(w.thread);
            }
            ids
        };
        for id in workers {
            ctx.unpark(id);
        }
    }

    /// Attempts the switchless path for an ecall. `None` means the caller
    /// must take the classic synchronous transition; `Some(result)` means
    /// the call completed without one.
    pub(crate) fn try_ecall(
        &self,
        tcx: &ThreadCtx<'_>,
        index: usize,
        data: &mut CallData,
    ) -> Option<SdkResult<()>> {
        if !self.is_ecall_switchless(index) {
            return None;
        }
        self.try_call(tcx, CallKind::Ecall, index, data)
    }

    /// Attempts the switchless path for an ocall (same contract as
    /// [`Switchless::try_ecall`]).
    pub(crate) fn try_ocall(
        &self,
        tcx: &ThreadCtx<'_>,
        index: usize,
        data: &mut CallData,
    ) -> Option<SdkResult<()>> {
        if !self.is_ocall_switchless(index) {
            return None;
        }
        self.try_call(tcx, CallKind::Ocall, index, data)
    }

    fn try_call(
        &self,
        tcx: &ThreadCtx<'_>,
        kind: CallKind,
        index: usize,
        data: &mut CallData,
    ) -> Option<SdkResult<()>> {
        // Requires the deterministic scheduler (workers are logical
        // threads) and a non-empty pool; otherwise degrade to the classic
        // path. The no-worker fallback charges nothing: the run must be
        // indistinguishable from plain synchronous calls.
        let Some(sim) = tcx.sim else {
            self.emit_fallback(kind, index, tcx.token, 0);
            return None;
        };
        if self.stop.load(Ordering::SeqCst) {
            self.emit_fallback(kind, index, tcx.token, 0);
            return None;
        }
        let machine = self.urts.machine();
        let cm = machine.cost_model();

        // Ring-full burst injection: this post attempt finds no free slot
        // and degrades to the classic path — recorded both as a fault and
        // as the fallback the caller observes.
        if let Some(inj) = machine.fault_injector() {
            if inj.take_ring_full(machine.clock().now()) {
                machine.notify_fault(&FaultEvent {
                    code: FaultKind::RingFull { calls: 1 }.code(),
                    action: FaultAction::Injected,
                    enclave: self.enclave_id().0,
                    thread: tcx.token.0 as u64,
                    call_index: Some(index as u32),
                    magnitude: 1,
                    time: machine.clock().now(),
                });
                self.emit_fallback(kind, index, tcx.token, 0);
                return None;
            }
        }

        // Post the request: grab a free slot, enqueue, wake an idle worker.
        let slot_id = {
            let mut st = self.state.lock();
            if st.pool(kind).is_empty() {
                drop(st);
                self.emit_fallback(kind, index, tcx.token, 0);
                return None;
            }
            let Some(slot_id) = st.free.pop() else {
                drop(st);
                self.emit_fallback(kind, index, tcx.token, 0);
                return None;
            };
            let slot = &mut st.slots[slot_id];
            slot.state = SlotState::Queued;
            slot.kind = kind;
            slot.index = index;
            slot.caller = tcx.token;
            slot.data = data.clone();
            slot.result = None;
            st.queue(kind).push_back(slot_id);
            if let Some(pos) = st.pool(kind).iter().position(|w| w.idle) {
                let worker = &mut st.pool(kind)[pos];
                worker.idle = false;
                let id = worker.thread;
                drop(st);
                sim.unpark(id);
            }
            slot_id
        };
        self.emit_ring(tcx.token, SyncOp::RingPost, kind, None, slot_id as u64);
        // Writing the slot + marshalling [in] buffers into shared memory.
        machine
            .clock()
            .advance(cm.switchless_post + cm.copy_cost(data.in_bytes));

        // Spin on the response slot, one bounded poll iteration at a time.
        let budget_iters =
            (self.config.spin_budget.get() / cm.switchless_poll_iteration.get().max(1)).max(1);
        let mut spins: u64 = 0;
        loop {
            let state = self.state.lock().slots[slot_id].state;
            match state {
                SlotState::Done => {
                    let (out, result) = {
                        let mut st = self.state.lock();
                        let slot = &mut st.slots[slot_id];
                        let out = std::mem::take(&mut slot.data);
                        let result = slot.result.take().unwrap_or(Ok(()));
                        slot.state = SlotState::Free;
                        st.free.push(slot_id);
                        (out, result)
                    };
                    *data = out;
                    // Reading the response + marshalling [out] buffers back.
                    machine
                        .clock()
                        .advance(cm.switchless_complete + cm.copy_cost(data.out_bytes));
                    self.emit(SwitchlessEvent {
                        enclave: self.enclave_id(),
                        kind: match kind {
                            CallKind::Ecall => SwitchlessEventKind::EcallDispatched,
                            CallKind::Ocall => SwitchlessEventKind::OcallDispatched,
                        },
                        call_index: Some(index),
                        thread: tcx.token,
                        worker: None,
                        spins,
                        time: machine.clock().now(),
                    });
                    return Some(result);
                }
                SlotState::Queued if spins >= budget_iters => {
                    // Budget exhausted and no worker picked it up yet:
                    // withdraw the request and take the synchronous path.
                    let withdrawn = {
                        let mut st = self.state.lock();
                        let slot = &mut st.slots[slot_id];
                        if slot.state == SlotState::Queued {
                            slot.state = SlotState::Free;
                            st.queue(kind).retain(|&s| s != slot_id);
                            st.free.push(slot_id);
                            true
                        } else {
                            false
                        }
                    };
                    if withdrawn {
                        self.emit_fallback(kind, index, tcx.token, spins);
                        return None;
                    }
                    // A worker claimed it between the check and the lock:
                    // fall through and keep waiting for completion.
                }
                // Queued (budget left) or Claimed (a worker is executing —
                // the call cannot be withdrawn any more): poll again.
                _ => {}
            }
            machine.clock().advance(cm.switchless_spin_cost(1));
            spins += 1;
            sim.yield_now();
        }
    }

    /// Body of one worker logical thread.
    fn worker_loop(&self, ctx: &SimCtx, kind: CallKind, pool_slot: usize) {
        let machine = Arc::clone(self.urts.machine());
        let worker_tcx = ThreadCtx::from_sim(ctx);
        loop {
            if self.stop.load(Ordering::SeqCst) {
                return;
            }
            // Worker-stall injection: the worker dawdles before looking at
            // the queue. Callers keep spinning through the stall and, once
            // their budget runs out, withdraw and fall back to the
            // synchronous path — the graceful-degradation contract.
            if let Some(delay) = machine
                .fault_injector()
                .and_then(|inj| inj.take_worker_stall(machine.clock().now()))
            {
                machine.notify_fault(&FaultEvent {
                    code: FaultKind::WorkerStall { delay }.code(),
                    action: FaultAction::Injected,
                    enclave: self.enclave_id().0,
                    thread: worker_tcx.token.0 as u64,
                    call_index: None,
                    magnitude: delay.as_nanos(),
                    time: machine.clock().now(),
                });
                // Not `ctx.sleep`: the scheduler only wakes sleepers once
                // the run queue drains, and the spinning callers keep it
                // populated — a sleeping worker would stall for the whole
                // run. Yield through the window instead, advancing the
                // clock only when no other thread does.
                let deadline = machine.clock().now() + delay;
                while machine.clock().now() < deadline {
                    if self.stop.load(Ordering::SeqCst) {
                        return;
                    }
                    let before = machine.clock().now();
                    ctx.yield_now();
                    if machine.clock().now() == before {
                        let step = (deadline - before).min(Nanos::from_micros(1));
                        machine.clock().advance(step);
                    }
                }
            }
            let claimed = {
                let mut st = self.state.lock();
                match st.queue(kind).pop_front() {
                    Some(slot_id) => {
                        let slot = &mut st.slots[slot_id];
                        slot.state = SlotState::Claimed;
                        Some((slot_id, slot.index, std::mem::take(&mut slot.data)))
                    }
                    None => {
                        st.pool(kind)[pool_slot].idle = true;
                        None
                    }
                }
            };
            let Some((slot_id, index, mut data)) = claimed else {
                self.emit(SwitchlessEvent {
                    enclave: self.enclave_id(),
                    kind: SwitchlessEventKind::WorkerIdle,
                    call_index: None,
                    thread: worker_tcx.token,
                    worker: Some(pool_slot),
                    spins: 0,
                    time: machine.clock().now(),
                });
                ctx.park();
                if self.stop.load(Ordering::SeqCst) {
                    return;
                }
                self.emit(SwitchlessEvent {
                    enclave: self.enclave_id(),
                    kind: SwitchlessEventKind::WorkerBusy,
                    call_index: None,
                    thread: worker_tcx.token,
                    worker: Some(pool_slot),
                    spins: 0,
                    time: machine.clock().now(),
                });
                continue;
            };
            // Reading the request slot out of shared memory.
            machine
                .clock()
                .advance(machine.cost_model().switchless_worker_dispatch);
            let result = match kind {
                CallKind::Ocall => self.execute_ocall(&worker_tcx, index, &mut data),
                CallKind::Ecall => self.execute_ecall(&worker_tcx, index, &mut data),
            };
            let caller = {
                let mut st = self.state.lock();
                let slot = &mut st.slots[slot_id];
                slot.data = data;
                slot.result = Some(result);
                slot.state = SlotState::Done;
                slot.caller
                // The caller is spinning (never parked), so no wake-up
                // needed.
            };
            self.emit_ring(
                worker_tcx.token,
                SyncOp::RingComplete,
                kind,
                Some(caller),
                slot_id as u64,
            );
        }
    }

    /// Runs a switchless ocall body on an untrusted worker: plain host
    /// execution, no transition, no enclave frames.
    fn execute_ocall(
        &self,
        worker_tcx: &ThreadCtx<'_>,
        index: usize,
        data: &mut CallData,
    ) -> SdkResult<()> {
        let enclave = self.enclave()?;
        let table = self.urts.saved_table(enclave.id())?;
        let entry = table
            .entry(index)
            .ok_or_else(|| SdkError::BadOcall(format!("#{index}")))?
            .clone();
        let mut host = HostCtx {
            machine: self.urts.machine(),
            urts: &self.urts,
            enclave_id: enclave.id(),
            thread: *worker_tcx,
        };
        (entry.func)(&mut host, data)
    }

    /// Runs a switchless ecall body on a trusted worker: the worker already
    /// lives inside the enclave, so no `EENTER`/`EEXIT` is charged — only
    /// TCS binding and the call frame, like the real SDK's trusted worker
    /// pool.
    fn execute_ecall(
        &self,
        worker_tcx: &ThreadCtx<'_>,
        index: usize,
        data: &mut CallData,
    ) -> SdkResult<()> {
        let enclave = self.enclave()?;
        let body = enclave.ecall_impl(index)?;
        let tcs_index = enclave.bind_tcs(worker_tcx.token)?;
        enclave.push_frame(worker_tcx.token, Frame::Ecall(index));
        let result = {
            let mut ectx = EcallCtx {
                enclave: &enclave,
                urts: &self.urts,
                thread: *worker_tcx,
                tcs_index,
            };
            body(&mut ectx, data)
        };
        enclave.pop_frame(worker_tcx.token);
        result
    }

    fn enclave(&self) -> SdkResult<Arc<Enclave>> {
        self.enclave
            .upgrade()
            .ok_or_else(|| SdkError::Interface("switchless enclave torn down".to_string()))
    }

    fn enclave_id(&self) -> EnclaveId {
        self.enclave
            .upgrade()
            .map(|e| e.id())
            .unwrap_or(EnclaveId(0))
    }

    fn emit_fallback(&self, kind: CallKind, index: usize, thread: ThreadToken, spins: u64) {
        self.emit(SwitchlessEvent {
            enclave: self.enclave_id(),
            kind: match kind {
                CallKind::Ecall => SwitchlessEventKind::EcallFallback,
                CallKind::Ocall => SwitchlessEventKind::OcallFallback,
            },
            call_index: Some(index),
            thread,
            worker: None,
            spins,
            time: self.urts.machine().clock().now(),
        });
    }

    fn emit(&self, event: SwitchlessEvent) {
        self.urts.notify_switchless(&event);
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::AtomicUsize;

    use sgx_edl::InterfaceBuilder;
    use sgx_sim::{EnclaveConfig, Machine};
    use sim_core::{Clock, HwProfile};

    use super::*;
    use crate::loader::EcallDispatcher;
    use crate::ocall::OcallTableBuilder;
    use crate::runtime::Runtime;

    /// Counts how many calls actually reach `sgx_ecall` (i.e. take a real
    /// transition), like an interposed logger would.
    struct CountingDispatcher {
        next: Arc<dyn EcallDispatcher>,
        calls: Arc<AtomicUsize>,
    }

    impl EcallDispatcher for CountingDispatcher {
        fn sgx_ecall(
            &self,
            tcx: &ThreadCtx<'_>,
            eid: EnclaveId,
            index: usize,
            table: &Arc<crate::ocall::OcallTable>,
            data: &mut CallData,
        ) -> SdkResult<()> {
            self.calls.fetch_add(1, Ordering::SeqCst);
            self.next.sgx_ecall(tcx, eid, index, table, data)
        }
    }

    struct Fixture {
        runtime: Arc<Runtime>,
        enclave: Arc<Enclave>,
        table: Arc<crate::ocall::OcallTable>,
        transitions: Arc<AtomicUsize>,
        ocall_runs: Arc<AtomicUsize>,
    }

    /// An enclave whose `e_work` ecall issues `n` (from `scalar`) `o_notify`
    /// ocalls and returns their sum in `ret`.
    fn fixture(switchless_ocall: bool) -> Fixture {
        let machine = Arc::new(Machine::new(Clock::new(), HwProfile::Unpatched));
        let runtime = Runtime::new(machine);
        let mut builder = InterfaceBuilder::new()
            .public_ecall("e_work", vec![])
            .ocall("o_notify", vec![]);
        if switchless_ocall {
            builder = builder.switchless();
        }
        let spec = builder.build().unwrap();
        let enclave = runtime
            .create_enclave(&spec, &EnclaveConfig::default())
            .unwrap();
        enclave
            .register_ecall("e_work", |ctx, data| {
                let mut sum = 0;
                for i in 0..data.scalar {
                    let mut inner = CallData {
                        scalar: i,
                        ..CallData::default()
                    };
                    ctx.ocall("o_notify", &mut inner)?;
                    sum += inner.ret;
                }
                data.ret = sum;
                Ok(())
            })
            .unwrap();
        let ocall_runs = Arc::new(AtomicUsize::new(0));
        let runs = Arc::clone(&ocall_runs);
        let mut tb = OcallTableBuilder::new(enclave.spec());
        tb.register("o_notify", move |host, data| {
            runs.fetch_add(1, Ordering::SeqCst);
            host.compute(Nanos::from_nanos(500));
            data.ret = data.scalar + 1;
            Ok(())
        })
        .unwrap();
        let table = Arc::new(tb.build().unwrap());
        let transitions = Arc::new(AtomicUsize::new(0));
        let calls = Arc::clone(&transitions);
        runtime.loader().preload(move |next| {
            Arc::new(CountingDispatcher { next, calls }) as Arc<dyn EcallDispatcher>
        });
        Fixture {
            runtime,
            enclave,
            table,
            transitions,
            ocall_runs,
        }
    }

    /// Drives `e_work(n_calls)` on a logical thread with the subsystem
    /// configured as given; returns (final virtual time, ecall ret).
    fn drive(fx: &Fixture, config: Option<SwitchlessConfig>, n_calls: u64) -> (Nanos, u64) {
        let sw = config.map(|c| {
            fx.runtime
                .enable_switchless(fx.enclave.id(), c)
                .expect("enable_switchless")
        });
        let sim = Simulation::new(fx.runtime.machine().clock().clone());
        if let Some(sw) = &sw {
            sw.spawn_workers(&sim);
        }
        let runtime = Arc::clone(&fx.runtime);
        let eid = fx.enclave.id();
        let table = Arc::clone(&fx.table);
        let ret = Arc::new(Mutex::new(0u64));
        let ret2 = Arc::clone(&ret);
        sim.spawn("driver", move |ctx| {
            let tcx = ThreadCtx::from_sim(ctx);
            let mut data = CallData {
                scalar: n_calls,
                ..CallData::default()
            };
            runtime
                .ecall(&tcx, eid, "e_work", &table, &mut data)
                .expect("ecall");
            *ret2.lock() = data.ret;
            if let Some(sw) = &sw {
                sw.shutdown(ctx);
            }
        });
        sim.run();
        let out = *ret.lock();
        (fx.runtime.machine().clock().now(), out)
    }

    #[test]
    fn switchless_ocalls_are_served_without_a_transition() {
        let sync_fx = fixture(true);
        let (sync_time, sync_ret) = drive(&sync_fx, None, 8);

        let fx = fixture(true);
        let (sw_time, sw_ret) = drive(
            &fx,
            Some(SwitchlessConfig {
                untrusted_workers: 1,
                ..SwitchlessConfig::default()
            }),
            8,
        );

        assert_eq!(sw_ret, sync_ret, "switchless must not change results");
        assert_eq!(fx.ocall_runs.load(Ordering::SeqCst), 8);
        // 8 ocalls × ~3.6 µs saved dwarfs the added spin cost.
        assert!(
            sw_time < sync_time,
            "switchless run ({sw_time}) should beat sync run ({sync_time})"
        );
    }

    #[test]
    fn zero_workers_degrade_to_the_identical_sync_run() {
        let plain = fixture(true);
        let (plain_time, plain_ret) = drive(&plain, None, 5);

        let degraded = fixture(true);
        let (degraded_time, degraded_ret) = drive(
            &degraded,
            Some(SwitchlessConfig {
                untrusted_workers: 0,
                trusted_workers: 0,
                ..SwitchlessConfig::default()
            }),
            5,
        );

        assert_eq!(degraded_ret, plain_ret);
        assert_eq!(
            degraded_time, plain_time,
            "no-worker fallback must be bit-identical to the sync run"
        );
        assert_eq!(
            degraded.transitions.load(Ordering::SeqCst),
            plain.transitions.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn forced_switchless_ecall_bypasses_the_loader() {
        // The EDL carries no `transition_using_threads`; the config forces
        // the ecall switchless — how a workload applies `UseSwitchless`.
        let fx = fixture(false);
        let sw = fx
            .runtime
            .enable_switchless(
                fx.enclave.id(),
                SwitchlessConfig {
                    untrusted_workers: 0,
                    trusted_workers: 1,
                    force_ecalls: vec!["e_work".to_string()],
                    ..SwitchlessConfig::default()
                },
            )
            .unwrap();
        assert!(sw.is_ecall_switchless(0));
        let sim = Simulation::new(fx.runtime.machine().clock().clone());
        sw.spawn_workers(&sim);
        let runtime = Arc::clone(&fx.runtime);
        let eid = fx.enclave.id();
        let table = Arc::clone(&fx.table);
        let sw2 = Arc::clone(&sw);
        sim.spawn("driver", move |ctx| {
            let tcx = ThreadCtx::from_sim(ctx);
            for _ in 0..4 {
                let mut data = CallData::default();
                runtime
                    .ecall(&tcx, eid, "e_work", &table, &mut data)
                    .expect("ecall");
            }
            sw2.shutdown(ctx);
        });
        sim.run();
        assert_eq!(
            fx.transitions.load(Ordering::SeqCst),
            0,
            "trusted-worker ecalls must never reach sgx_ecall"
        );
    }

    #[test]
    fn full_ring_falls_back_to_the_synchronous_path() {
        let fx = fixture(true);
        let fallbacks = Arc::new(AtomicUsize::new(0));
        let f = Arc::clone(&fallbacks);
        fx.runtime
            .urts()
            .set_switchless_observer(Arc::new(move |ev| {
                if ev.kind == SwitchlessEventKind::OcallFallback {
                    f.fetch_add(1, Ordering::SeqCst);
                }
            }));
        let (_, ret) = drive(
            &fx,
            Some(SwitchlessConfig {
                untrusted_workers: 1,
                ring_capacity: 0,
                ..SwitchlessConfig::default()
            }),
            3,
        );
        assert_eq!(ret, 1 + 2 + 3, "fallback calls still produce results");
        assert_eq!(fx.ocall_runs.load(Ordering::SeqCst), 3);
        assert_eq!(fallbacks.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn exhausted_spin_budget_withdraws_the_request() {
        // One worker, parked inside a long ocall; a second caller's request
        // sits queued past its spin budget and must be withdrawn.
        let machine = Arc::new(Machine::new(Clock::new(), HwProfile::Unpatched));
        let runtime = Runtime::new(machine);
        let spec = InterfaceBuilder::new()
            .public_ecall("e_slow", vec![])
            .public_ecall("e_fast", vec![])
            .ocall("o_slow", vec![])
            .switchless()
            .ocall("o_fast", vec![])
            .switchless()
            .build()
            .unwrap();
        let enclave = runtime
            .create_enclave(
                &spec,
                &EnclaveConfig {
                    // Both drivers sit inside an ecall at the same time.
                    tcs_count: 2,
                    ..EnclaveConfig::default()
                },
            )
            .unwrap();
        enclave
            .register_ecall("e_slow", |ctx, data| ctx.ocall("o_slow", data))
            .unwrap();
        enclave
            .register_ecall("e_fast", |ctx, data| ctx.ocall("o_fast", data))
            .unwrap();
        let mut tb = OcallTableBuilder::new(enclave.spec());
        // o_slow parks its (worker) thread until the fast driver releases it.
        tb.register("o_slow", |host, _| host.park()).unwrap();
        tb.register("o_fast", |_, data| {
            data.ret = 7;
            Ok(())
        })
        .unwrap();
        let table = Arc::new(tb.build().unwrap());
        let fallbacks = Arc::new(AtomicUsize::new(0));
        let f = Arc::clone(&fallbacks);
        runtime.urts().set_switchless_observer(Arc::new(move |ev| {
            if ev.kind == SwitchlessEventKind::OcallFallback && ev.spins > 0 {
                f.fetch_add(1, Ordering::SeqCst);
            }
        }));
        let sw = runtime
            .enable_switchless(
                enclave.id(),
                SwitchlessConfig {
                    untrusted_workers: 1,
                    ..SwitchlessConfig::default()
                },
            )
            .unwrap();
        let sim = Simulation::new(runtime.machine().clock().clone());
        sw.spawn_workers(&sim); // worker = lt0
        let eid = enclave.id();
        let rt1 = Arc::clone(&runtime);
        let t1 = Arc::clone(&table);
        sim.spawn("slow-driver", move |ctx| {
            let tcx = ThreadCtx::from_sim(ctx);
            let mut data = CallData::default();
            rt1.ecall(&tcx, eid, "e_slow", &t1, &mut data).unwrap();
        });
        let rt2 = Arc::clone(&runtime);
        let t2 = Arc::clone(&table);
        let sw2 = Arc::clone(&sw);
        sim.spawn("fast-driver", move |ctx| {
            let tcx = ThreadCtx::from_sim(ctx);
            let mut data = CallData::default();
            // The worker is stuck inside o_slow: this must exhaust its spin
            // budget, withdraw, and complete synchronously.
            rt2.ecall(&tcx, eid, "e_fast", &t2, &mut data).unwrap();
            assert_eq!(data.ret, 7);
            // Release the worker, then stop the pool.
            ctx.unpark(LogicalThreadId(0));
            sw2.shutdown(ctx);
        });
        sim.run();
        assert_eq!(fallbacks.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn shutdown_with_idle_workers_does_not_deadlock() {
        let fx = fixture(true);
        let (_, ret) = drive(
            &fx,
            Some(SwitchlessConfig {
                untrusted_workers: 2,
                trusted_workers: 1,
                ..SwitchlessConfig::default()
            }),
            0,
        );
        assert_eq!(ret, 0);
    }

    #[test]
    fn force_list_validation_rejects_unknown_and_private_names() {
        let machine = Arc::new(Machine::new(Clock::new(), HwProfile::Unpatched));
        let runtime = Runtime::new(machine);
        let spec = InterfaceBuilder::new()
            .public_ecall("pub_e", vec![])
            .private_ecall("priv_e", vec![])
            .ocall_allowing("o", vec![], &["priv_e"])
            .build()
            .unwrap();
        let enclave = runtime
            .create_enclave(&spec, &EnclaveConfig::default())
            .unwrap();
        let err = runtime
            .enable_switchless(
                enclave.id(),
                SwitchlessConfig {
                    force_ecalls: vec!["nope".to_string()],
                    ..SwitchlessConfig::default()
                },
            )
            .unwrap_err();
        assert!(matches!(err, SdkError::BadEcall(_)));
        let err = runtime
            .enable_switchless(
                enclave.id(),
                SwitchlessConfig {
                    force_ecalls: vec!["priv_e".to_string()],
                    ..SwitchlessConfig::default()
                },
            )
            .unwrap_err();
        assert!(matches!(err, SdkError::PrivateEcall(_)));
        // Sync ocalls stay synchronous even when forced.
        let sw = runtime
            .enable_switchless(
                enclave.id(),
                SwitchlessConfig {
                    force_ocalls: vec![sync_ocalls::WAIT.to_string()],
                    ..SwitchlessConfig::default()
                },
            )
            .unwrap();
        let wait_index = enclave
            .spec()
            .ocall_by_name(sync_ocalls::WAIT)
            .unwrap()
            .index;
        assert!(!sw.is_ocall_switchless(wait_index));
    }

    #[test]
    fn event_kind_codes_round_trip() {
        for kind in [
            SwitchlessEventKind::EcallDispatched,
            SwitchlessEventKind::OcallDispatched,
            SwitchlessEventKind::EcallFallback,
            SwitchlessEventKind::OcallFallback,
            SwitchlessEventKind::WorkerIdle,
            SwitchlessEventKind::WorkerBusy,
        ] {
            assert_eq!(SwitchlessEventKind::from_code(kind.code()), Some(kind));
        }
        assert_eq!(SwitchlessEventKind::from_code(6), None);
    }
}
