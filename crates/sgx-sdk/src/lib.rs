//! Simulated Intel SGX SDK.
//!
//! Reproduces the architecture of Figures 1–3 of the sgx-perf paper, which
//! is exactly the structure the sgx-perf logger instruments:
//!
//! * the application calls ecalls through a single [`sgx_ecall`]-shaped
//!   entry point in the **URTS** ([`urts`]), passing a per-enclave
//!   [`OcallTable`]; the URTS saves that table pointer for later ocalls,
//! * the **TRTS** trampoline inside the enclave dispatches the numeric call
//!   id to the registered trusted function ([`enclave`]),
//! * symbol resolution goes through a **dynamic-loader model** ([`loader`])
//!   that supports `LD_PRELOAD`-style interposition — the mechanism the
//!   sgx-perf event logger uses to shadow `sgx_ecall` without modifying the
//!   application, the enclave or the SDK,
//! * **in-enclave synchronisation** ([`sync`]) follows §2.3.2: an
//!   uncontended lock stays inside the enclave; contention issues the SDK's
//!   four sleep/wake ocalls, which travel through the (possibly logger-
//!   rewritten) ocall table.
//!
//! [`sgx_ecall`]: loader::Loader::sgx_ecall
//!
//! # Examples
//!
//! ```
//! use sgx_sdk::{CallData, OcallTableBuilder, Runtime, ThreadCtx};
//! use sgx_sim::{EnclaveConfig, Machine};
//! use sim_core::{Clock, HwProfile, Nanos};
//! use std::sync::Arc;
//!
//! let machine = Arc::new(Machine::new(Clock::new(), HwProfile::Unpatched));
//! let runtime = Runtime::new(machine);
//! let spec = sgx_edl::parse("enclave { trusted { public void ecall_work(); }; };")?;
//! let enclave = runtime.create_enclave(&spec, &EnclaveConfig::default())?;
//! enclave.register_ecall("ecall_work", |ctx, _data| {
//!     ctx.compute(Nanos::from_micros(10))?;
//!     Ok(())
//! })?;
//! let table = Arc::new(OcallTableBuilder::new(enclave.spec()).build()?);
//! let tcx = ThreadCtx::main();
//! let mut data = CallData::default();
//! runtime.ecall(&tcx, enclave.id(), "ecall_work", &table, &mut data)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod args;
pub mod enclave;
pub mod error;
pub mod loader;
pub mod ocall;
pub mod runtime;
pub mod signals;
pub mod supervisor;
pub mod switchless;
pub mod sync;
pub mod thread_ctx;
pub mod urts;

pub use args::CallData;
pub use enclave::{EcallCtx, Enclave};
pub use error::{SdkError, SdkResult};
pub use loader::{EcallDispatcher, Loader};
pub use ocall::{HostCtx, OcallTable, OcallTableBuilder};
pub use runtime::Runtime;
pub use supervisor::{IdempotencyPolicy, RestartGate, Supervisor, SupervisorConfig};
pub use switchless::{Switchless, SwitchlessConfig, SwitchlessEvent, SwitchlessEventKind};
pub use sync::{SgxCondvar, SgxHybridMutex, SgxThreadMutex};
pub use thread_ctx::ThreadCtx;
pub use urts::{SwitchlessObserver, Urts};

/// Names of the four SDK synchronisation ocalls (§4.1.3). These are
/// appended to every enclave interface (the SDK imports them implicitly)
/// and carry special semantics: sleep, wake one, wake one + sleep, wake
/// multiple.
pub mod sync_ocalls {
    /// Sleep until another thread sets this thread's untrusted event.
    pub const WAIT: &str = "sgx_thread_wait_untrusted_event_ocall";
    /// Wake one thread.
    pub const SET: &str = "sgx_thread_set_untrusted_event_ocall";
    /// Wake one thread and sleep in a single ocall.
    pub const SETWAIT: &str = "sgx_thread_setwait_untrusted_events_ocall";
    /// Wake multiple threads.
    pub const SET_MULTIPLE: &str = "sgx_thread_set_multiple_untrusted_events_ocall";

    /// All four names.
    pub const ALL: [&str; 4] = [WAIT, SET, SETWAIT, SET_MULTIPLE];

    /// Whether `name` is one of the SDK synchronisation ocalls.
    pub fn is_sync_ocall(name: &str) -> bool {
        ALL.contains(&name)
    }
}
