//! The process-level runtime tying machine, URTS and loader together.

use std::sync::Arc;

use sgx_edl::{InterfaceBuilder, InterfaceSpec, ParamSpec};
use sgx_sim::{EnclaveConfig, EnclaveId, Machine};

use crate::args::CallData;
use crate::enclave::Enclave;
use crate::error::{SdkError, SdkResult};
use crate::loader::Loader;
use crate::ocall::OcallTable;
use crate::switchless::{Switchless, SwitchlessConfig};
use crate::sync_ocalls;
use crate::thread_ctx::ThreadCtx;
use crate::urts::Urts;

/// Extends an interface with the SDK's implicitly imported synchronisation
/// ocalls (the real SDK pulls them in from `sgx_tstdc.edl`). Already-present
/// names are kept as declared.
pub fn with_sync_ocalls(spec: &InterfaceSpec) -> SdkResult<InterfaceSpec> {
    let mut builder = InterfaceBuilder::new();
    for e in spec.ecalls() {
        builder = if e.public {
            builder.public_ecall(&e.name, e.params.clone())
        } else {
            builder.private_ecall(&e.name, e.params.clone())
        };
        if e.switchless {
            builder = builder.switchless();
        }
    }
    for o in spec.ocalls() {
        let allowed: Vec<String> = o
            .allowed_ecalls
            .iter()
            .map(|&i| spec.ecalls()[i].name.clone())
            .collect();
        let allowed_refs: Vec<&str> = allowed.iter().map(String::as_str).collect();
        builder = builder.ocall_allowing(&o.name, o.params.clone(), &allowed_refs);
        if o.switchless {
            builder = builder.switchless();
        }
    }
    for name in sync_ocalls::ALL {
        if spec.ocall_by_name(name).is_none() {
            builder = builder.ocall(name, vec![ParamSpec::value("target", "uint64_t")]);
        }
    }
    builder
        .build()
        .map_err(|e| SdkError::Interface(e.to_string()))
}

/// The top-level SDK runtime: owns the [`Urts`] and [`Loader`] for one
/// simulated process and provides the application-facing API.
///
/// See the [crate documentation](crate) for a full example.
#[derive(Debug)]
pub struct Runtime {
    machine: Arc<Machine>,
    urts: Arc<Urts>,
    loader: Arc<Loader>,
}

impl Runtime {
    /// Creates a runtime on the given machine.
    pub fn new(machine: Arc<Machine>) -> Arc<Runtime> {
        let urts = Arc::new(Urts::new(Arc::clone(&machine)));
        let loader = Arc::new(Loader::new(Arc::clone(&urts)));
        urts.set_loader(Arc::downgrade(&loader));
        Arc::new(Runtime {
            machine,
            urts,
            loader,
        })
    }

    /// The simulated machine.
    pub fn machine(&self) -> &Arc<Machine> {
        &self.machine
    }

    /// The URTS (enclave registry, saved ocall tables).
    pub fn urts(&self) -> &Arc<Urts> {
        &self.urts
    }

    /// The dynamic loader (preload interposition, signals).
    pub fn loader(&self) -> &Arc<Loader> {
        &self.loader
    }

    /// Creates an enclave from an interface and a build configuration:
    /// loads its pages into the EPC, appends the implicit sync ocalls to
    /// the interface and registers the enclave with the URTS.
    ///
    /// # Errors
    ///
    /// Interface extension failures and hardware-layer errors.
    pub fn create_enclave(
        &self,
        spec: &InterfaceSpec,
        config: &EnclaveConfig,
    ) -> SdkResult<Arc<Enclave>> {
        let effective = with_sync_ocalls(spec)?;
        let eid = self.machine.create_enclave(config)?;
        let enclave = Arc::new(Enclave::new(
            eid,
            effective,
            Arc::clone(&self.machine),
            config.tcs_count,
        ));
        self.urts.register_enclave(Arc::clone(&enclave));
        Ok(enclave)
    }

    /// Sets up the switchless subsystem for a loaded enclave: resolves the
    /// config's force lists against its interface and installs the ring.
    /// Callers still need [`Switchless::spawn_workers`] on the workload's
    /// simulation (and [`Switchless::shutdown`] before it ends).
    ///
    /// # Errors
    ///
    /// [`SdkError::UnknownEnclave`] plus the validation errors of the
    /// force lists (unknown or private call names).
    pub fn enable_switchless(
        &self,
        eid: EnclaveId,
        config: SwitchlessConfig,
    ) -> SdkResult<Arc<Switchless>> {
        let enclave = self.urts.enclave(eid)?;
        let sw = Arc::new(Switchless::new(&enclave, Arc::clone(&self.urts), config)?);
        enclave.set_switchless(Arc::clone(&sw));
        Ok(sw)
    }

    /// Destroys an enclave: unregisters it and frees its EPC pages.
    ///
    /// # Errors
    ///
    /// [`SdkError::UnknownEnclave`] if it is not loaded.
    pub fn destroy_enclave(&self, eid: EnclaveId) -> SdkResult<()> {
        self.urts.unregister_enclave(eid)?;
        self.machine.destroy_enclave(eid)?;
        Ok(())
    }

    /// Issues an ecall by name — resolves the name against the enclave's
    /// interface and dispatches through the loader (so preloaded
    /// interposition libraries observe the call).
    ///
    /// # Errors
    ///
    /// Name-resolution and dispatch errors.
    pub fn ecall(
        &self,
        tcx: &ThreadCtx<'_>,
        eid: EnclaveId,
        name: &str,
        table: &Arc<OcallTable>,
        data: &mut CallData,
    ) -> SdkResult<()> {
        let enclave = self.urts.enclave(eid)?;
        let index = enclave
            .spec()
            .ecall_by_name(name)
            .ok_or_else(|| SdkError::BadEcall(name.to_string()))?
            .index;
        self.ecall_index(tcx, eid, index, table, data)
    }

    /// Issues an ecall by index through the loader.
    ///
    /// # Errors
    ///
    /// Dispatch errors.
    pub fn ecall_index(
        &self,
        tcx: &ThreadCtx<'_>,
        eid: EnclaveId,
        index: usize,
        table: &Arc<OcallTable>,
        data: &mut CallData,
    ) -> SdkResult<()> {
        // Switchless-eligible ecalls try the ring first. A `Some` result
        // means a trusted worker served the call: `sgx_ecall` (and any
        // library interposing on it) was bypassed — no transition happened.
        // The table must still be saved so the trusted body can ocall.
        if let Some(sw) = self.urts.enclave(eid)?.switchless() {
            self.urts.save_table(eid, table);
            if let Some(result) = sw.try_ecall(tcx, index, data) {
                return result;
            }
        }
        self.loader.sgx_ecall(tcx, eid, index, table, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgx_edl::InterfaceBuilder;

    #[test]
    fn sync_ocalls_are_appended_once() {
        let spec = InterfaceBuilder::new()
            .public_ecall("e", vec![])
            .build()
            .unwrap();
        let eff = with_sync_ocalls(&spec).unwrap();
        assert_eq!(eff.ocalls().len(), 4);
        let again = with_sync_ocalls(&eff).unwrap();
        assert_eq!(again.ocalls().len(), 4);
    }

    #[test]
    fn allow_lists_survive_extension() {
        let spec = InterfaceBuilder::new()
            .public_ecall("pub", vec![])
            .private_ecall("priv", vec![])
            .ocall_allowing("o", vec![], &["priv"])
            .build()
            .unwrap();
        let eff = with_sync_ocalls(&spec).unwrap();
        let o = eff.ocall_by_name("o").unwrap();
        let priv_idx = eff.ecall_by_name("priv").unwrap().index;
        assert_eq!(o.allowed_ecalls, vec![priv_idx]);
    }
}
