//! In-enclave synchronisation primitives (§2.3.2).
//!
//! Enclaves cannot sleep — `futex` is a syscall — so the SDK's trusted
//! mutex sleeps *outside* the enclave through ocalls:
//!
//! * locking an uncontended mutex succeeds entirely inside the enclave,
//! * locking a contended mutex enqueues the thread and issues the sleep
//!   ocall ([`sync_ocalls::WAIT`]),
//! * unlocking with waiters issues the wake ocall, so **a single contended
//!   lock/unlock pair costs two enclave transitions** — the Short
//!   Synchronisation Calls problem of §3.4.
//!
//! [`SgxHybridMutex`] implements the paper's recommended mitigation: spin
//! inside the enclave a bounded number of times before sleeping.

use std::collections::VecDeque;
use std::fmt;
use std::sync::OnceLock;

use sgx_sim::ThreadToken;
use sim_core::sync::Mutex;
use sim_core::syncev::SyncOp;

use crate::args::CallData;
use crate::enclave::EcallCtx;
use crate::error::SdkResult;
use crate::sync_ocalls;

/// How a lock acquisition completed — exposed for the hybrid-lock ablation
/// experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockPath {
    /// The mutex was free; no ocall was needed.
    Uncontended,
    /// Acquired after in-enclave spinning (hybrid mutex only).
    Spun(u32),
    /// Acquired after sleeping outside the enclave; carries the number of
    /// sleep ocalls issued.
    Slept(u32),
}

impl LockPath {
    /// Encodes the path into the `aux` word of a lock-acquire sync event:
    /// `(count << 8) | path_code`.
    #[must_use]
    pub fn sync_aux(self) -> u64 {
        match self {
            LockPath::Uncontended => 0,
            LockPath::Spun(n) => ((n as u64) << 8) | 1,
            LockPath::Slept(n) => ((n as u64) << 8) | 2,
        }
    }

    /// Decodes a lock-acquire `aux` word; `None` for unknown path codes.
    #[must_use]
    pub fn from_sync_aux(aux: u64) -> Option<LockPath> {
        let count = (aux >> 8) as u32;
        match aux & 0xff {
            0 => Some(LockPath::Uncontended),
            1 => Some(LockPath::Spun(count)),
            2 => Some(LockPath::Slept(count)),
            _ => None,
        }
    }
}

#[derive(Debug, Default)]
struct MutexState {
    owner: Option<ThreadToken>,
    waiters: VecDeque<ThreadToken>,
}

/// Emits a sync event attributed to `ctx`'s thread on the machine's bus.
/// A no-op unless the logger enabled sync-event tracking.
fn emit_sync(
    ctx: &EcallCtx<'_>,
    op: SyncOp,
    object: u64,
    target: Option<ThreadToken>,
    aux: u64,
    label: &str,
) {
    ctx.sync_bus().emit(
        ctx.thread_token().0 as u64,
        op,
        Some(object),
        target.map(|t| t.0 as u64),
        aux,
        label,
    );
}

/// The SDK's trusted mutex (`sgx_thread_mutex_*`).
#[derive(Default)]
pub struct SgxThreadMutex {
    state: Mutex<MutexState>,
    /// Bus object id, allocated on first instrumented use.
    id: OnceLock<u64>,
    /// Optional human label carried into race findings.
    label: OnceLock<String>,
}

impl fmt::Debug for SgxThreadMutex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.state.lock();
        f.debug_struct("SgxThreadMutex")
            .field("owner", &st.owner)
            .field("waiters", &st.waiters.len())
            .finish()
    }
}

impl SgxThreadMutex {
    /// Creates an unlocked mutex.
    pub fn new() -> SgxThreadMutex {
        SgxThreadMutex::default()
    }

    /// Creates an unlocked mutex whose race findings use `label` instead
    /// of a bare object id.
    pub fn named(label: &str) -> SgxThreadMutex {
        let m = SgxThreadMutex::default();
        let _ = m.label.set(label.to_string());
        m
    }

    /// The label race findings use for this mutex, if one was set.
    pub fn label(&self) -> &str {
        self.label.get().map_or("", String::as_str)
    }

    /// Bus object id for sync events, allocated on first use.
    fn object_id(&self, ctx: &EcallCtx<'_>) -> u64 {
        *self.id.get_or_init(|| ctx.sync_bus().alloc_object())
    }

    /// Records a successful acquisition on the sync bus.
    fn emit_acquire(&self, ctx: &EcallCtx<'_>, path: LockPath) {
        emit_sync(
            ctx,
            SyncOp::LockAcquire,
            self.object_id(ctx),
            None,
            path.sync_aux(),
            self.label(),
        );
    }

    /// Attempts to take the lock without ever leaving the enclave.
    pub fn try_lock(&self, ctx: &EcallCtx<'_>) -> bool {
        if self.try_lock_internal(ctx.thread_token()) {
            self.emit_acquire(ctx, LockPath::Uncontended);
            true
        } else {
            false
        }
    }

    fn try_lock_internal(&self, me: ThreadToken) -> bool {
        let mut st = self.state.lock();
        if st.owner.is_none() {
            st.owner = Some(me);
            true
        } else {
            false
        }
    }

    /// Locks the mutex; sleeps outside the enclave while contended.
    ///
    /// # Errors
    ///
    /// Propagates ocall failures (e.g. running outside a simulation when
    /// contended).
    pub fn lock(&self, ctx: &mut EcallCtx<'_>) -> SdkResult<LockPath> {
        let path = self.lock_quiet(ctx)?;
        self.emit_acquire(ctx, path);
        Ok(path)
    }

    /// The lock loop itself, with no sync-event emission (the hybrid mutex
    /// reports its own composite path).
    fn lock_quiet(&self, ctx: &mut EcallCtx<'_>) -> SdkResult<LockPath> {
        let me = ctx.thread_token();
        let mut sleeps = 0u32;
        loop {
            {
                let mut st = self.state.lock();
                if st.owner.is_none() {
                    st.owner = Some(me);
                    return Ok(if sleeps == 0 {
                        LockPath::Uncontended
                    } else {
                        LockPath::Slept(sleeps)
                    });
                }
                if !st.waiters.contains(&me) {
                    st.waiters.push_back(me);
                }
            }
            // Sleep outside the enclave until the owner wakes us.
            ctx.ocall(sync_ocalls::WAIT, &mut CallData::default())?;
            sleeps += 1;
        }
    }

    /// Unlocks the mutex, waking the first waiter (an ocall) if any.
    ///
    /// # Errors
    ///
    /// Propagates ocall failures.
    ///
    /// # Panics
    ///
    /// Panics if the calling thread does not own the mutex.
    pub fn unlock(&self, ctx: &mut EcallCtx<'_>) -> SdkResult<()> {
        let next = self.unlock_internal(ctx.thread_token());
        // The release precedes the wake ocall, so the hold interval the
        // race analysis reconstructs never contains the SET transition.
        emit_sync(
            ctx,
            SyncOp::LockRelease,
            self.object_id(ctx),
            next,
            0,
            self.label(),
        );
        if let Some(next) = next {
            ctx.ocall(sync_ocalls::SET, &mut CallData::new(next.0 as u64))?;
        }
        Ok(())
    }

    /// Releases ownership and pops the next waiter without issuing the
    /// wake ocall (used by condition variables to fuse wake+sleep).
    pub(crate) fn unlock_internal(&self, me: ThreadToken) -> Option<ThreadToken> {
        let mut st = self.state.lock();
        assert_eq!(
            st.owner,
            Some(me),
            "unlock by non-owner {me} (owner: {:?})",
            st.owner
        );
        st.owner = None;
        st.waiters.pop_front()
    }
}

/// The paper's recommended hybrid lock (§3.4): spin inside the enclave up
/// to `spin_budget` times before falling back to the sleep ocall.
pub struct SgxHybridMutex {
    inner: SgxThreadMutex,
    spin_budget: u32,
}

impl fmt::Debug for SgxHybridMutex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SgxHybridMutex")
            .field("spin_budget", &self.spin_budget)
            .field("inner", &self.inner)
            .finish()
    }
}

impl SgxHybridMutex {
    /// Creates a hybrid mutex that spins up to `spin_budget` iterations.
    pub fn new(spin_budget: u32) -> SgxHybridMutex {
        SgxHybridMutex {
            inner: SgxThreadMutex::new(),
            spin_budget,
        }
    }

    /// Locks, preferring bounded spinning over transitions.
    ///
    /// # Errors
    ///
    /// Propagates ocall failures from the sleep fallback.
    pub fn lock(&self, ctx: &mut EcallCtx<'_>) -> SdkResult<LockPath> {
        if self.inner.try_lock_internal(ctx.thread_token()) {
            self.inner.emit_acquire(ctx, LockPath::Uncontended);
            return Ok(LockPath::Uncontended);
        }
        for spin in 1..=self.spin_budget {
            ctx.spin_wait()?;
            if self.inner.try_lock_internal(ctx.thread_token()) {
                let path = LockPath::Spun(spin);
                self.inner.emit_acquire(ctx, path);
                return Ok(path);
            }
        }
        let path = self.inner.lock_quiet(ctx)?;
        self.inner.emit_acquire(ctx, path);
        Ok(path)
    }

    /// Unlocks; wakes a sleeper only if one actually slept.
    ///
    /// # Errors
    ///
    /// Propagates ocall failures.
    pub fn unlock(&self, ctx: &mut EcallCtx<'_>) -> SdkResult<()> {
        self.inner.unlock(ctx)
    }
}

/// The SDK's trusted condition variable (`sgx_thread_cond_*`).
#[derive(Default)]
pub struct SgxCondvar {
    waiters: Mutex<VecDeque<ThreadToken>>,
    /// Bus object id, allocated on first instrumented use.
    id: OnceLock<u64>,
}

impl fmt::Debug for SgxCondvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SgxCondvar({} waiters)", self.waiters.lock().len())
    }
}

impl SgxCondvar {
    /// Creates a condition variable with no waiters.
    pub fn new() -> SgxCondvar {
        SgxCondvar::default()
    }

    /// Releases `mutex`, sleeps until signalled, re-acquires `mutex`.
    /// When releasing the mutex needs to wake a waiter, the wake and the
    /// sleep are fused into the single "setwait" ocall (§4.1.3, call
    /// type iv).
    ///
    /// # Errors
    ///
    /// Propagates ocall failures.
    pub fn wait(&self, ctx: &mut EcallCtx<'_>, mutex: &SgxThreadMutex) -> SdkResult<()> {
        let me = ctx.thread_token();
        self.waiters.lock().push_back(me);
        let next = mutex.unlock_internal(me);
        emit_sync(
            ctx,
            SyncOp::LockRelease,
            mutex.object_id(ctx),
            next,
            0,
            mutex.label(),
        );
        emit_sync(
            ctx,
            SyncOp::CondWait,
            self.object_id(ctx),
            None,
            mutex.object_id(ctx),
            "",
        );
        match next {
            Some(next) => {
                ctx.ocall(sync_ocalls::SETWAIT, &mut CallData::new(next.0 as u64))?;
            }
            None => {
                ctx.ocall(sync_ocalls::WAIT, &mut CallData::default())?;
            }
        }
        mutex.lock(ctx)?;
        Ok(())
    }

    /// Bus object id for sync events, allocated on first use.
    fn object_id(&self, ctx: &EcallCtx<'_>) -> u64 {
        *self.id.get_or_init(|| ctx.sync_bus().alloc_object())
    }

    /// Wakes one waiter, if any (one ocall).
    ///
    /// # Errors
    ///
    /// Propagates ocall failures.
    pub fn signal(&self, ctx: &mut EcallCtx<'_>) -> SdkResult<()> {
        let next = self.waiters.lock().pop_front();
        if let Some(next) = next {
            emit_sync(
                ctx,
                SyncOp::CondSignal,
                self.object_id(ctx),
                Some(next),
                0,
                "",
            );
            ctx.ocall(sync_ocalls::SET, &mut CallData::new(next.0 as u64))?;
        }
        Ok(())
    }

    /// Wakes all waiters with a single "set multiple" ocall.
    ///
    /// # Errors
    ///
    /// Propagates ocall failures.
    pub fn broadcast(&self, ctx: &mut EcallCtx<'_>) -> SdkResult<()> {
        let woken: Vec<ThreadToken> = self.waiters.lock().drain(..).collect();
        if !woken.is_empty() {
            for t in &woken {
                emit_sync(
                    ctx,
                    SyncOp::CondSignal,
                    self.object_id(ctx),
                    Some(*t),
                    0,
                    "",
                );
            }
            let all: Vec<u64> = woken.iter().map(|t| t.0 as u64).collect();
            ctx.ocall(
                sync_ocalls::SET_MULTIPLE,
                &mut CallData::default().with_aux(all),
            )?;
        }
        Ok(())
    }
}
