//! In-enclave synchronisation primitives (§2.3.2).
//!
//! Enclaves cannot sleep — `futex` is a syscall — so the SDK's trusted
//! mutex sleeps *outside* the enclave through ocalls:
//!
//! * locking an uncontended mutex succeeds entirely inside the enclave,
//! * locking a contended mutex enqueues the thread and issues the sleep
//!   ocall ([`sync_ocalls::WAIT`]),
//! * unlocking with waiters issues the wake ocall, so **a single contended
//!   lock/unlock pair costs two enclave transitions** — the Short
//!   Synchronisation Calls problem of §3.4.
//!
//! [`SgxHybridMutex`] implements the paper's recommended mitigation: spin
//! inside the enclave a bounded number of times before sleeping.

use std::collections::VecDeque;
use std::fmt;

use sgx_sim::ThreadToken;
use sim_core::sync::Mutex;

use crate::args::CallData;
use crate::enclave::EcallCtx;
use crate::error::SdkResult;
use crate::sync_ocalls;

/// How a lock acquisition completed — exposed for the hybrid-lock ablation
/// experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockPath {
    /// The mutex was free; no ocall was needed.
    Uncontended,
    /// Acquired after in-enclave spinning (hybrid mutex only).
    Spun(u32),
    /// Acquired after sleeping outside the enclave; carries the number of
    /// sleep ocalls issued.
    Slept(u32),
}

#[derive(Debug, Default)]
struct MutexState {
    owner: Option<ThreadToken>,
    waiters: VecDeque<ThreadToken>,
}

/// The SDK's trusted mutex (`sgx_thread_mutex_*`).
#[derive(Default)]
pub struct SgxThreadMutex {
    state: Mutex<MutexState>,
}

impl fmt::Debug for SgxThreadMutex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.state.lock();
        f.debug_struct("SgxThreadMutex")
            .field("owner", &st.owner)
            .field("waiters", &st.waiters.len())
            .finish()
    }
}

impl SgxThreadMutex {
    /// Creates an unlocked mutex.
    pub fn new() -> SgxThreadMutex {
        SgxThreadMutex::default()
    }

    /// Attempts to take the lock without ever leaving the enclave.
    pub fn try_lock(&self, ctx: &EcallCtx<'_>) -> bool {
        let mut st = self.state.lock();
        if st.owner.is_none() {
            st.owner = Some(ctx.thread_token());
            true
        } else {
            false
        }
    }

    /// Locks the mutex; sleeps outside the enclave while contended.
    ///
    /// # Errors
    ///
    /// Propagates ocall failures (e.g. running outside a simulation when
    /// contended).
    pub fn lock(&self, ctx: &mut EcallCtx<'_>) -> SdkResult<LockPath> {
        let me = ctx.thread_token();
        let mut sleeps = 0u32;
        loop {
            {
                let mut st = self.state.lock();
                if st.owner.is_none() {
                    st.owner = Some(me);
                    return Ok(if sleeps == 0 {
                        LockPath::Uncontended
                    } else {
                        LockPath::Slept(sleeps)
                    });
                }
                if !st.waiters.contains(&me) {
                    st.waiters.push_back(me);
                }
            }
            // Sleep outside the enclave until the owner wakes us.
            ctx.ocall(sync_ocalls::WAIT, &mut CallData::default())?;
            sleeps += 1;
        }
    }

    /// Unlocks the mutex, waking the first waiter (an ocall) if any.
    ///
    /// # Errors
    ///
    /// Propagates ocall failures.
    ///
    /// # Panics
    ///
    /// Panics if the calling thread does not own the mutex.
    pub fn unlock(&self, ctx: &mut EcallCtx<'_>) -> SdkResult<()> {
        if let Some(next) = self.unlock_internal(ctx.thread_token()) {
            ctx.ocall(sync_ocalls::SET, &mut CallData::new(next.0 as u64))?;
        }
        Ok(())
    }

    /// Releases ownership and pops the next waiter without issuing the
    /// wake ocall (used by condition variables to fuse wake+sleep).
    pub(crate) fn unlock_internal(&self, me: ThreadToken) -> Option<ThreadToken> {
        let mut st = self.state.lock();
        assert_eq!(
            st.owner,
            Some(me),
            "unlock by non-owner {me} (owner: {:?})",
            st.owner
        );
        st.owner = None;
        st.waiters.pop_front()
    }
}

/// The paper's recommended hybrid lock (§3.4): spin inside the enclave up
/// to `spin_budget` times before falling back to the sleep ocall.
pub struct SgxHybridMutex {
    inner: SgxThreadMutex,
    spin_budget: u32,
}

impl fmt::Debug for SgxHybridMutex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SgxHybridMutex")
            .field("spin_budget", &self.spin_budget)
            .field("inner", &self.inner)
            .finish()
    }
}

impl SgxHybridMutex {
    /// Creates a hybrid mutex that spins up to `spin_budget` iterations.
    pub fn new(spin_budget: u32) -> SgxHybridMutex {
        SgxHybridMutex {
            inner: SgxThreadMutex::new(),
            spin_budget,
        }
    }

    /// Locks, preferring bounded spinning over transitions.
    ///
    /// # Errors
    ///
    /// Propagates ocall failures from the sleep fallback.
    pub fn lock(&self, ctx: &mut EcallCtx<'_>) -> SdkResult<LockPath> {
        if self.inner.try_lock(ctx) {
            return Ok(LockPath::Uncontended);
        }
        for spin in 1..=self.spin_budget {
            ctx.spin_wait()?;
            if self.inner.try_lock(ctx) {
                return Ok(LockPath::Spun(spin));
            }
        }
        self.inner.lock(ctx)
    }

    /// Unlocks; wakes a sleeper only if one actually slept.
    ///
    /// # Errors
    ///
    /// Propagates ocall failures.
    pub fn unlock(&self, ctx: &mut EcallCtx<'_>) -> SdkResult<()> {
        self.inner.unlock(ctx)
    }
}

/// The SDK's trusted condition variable (`sgx_thread_cond_*`).
#[derive(Default)]
pub struct SgxCondvar {
    waiters: Mutex<VecDeque<ThreadToken>>,
}

impl fmt::Debug for SgxCondvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SgxCondvar({} waiters)", self.waiters.lock().len())
    }
}

impl SgxCondvar {
    /// Creates a condition variable with no waiters.
    pub fn new() -> SgxCondvar {
        SgxCondvar::default()
    }

    /// Releases `mutex`, sleeps until signalled, re-acquires `mutex`.
    /// When releasing the mutex needs to wake a waiter, the wake and the
    /// sleep are fused into the single "setwait" ocall (§4.1.3, call
    /// type iv).
    ///
    /// # Errors
    ///
    /// Propagates ocall failures.
    pub fn wait(&self, ctx: &mut EcallCtx<'_>, mutex: &SgxThreadMutex) -> SdkResult<()> {
        let me = ctx.thread_token();
        self.waiters.lock().push_back(me);
        match mutex.unlock_internal(me) {
            Some(next) => {
                ctx.ocall(sync_ocalls::SETWAIT, &mut CallData::new(next.0 as u64))?;
            }
            None => {
                ctx.ocall(sync_ocalls::WAIT, &mut CallData::default())?;
            }
        }
        mutex.lock(ctx)?;
        Ok(())
    }

    /// Wakes one waiter, if any (one ocall).
    ///
    /// # Errors
    ///
    /// Propagates ocall failures.
    pub fn signal(&self, ctx: &mut EcallCtx<'_>) -> SdkResult<()> {
        let next = self.waiters.lock().pop_front();
        if let Some(next) = next {
            ctx.ocall(sync_ocalls::SET, &mut CallData::new(next.0 as u64))?;
        }
        Ok(())
    }

    /// Wakes all waiters with a single "set multiple" ocall.
    ///
    /// # Errors
    ///
    /// Propagates ocall failures.
    pub fn broadcast(&self, ctx: &mut EcallCtx<'_>) -> SdkResult<()> {
        let all: Vec<u64> = self.waiters.lock().drain(..).map(|t| t.0 as u64).collect();
        if !all.is_empty() {
            ctx.ocall(
                sync_ocalls::SET_MULTIPLE,
                &mut CallData::default().with_aux(all),
            )?;
        }
        Ok(())
    }
}
