//! The dynamic-loader model with `LD_PRELOAD`-style interposition.
//!
//! On a real system the sgx-perf logger is a shared library preloaded via
//! `LD_PRELOAD`; the dynamic linker then resolves the application's calls
//! to `sgx_ecall` (and to `signal`/`sigaction`) to the logger's shadow
//! implementations, which forward to the real URTS (Figure 2). [`Loader`]
//! reproduces that resolution step: the application always calls
//! [`Loader::sgx_ecall`]; [`Loader::preload`] pushes an interposing
//! [`EcallDispatcher`] on top of the chain.

use std::sync::Arc;

use sgx_sim::EnclaveId;
use sim_core::sync::RwLock;

use crate::args::CallData;
use crate::error::SdkResult;
use crate::ocall::OcallTable;
use crate::signals::SignalRegistry;
use crate::thread_ctx::ThreadCtx;
use crate::urts::Urts;

/// Anything that can stand in the `sgx_ecall` resolution chain: the real
/// URTS at the bottom, interposition libraries above it.
pub trait EcallDispatcher: Send + Sync {
    /// Dispatches an ecall. Interposers record what they need and forward
    /// to the next dispatcher in the chain.
    fn sgx_ecall(
        &self,
        tcx: &ThreadCtx<'_>,
        eid: EnclaveId,
        index: usize,
        table: &Arc<OcallTable>,
        data: &mut CallData,
    ) -> SdkResult<()>;
}

/// The process's symbol-resolution state for the SDK entry points.
pub struct Loader {
    urts: Arc<Urts>,
    top: RwLock<Arc<dyn EcallDispatcher>>,
    signals: SignalRegistry,
}

impl std::fmt::Debug for Loader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Loader").finish_non_exhaustive()
    }
}

impl Loader {
    pub(crate) fn new(urts: Arc<Urts>) -> Loader {
        Loader {
            top: RwLock::new(Arc::clone(&urts) as Arc<dyn EcallDispatcher>),
            urts,
            signals: SignalRegistry::new(),
        }
    }

    /// The real URTS at the bottom of the chain.
    pub fn urts_arc(&self) -> Arc<Urts> {
        Arc::clone(&self.urts)
    }

    /// Preloads an interposition library: `wrap` receives the current top
    /// of the chain (what `dlsym(RTLD_NEXT, "sgx_ecall")` would return) and
    /// produces the new top.
    pub fn preload(&self, wrap: impl FnOnce(Arc<dyn EcallDispatcher>) -> Arc<dyn EcallDispatcher>) {
        let mut top = self.top.write();
        let next = Arc::clone(&*top);
        *top = wrap(next);
    }

    /// The application-facing `sgx_ecall` symbol: resolves to the top of
    /// the preload chain.
    ///
    /// # Errors
    ///
    /// Whatever the dispatch chain returns (unknown enclave, interface
    /// violations, hardware errors, ...).
    pub fn sgx_ecall(
        &self,
        tcx: &ThreadCtx<'_>,
        eid: EnclaveId,
        index: usize,
        table: &Arc<OcallTable>,
        data: &mut CallData,
    ) -> SdkResult<()> {
        let top = Arc::clone(&*self.top.read());
        top.sgx_ecall(tcx, eid, index, table, data)
    }

    /// The process signal registry (also interposable — the logger shadows
    /// `signal`/`sigaction` to keep other handlers alive behind its own).
    pub fn signals(&self) -> &SignalRegistry {
        &self.signals
    }
}
