//! Per-call thread context.

use sgx_sim::ThreadToken;
use sim_threads::SimCtx;

/// Identifies the calling thread and, when running under the deterministic
/// scheduler, carries its scheduling handle (needed by the sleep/wake
/// synchronisation ocalls).
///
/// `ThreadCtx` is passed by reference down the whole call chain — exactly
/// like the implicit "current OS thread" of the real SDK.
#[derive(Debug, Clone, Copy)]
pub struct ThreadCtx<'a> {
    /// Stable identifier recorded in trace events.
    pub token: ThreadToken,
    /// Scheduling handle, if under `sim_threads`.
    pub sim: Option<&'a SimCtx>,
}

impl<'a> ThreadCtx<'a> {
    /// The implicit main thread of a single-threaded workload.
    pub fn main() -> ThreadCtx<'static> {
        ThreadCtx {
            token: ThreadToken::MAIN,
            sim: None,
        }
    }

    /// A context for a logical thread of a [`sim_threads::Simulation`]; its
    /// token is the logical thread id.
    pub fn from_sim(sim: &'a SimCtx) -> ThreadCtx<'a> {
        ThreadCtx {
            token: ThreadToken(sim.id().0),
            sim: Some(sim),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn main_thread_is_token_zero() {
        let tcx = ThreadCtx::main();
        assert_eq!(tcx.token, ThreadToken::MAIN);
        assert!(tcx.sim.is_none());
    }
}
