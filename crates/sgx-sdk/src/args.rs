//! Marshalled call arguments.

/// The marshalled argument frame of an ecall or ocall.
///
/// The real `sgx_edger8r` generates one struct per call holding by-value
/// arguments and pointers plus buffer sizes; the URTS/TRTS copy `[in]`
/// buffers across the boundary before the call and `[out]` buffers after.
/// The simulation keeps the same *shape* without real payloads: scalar
/// arguments travel in [`CallData::scalar`]/[`CallData::aux`], and buffer
/// sizes drive the boundary-copy cost model.
///
/// # Examples
///
/// ```
/// use sgx_sdk::CallData;
///
/// // An ecall passing a 4 KiB input buffer and expecting a 256 B reply.
/// let data = CallData::new(0).with_in_bytes(4096).with_out_bytes(256);
/// assert_eq!(data.in_bytes, 4096);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CallData {
    /// Primary by-value argument (e.g. a length, fd, or packed flags).
    pub scalar: u64,
    /// Additional by-value arguments (e.g. thread lists for the
    /// wake-multiple sync ocall).
    pub aux: Vec<u64>,
    /// Bytes of `[in]` buffers copied toward the callee before the call.
    pub in_bytes: usize,
    /// Bytes of `[out]` buffers copied back after the call.
    pub out_bytes: usize,
    /// Return value produced by the callee.
    pub ret: u64,
}

impl CallData {
    /// Creates call data with a scalar argument.
    pub fn new(scalar: u64) -> CallData {
        CallData {
            scalar,
            ..CallData::default()
        }
    }

    /// Sets the `[in]` buffer size.
    pub fn with_in_bytes(mut self, bytes: usize) -> CallData {
        self.in_bytes = bytes;
        self
    }

    /// Sets the `[out]` buffer size.
    pub fn with_out_bytes(mut self, bytes: usize) -> CallData {
        self.out_bytes = bytes;
        self
    }

    /// Sets auxiliary scalar arguments.
    pub fn with_aux(mut self, aux: Vec<u64>) -> CallData {
        self.aux = aux;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let d = CallData::new(7)
            .with_in_bytes(10)
            .with_out_bytes(20)
            .with_aux(vec![1, 2]);
        assert_eq!(d.scalar, 7);
        assert_eq!(d.in_bytes, 10);
        assert_eq!(d.out_bytes, 20);
        assert_eq!(d.aux, vec![1, 2]);
        assert_eq!(d.ret, 0);
    }
}
