//! Ocall tables and the untrusted-side call context.
//!
//! The SDK constructs a table mapping numeric ocall identifiers to function
//! pointers which is passed to `sgx_ecall` and saved inside the URTS for
//! later use (Figure 3 of the paper). Because the table is plain data, a
//! preloaded library can substitute its own table whose entries are
//! generated call stubs — exactly what the sgx-perf logger does.

use std::fmt;
use std::sync::Arc;

use sgx_edl::InterfaceSpec;
use sgx_sim::{EnclaveId, Machine, ThreadToken};
use sim_core::{Clock, Nanos};
use sim_threads::LogicalThreadId;

use crate::args::CallData;
use crate::error::{SdkError, SdkResult};
use crate::sync_ocalls;
use crate::thread_ctx::ThreadCtx;
use crate::urts::Urts;

/// An untrusted ocall implementation.
pub type OcallFn = Arc<dyn Fn(&mut HostCtx<'_>, &mut CallData) -> SdkResult<()> + Send + Sync>;

/// One slot of an [`OcallTable`].
#[derive(Clone)]
pub struct OcallEntry {
    /// The ocall's name (diagnostics and logger classification).
    pub name: String,
    /// The function pointer.
    pub func: OcallFn,
}

impl fmt::Debug for OcallEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OcallEntry")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

/// The per-enclave table mapping ocall indexes to untrusted functions.
#[derive(Debug, Clone, Default)]
pub struct OcallTable {
    entries: Vec<OcallEntry>,
}

impl OcallTable {
    /// The entry at `index`.
    pub fn entry(&self, index: usize) -> Option<&OcallEntry> {
        self.entries.get(index)
    }

    /// Finds the index of an ocall by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.entries.iter().position(|e| e.name == name)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All entries in index order.
    pub fn entries(&self) -> &[OcallEntry] {
        &self.entries
    }

    /// Produces a new table with every entry replaced by
    /// `wrap(index, name, original)` — the primitive the sgx-perf logger
    /// uses to generate its call-stub table (`oT_logger` in Figure 3).
    pub fn wrap(&self, mut wrap: impl FnMut(usize, &str, OcallFn) -> OcallFn) -> OcallTable {
        OcallTable {
            entries: self
                .entries
                .iter()
                .enumerate()
                .map(|(i, e)| OcallEntry {
                    name: e.name.clone(),
                    func: wrap(i, &e.name, Arc::clone(&e.func)),
                })
                .collect(),
        }
    }
}

/// Builds an [`OcallTable`] against an enclave interface, pre-registering
/// the SDK's four synchronisation ocalls with their standard untrusted
/// implementations (sleep = park the logical thread, wake = unpark).
pub struct OcallTableBuilder {
    names: Vec<String>,
    impls: Vec<Option<OcallFn>>,
}

impl fmt::Debug for OcallTableBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OcallTableBuilder")
            .field("names", &self.names)
            .finish_non_exhaustive()
    }
}

impl OcallTableBuilder {
    /// Starts a builder for the given interface. Slots exist for every
    /// declared ocall, in index order; sync ocalls found in the interface
    /// get their default implementations immediately.
    pub fn new(spec: &InterfaceSpec) -> OcallTableBuilder {
        let names: Vec<String> = spec.ocalls().iter().map(|o| o.name.clone()).collect();
        let impls = names.iter().map(|name| default_sync_impl(name)).collect();
        OcallTableBuilder { names, impls }
    }

    /// Registers the untrusted implementation of `name`.
    ///
    /// # Errors
    ///
    /// [`SdkError::BadOcall`] if the interface declares no such ocall.
    pub fn register(
        &mut self,
        name: &str,
        f: impl Fn(&mut HostCtx<'_>, &mut CallData) -> SdkResult<()> + Send + Sync + 'static,
    ) -> SdkResult<&mut Self> {
        let idx = self
            .names
            .iter()
            .position(|n| n == name)
            .ok_or_else(|| SdkError::BadOcall(name.to_string()))?;
        self.impls[idx] = Some(Arc::new(f));
        Ok(self)
    }

    /// Finalises the table.
    ///
    /// # Errors
    ///
    /// [`SdkError::UnregisteredOcall`] if a declared ocall has no
    /// implementation.
    pub fn build(self) -> SdkResult<OcallTable> {
        let mut entries = Vec::with_capacity(self.names.len());
        for (name, func) in self.names.into_iter().zip(self.impls) {
            let func = func.ok_or_else(|| SdkError::UnregisteredOcall(name.clone()))?;
            entries.push(OcallEntry { name, func });
        }
        Ok(OcallTable { entries })
    }
}

/// Default implementations of the four SDK sync ocalls.
fn default_sync_impl(name: &str) -> Option<OcallFn> {
    match name {
        sync_ocalls::WAIT => Some(Arc::new(|host: &mut HostCtx<'_>, _data: &mut CallData| {
            host.park()
        })),
        sync_ocalls::SET => Some(Arc::new(|host: &mut HostCtx<'_>, data: &mut CallData| {
            // Wake-up ocalls are "typically very short (<10us)" (§2.3.2);
            // model the futex-wake syscall cost.
            host.compute(Nanos::from_nanos(800));
            host.unpark(ThreadToken(data.scalar as usize))
        })),
        sync_ocalls::SETWAIT => Some(Arc::new(|host: &mut HostCtx<'_>, data: &mut CallData| {
            host.compute(Nanos::from_nanos(800));
            host.unpark(ThreadToken(data.scalar as usize))?;
            host.park()
        })),
        sync_ocalls::SET_MULTIPLE => {
            Some(Arc::new(|host: &mut HostCtx<'_>, data: &mut CallData| {
                for &target in &data.aux.clone() {
                    host.compute(Nanos::from_nanos(400));
                    host.unpark(ThreadToken(target as usize))?;
                }
                Ok(())
            }))
        }
        _ => None,
    }
}

/// The untrusted execution context passed to ocall implementations.
///
/// Ocall bodies run outside the enclave: they can burn untrusted CPU time
/// ([`HostCtx::compute`]), re-enter the enclave through allowed nested
/// ecalls ([`HostCtx::ecall`] — dispatched through the loader, so
/// interposed libraries see them), and park/unpark logical threads (the
/// sync ocalls).
pub struct HostCtx<'a> {
    pub(crate) machine: &'a Arc<Machine>,
    pub(crate) urts: &'a Arc<Urts>,
    pub(crate) enclave_id: EnclaveId,
    /// The calling thread.
    pub thread: ThreadCtx<'a>,
}

impl fmt::Debug for HostCtx<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HostCtx")
            .field("enclave", &self.enclave_id)
            .field("thread", &self.thread.token)
            .finish()
    }
}

impl<'a> HostCtx<'a> {
    /// The virtual clock.
    pub fn clock(&self) -> &Clock {
        self.machine.clock()
    }

    /// The enclave this ocall left.
    pub fn enclave_id(&self) -> EnclaveId {
        self.enclave_id
    }

    /// Performs `dur` of untrusted computation (no AEXs are modelled
    /// outside the enclave; plain clock advance).
    pub fn compute(&self, dur: Nanos) {
        self.machine.clock().advance(dur);
    }

    /// Issues a nested ecall by name through the dynamic loader (so any
    /// preloaded interposition library observes it).
    ///
    /// # Errors
    ///
    /// Fails with [`SdkError::EcallNotAllowed`] if the current ocall's
    /// `allow()` list does not include the ecall, plus all usual dispatch
    /// errors.
    pub fn ecall(&self, name: &str, data: &mut CallData) -> SdkResult<()> {
        let enclave = self.urts.enclave(self.enclave_id)?;
        let index = enclave
            .spec()
            .ecall_by_name(name)
            .ok_or_else(|| SdkError::BadEcall(name.to_string()))?
            .index;
        let loader = self.urts.loader()?;
        // Nested ecalls pass the table currently saved in the URTS (the
        // generated code reuses the enclave's table).
        let table = self.urts.saved_table(self.enclave_id)?;
        loader.sgx_ecall(&self.thread, self.enclave_id, index, &table, data)
    }

    /// Parks the calling logical thread until unparked.
    ///
    /// # Errors
    ///
    /// [`SdkError::NoSimulationThread`] outside a `sim_threads` simulation.
    pub fn park(&self) -> SdkResult<()> {
        let sim = self
            .thread
            .sim
            .ok_or_else(|| SdkError::NoSimulationThread(sync_ocalls::WAIT.to_string()))?;
        sim.park();
        Ok(())
    }

    /// Unparks the logical thread identified by `target`.
    ///
    /// # Errors
    ///
    /// [`SdkError::NoSimulationThread`] outside a `sim_threads` simulation.
    pub fn unpark(&self, target: ThreadToken) -> SdkResult<()> {
        let sim = self
            .thread
            .sim
            .ok_or_else(|| SdkError::NoSimulationThread(sync_ocalls::SET.to_string()))?;
        sim.unpark(LogicalThreadId(target.0));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgx_edl::InterfaceBuilder;

    fn spec_with_sync() -> InterfaceSpec {
        crate::runtime::with_sync_ocalls(
            &InterfaceBuilder::new()
                .public_ecall("e", vec![])
                .ocall("o", vec![])
                .build()
                .unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn builder_prefills_sync_ocalls() {
        let spec = spec_with_sync();
        let mut b = OcallTableBuilder::new(&spec);
        b.register("o", |_, _| Ok(())).unwrap();
        let table = b.build().unwrap();
        assert_eq!(table.len(), 5);
        for name in sync_ocalls::ALL {
            assert!(table.index_of(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn unregistered_ocall_fails_build() {
        let spec = spec_with_sync();
        let b = OcallTableBuilder::new(&spec);
        let err = b.build().unwrap_err();
        assert!(matches!(err, SdkError::UnregisteredOcall(n) if n == "o"));
    }

    #[test]
    fn register_unknown_name_fails() {
        let spec = spec_with_sync();
        let mut b = OcallTableBuilder::new(&spec);
        let err = b.register("nope", |_, _| Ok(())).unwrap_err();
        assert!(matches!(err, SdkError::BadOcall(_)));
    }

    #[test]
    fn wrap_preserves_names_and_order() {
        let spec = spec_with_sync();
        let mut b = OcallTableBuilder::new(&spec);
        b.register("o", |_, _| Ok(())).unwrap();
        let table = b.build().unwrap();
        let wrapped = table.wrap(|_, _, orig| orig);
        assert_eq!(wrapped.len(), table.len());
        for (a, b) in table.entries().iter().zip(wrapped.entries()) {
            assert_eq!(a.name, b.name);
        }
    }
}
