//! The enclave object and its trusted execution context (TRTS side).

use std::collections::HashMap;
use std::fmt;
use std::ops::Range;
use std::sync::Arc;

use sgx_edl::InterfaceSpec;
use sgx_sim::{AccessKind, EnclaveId, Machine, ThreadToken, TouchStats};
use sim_core::fault::{FaultAction, FaultEvent, FaultKind, OcallFault};
use sim_core::sync::{Mutex, RwLock};
use sim_core::Nanos;

use crate::args::CallData;
use crate::error::{SdkError, SdkResult};
use crate::ocall::HostCtx;
use crate::switchless::Switchless;
use crate::thread_ctx::ThreadCtx;
use crate::urts::Urts;

/// A trusted function body.
pub type EcallFn = Arc<dyn Fn(&mut EcallCtx<'_>, &mut CallData) -> SdkResult<()> + Send + Sync>;

/// Retry budget for injected transient faults: failed attempts the SDK
/// rides out (with exponential backoff) before surfacing
/// [`SdkError::InjectedFault`].
pub const MAX_FAULT_RETRIES: u32 = 4;

/// Exponential backoff before retry `n` (1-based): 2 µs, 4 µs, 8 µs, …
pub(crate) fn fault_backoff(attempt: u32) -> Nanos {
    Nanos::from_micros(1u64 << attempt.min(10))
}

/// One frame of a thread's enclave call stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Frame {
    /// An ecall with the given index is executing.
    Ecall(usize),
    /// An ocall with the given index is in progress.
    Ocall(usize),
}

#[derive(Debug)]
struct BoundThread {
    tcs_index: usize,
    frames: Vec<Frame>,
}

#[derive(Debug)]
struct ThreadState {
    free_tcs: Vec<usize>,
    bound: HashMap<ThreadToken, BoundThread>,
}

/// A loaded enclave: interface, registered trusted functions, TCS pool and
/// per-thread call stacks.
///
/// Created through [`Runtime::create_enclave`](crate::Runtime::create_enclave).
pub struct Enclave {
    id: EnclaveId,
    spec: InterfaceSpec,
    machine: Arc<Machine>,
    ecalls: RwLock<Vec<Option<EcallFn>>>,
    threads: Mutex<ThreadState>,
    switchless: RwLock<Option<Arc<Switchless>>>,
}

impl Enclave {
    /// The machine this enclave lives on.
    pub fn machine(&self) -> &Arc<Machine> {
        &self.machine
    }
}

impl fmt::Debug for Enclave {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Enclave")
            .field("id", &self.id)
            .field("ecalls", &self.spec.ecalls().len())
            .field("ocalls", &self.spec.ocalls().len())
            .finish()
    }
}

impl Enclave {
    pub(crate) fn new(
        id: EnclaveId,
        spec: InterfaceSpec,
        machine: Arc<Machine>,
        tcs_count: usize,
    ) -> Enclave {
        let ecall_count = spec.ecalls().len();
        Enclave {
            id,
            spec,
            machine,
            ecalls: RwLock::new(vec![None; ecall_count]),
            threads: Mutex::new(ThreadState {
                free_tcs: (0..tcs_count).rev().collect(),
                bound: HashMap::new(),
            }),
            switchless: RwLock::new(None),
        }
    }

    /// The enclave's switchless subsystem, if
    /// [`Runtime::enable_switchless`](crate::Runtime::enable_switchless)
    /// set one up.
    pub fn switchless(&self) -> Option<Arc<Switchless>> {
        self.switchless.read().clone()
    }

    pub(crate) fn set_switchless(&self, sw: Arc<Switchless>) {
        *self.switchless.write() = Some(sw);
    }

    /// The enclave id.
    pub fn id(&self) -> EnclaveId {
        self.id
    }

    /// The (effective) enclave interface, including the implicitly imported
    /// synchronisation ocalls.
    pub fn spec(&self) -> &InterfaceSpec {
        &self.spec
    }

    /// Registers the trusted implementation of a declared ecall.
    ///
    /// # Errors
    ///
    /// [`SdkError::BadEcall`] if the interface declares no such ecall.
    pub fn register_ecall(
        &self,
        name: &str,
        f: impl Fn(&mut EcallCtx<'_>, &mut CallData) -> SdkResult<()> + Send + Sync + 'static,
    ) -> SdkResult<()> {
        let index = self
            .spec
            .ecall_by_name(name)
            .ok_or_else(|| SdkError::BadEcall(name.to_string()))?
            .index;
        self.ecalls.write()[index] = Some(Arc::new(f));
        Ok(())
    }

    pub(crate) fn ecall_impl(&self, index: usize) -> SdkResult<EcallFn> {
        let name = || {
            self.spec
                .ecalls()
                .get(index)
                .map(|e| e.name.clone())
                .unwrap_or_else(|| format!("#{index}"))
        };
        self.ecalls
            .read()
            .get(index)
            .ok_or_else(|| SdkError::BadEcall(name()))?
            .clone()
            .ok_or_else(|| SdkError::UnregisteredEcall(name()))
    }

    /// The calling thread's current call stack (empty if it is not inside
    /// the enclave).
    pub fn frames_of(&self, token: ThreadToken) -> Vec<Frame> {
        self.threads
            .lock()
            .bound
            .get(&token)
            .map(|b| b.frames.clone())
            .unwrap_or_default()
    }

    /// Binds the thread to a TCS (reusing an existing binding for nested
    /// calls) and returns the TCS index.
    pub(crate) fn bind_tcs(&self, token: ThreadToken) -> SdkResult<usize> {
        let mut st = self.threads.lock();
        if let Some(bound) = st.bound.get(&token) {
            return Ok(bound.tcs_index);
        }
        let tcs_index = st.free_tcs.pop().ok_or(SdkError::OutOfTcs(self.id))?;
        st.bound.insert(
            token,
            BoundThread {
                tcs_index,
                frames: Vec::new(),
            },
        );
        Ok(tcs_index)
    }

    pub(crate) fn push_frame(&self, token: ThreadToken, frame: Frame) {
        let mut st = self.threads.lock();
        st.bound
            .get_mut(&token)
            .expect("push_frame on unbound thread")
            .frames
            .push(frame);
    }

    pub(crate) fn pop_frame(&self, token: ThreadToken) {
        let mut st = self.threads.lock();
        let release = {
            let bound = st
                .bound
                .get_mut(&token)
                .expect("pop_frame on unbound thread");
            bound.frames.pop();
            bound.frames.is_empty()
        };
        if release {
            let bound = st.bound.remove(&token).expect("checked above");
            st.free_tcs.push(bound.tcs_index);
        }
    }
}

/// The trusted execution context handed to every ecall body.
///
/// Gives trusted code the operations real enclave code has: CPU time
/// ([`EcallCtx::compute`], subject to AEX injection), enclave memory
/// accesses ([`EcallCtx::touch`], subject to EPC paging), and ocalls
/// ([`EcallCtx::ocall`], dispatched through the ocall table saved in the
/// URTS — so a logger-substituted table sees them).
pub struct EcallCtx<'a> {
    pub(crate) enclave: &'a Arc<Enclave>,
    pub(crate) urts: &'a Arc<Urts>,
    pub(crate) thread: ThreadCtx<'a>,
    pub(crate) tcs_index: usize,
}

impl fmt::Debug for EcallCtx<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EcallCtx")
            .field("enclave", &self.enclave.id())
            .field("thread", &self.thread.token)
            .field("tcs", &self.tcs_index)
            .finish()
    }
}

impl<'a> EcallCtx<'a> {
    /// The enclave this code runs in.
    pub fn enclave(&self) -> &Enclave {
        self.enclave
    }

    /// The calling thread's token.
    pub fn thread_token(&self) -> ThreadToken {
        self.thread.token
    }

    /// The thread context (for spawning nested work, sync primitives).
    pub fn thread(&self) -> &ThreadCtx<'a> {
        &self.thread
    }

    /// The machine's synchronisation event bus (see [`sim_core::syncev`]).
    pub fn sync_bus(&self) -> &Arc<sim_core::SyncBus> {
        self.urts.machine().sync_bus()
    }

    /// The TCS index this thread entered on.
    pub fn tcs_index(&self) -> usize {
        self.tcs_index
    }

    /// Performs `dur` of trusted computation. Timer interrupts crossing the
    /// execution cause AEXs; returns how many were taken.
    ///
    /// # Errors
    ///
    /// Propagates hardware-layer failures.
    pub fn compute(&self, dur: Nanos) -> SdkResult<u64> {
        self.urts
            .machine()
            .execute_in_enclave(self.enclave.id(), self.thread.token, dur)
            .map_err(SdkError::from)
    }

    /// Accesses a range of enclave pages (EPC paging and MMU faults apply).
    ///
    /// # Errors
    ///
    /// Propagates hardware-layer failures (segfaults, unhandled faults).
    pub fn touch(&self, pages: Range<usize>, access: AccessKind) -> SdkResult<TouchStats> {
        self.urts
            .machine()
            .touch(self.enclave.id(), self.thread.token, pages, access)
            .map_err(SdkError::from)
    }

    /// The enclave's heap page range, for [`EcallCtx::touch`].
    pub fn heap_range(&self) -> SdkResult<Range<usize>> {
        self.urts
            .machine()
            .heap_range(self.enclave.id())
            .map_err(SdkError::from)
    }

    /// The enclave's code page range, for [`EcallCtx::touch`].
    pub fn code_range(&self) -> SdkResult<Range<usize>> {
        self.urts
            .machine()
            .code_range(self.enclave.id())
            .map_err(SdkError::from)
    }

    /// Grows the enclave heap by `pages` using SGX v2 dynamic memory
    /// (`EAUG`+`EACCEPT`) — the trusted allocator's sbrk. Returns the new
    /// pages' index range, immediately usable with [`EcallCtx::touch`].
    ///
    /// # Errors
    ///
    /// [`SdkError::Sim`] wrapping [`RequiresSgxV2`](sgx_sim::SimError) on
    /// v1 machines, or `OutOfEnclaveSpace` when the reserve is exhausted.
    pub fn sbrk(&mut self, pages: usize) -> SdkResult<Range<usize>> {
        self.urts
            .machine()
            .extend_heap(self.enclave.id(), pages)
            .map_err(SdkError::from)
    }

    /// Issues an ocall by name.
    ///
    /// # Errors
    ///
    /// [`SdkError::BadOcall`] for unknown names, plus anything the
    /// untrusted implementation returns.
    pub fn ocall(&mut self, name: &str, data: &mut CallData) -> SdkResult<()> {
        let index = self
            .enclave
            .spec()
            .ocall_by_name(name)
            .ok_or_else(|| SdkError::BadOcall(name.to_string()))?
            .index;
        self.ocall_index(index, data)
    }

    /// Issues an ocall by index — the `sgx_ocall` path of the TRTS: leave
    /// the enclave, look up the function pointer in the ocall table saved
    /// in the URTS, run it, re-enter.
    ///
    /// # Errors
    ///
    /// [`SdkError::BadOcall`] if the saved table has no such index, plus
    /// anything the untrusted implementation returns.
    pub fn ocall_index(&mut self, index: usize, data: &mut CallData) -> SdkResult<()> {
        // Switchless-eligible ocalls try the ring first; a `Some` result
        // means an untrusted worker served the call and the thread never
        // left the enclave.
        if let Some(sw) = self.enclave.switchless() {
            if let Some(result) = sw.try_ocall(&self.thread, index, data) {
                return result;
            }
        }
        // A scheduled transient fault? The SDK owns the recovery: bounded
        // retries with backoff, then clean error propagation.
        let fault = {
            let machine = self.urts.machine();
            machine
                .fault_injector()
                .and_then(|inj| inj.take_ocall_fault(machine.clock().now()))
        };
        if let Some(fault) = fault {
            return self.ocall_index_faulted(index, data, fault);
        }
        self.ocall_index_sync(index, data)
    }

    /// The classic synchronous ocall path (no fault scheduled).
    fn ocall_index_sync(&mut self, index: usize, data: &mut CallData) -> SdkResult<()> {
        let machine = self.urts.machine();
        let cm = machine.cost_model();
        let table = self.urts.saved_table(self.enclave.id())?;
        let entry = table
            .entry(index)
            .ok_or_else(|| SdkError::BadOcall(format!("#{index}")))?
            .clone();
        self.enclave
            .push_frame(self.thread.token, Frame::Ocall(index));
        // EEXIT + dispatch + marshalling of [in] buffers out of the enclave.
        machine
            .clock()
            .advance(cm.eexit + cm.ocall_dispatch + cm.copy_cost(data.in_bytes));
        let mut host = HostCtx {
            machine,
            urts: self.urts,
            enclave_id: self.enclave.id(),
            thread: self.thread,
        };
        let result = (entry.func)(&mut host, data);
        // Return transition + marshalling of [out] buffers back in.
        machine
            .clock()
            .advance(cm.eenter + cm.copy_cost(data.out_bytes));
        self.enclave.pop_frame(self.thread.token);
        result
    }

    /// Rides out an injected transient ocall fault: each failed attempt
    /// pays a full transition (plus the timeout delay, if any), the SDK
    /// backs off exponentially between retries, and once the fault's
    /// failure budget is consumed the real call proceeds. Exceeding
    /// [`MAX_FAULT_RETRIES`] surfaces [`SdkError::InjectedFault`]. Every
    /// step is reported to the machine's fault observer.
    fn ocall_index_faulted(
        &mut self,
        index: usize,
        data: &mut CallData,
        fault: OcallFault,
    ) -> SdkResult<()> {
        let machine = Arc::clone(self.urts.machine());
        let (code, delay, times) = match fault {
            OcallFault::Fail { times } => (FaultKind::OcallFail { times }.code(), None, times),
            OcallFault::Timeout { delay, times } => (
                FaultKind::OcallTimeout { delay, times }.code(),
                Some(delay),
                times,
            ),
        };
        let enclave_id = self.enclave.id().0;
        let thread = self.thread.token.0 as u64;
        let event = {
            let machine = Arc::clone(&machine);
            move |action: FaultAction, magnitude: u64| FaultEvent {
                code,
                action,
                enclave: enclave_id,
                thread,
                call_index: Some(index as u32),
                magnitude,
                time: machine.clock().now(),
            }
        };
        let mut failures = 0u32;
        while failures < times {
            failures += 1;
            machine.notify_fault(&event(
                FaultAction::Injected,
                delay.map_or(u64::from(failures), |d| d.as_nanos()),
            ));
            // The failed attempt still pays the round-trip it wasted.
            let cm = machine.cost_model();
            machine
                .clock()
                .advance(cm.eexit + cm.ocall_dispatch + cm.copy_cost(data.in_bytes));
            if let Some(d) = delay {
                machine.clock().advance(d);
            }
            machine.clock().advance(cm.eenter);
            if failures > MAX_FAULT_RETRIES {
                machine.notify_fault(&event(FaultAction::GaveUp, u64::from(failures)));
                let call = self
                    .enclave
                    .spec()
                    .ocalls()
                    .get(index)
                    .map_or_else(|| format!("#{index}"), |o| o.name.clone());
                return Err(SdkError::InjectedFault {
                    call,
                    attempts: failures,
                });
            }
            let backoff = fault_backoff(failures);
            machine.clock().advance(backoff);
            machine.notify_fault(&event(FaultAction::Retried, backoff.as_nanos()));
        }
        self.ocall_index_sync(index, data)?;
        machine.notify_fault(&event(FaultAction::Recovered, u64::from(failures)));
        Ok(())
    }

    /// One spin iteration for hybrid locking: a short in-enclave busy wait
    /// followed by a scheduling yield so the lock holder can progress.
    pub fn spin_wait(&self) -> SdkResult<()> {
        self.compute(Nanos::from_nanos(50))?;
        if let Some(sim) = self.thread.sim {
            sim.yield_now();
        }
        Ok(())
    }
}
