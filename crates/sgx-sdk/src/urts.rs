//! The Untrusted Runtime System.
//!
//! Owns the enclave registry, the saved per-enclave ocall tables
//! (Figure 3: "the pointer to the table is saved inside the URTS for later
//! use") and implements the real `sgx_ecall` — TCS lookup, transition cost
//! accounting, TRTS trampoline dispatch.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, OnceLock, Weak};

use sgx_sim::{AccessKind, EnclaveId, Machine};
use sim_core::fault::{FaultAction, FaultEvent, FaultKind};
use sim_core::sync::{Mutex, RwLock};

use crate::args::CallData;
use crate::enclave::{fault_backoff, EcallCtx, Enclave, Frame, MAX_FAULT_RETRIES};
use crate::error::{SdkError, SdkResult};
use crate::loader::{EcallDispatcher, Loader};
use crate::ocall::OcallTable;
use crate::switchless::SwitchlessEvent;
use crate::thread_ctx::ThreadCtx;

/// Callback receiving every [`SwitchlessEvent`] — the hook the sgx-perf
/// logger uses to record switchless activity (which bypasses `sgx_ecall`
/// and the ocall table, so interposition alone cannot see it).
pub type SwitchlessObserver = Arc<dyn Fn(&SwitchlessEvent) + Send + Sync>;

/// The URTS: enclave registry + the base implementation of `sgx_ecall`.
pub struct Urts {
    machine: Arc<Machine>,
    enclaves: RwLock<HashMap<u32, Arc<Enclave>>>,
    saved_tables: Mutex<HashMap<u32, Arc<OcallTable>>>,
    loader: OnceLock<Weak<Loader>>,
    switchless_observer: RwLock<Option<SwitchlessObserver>>,
}

impl fmt::Debug for Urts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Urts")
            .field("enclaves", &self.enclaves.read().len())
            .finish()
    }
}

impl Urts {
    pub(crate) fn new(machine: Arc<Machine>) -> Urts {
        Urts {
            machine,
            enclaves: RwLock::new(HashMap::new()),
            saved_tables: Mutex::new(HashMap::new()),
            loader: OnceLock::new(),
            switchless_observer: RwLock::new(None),
        }
    }

    /// Installs the observer notified of every switchless event. Replaces
    /// any previous observer.
    pub fn set_switchless_observer(&self, observer: SwitchlessObserver) {
        *self.switchless_observer.write() = Some(observer);
    }

    pub(crate) fn notify_switchless(&self, event: &SwitchlessEvent) {
        if let Some(obs) = self.switchless_observer.read().clone() {
            obs(event);
        }
    }

    /// The machine this URTS drives.
    pub fn machine(&self) -> &Arc<Machine> {
        &self.machine
    }

    pub(crate) fn set_loader(&self, loader: Weak<Loader>) {
        let _ = self.loader.set(loader);
    }

    pub(crate) fn loader(&self) -> SdkResult<Arc<Loader>> {
        self.loader
            .get()
            .and_then(Weak::upgrade)
            .ok_or_else(|| SdkError::Interface("runtime loader torn down".to_string()))
    }

    pub(crate) fn register_enclave(&self, enclave: Arc<Enclave>) {
        self.enclaves.write().insert(enclave.id().0, enclave);
    }

    pub(crate) fn unregister_enclave(&self, eid: EnclaveId) -> SdkResult<()> {
        self.saved_tables.lock().remove(&eid.0);
        self.enclaves
            .write()
            .remove(&eid.0)
            .map(|_| ())
            .ok_or(SdkError::UnknownEnclave(eid))
    }

    /// Looks up a loaded enclave.
    pub fn enclave(&self, eid: EnclaveId) -> SdkResult<Arc<Enclave>> {
        self.enclaves
            .read()
            .get(&eid.0)
            .cloned()
            .ok_or(SdkError::UnknownEnclave(eid))
    }

    /// Saves the ocall table for `eid` without an ecall. Switchless ecalls
    /// bypass `sgx_ecall` (which normally saves it), but the trusted body
    /// may still issue ocalls that need the table.
    pub(crate) fn save_table(&self, eid: EnclaveId, table: &Arc<OcallTable>) {
        self.saved_tables.lock().insert(eid.0, Arc::clone(table));
    }

    /// The ocall table most recently passed to `sgx_ecall` for `eid`.
    pub fn saved_table(&self, eid: EnclaveId) -> SdkResult<Arc<OcallTable>> {
        self.saved_tables
            .lock()
            .get(&eid.0)
            .cloned()
            .ok_or_else(|| SdkError::OcallOutsideEcall(format!("no ocall table saved for {eid}")))
    }
}

impl EcallDispatcher for Urts {
    /// The real `sgx_ecall`: saves the ocall table, enforces the public/
    /// private and `allow()` rules, finds a TCS, charges URTS dispatch +
    /// `EENTER`, runs the TRTS trampoline and the trusted function, charges
    /// `EEXIT`.
    fn sgx_ecall(
        &self,
        tcx: &ThreadCtx<'_>,
        eid: EnclaveId,
        index: usize,
        table: &Arc<OcallTable>,
        data: &mut CallData,
    ) -> SdkResult<()> {
        let enclave = self.enclave(eid)?;
        // Save the table pointer "for later use" — every call replaces it,
        // which is what lets a preloaded logger substitute its own.
        self.save_table(eid, table);

        let spec_ecall = enclave
            .spec()
            .ecalls()
            .get(index)
            .ok_or_else(|| SdkError::BadEcall(format!("#{index}")))?
            .clone();

        // Interface security rules (§3.6): private ecalls only during an
        // ocall, and only if that ocall's allow() list permits them.
        let frames = enclave.frames_of(tcx.token);
        match frames.last() {
            Some(Frame::Ocall(ocall_idx)) => {
                if !enclave.spec().is_ecall_allowed_from(index, *ocall_idx) {
                    let ocall_name = enclave.spec().ocalls()[*ocall_idx].name.clone();
                    return Err(SdkError::EcallNotAllowed {
                        ecall: spec_ecall.name,
                        ocall: ocall_name,
                    });
                }
            }
            _ => {
                if !spec_ecall.public {
                    return Err(SdkError::PrivateEcall(spec_ecall.name));
                }
            }
        }

        let body = enclave.ecall_impl(index)?;
        // The EENTER gate: a lost enclave (or one an armed fault plan
        // destroys at this very entry) rejects the call before any
        // transition cost is charged. Only a supervisor rebuild clears it.
        self.machine.enter_enclave(eid, tcx.token)?;
        let tcs_index = self.bind_tcs_faulted(&enclave, tcx, index)?;
        enclave.push_frame(tcx.token, Frame::Ecall(index));

        let cm = self.machine.cost_model();
        // URTS: find free TCS, set up the call frame; then EENTER and
        // marshalling of [in] buffers into the enclave.
        self.machine
            .clock()
            .advance(cm.urts_dispatch + cm.eenter + cm.copy_cost(data.in_bytes));

        // Entering touches the TCS page and the top of the thread's stack —
        // this is what makes those pages show up in working-set estimates.
        let touch_result = self.touch_entry_pages(eid, tcx, tcs_index);

        // TRTS trampoline: resolve the numeric id to the trusted function.
        self.machine.clock().advance(cm.trts_dispatch);

        let result = touch_result.and_then(|()| {
            let urts_arc = self.loader()?.urts_arc();
            let mut ctx = EcallCtx {
                enclave: &enclave,
                urts: &urts_arc,
                thread: *tcx,
                tcs_index,
            };
            body(&mut ctx, data)
        });

        // EEXIT + marshalling of [out] buffers back to the application.
        self.machine
            .clock()
            .advance(cm.eexit + cm.copy_cost(data.out_bytes));
        enclave.pop_frame(tcx.token);
        result
    }
}

impl Urts {
    /// Binds a TCS, riding out injected TCS-exhaustion faults: each bind
    /// attempt that finds all TCS pages "busy" backs off exponentially and
    /// retries, up to [`MAX_FAULT_RETRIES`] retries, after which the fault
    /// surfaces as [`SdkError::InjectedFault`]. Without an armed injector
    /// this is exactly `bind_tcs`.
    fn bind_tcs_faulted(
        &self,
        enclave: &Arc<Enclave>,
        tcx: &ThreadCtx<'_>,
        index: usize,
    ) -> SdkResult<usize> {
        let Some(inj) = self.machine.fault_injector() else {
            return enclave.bind_tcs(tcx.token);
        };
        let code = FaultKind::TcsExhaust { times: 1 }.code();
        let event = |action: FaultAction, magnitude: u64| FaultEvent {
            code,
            action,
            enclave: enclave.id().0,
            thread: tcx.token.0 as u64,
            call_index: Some(index as u32),
            magnitude,
            time: self.machine.clock().now(),
        };
        let mut attempts = 0u32;
        loop {
            if inj.take_tcs_exhaust(self.machine.clock().now()) {
                attempts += 1;
                self.machine
                    .notify_fault(&event(FaultAction::Injected, u64::from(attempts)));
                if attempts > MAX_FAULT_RETRIES {
                    self.machine
                        .notify_fault(&event(FaultAction::GaveUp, u64::from(attempts)));
                    return Err(SdkError::InjectedFault {
                        call: "tcs".to_string(),
                        attempts,
                    });
                }
                let backoff = fault_backoff(attempts);
                self.machine.clock().advance(backoff);
                self.machine
                    .notify_fault(&event(FaultAction::Retried, backoff.as_nanos()));
                continue;
            }
            let tcs = enclave.bind_tcs(tcx.token)?;
            if attempts > 0 {
                self.machine
                    .notify_fault(&event(FaultAction::Recovered, u64::from(attempts)));
            }
            return Ok(tcs);
        }
    }

    fn touch_entry_pages(
        &self,
        eid: EnclaveId,
        tcx: &ThreadCtx<'_>,
        tcs_index: usize,
    ) -> SdkResult<()> {
        let info = self.machine.enclave_info(eid)?;
        if tcs_index >= info.tcs_count {
            return Err(SdkError::OutOfTcs(eid));
        }
        // The TCS page and the first stack page of this thread.
        let stack = self.machine.stack_range(eid, tcs_index)?;
        let tcs_page = self.machine.tcs_page(eid, tcs_index)?;
        self.machine
            .touch(eid, tcx.token, tcs_page..tcs_page + 1, AccessKind::Read)?;
        self.machine.touch(
            eid,
            tcx.token,
            stack.start..stack.start + 1,
            AccessKind::Write,
        )?;
        Ok(())
    }
}
