//! SDK error types.

use std::fmt;

use sgx_sim::{EnclaveId, SimError};

/// Result alias used throughout the SDK.
pub type SdkResult<T> = Result<T, SdkError>;

/// Errors returned by the simulated SDK — modelled on the `SGX_ERROR_*`
/// codes of the real SDK.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SdkError {
    /// The enclave id is not registered with the URTS.
    UnknownEnclave(EnclaveId),
    /// No ecall with that index/name exists in the interface.
    BadEcall(String),
    /// No ocall with that index/name exists in the ocall table.
    BadOcall(String),
    /// A trusted function was never registered for a declared ecall.
    UnregisteredEcall(String),
    /// An untrusted function was never registered for a declared ocall.
    UnregisteredOcall(String),
    /// A private ecall was called while no ocall was in progress
    /// (`SGX_ERROR_ECALL_NOT_ALLOWED`).
    PrivateEcall(String),
    /// A nested ecall was issued from an ocall that does not allow it
    /// (`SGX_ERROR_OCALL_NOT_ALLOWED` family).
    EcallNotAllowed {
        /// The attempted ecall.
        ecall: String,
        /// The ocall it was attempted from.
        ocall: String,
    },
    /// All TCSs of the enclave are busy (`SGX_ERROR_OUT_OF_TCS`).
    OutOfTcs(EnclaveId),
    /// An ocall was issued but no ecall of this thread is in progress.
    OcallOutsideEcall(String),
    /// A synchronisation ocall needed logical-thread support but the call
    /// was made outside a `sim_threads` simulation.
    NoSimulationThread(String),
    /// The hardware layer failed.
    Sim(SimError),
    /// The enclave interface was invalid at registration time.
    Interface(String),
    /// An injected transient fault outlived the SDK's bounded retry
    /// budget and surfaced to the application.
    InjectedFault {
        /// The affected call (ocall name or `tcs` for TCS binding).
        call: String,
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// The enclave was lost (`SGX_ERROR_ENCLAVE_LOST`): a power transition
    /// or machine check destroyed its EPC contents. Retrying cannot help —
    /// the enclave must be destroyed, rebuilt and its state re-established
    /// (see [`crate::supervisor`]).
    EnclaveLost(EnclaveId),
    /// The supervisor's restart budget (circuit breaker) was exhausted
    /// while recovering from repeated enclave losses.
    RecoveryExhausted {
        /// The enclave that kept getting lost.
        enclave: EnclaveId,
        /// Restarts attempted before giving up.
        restarts: u32,
    },
}

impl fmt::Display for SdkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SdkError::UnknownEnclave(eid) => write!(f, "unknown {eid}"),
            SdkError::BadEcall(name) => write!(f, "no such ecall: {name}"),
            SdkError::BadOcall(name) => write!(f, "no such ocall: {name}"),
            SdkError::UnregisteredEcall(name) => {
                write!(f, "ecall `{name}` declared but not registered")
            }
            SdkError::UnregisteredOcall(name) => {
                write!(f, "ocall `{name}` declared but not registered")
            }
            SdkError::PrivateEcall(name) => write!(
                f,
                "private ecall `{name}` called outside an ocall (SGX_ERROR_ECALL_NOT_ALLOWED)"
            ),
            SdkError::EcallNotAllowed { ecall, ocall } => write!(
                f,
                "ecall `{ecall}` is not in the allow() list of ocall `{ocall}`"
            ),
            SdkError::OutOfTcs(eid) => write!(f, "all TCSs of {eid} are busy"),
            SdkError::OcallOutsideEcall(name) => {
                write!(f, "ocall `{name}` issued with no ecall in progress")
            }
            SdkError::NoSimulationThread(name) => write!(
                f,
                "sync ocall `{name}` requires a sim-threads logical thread"
            ),
            SdkError::Sim(e) => write!(f, "hardware: {e}"),
            SdkError::Interface(msg) => write!(f, "invalid interface: {msg}"),
            SdkError::InjectedFault { call, attempts } => write!(
                f,
                "injected fault on `{call}`: gave up after {attempts} attempt(s)"
            ),
            SdkError::EnclaveLost(eid) => {
                write!(f, "{eid} lost (SGX_ERROR_ENCLAVE_LOST): rebuild required")
            }
            SdkError::RecoveryExhausted { enclave, restarts } => write!(
                f,
                "recovery of {enclave} abandoned after {restarts} restart(s): circuit breaker open"
            ),
        }
    }
}

impl std::error::Error for SdkError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SdkError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for SdkError {
    fn from(e: SimError) -> Self {
        match e {
            // A lost enclave is an application-visible condition with its
            // own SGX error code, not a generic hardware failure.
            SimError::EnclaveLost(eid) => SdkError::EnclaveLost(eid),
            other => SdkError::Sim(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = SdkError::EcallNotAllowed {
            ecall: "e".into(),
            ocall: "o".into(),
        };
        assert!(e.to_string().contains("allow()"));
        let p = SdkError::PrivateEcall("secret".into());
        assert!(p.to_string().contains("ECALL_NOT_ALLOWED"));
    }

    #[test]
    fn sim_error_converts() {
        let e: SdkError = SimError::UnknownEnclave(EnclaveId(3)).into();
        assert!(matches!(e, SdkError::Sim(_)));
    }

    #[test]
    fn enclave_lost_maps_to_its_own_variant() {
        let e: SdkError = SimError::EnclaveLost(EnclaveId(7)).into();
        assert_eq!(e, SdkError::EnclaveLost(EnclaveId(7)));
        assert!(e.to_string().contains("ENCLAVE_LOST"));
    }
}
