//! CI smoke driver for the chaos harness: runs the golden-trace fixtures
//! under a fault plan on one hardware profile and asserts the replay
//! contract — two runs of the same seeded plan must produce byte-identical
//! traces, and an empty plan must be indistinguishable from no plan.
//!
//! ```text
//! cargo run --example fault_smoke -- <unpatched|spectre|l1tf> [<fault-spec>]
//! ```
//!
//! Without a spec, a canned plan covering both classic and switchless
//! fault sites is used. Exits non-zero (panics) on any divergence.

use sim_core::fault::FaultPlan;
use sim_core::HwProfile;
use workloads::chaos;

/// One fault per site family: storms and paging on the classic fixture,
/// stall and ring pressure on the switchless one.
const CANNED_SPEC: &str = "seed=11;aex-storm@call=5:count=4;evict-storm@t=1ms;\
    ocall-timeout@call=3:delay=40us,times=2;worker-stall@call=1:delay=500us;\
    ring-full@call=2:calls=3;tcs-exhaust@call=4:times=2";

fn main() {
    let mut args = std::env::args().skip(1);
    let profile = match args.next().as_deref() {
        Some("unpatched") => HwProfile::Unpatched,
        Some("spectre") => HwProfile::Spectre,
        Some("l1tf") | Some("foreshadow") => HwProfile::Foreshadow,
        other => {
            panic!("usage: fault_smoke <unpatched|spectre|l1tf> [<fault-spec>] (got {other:?})")
        }
    };
    let spec = args.next().unwrap_or_else(|| CANNED_SPEC.to_string());
    let plan = FaultPlan::parse(&spec).expect("fault spec");
    println!("profile: {profile:?}");
    println!("plan:    {plan}");

    // Replay: same plan, same bytes — twice, on both fixtures.
    let classic = chaos::antipatterns_trace(profile, Some(&plan));
    assert_eq!(
        classic,
        chaos::antipatterns_trace(profile, Some(&plan)),
        "classic fixture diverged between runs"
    );
    let switchless = chaos::switchless_trace(profile, Some(&plan));
    assert_eq!(
        switchless,
        chaos::switchless_trace(profile, Some(&plan)),
        "switchless fixture diverged between runs"
    );

    // Invisibility: an empty plan leaves no trace of the harness.
    assert_eq!(
        chaos::antipatterns_trace(profile, None),
        chaos::antipatterns_trace(profile, Some(&FaultPlan::seeded(plan.seed))),
        "empty plan perturbed the trace"
    );

    println!(
        "ok: classic {} fault row(s), switchless {} fault row(s)",
        chaos::fault_rows(&classic),
        chaos::fault_rows(&switchless),
    );
}
