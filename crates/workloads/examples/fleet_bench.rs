//! Fleet benchmark: runs the acceptance-scale fleet scenario and emits
//! `BENCH_fleet.json` — the fleet-scale counterpart of `BENCH_diff.json`:
//!
//! * `enclaves_per_sec_spinup` — cold starts per *real* second (spin-up
//!   churn through the bounded live pool),
//! * `fleet_requests_per_sec` — completed requests per *virtual* second
//!   (deterministic, profile-dependent),
//! * `peak_epc_evictions_per_sec` — the busiest 1 ms virtual-time bucket
//!   of page-out events, scaled to a per-second rate (the shared-EPC
//!   contention headline).
//!
//! ```text
//! cargo run --release --example fleet_bench -- [out.json] [tiny|smoke|full|NxM] [profile]
//! ```
//!
//! `NxM` is a custom scale — N enclaves x M requests (e.g. `10x100000`
//! for the Appendix G sweep), with the live pool capped at min(N, 64).

use std::collections::HashMap;
use std::time::Instant;

use sgx_fleet::FleetPolicy;
use sim_core::HwProfile;
use workloads::fleet::{self, FleetRunConfig};

fn custom_scale(spec: &str) -> Option<FleetRunConfig> {
    let (slots, requests) = spec.split_once('x')?;
    let slots: usize = slots.parse().ok()?;
    Some(FleetRunConfig {
        slots,
        requests: requests.parse().ok()?,
        policy: FleetPolicy {
            live_pool: slots.min(64),
            ..FleetPolicy::default()
        },
        ..FleetRunConfig::full()
    })
}

fn main() {
    let mut args = std::env::args().skip(1);
    let out = args
        .next()
        .unwrap_or_else(|| "BENCH_fleet.json".to_string());
    let cfg = match args.next().as_deref() {
        Some("tiny") => FleetRunConfig::tiny(),
        Some("smoke") => FleetRunConfig::smoke(),
        None | Some("full") => FleetRunConfig::full(),
        Some(other) => custom_scale(other)
            .unwrap_or_else(|| panic!("unknown scale `{other}` (tiny|smoke|full|NxM)")),
    };
    let (profile, label) = match args.next().as_deref() {
        None | Some("unpatched") => (HwProfile::Unpatched, "unpatched"),
        Some("spectre") => (HwProfile::Spectre, "spectre"),
        Some("l1tf") | Some("foreshadow") => (HwProfile::Foreshadow, "l1tf"),
        Some(other) => panic!("unknown profile `{other}`"),
    };

    let start = Instant::now();
    let run = fleet::run(profile, &cfg, None).expect("fleet run");
    let real_secs = start.elapsed().as_secs_f64();
    let agg = &run.aggregate;

    let spinups_per_sec = agg.spin_ups as f64 / real_secs;
    let requests_per_sec = run.stats.throughput();

    // Peak eviction rate: bucket page-outs into 1 ms of virtual time.
    let mut buckets: HashMap<u64, u64> = HashMap::new();
    for p in run.trace.paging.iter().filter(|p| p.out) {
        *buckets.entry(p.time_ns / 1_000_000).or_default() += 1;
    }
    let peak_evictions_per_sec = buckets.values().copied().max().unwrap_or(0) * 1_000;

    let json = format!(
        "{{\n  \"profile\": \"{label}\",\n  \"slots\": {},\n  \"requests\": {},\n  \
         \"completed\": {},\n  \"spin_ups\": {},\n  \"restarts\": {},\n  \
         \"enclaves_per_sec_spinup\": {:.0},\n  \"fleet_requests_per_sec\": {:.0},\n  \
         \"peak_epc_evictions_per_sec\": {},\n  \"page_outs\": {},\n  \
         \"p50_ns\": {},\n  \"p99_ns\": {},\n  \"virtual_elapsed_ns\": {},\n  \
         \"real_seconds\": {:.3}\n}}\n",
        cfg.slots,
        agg.requests,
        agg.completed,
        agg.spin_ups,
        agg.restarts,
        spinups_per_sec,
        requests_per_sec,
        peak_evictions_per_sec,
        agg.page_outs,
        agg.p50_ns,
        agg.p99_ns,
        run.stats.elapsed.as_nanos(),
        real_secs,
    );
    std::fs::write(&out, &json).expect("write bench json");
    print!("{json}");
    eprintln!("wrote {out}");
}
