//! Spec-file driver: parses every campaign spec given on the command
//! line, proves the parse → `Display` → parse fixpoint, resolves each
//! against the workload registry and prints the expanded matrix shape —
//! the cheap CI check that the repo's `specs/` directory stays loadable
//! without executing a single cell.
//!
//! ```text
//! cargo run --release --example campaign_spec -- specs/*.toml
//! ```

use sim_core::campaign::CampaignSpec;
use workloads::campaign::matrix::MatrixPlan;

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    assert!(!paths.is_empty(), "usage: campaign_spec <spec.toml>...");
    for path in &paths {
        let source =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        let spec = CampaignSpec::parse(&source).unwrap_or_else(|e| panic!("{path}: {e}"));

        // The canonical form is the grammar's fixpoint: rendering and
        // reparsing must yield the identical spec (with defaults made
        // explicit), and render byte-identically again.
        let canonical = spec.to_string();
        let reparsed = CampaignSpec::parse(&canonical)
            .unwrap_or_else(|e| panic!("{path}: canonical form failed to reparse: {e}"));
        assert_eq!(
            canonical,
            reparsed.to_string(),
            "{path}: Display is not a fixpoint"
        );

        let plan = MatrixPlan::from_spec(spec).unwrap_or_else(|e| panic!("{path}: {e}"));
        let spec = &plan.spec;
        let cells = plan.cells();
        assert_eq!(cells.len(), spec.cell_count(), "{path}: expansion count");
        let baselines = cells.iter().filter(|c| c.baseline == c.index).count();
        println!(
            "{path}: campaign \"{}\" = {} workload(s) x {} profile(s) x {} plan(s) \
             x {} switchless x {} seed(s) = {} cell(s), {} baseline(s), threshold {}%",
            spec.name,
            spec.workloads.len(),
            spec.profiles.len(),
            spec.plans.len(),
            spec.switchless.len(),
            spec.seeds.len(),
            cells.len(),
            baselines,
            spec.threshold_pct,
        );
        println!(
            "  first cell: {}\n  last cell:  {}",
            plan.file_name(&cells[0]),
            plan.file_name(cells.last().unwrap()),
        );
    }
    println!("{} spec(s) verified", paths.len());
}
