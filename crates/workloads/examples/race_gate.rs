//! Produces the traces the CI race gate feeds to `sgxperf races`,
//! written as `.evdb` files — all recorded with sync-event tracking on:
//!
//! * `racy-fixture.evdb` — the seeded data race + lock inversion; the
//!   gate expects exit **3**,
//! * `securekeeper.evdb`, `sqlitedb.evdb`, `switchless-loop.evdb` — the
//!   stock workloads; the gate expects exit **0** for each (warnings such
//!   as securekeeper's lock-held-across-ocall are allowed).
//!
//! ```text
//! cargo run --example race_gate -- <output-dir> [unpatched|spectre|l1tf]
//! ```

use sgx_perf::{Logger, LoggerConfig, TraceDb};
use sim_core::{HwProfile, Nanos};
use workloads::Harness;

fn record(profile: HwProfile, run: impl FnOnce(&Harness)) -> TraceDb {
    let harness = Harness::new(profile);
    let logger = Logger::attach(harness.runtime(), LoggerConfig::with_syncev());
    run(&harness);
    logger.finish()
}

fn main() {
    let mut args = std::env::args().skip(1);
    let dir = std::path::PathBuf::from(
        args.next()
            .unwrap_or_else(|| panic!("usage: race_gate <output-dir> [unpatched|spectre|l1tf]")),
    );
    let profile = match args.next().as_deref() {
        None | Some("unpatched") => HwProfile::Unpatched,
        Some("spectre") => HwProfile::Spectre,
        Some("l1tf") | Some("foreshadow") => HwProfile::Foreshadow,
        Some(other) => panic!("unknown profile `{other}`"),
    };
    std::fs::create_dir_all(&dir).expect("create output dir");

    let racy = record(profile, |h| {
        workloads::racy_fixture::run(h, &workloads::racy_fixture::RacyFixtureConfig::default())
            .expect("racy fixture");
    });
    racy.save(dir.join("racy-fixture.evdb")).expect("save");
    println!("racy-fixture.evdb: {} sync events", racy.syncev.len());

    let sk = record(profile, |h| {
        workloads::securekeeper::run(
            h,
            &workloads::securekeeper::SecureKeeperConfig {
                clients: 4,
                duration: Nanos::from_millis(50),
                ..Default::default()
            },
        )
        .expect("securekeeper");
    });
    sk.save(dir.join("securekeeper.evdb")).expect("save");
    println!("securekeeper.evdb: {} sync events", sk.syncev.len());

    let sq = record(profile, |h| {
        workloads::sqlitedb::run(
            h,
            &workloads::sqlitedb::SqliteConfig {
                inserts: 200,
                ..Default::default()
            },
        )
        .expect("sqlitedb");
    });
    sq.save(dir.join("sqlitedb.evdb")).expect("save");
    println!("sqlitedb.evdb: {} sync events", sq.syncev.len());

    let sl = record(profile, |h| {
        // Force the hot ocall onto the ring so the trace carries the
        // switchless post/complete hand-off events.
        let cfg = sgx_sdk::SwitchlessConfig {
            untrusted_workers: 1,
            force_ocalls: vec!["ocall_log".into()],
            ..sgx_sdk::SwitchlessConfig::default()
        };
        workloads::switchless_loop::run(h, 200, Some(cfg)).expect("switchless loop");
    });
    sl.save(dir.join("switchless-loop.evdb")).expect("save");
    println!("switchless-loop.evdb: {} sync events", sl.syncev.len());
}
