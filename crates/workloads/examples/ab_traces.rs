//! Produces the A/B trace pairs the diff engine (and the CI perf gate)
//! consumes, written as `.evdb` files:
//!
//! * `switchless-before.evdb` / `switchless-after.evdb` — the closed
//!   loop's baseline and optimised runs (EXPERIMENTS Appendix B). The
//!   diff of this pair is an **improvement** (exit 0).
//! * `chaos-baseline.evdb` / `chaos-faulted.evdb` — the classic fixture
//!   fault-free and under the canned regression plan. The diff of this
//!   pair is a **regression** (exit 3) attributed to the injected
//!   faults.
//!
//! ```text
//! cargo run --example ab_traces -- <output-dir> [unpatched|spectre|l1tf] [requests]
//! ```
//!
//! Prints the two verdict summaries; `sgxperf diff` on the files
//! reproduces them exactly.

use sim_core::HwProfile;
use workloads::chaos;
use workloads::switchless_loop;

fn main() {
    let mut args = std::env::args().skip(1);
    let dir = std::path::PathBuf::from(args.next().unwrap_or_else(|| {
        panic!("usage: ab_traces <output-dir> [unpatched|spectre|l1tf] [requests]")
    }));
    let profile = match args.next().as_deref() {
        None | Some("unpatched") => HwProfile::Unpatched,
        Some("spectre") => HwProfile::Spectre,
        Some("l1tf") | Some("foreshadow") => HwProfile::Foreshadow,
        Some(other) => panic!("unknown profile `{other}`"),
    };
    let requests: u64 = args
        .next()
        .map(|r| r.parse().expect("requests must be a number"))
        .unwrap_or(1_000);
    std::fs::create_dir_all(&dir).expect("create output dir");

    let loop_ = switchless_loop::closed_loop(profile, requests).expect("closed loop");
    loop_
        .trace_before
        .save(dir.join("switchless-before.evdb"))
        .expect("save baseline");
    loop_
        .trace_after
        .save(dir.join("switchless-after.evdb"))
        .expect("save optimised");
    println!(
        "switchless: {} -> {} round-trips, {:.2}x, verdict {} (exit {})",
        loop_.transitions_before,
        loop_.transitions_after,
        loop_.speedup(),
        loop_.diff.verdict,
        loop_.diff.exit_code(),
    );

    let plan = chaos::regression_plan(5);
    let (baseline, faulted) = chaos::ab_pair(profile, &plan);
    baseline
        .save(dir.join("chaos-baseline.evdb"))
        .expect("save chaos baseline");
    faulted
        .save(dir.join("chaos-faulted.evdb"))
        .expect("save chaos candidate");
    let diff = chaos::ab_diff(profile, &plan);
    println!(
        "chaos:      {} injected fault(s), {} attributed, verdict {} (exit {})",
        diff.totals.faults_injected.b as u64,
        diff.attributed_faults(),
        diff.verdict,
        diff.exit_code(),
    );
    println!("wrote 4 traces to {}", dir.display());
}
