//! Fleet determinism smoke: runs the fleet scenario **twice per hardware
//! profile** and asserts the two traces are byte-identical — the
//! fleet-scale extension of the repo's core determinism invariant — then
//! verifies the shared-EPC contention signature (cross-enclave evictions)
//! is present in the trace.
//!
//! ```text
//! cargo run --release --example fleet_smoke -- <output-dir> [tiny|smoke|full] [profile...]
//! ```
//!
//! Scales: `tiny` (32 enclaves × 600 requests), `smoke` (100 × 10k, the
//! CI gate), `full` (1000 × 100k, the acceptance scale). With no profiles
//! given, all three run. One trace per profile is kept as
//! `fleet-<profile>.evdb` for `sgxperf report` / `sgxperf fleet` / the
//! diff gate.

use sim_core::HwProfile;
use workloads::fleet::{self, FleetRunConfig};

fn profile_label(p: HwProfile) -> &'static str {
    match p {
        HwProfile::Unpatched => "unpatched",
        HwProfile::Spectre => "spectre",
        HwProfile::Foreshadow => "l1tf",
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let dir = std::path::PathBuf::from(args.next().unwrap_or_else(|| {
        panic!("usage: fleet_smoke <output-dir> [tiny|smoke|full] [profile...]")
    }));
    let cfg = match args.next().as_deref() {
        Some("tiny") => FleetRunConfig::tiny(),
        None | Some("smoke") => FleetRunConfig::smoke(),
        Some("full") => FleetRunConfig::full(),
        Some(other) => panic!("unknown scale `{other}` (tiny|smoke|full)"),
    };
    let profiles: Vec<HwProfile> = {
        let named: Vec<HwProfile> = args
            .map(|p| match p.as_str() {
                "unpatched" => HwProfile::Unpatched,
                "spectre" => HwProfile::Spectre,
                "l1tf" | "foreshadow" => HwProfile::Foreshadow,
                other => panic!("unknown profile `{other}`"),
            })
            .collect();
        if named.is_empty() {
            vec![
                HwProfile::Unpatched,
                HwProfile::Spectre,
                HwProfile::Foreshadow,
            ]
        } else {
            named
        }
    };
    std::fs::create_dir_all(&dir).expect("create output dir");

    println!(
        "fleet smoke: {} enclave(s) x {} request(s), live pool {}, EPC {} page(s)",
        cfg.slots,
        cfg.requests,
        cfg.policy.live_pool,
        cfg.epc_pages()
    );
    for profile in profiles {
        let label = profile_label(profile);
        let a = fleet::run(profile, &cfg, None).expect("fleet run 1");
        let b = fleet::run(profile, &cfg, None).expect("fleet run 2");

        let path_a = dir.join(format!("fleet-{label}.evdb"));
        let path_b = dir.join(format!("fleet-{label}-rerun.evdb"));
        a.trace.save(&path_a).expect("save trace 1");
        b.trace.save(&path_b).expect("save trace 2");
        let bytes_a = std::fs::read(&path_a).expect("read trace 1");
        let bytes_b = std::fs::read(&path_b).expect("read trace 2");
        assert_eq!(
            bytes_a, bytes_b,
            "{label}: fleet traces differ between identical runs"
        );
        std::fs::remove_file(&path_b).expect("drop rerun trace");

        let agg = &a.aggregate;
        assert_eq!(agg.completed, cfg.requests, "{label}: requests lost");
        assert!(agg.page_outs > 0, "{label}: no cross-enclave evictions");
        let victims = a.slots.iter().filter(|s| s.page_outs > 0).count();
        assert!(victims > 1, "{label}: evictions confined to one slot");
        println!(
            "{label}: {} completed in {} ({:.0} req/s virtual), {} spin-up(s), \
             {} eviction(s) across {} slot(s), p50 {} p99 {} — byte-identical across 2 runs",
            agg.completed,
            a.stats.elapsed,
            a.stats.throughput(),
            agg.spin_ups,
            agg.page_outs,
            victims,
            sim_core::Nanos::from_nanos(agg.p50_ns),
            sim_core::Nanos::from_nanos(agg.p99_ns),
        );
    }
    println!("wrote fleet traces to {}", dir.display());
}
