//! Crash-consistent recovery demo: the supervised SecureKeeper-style
//! server loses its enclave mid-run, recovers, and persists a trace
//! snapshot into a *segmented* event store after every completed request.
//! Kill the process at any point (`kill -9`) and `Store::load` salvages
//! the file back to the last intact frame boundary — `sgxperf info` and
//! `sgxperf report` consume the survivor without ceremony.
//!
//! ```text
//! cargo run --example supervisor_loop -- <out.evdb> [--slow] [--no-fault] \
//!     [--requests N] [--profile unpatched|spectre|l1tf]
//! ```
//!
//! `--no-fault` skips the enclave-loss injection — the baseline for
//! `sgxperf diff`, which attributes the faulted run's regressions to the
//! recovery window.
//!
//! `--slow` sleeps real time between requests so a CI harness can land a
//! SIGKILL mid-run; virtual time (and thus the trace) is unaffected.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use eventdb::Store;
use sgx_perf::{Logger, LoggerConfig};
use sim_core::HwProfile;
use workloads::harness::Harness;
use workloads::supervisor_loop;

fn main() {
    let mut path = None;
    let mut slow = false;
    let mut fault = true;
    let mut requests: u64 = 48;
    let mut profile = HwProfile::Unpatched;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--slow" => slow = true,
            "--no-fault" => fault = false,
            "--requests" => {
                requests = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--requests N");
            }
            "--profile" => {
                profile = match args.next().as_deref() {
                    Some("unpatched") => HwProfile::Unpatched,
                    Some("spectre") => HwProfile::Spectre,
                    Some("l1tf") | Some("foreshadow") => HwProfile::Foreshadow,
                    other => panic!("unknown profile {other:?}"),
                };
            }
            other if path.is_none() => path = Some(other.to_string()),
            other => panic!("unexpected argument {other:?}"),
        }
    }
    let path =
        path.expect("usage: supervisor_loop <out.evdb> [--slow] [--requests N] [--profile P]");

    let harness = Harness::new(profile);
    let logger = Logger::attach(harness.runtime(), LoggerConfig::default());
    let writer = Arc::new(Mutex::new(
        Store::open_segmented(&path).expect("open segmented store"),
    ));

    // Persist after every unit of work: snapshot the live trace and append
    // it as one frame set. Frames are whole-table snapshots, so a torn
    // tail costs at most the last request's worth of rows.
    let observer: supervisor_loop::RequestObserver = {
        let logger = Arc::clone(&logger);
        let writer = Arc::clone(&writer);
        Arc::new(move |_req| {
            if slow {
                std::thread::sleep(Duration::from_millis(40));
            }
            let store = logger.snapshot().to_store();
            writer
                .lock()
                .unwrap()
                .append_store(&store)
                .expect("append frame");
        })
    };

    let plan = fault.then(|| supervisor_loop::loss_plan(requests / 2));
    let run =
        supervisor_loop::run_with_observer(&harness, requests, plan.as_ref(), None, Some(observer))
            .expect("supervised run");

    let trace = logger.finish();
    writer
        .lock()
        .unwrap()
        .append_store(&trace.to_store())
        .expect("final frame");

    println!("profile:        {profile:?}");
    println!("requests:       {requests}");
    println!("checksum:       {:#018x}", run.checksum);
    println!("restarts:       {}", run.restarts);
    println!("lifecycle rows: {}", trace.lifecycle.len());
    println!("elapsed:        {}", run.stats.elapsed);
    println!("wrote {path}");
}
