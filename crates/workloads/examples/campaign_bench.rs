//! Campaign throughput bench: runs the stressor-sweep spec serially and
//! at full parallelism, asserts the summary is byte-stable across worker
//! counts, and emits `BENCH_campaign.json` — cells/sec, parallel
//! efficiency against `min(jobs, cores)`, and one headline metric per
//! dedicated stressor (row counts of the table each stressor exists to
//! fill, measured from its unpatched/no-fault baseline trace).
//!
//! ```text
//! cargo run --release --example campaign_bench -- \
//!     [BENCH_campaign.json] [specs/stressors.toml]
//! ```

use std::time::Instant;

use sgx_perf::{AexMode, Logger, LoggerConfig};
use sim_core::campaign::CampaignSpec;
use sim_core::HwProfile;
use sim_threads::Engine;
use workloads::campaign::matrix::{self, MatrixPlan};
use workloads::stressors::{self, Stressor, StressorConfig};
use workloads::Harness;

fn main() {
    let mut args = std::env::args().skip(1);
    let out = args.next().unwrap_or_else(|| "BENCH_campaign.json".into());
    let spec_path = args.next().unwrap_or_else(|| "specs/stressors.toml".into());

    let source = std::fs::read_to_string(&spec_path)
        .unwrap_or_else(|e| panic!("cannot read {spec_path}: {e}"));
    let spec = CampaignSpec::parse(&source).unwrap_or_else(|e| panic!("{spec_path}: {e}"));
    let plan = MatrixPlan::from_spec(spec).unwrap_or_else(|e| panic!("{spec_path}: {e}"));
    let cells = plan.spec.cell_count();
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);

    println!("campaign bench: {spec_path} ({cells} cells, {cores} cores)");
    let started = Instant::now();
    let serial = matrix::run(&plan, Engine::Fast, 1, None, false).expect("serial campaign");
    let serial_wall = started.elapsed();
    let started = Instant::now();
    let parallel = matrix::run(&plan, Engine::Fast, cores, None, false).expect("parallel campaign");
    let parallel_wall = started.elapsed();
    assert_eq!(
        serial.render(),
        parallel.render(),
        "summary must be byte-stable across worker counts"
    );

    // Supervision overhead: how long a resume over a fully-archived run
    // spends revalidating (manifest + checksums, zero cells re-run), and
    // what a flaky cell's retry costs end to end (one failed attempt,
    // backoff, one clean attempt).
    let archive = std::env::temp_dir().join(format!("sgxperf-bench-{}", std::process::id()));
    std::fs::remove_dir_all(&archive).ok();
    matrix::run(&plan, Engine::Fast, cores, Some(&archive), false).expect("archived campaign");
    let started = Instant::now();
    let resumed =
        matrix::run(&plan, Engine::Fast, cores, Some(&archive), true).expect("resumed campaign");
    let resume_validate_wall = started.elapsed();
    assert_eq!(
        resumed.render(),
        parallel.render(),
        "resumed summary must be byte-identical"
    );
    std::fs::remove_dir_all(&archive).ok();

    let flaky_spec = CampaignSpec::parse(
        "[campaign]\nname = \"bench-flaky\"\nthreshold = 25\n\
         [matrix]\nworkloads = [\"flaky\"]\nprofiles = [\"unpatched\"]\nseeds = [1]\n\
         [robustness]\nretries = 2\n",
    )
    .expect("flaky bench spec");
    let flaky_plan = MatrixPlan::from_spec(flaky_spec).expect("flaky bench plan");
    let started = Instant::now();
    let flaky_run = matrix::run(&flaky_plan, Engine::Fast, 1, None, false).expect("flaky campaign");
    let retry_wall = started.elapsed();
    assert_eq!(flaky_run.flaky(), 1, "flaky fixture must recover on retry");
    assert_eq!(flaky_run.exit_code(), 0);

    let speedup = serial_wall.as_secs_f64() / parallel_wall.as_secs_f64();
    let efficiency = speedup / cores as f64;
    let cells_per_sec = cells as f64 / parallel_wall.as_secs_f64();
    println!(
        "  serial {} ms, {} jobs {} ms -> {:.2}x speedup, {:.0}% parallel efficiency, \
         {:.1} cells/sec, exit {}",
        serial_wall.as_millis(),
        cores,
        parallel_wall.as_millis(),
        speedup,
        efficiency * 100.0,
        cells_per_sec,
        parallel.exit_code(),
    );

    // Headline metric per stressor: the size of the trace signal each
    // axis exists to generate, from its quietest cell (unpatched, no
    // faults, switchless off, seed 0) — recorded with AEX counting on so
    // the compute axis is visible too.
    let mut headline = String::new();
    for (i, s) in Stressor::ALL.into_iter().enumerate() {
        let cfg = StressorConfig {
            seed: 0,
            switchless_workers: None,
            attempt: 0,
        };
        let harness = match s {
            Stressor::EpcThrash => {
                Harness::with_machine_params(HwProfile::Unpatched, stressors::epc_thrash_params())
            }
            _ => Harness::new(HwProfile::Unpatched),
        };
        let logger = Logger::attach(
            harness.runtime(),
            LoggerConfig {
                aex: AexMode::Count,
                ..LoggerConfig::default()
            },
        );
        let ops = stressors::default_ops(s);
        match s {
            Stressor::EpcThrash => stressors::epc_thrash(&harness, ops, &cfg),
            Stressor::EcallStorm => stressors::ecall_storm(&harness, ops, &cfg),
            Stressor::IoFsyncLoop => stressors::io_fsync_loop(&harness, ops, &cfg),
            Stressor::CpuCompute => stressors::cpu_compute(&harness, ops, &cfg),
        }
        .expect("stressor headline run");
        let trace = logger.finish();
        let (metric, rows) = match s {
            Stressor::EpcThrash => ("paging_rows", trace.paging.len() as u64),
            Stressor::EcallStorm => ("ecall_rows", trace.ecalls.len() as u64),
            Stressor::IoFsyncLoop => ("ocall_rows", trace.ocalls.len() as u64),
            Stressor::CpuCompute => (
                "aex_count",
                trace.ecalls.iter().map(|e| e.aex_count).sum::<u64>(),
            ),
        };
        let bytes = trace.to_bytes().len();
        println!(
            "  {:<14} {metric} = {rows} ({bytes} trace bytes)",
            s.label()
        );
        let comma = if i + 1 == Stressor::ALL.len() {
            ""
        } else {
            ","
        };
        headline.push_str(&format!(
            "    {{\"workload\": \"{}\", \"metric\": \"{metric}\", \"rows\": {rows}, \
             \"trace_bytes\": {bytes}}}{comma}\n",
            s.label(),
        ));
    }

    println!(
        "  resume validate {} ms (all {cells} cells salvaged), flaky retry {} ms",
        resume_validate_wall.as_millis(),
        retry_wall.as_millis(),
    );

    let json = format!(
        "{{\n  \"spec\": \"{spec_path}\",\n  \"campaign\": \"{}\",\n  \"cells\": {cells},\n  \
         \"cores\": {cores},\n  \"serial_ms\": {},\n  \"parallel_ms\": {},\n  \
         \"speedup\": {speedup:.3},\n  \"parallel_efficiency\": {efficiency:.3},\n  \
         \"cells_per_sec\": {cells_per_sec:.1},\n  \"regressed\": {},\n  \"exit_code\": {},\n  \
         \"resume_validate_ms\": {},\n  \"flaky_retry_ms\": {},\n  \
         \"stressors\": [\n{headline}  ]\n}}\n",
        plan.spec.name,
        serial_wall.as_millis(),
        parallel_wall.as_millis(),
        parallel.regressed(),
        parallel.exit_code(),
        resume_validate_wall.as_millis(),
        retry_wall.as_millis(),
    );
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!("wrote {out}");
}
