//! Campaign driver: fans a (workload × profile × seed) matrix of
//! independent deterministic runs out across real cores, writing one
//! trace per cell plus a merged `campaign.json` summary.
//!
//! ```text
//! cargo run --release --example campaign -- <output-dir> \
//!     [--jobs N] [--seeds 0,1,2] [--workloads antipatterns,fleet] \
//!     [--profiles unpatched,spectre,l1tf] [--engine fast|legacy] [--verify]
//! ```
//!
//! Output paths are pure functions of the cell coordinates and the
//! summary is ordered by cell index, so the campaign's entire output is
//! byte-stable no matter how many workers ran it. `--verify` re-runs
//! every cell on the legacy engine and asserts trace byte-equality.

use sim_core::HwProfile;
use sim_threads::Engine;
use workloads::campaign::{self, CampaignConfig, Workload};

fn parse_workload(name: &str) -> Workload {
    Workload::parse(name).unwrap_or_else(|| panic!("unknown workload `{name}`"))
}

fn parse_profile(name: &str) -> HwProfile {
    HwProfile::parse(name).unwrap_or_else(|| panic!("unknown profile `{name}`"))
}

fn main() {
    let mut args = std::env::args().skip(1);
    let dir = std::path::PathBuf::from(
        args.next()
            .unwrap_or_else(|| panic!("usage: campaign <output-dir> [flags]")),
    );
    let mut cfg = CampaignConfig::default();
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--jobs" => cfg.jobs = value("--jobs").parse().expect("--jobs"),
            "--seeds" => {
                cfg.seeds = value("--seeds")
                    .split(',')
                    .map(|s| s.parse().expect("--seeds"))
                    .collect();
            }
            "--workloads" => {
                cfg.workloads = value("--workloads")
                    .split(',')
                    .map(parse_workload)
                    .collect();
            }
            "--profiles" => {
                cfg.profiles = value("--profiles").split(',').map(parse_profile).collect();
            }
            "--engine" => {
                let v = value("--engine");
                cfg.engine = Engine::parse(&v).unwrap_or_else(|| panic!("unknown engine `{v}`"));
            }
            "--verify" => cfg.verify = true,
            other => panic!("unknown flag `{other}`"),
        }
    }

    let cells = cfg.cells();
    println!(
        "campaign: {} cell(s) ({} workload(s) x {} profile(s) x {} seed(s)), \
         {} job(s), engine {}{}",
        cells.len(),
        cfg.workloads.len(),
        cfg.profiles.len(),
        cfg.seeds.len(),
        cfg.jobs,
        cfg.engine.label(),
        if cfg.verify {
            ", verifying against legacy"
        } else {
            ""
        },
    );
    let run = campaign::run(&cfg, Some(&dir));
    for o in &run.outcomes {
        println!(
            "  [{:>3}] {:<28} {:>8} byte(s), {} fault row(s), {:>7} us{}",
            o.index,
            o.file_name,
            o.bytes,
            o.fault_rows,
            o.wall.as_micros(),
            match o.verified {
                Some(true) => ", verified",
                _ => "",
            },
        );
    }
    println!(
        "{} cell(s) in {} ms on {} core(s) -> {}",
        run.outcomes.len(),
        run.wall.as_millis(),
        run.cores,
        dir.join("campaign.json").display(),
    );
}
