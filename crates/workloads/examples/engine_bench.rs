//! Engine throughput benchmark: measures scheduling events/sec on the
//! legacy OS-thread engine vs. the fast coroutine engine, a
//! workload-level wall-clock comparison, and the campaign runner's
//! core-scaling efficiency — emitting `BENCH_engine.json`.
//!
//! ```text
//! cargo run --release --example engine_bench -- <output-json> [--events N]
//! ```
//!
//! Gates (tunable via env, both checked at the end):
//! * `SGXPERF_ENGINE_SPEEDUP_FLOOR` (default 5): fast engine must beat
//!   legacy by at least this factor on the scheduler-bound ping-pong.
//! * `SGXPERF_SCALING_FLOOR` (default 0.7): campaign speedup running
//!   `jobs` workers must reach this fraction of the ideal
//!   `min(jobs, cores)`.

use std::time::{Duration, Instant};

use sim_core::{Clock, HwProfile};
use sim_threads::{with_engine, Engine, Simulation};
use workloads::campaign::{self, CampaignConfig, Workload};
use workloads::switchless_loop;

/// Runs a two-thread yield ping-pong totalling ~`events` scheduling
/// points on `engine`; returns the wall time.
fn ping_pong(engine: Engine, events: u64) -> Duration {
    let per_thread = events / 2;
    let start = Instant::now();
    with_engine(engine, || {
        let sim = Simulation::new(Clock::new());
        for t in 0..2 {
            sim.spawn(&format!("pong{t}"), move |ctx| {
                for _ in 0..per_thread {
                    ctx.yield_now();
                }
            });
        }
        sim.run();
    });
    start.elapsed()
}

/// Runs the switchless closed loop on `engine`; returns the wall time.
fn workload_run(engine: Engine, requests: u64) -> Duration {
    let start = Instant::now();
    with_engine(engine, || {
        switchless_loop::closed_loop(HwProfile::Unpatched, requests).expect("closed loop");
    });
    start.elapsed()
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn events_per_sec(events: u64, wall: Duration) -> f64 {
    events as f64 / wall.as_secs_f64().max(1e-9)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let out = std::path::PathBuf::from(
        args.next()
            .unwrap_or_else(|| panic!("usage: engine_bench <output-json> [--events N]")),
    );
    let mut events: u64 = 200_000;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--events" => {
                events = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("--events needs a number"))
            }
            other => panic!("unknown flag `{other}`"),
        }
    }
    let speedup_floor = env_f64("SGXPERF_ENGINE_SPEEDUP_FLOOR", 5.0);
    let scaling_floor = env_f64("SGXPERF_SCALING_FLOOR", 0.7);

    // 1. Scheduler-bound ping-pong: pure context-switch throughput.
    // Warm both engines once (thread-pool and allocator warmup), then
    // measure.
    ping_pong(Engine::Legacy, events / 20);
    ping_pong(Engine::Fast, events / 20);
    let legacy_wall = ping_pong(Engine::Legacy, events);
    let fast_wall = ping_pong(Engine::Fast, events);
    let legacy_eps = events_per_sec(events, legacy_wall);
    let fast_eps = events_per_sec(events, fast_wall);
    let speedup = fast_eps / legacy_eps;
    println!(
        "ping-pong ({events} events): legacy {:.0} ev/s ({} ms), fast {:.0} ev/s ({} ms) — {:.1}x",
        legacy_eps,
        legacy_wall.as_millis(),
        fast_eps,
        fast_wall.as_millis(),
        speedup,
    );

    // 2. A real workload end to end: the switchless closed loop drives
    // client + worker logical threads through the whole SDK stack.
    let wl_requests = 2_000;
    let wl_legacy = workload_run(Engine::Legacy, wl_requests);
    let wl_fast = workload_run(Engine::Fast, wl_requests);
    let wl_speedup = wl_legacy.as_secs_f64() / wl_fast.as_secs_f64().max(1e-9);
    println!(
        "switchless_loop ({wl_requests} requests): legacy {} ms, fast {} ms — {:.1}x",
        wl_legacy.as_millis(),
        wl_fast.as_millis(),
        wl_speedup,
    );

    // 3. Campaign core-scaling: the same cell matrix serial vs. fanned
    // out, efficiency measured against the ideal min(jobs, cores).
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let scaling_cfg = |jobs| CampaignConfig {
        workloads: vec![Workload::Antipatterns, Workload::Switchless],
        profiles: HwProfile::ALL.to_vec(),
        seeds: vec![0, 1],
        jobs,
        engine: Engine::Fast,
        verify: false,
    };
    let serial = campaign::run(&scaling_cfg(1), None);
    let fanned = campaign::run(&scaling_cfg(cores), None);
    let ideal = cores.min(fanned.jobs) as f64;
    let campaign_speedup = serial.wall.as_secs_f64() / fanned.wall.as_secs_f64().max(1e-9);
    let efficiency = campaign_speedup / ideal;
    println!(
        "campaign ({} cells): serial {} ms, {} job(s) {} ms — {:.2}x of ideal {:.0}x ({:.0}% efficiency)",
        serial.outcomes.len(),
        serial.wall.as_millis(),
        fanned.jobs,
        fanned.wall.as_millis(),
        campaign_speedup,
        ideal,
        efficiency * 100.0,
    );

    let json = format!(
        "{{\n  \"ping_pong\": {{\n    \"events\": {events},\n    \
         \"legacy_wall_ms\": {}, \"legacy_events_per_sec\": {:.0},\n    \
         \"fast_wall_ms\": {}, \"fast_events_per_sec\": {:.0},\n    \
         \"speedup\": {:.2}\n  }},\n  \
         \"workload\": {{\n    \"name\": \"switchless_loop\", \"requests\": {wl_requests},\n    \
         \"legacy_wall_ms\": {}, \"fast_wall_ms\": {}, \"speedup\": {:.2}\n  }},\n  \
         \"campaign\": {{\n    \"cells\": {}, \"cores\": {cores}, \"jobs\": {},\n    \
         \"serial_wall_ms\": {}, \"parallel_wall_ms\": {},\n    \
         \"ideal\": {:.0}, \"speedup\": {:.2}, \"efficiency\": {:.2}\n  }},\n  \
         \"floors\": {{\"speedup_min\": {speedup_floor}, \"efficiency_min\": {scaling_floor}}}\n}}\n",
        legacy_wall.as_millis(),
        legacy_eps,
        fast_wall.as_millis(),
        fast_eps,
        speedup,
        wl_legacy.as_millis(),
        wl_fast.as_millis(),
        wl_speedup,
        serial.outcomes.len(),
        fanned.jobs,
        serial.wall.as_millis(),
        fanned.wall.as_millis(),
        ideal,
        campaign_speedup,
        efficiency,
    );
    std::fs::write(&out, &json).expect("write BENCH_engine.json");
    println!("wrote {}", out.display());

    assert!(
        speedup >= speedup_floor,
        "fast engine speedup {speedup:.1}x below the {speedup_floor}x floor"
    );
    assert!(
        efficiency >= scaling_floor,
        "campaign scaling efficiency {efficiency:.2} below the {scaling_floor} floor"
    );
    println!("engine bench gates passed ({speedup:.1}x >= {speedup_floor}x, {efficiency:.2} >= {scaling_floor})");
}
