//! End-to-end enclave-lost recovery: the supervisor rides out losses in a
//! stateful workload, determinism survives the recovery machinery, the
//! circuit breaker fails clean, and switchless-path losses are intercepted.

use sgx_perf::{Analyzer, Logger, LoggerConfig, Recommendation};
use sgx_sdk::{SdkError, SwitchlessConfig};
use sim_core::fault::{FaultKind, FaultPlan, FaultTrigger};
use sim_core::HwProfile;
use workloads::harness::Harness;
use workloads::supervisor_loop::{self, loss_plan};

/// One traced supervised run, returned as serialised store bytes.
fn traced_bytes(profile: HwProfile, requests: u64, plan: &FaultPlan) -> Vec<u8> {
    let harness = Harness::new(profile);
    let logger = Logger::attach(harness.runtime(), LoggerConfig::default());
    supervisor_loop::run(&harness, requests, Some(plan), None).expect("supervised run");
    logger.finish().to_store().to_bytes()
}

#[test]
fn recovery_traces_are_byte_identical_across_runs_on_all_profiles() {
    let plan = loss_plan(12);
    for profile in [
        HwProfile::Unpatched,
        HwProfile::Spectre,
        HwProfile::Foreshadow,
    ] {
        let a = traced_bytes(profile, 24, &plan);
        let b = traced_bytes(profile, 24, &plan);
        assert_eq!(a, b, "recovery trace diverged on {profile:?}");
    }
}

#[test]
fn recovered_checksum_matches_the_fault_free_run_on_all_profiles() {
    for profile in [
        HwProfile::Unpatched,
        HwProfile::Spectre,
        HwProfile::Foreshadow,
    ] {
        let demo = supervisor_loop::recovery_demo(profile, 32).unwrap();
        assert_eq!(demo.faulted.restarts, 1, "{profile:?}");
        assert_eq!(
            demo.faulted.checksum, demo.clean.checksum,
            "checksum drifted on {profile:?}"
        );
    }
}

#[test]
fn circuit_breaker_exhaustion_is_a_clean_terminal_error() {
    let harness = Harness::new(HwProfile::Unpatched);
    // Entry 1 is the session init; entries 2..=5 are the first request and
    // the three warm-up replays — four consecutive losses, one more than
    // the default budget of three restarts.
    let mut plan = FaultPlan::seeded(9);
    for call in 2..=5 {
        plan = plan.with(FaultTrigger::AtCall(call), FaultKind::EnclaveLost);
    }
    let err = supervisor_loop::run(&harness, 8, Some(&plan), None).unwrap_err();
    match err {
        SdkError::RecoveryExhausted { restarts, .. } => assert_eq!(restarts, 3),
        other => panic!("expected RecoveryExhausted, got {other:?}"),
    }
    // The failure is terminal but clean: the simulation completed (no
    // panic, no deadlocked scheduler) and the same harness can host a
    // fresh supervised run once the plan is disarmed.
    harness.machine().set_fault_plan(None);
    let rerun = supervisor_loop::run(&harness, 8, None, None).unwrap();
    assert_eq!(rerun.restarts, 0);
}

#[test]
fn switchless_path_losses_are_intercepted_and_fall_back_to_sync() {
    let config = || SwitchlessConfig {
        trusted_workers: 1,
        force_ecalls: vec!["ecall_put".to_string()],
        ..SwitchlessConfig::default()
    };
    let clean_harness = Harness::new(HwProfile::Unpatched);
    let clean = supervisor_loop::run(&clean_harness, 40, None, Some(config())).unwrap();
    assert_eq!(clean.restarts, 0);

    // Switchless requests never EENTER, so the loss is time-triggered.
    // Absolute times include enclave creation and session init, so derive
    // the trigger from the clean run's deterministic timeline: an eighth
    // of the run before the end lands inside the request phase, unwinding
    // a trusted worker AEX-style mid-request.
    let t_loss = clean_harness.clock().now() - clean.stats.elapsed / 8;
    let plan = FaultPlan::seeded(13).with(FaultTrigger::AtTime(t_loss), FaultKind::EnclaveLost);
    let harness = Harness::new(HwProfile::Unpatched);
    let logger = Logger::attach(harness.runtime(), LoggerConfig::default());
    let faulted = supervisor_loop::run(&harness, 40, Some(&plan), Some(config())).unwrap();
    let trace = logger.finish();

    assert_eq!(faulted.restarts, 1, "the loss must be intercepted");
    assert_eq!(
        faulted.checksum, clean.checksum,
        "recovered replies must match the loss-free switchless run"
    );
    // Before the loss the workers served requests; after it the rings are
    // gone and the remaining requests completed synchronously.
    let dispatched = trace.switchless.iter().filter(|s| s.kind <= 1).count();
    assert!(dispatched > 0, "no request was served switchlessly");
    let put_index = trace
        .symbols
        .iter()
        .find(|s| s.kind_is_ecall && s.name == "ecall_put")
        .map(|s| s.index)
        .expect("ecall_put in the interface");
    let sync_puts = trace
        .ecalls
        .iter()
        .filter(|e| e.call_index == put_index)
        .count();
    assert!(sync_puts > 0, "no request fell back to the sync path");
}

#[test]
fn analyzer_surfaces_replay_dominated_recovery() {
    // An expensive warm-up replay: stack extra state re-establishment on
    // top of the demo workload by running many requests so the analyzer
    // has a healthy trace, then check the recovery ledger totals.
    let demo = supervisor_loop::recovery_demo(HwProfile::Unpatched, 24).unwrap();
    let report = Analyzer::new(&demo.trace_faulted, HwProfile::Unpatched.cost_model()).analyze();
    assert_eq!(report.totals.enclaves_lost, 1);
    assert_eq!(report.totals.restarts, 1);
    assert!(report.totals.recovery_ns > 0);
    assert!(
        report.totals.rebuild_ns + report.totals.replay_ns <= report.totals.recovery_ns,
        "stage costs cannot exceed the recovery window"
    );
    // The session-init replay dominates the rebuild, so the analyzer
    // recommends shrinking the replayed state.
    assert!(
        report
            .detections
            .iter()
            .any(|d| d.recommendation == Recommendation::ReduceRecoveryState),
        "ReduceRecoveryState not surfaced: {:?}",
        report.detections
    );
}
