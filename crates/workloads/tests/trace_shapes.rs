//! Trace-shape assertions: the exact call patterns each workload leaves
//! behind, as seen by an attached logger.

use std::collections::BTreeMap;

use sgx_perf::{Analyzer, Logger, LoggerConfig};
use sim_core::{HwProfile, Nanos};
use workloads::{Harness, Variant};

fn call_counts(trace: &sgx_perf::TraceDb) -> BTreeMap<String, usize> {
    let mut names: BTreeMap<(u32, bool, u32), String> = BTreeMap::new();
    for s in trace.symbols.iter() {
        names.insert((s.enclave, s.kind_is_ecall, s.index), s.name.clone());
    }
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    for e in trace.ecalls.iter() {
        let name = names
            .get(&(e.enclave, true, e.call_index))
            .cloned()
            .unwrap_or_else(|| format!("ecall#{}", e.call_index));
        *counts.entry(name).or_default() += 1;
    }
    for o in trace.ocalls.iter() {
        let name = names
            .get(&(o.enclave, false, o.call_index))
            .cloned()
            .unwrap_or_else(|| format!("ocall#{}", o.call_index));
        *counts.entry(name).or_default() += 1;
    }
    counts
}

#[test]
fn talos_per_request_recipe_is_exact() {
    let requests = 70u64; // multiple of 7 => deterministic retry share
    let harness = Harness::new(HwProfile::Unpatched);
    let logger = Logger::attach(harness.runtime(), LoggerConfig::default());
    workloads::talos::run(
        &harness,
        &workloads::talos::TalosConfig {
            requests,
            ..Default::default()
        },
    )
    .unwrap();
    let trace = logger.finish();
    let counts = call_counts(&trace);
    let n = requests as usize;
    let retries = n / 7; // one in seven handshakes needs a second round
    assert_eq!(counts["ecall_SSL_new"], n);
    assert_eq!(counts["ecall_SSL_do_handshake"], n + retries);
    assert_eq!(counts["ecall_SSL_read"], 5 * n);
    assert_eq!(counts["ecall_SSL_get_error"], 5 * n + retries);
    assert_eq!(counts["ecall_ERR_peek_error"], 5 * n + retries);
    assert_eq!(counts["ecall_ERR_clear_error"], 2 * n);
    assert_eq!(counts["ecall_SSL_write"], n);
    assert_eq!(counts["ecall_SSL_shutdown"], n);
    assert_eq!(counts["ecall_SSL_free"], n);
    // 16 KiB responses in 1,400-byte records: 12 chunks per request, plus
    // handshake flights (3 per full handshake) and close-notify pairs.
    assert_eq!(counts["enclave_ocall_write"], 12 * n + 3 * n + 2 * n);
    assert_eq!(counts["enclave_ocall_execute_ssl_ctx_info_callback"], 3 * n);
    assert_eq!(counts["enclave_ocall_alpn_select_cb"], n);
}

#[test]
fn sqlite_variants_have_distinct_ocall_signatures() {
    let run_traced = |variant| {
        let harness = Harness::new(HwProfile::Unpatched);
        let logger = Logger::attach(harness.runtime(), LoggerConfig::default());
        workloads::sqlitedb::run(
            &harness,
            &workloads::sqlitedb::SqliteConfig {
                inserts: 100,
                variant,
                ..Default::default()
            },
        )
        .unwrap();
        call_counts(&logger.finish())
    };

    let naive = run_traced(Variant::Enclave);
    // Five lseek+write pairs and one fsync per insert.
    assert_eq!(naive["ocall_lseek"], 500);
    assert_eq!(naive["ocall_write"], 500);
    assert_eq!(naive["ocall_fsync"], 100);
    assert!(!naive.contains_key("ocall_lseek_write"));

    let optimised = run_traced(Variant::Optimised);
    // The merge recommendation applied: one fused ocall per pair.
    assert_eq!(optimised["ocall_lseek_write"], 500);
    assert!(!optimised.contains_key("ocall_lseek"));
    assert!(!optimised.contains_key("ocall_write"));
    assert_eq!(optimised["ocall_fsync"], 100);
}

#[test]
fn glamdring_ocall_rate_matches_config() {
    let harness = Harness::new(HwProfile::Unpatched);
    let logger = Logger::attach(harness.runtime(), LoggerConfig::default());
    let config = workloads::glamdring::GlamdringConfig {
        duration: Nanos::from_millis(150),
        variant: Variant::Enclave,
        ..Default::default()
    };
    let result = workloads::glamdring::run(&harness, &config).unwrap();
    let trace = logger.finish();
    let counts = call_counts(&trace);
    let subs = counts["ecall_bn_sub_part_words"] as u64;
    assert_eq!(subs, result.sub_calls);
    // One BN_ helper ocall every `bn_ocall_every` subtractions.
    let bn_ocalls = counts.get("ocall_bn_new").copied().unwrap_or(0) as u64;
    let expected = subs / config.bn_ocall_every;
    assert!(
        bn_ocalls.abs_diff(expected) <= 1,
        "{bn_ocalls} vs {expected}"
    );
}

#[test]
fn securekeeper_debug_prints_only_during_connect() {
    let harness = Harness::new(HwProfile::Unpatched);
    let logger = Logger::attach(harness.runtime(), LoggerConfig::default());
    workloads::securekeeper::run(
        &harness,
        &workloads::securekeeper::SecureKeeperConfig {
            clients: 5,
            duration: Nanos::from_millis(100),
            ..Default::default()
        },
    )
    .unwrap();
    let trace = logger.finish();
    let counts = call_counts(&trace);
    // Nine debug prints per connecting client, none afterwards.
    assert_eq!(counts["ocall_print_debug"], 5 * 9);
    // All prints nested in the router's register ecall.
    let report = Analyzer::new(&trace, HwProfile::Unpatched.cost_model()).analyze();
    assert!(report.stats_for("ecall_register_client").is_some());
}

#[test]
fn failing_ocall_marks_both_rows_failed() {
    use sgx_sdk::{CallData, OcallTableBuilder, Runtime, SdkError, ThreadCtx};
    use sgx_sim::{EnclaveConfig, Machine};
    use sim_core::Clock;
    use std::sync::Arc;

    let machine = Arc::new(Machine::new(Clock::new(), HwProfile::Unpatched));
    let rt = Runtime::new(machine);
    let spec = sgx_edl::parse(
        "enclave { trusted { public void ecall_outer(); };
                   untrusted { int ocall_broken(); }; };",
    )
    .unwrap();
    let enclave = rt.create_enclave(&spec, &EnclaveConfig::default()).unwrap();
    enclave
        .register_ecall("ecall_outer", |ctx, _| {
            ctx.ocall("ocall_broken", &mut CallData::default())
        })
        .unwrap();
    let mut builder = OcallTableBuilder::new(enclave.spec());
    builder
        .register("ocall_broken", |_, _| {
            Err(SdkError::Interface("io error".into()))
        })
        .unwrap();
    let table = Arc::new(builder.build().unwrap());
    let logger = Logger::attach(&rt, LoggerConfig::default());
    let err = rt
        .ecall(
            &ThreadCtx::main(),
            enclave.id(),
            "ecall_outer",
            &table,
            &mut CallData::default(),
        )
        .unwrap_err();
    assert!(matches!(err, SdkError::Interface(_)));
    let trace = logger.finish();
    assert!(trace.ecalls.iter().all(|e| e.failed));
    assert!(trace.ocalls.iter().all(|o| o.failed));
    // Parent link survives the failure.
    assert_eq!(trace.ocalls.iter().next().unwrap().parent_ecall, Some(0));
}
