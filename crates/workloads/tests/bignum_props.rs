//! Property tests of the Glamdring bignum arithmetic: the real math under
//! the call-pattern reproduction must actually be correct.

use proptest::prelude::*;
use workloads::glamdring::bignum::{mul_comba, mul_recursive, sub_words, subs_per_mul, MulOps};

/// Reference subtraction via u128 chains.
fn reference_sub(a: &[u64], b: &[u64]) -> (Vec<u64>, u64) {
    let mut out = vec![0u64; a.len()];
    let mut borrow = 0u64;
    for i in 0..a.len() {
        let lhs = a[i] as u128;
        let rhs = b[i] as u128 + borrow as u128;
        if lhs >= rhs {
            out[i] = (lhs - rhs) as u64;
            borrow = 0;
        } else {
            out[i] = ((1u128 << 64) + lhs - rhs) as u64;
            borrow = 1;
        }
    }
    (out, borrow)
}

/// Reference schoolbook multiplication using u128 accumulation per digit.
fn reference_mul(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out = vec![0u64; a.len() + b.len()];
    for (i, &ai) in a.iter().enumerate() {
        let mut carry: u128 = 0;
        for (j, &bj) in b.iter().enumerate() {
            let acc = ai as u128 * bj as u128 + out[i + j] as u128 + carry;
            out[i + j] = acc as u64;
            carry = acc >> 64;
        }
        out[i + b.len()] = carry as u64;
    }
    out
}

fn limbs(n: usize) -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(any::<u64>(), n..=n)
}

proptest! {
    #[test]
    fn sub_words_matches_reference(n in 1usize..12, seed in any::<u64>()) {
        let mut rng = sim_core::rng::seeded(seed);
        let a: Vec<u64> = (0..n).map(|_| rng.gen()).collect();
        let b: Vec<u64> = (0..n).map(|_| rng.gen()).collect();
        let mut got = vec![0u64; n];
        let borrow = sub_words(&mut got, &a, &b);
        let (want, want_borrow) = reference_sub(&a, &b);
        prop_assert_eq!(got, want);
        prop_assert_eq!(borrow, want_borrow);
    }

    #[test]
    fn comba_matches_reference(a in limbs(4), b in limbs(4)) {
        let mut got = vec![0u64; 8];
        mul_comba(&mut got, &a, &b);
        prop_assert_eq!(got, reference_mul(&a, &b));
    }

    #[test]
    fn sub_then_add_roundtrips(a in limbs(6), b in limbs(6)) {
        // (a - b) + b == a (mod 2^384), checked limb-wise with carries.
        let mut diff = vec![0u64; 6];
        sub_words(&mut diff, &a, &b);
        let mut sum = vec![0u64; 6];
        let mut carry = 0u64;
        for i in 0..6 {
            let (s1, c1) = diff[i].overflowing_add(b[i]);
            let (s2, c2) = s1.overflowing_add(carry);
            sum[i] = s2;
            carry = u64::from(c1) + u64::from(c2);
        }
        prop_assert_eq!(sum, a);
    }

    /// The recursion's sub-call count follows the closed form for any
    /// power-of-two geometry.
    #[test]
    fn recursion_count_closed_form(depth in 1u32..6, leaf_pow in 0u32..3) {
        let leaf = 1usize << leaf_pow;
        let n = leaf << depth;
        struct Count(u64);
        impl MulOps for Count {
            fn sub_part_words(&mut self, _n: usize) -> sgx_sdk::SdkResult<()> {
                self.0 += 1;
                Ok(())
            }
            fn leaf_mul(&mut self, _n: usize) -> sgx_sdk::SdkResult<()> {
                Ok(())
            }
            fn node_overhead(&mut self) -> sgx_sdk::SdkResult<()> {
                Ok(())
            }
        }
        let mut ops = Count(0);
        let subs = mul_recursive(&mut ops, n, leaf).unwrap();
        prop_assert_eq!(subs, ops.0);
        prop_assert_eq!(subs, subs_per_mul(n, leaf));
        // Closed form: 2 * (3^depth - 1) / 2 = 3^depth - 1.
        prop_assert_eq!(subs, 3u64.pow(depth) - 1);
    }
}
