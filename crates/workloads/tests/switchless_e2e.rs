//! End-to-end properties of the switchless subsystem under a full
//! logger-attached workload:
//!
//! * **graceful degradation** — with zero workers every switchless call
//!   takes the classic synchronous transition and the run is
//!   indistinguishable from one without the subsystem,
//! * **determinism** — the whole detect → apply → re-measure loop, run
//!   twice under identical configuration, produces bit-identical traces
//!   (the virtual clock and cooperative scheduler leave no room for
//!   wall-clock noise).

use sgx_perf::{Logger, LoggerConfig};
use sgx_sdk::SwitchlessConfig;
use sim_core::HwProfile;
use workloads::switchless_loop::{closed_loop, round_trips, run};
use workloads::Harness;

/// With an empty worker pool every call degrades to the synchronous path:
/// same results, same recorded events, and — without a logger — the same
/// virtual end time to the nanosecond.
#[test]
fn zero_workers_degrade_to_synchronous_runs() {
    let plain_h = Harness::new(HwProfile::Spectre);
    let plain = run(&plain_h, 40, None).unwrap();

    let degraded_h = Harness::new(HwProfile::Spectre);
    let degraded = run(
        &degraded_h,
        40,
        Some(SwitchlessConfig {
            untrusted_workers: 0,
            trusted_workers: 0,
            force_ocalls: vec!["ocall_log".to_string()],
            ..SwitchlessConfig::default()
        }),
    )
    .unwrap();

    assert_eq!(degraded.checksum, plain.checksum);
    assert_eq!(
        degraded.stats.elapsed, plain.stats.elapsed,
        "the no-worker fallback must not charge any time"
    );
}

/// Same degradation with the logger attached: the ecall/ocall tables of
/// the two traces are identical — the fallback only adds rows to the
/// dedicated switchless table.
#[test]
fn zero_worker_traces_record_the_same_calls() {
    let plain_h = Harness::new(HwProfile::Unpatched);
    let logger = Logger::attach(plain_h.runtime(), LoggerConfig::default());
    run(&plain_h, 25, None).unwrap();
    let plain_trace = logger.finish();

    let degraded_h = Harness::new(HwProfile::Unpatched);
    let logger = Logger::attach(degraded_h.runtime(), LoggerConfig::default());
    run(
        &degraded_h,
        25,
        Some(SwitchlessConfig {
            untrusted_workers: 0,
            trusted_workers: 0,
            force_ocalls: vec!["ocall_log".to_string()],
            ..SwitchlessConfig::default()
        }),
    )
    .unwrap();
    let degraded_trace = logger.finish();

    assert_eq!(degraded_trace.ecalls.len(), plain_trace.ecalls.len());
    assert_eq!(degraded_trace.ocalls.len(), plain_trace.ocalls.len());
    assert_eq!(round_trips(&degraded_trace), round_trips(&plain_trace));
    assert!(plain_trace.switchless.is_empty());
    assert!(
        !degraded_trace.switchless.is_empty(),
        "fallbacks must be observable in the trace"
    );
}

/// Two identically-configured closed-loop runs yield bit-identical traces.
#[test]
fn closed_loop_is_deterministic() {
    let a = closed_loop(HwProfile::Foreshadow, 60).unwrap();
    let b = closed_loop(HwProfile::Foreshadow, 60).unwrap();
    assert_eq!(a.before.checksum, b.before.checksum);
    assert_eq!(a.after.stats.elapsed, b.after.stats.elapsed);
    assert_eq!(
        a.trace_before.to_bytes(),
        b.trace_before.to_bytes(),
        "baseline event streams must be bit-identical"
    );
    assert_eq!(
        a.trace_after.to_bytes(),
        b.trace_after.to_bytes(),
        "switchless event streams must be bit-identical"
    );
}

/// The loop improves things on every hardware profile, and the saving
/// grows with the transition cost (Foreshadow > Unpatched).
#[test]
fn loop_pays_off_on_all_profiles() {
    let mut speedups = Vec::new();
    for profile in [
        HwProfile::Unpatched,
        HwProfile::Spectre,
        HwProfile::Foreshadow,
    ] {
        let l = closed_loop(profile, 60).unwrap();
        assert_eq!(l.after.checksum, l.before.checksum, "{profile:?}");
        assert!(
            l.transitions_after < l.transitions_before,
            "{profile:?}: {} -> {}",
            l.transitions_before,
            l.transitions_after
        );
        assert!(l.speedup() > 1.0, "{profile:?}");
        speedups.push(l.speedup());
    }
    assert!(
        speedups[2] > speedups[0],
        "saving should grow with transition cost: {speedups:?}"
    );
}
