//! End-to-end gates for the fleet subsystem, at unit-test scale (the
//! 1000 × 100k acceptance run is `examples/fleet_smoke.rs -- full`):
//!
//! * the core determinism invariant extended to fleets — two identical
//!   runs produce **byte-identical** traces on every hardware profile,
//!   with cross-enclave EPC evictions present in each,
//! * chaos recovery — a `FaultPlan` killing 5% of the enclaves is
//!   absorbed by restart-storm throttling without opening the fleet
//!   circuit breaker,
//! * breaker behaviour under a policy too aggressive for the storm —
//!   the breaker opens, cold spin-ups are shed, and the run still
//!   completes,
//! * the `fleet` trace table round-trips through save/load into the
//!   same `sgxperf` fleet report.

use sgx_fleet::FleetPolicy;
use sgx_perf::FleetReport;
use sim_core::fault::{FaultKind, FaultPlan, FaultTrigger};
use sim_core::{HwProfile, Nanos};
use workloads::fleet::{self, FleetRunConfig};

const PROFILES: [(HwProfile, &str); 3] = [
    (HwProfile::Unpatched, "unpatched"),
    (HwProfile::Spectre, "spectre"),
    (HwProfile::Foreshadow, "l1tf"),
];

/// Two identical runs per profile must serialize to the same bytes, and
/// each trace must carry the shared-EPC contention signature: page-outs
/// spread across more than one slot.
#[test]
fn fleet_traces_are_byte_identical_across_runs_on_all_profiles() {
    let cfg = FleetRunConfig::tiny();
    for (profile, label) in PROFILES {
        let a = fleet::run(profile, &cfg, None).unwrap();
        let b = fleet::run(profile, &cfg, None).unwrap();
        assert_eq!(
            a.trace.to_bytes(),
            b.trace.to_bytes(),
            "{label}: identical runs must produce byte-identical traces"
        );
        assert_eq!(a.aggregate.completed, cfg.requests, "{label}");
        let victims = a.trace.fleet.iter().filter(|row| row.page_outs > 0).count();
        assert!(
            victims > 1,
            "{label}: cross-enclave evictions must span slots, got {victims}"
        );
    }
}

/// Distinct profiles pay different transition costs, so their fleets must
/// NOT produce identical traces — guards against the profile being
/// silently ignored at fleet scale.
#[test]
fn profiles_diverge_at_fleet_scale() {
    let cfg = FleetRunConfig::tiny();
    let unpatched = fleet::run(HwProfile::Unpatched, &cfg, None).unwrap();
    let foreshadow = fleet::run(HwProfile::Foreshadow, &cfg, None).unwrap();
    assert_ne!(unpatched.trace.to_bytes(), foreshadow.trace.to_bytes());
    assert!(foreshadow.stats.elapsed > unpatched.stats.elapsed);
}

/// The satellite chaos gate: a plan killing 5% of the fleet's enclaves
/// (spread across the run) costs rebuilds but — with the restart gate
/// spacing rebuilds so that window/spacing < threshold — the circuit
/// breaker provably never opens and no request is lost unaccounted.
#[test]
fn chaos_plan_is_absorbed_by_throttling_with_the_breaker_closed() {
    let mut cfg = FleetRunConfig::tiny();
    // window/spacing = 5 ms / 500 µs = 10 rebuilds max per window, under
    // the threshold of 16: the breaker cannot open, whatever the plan.
    cfg.policy.restart_spacing = Nanos::from_micros(500);
    cfg.policy.storm_window = Nanos::from_millis(5);
    cfg.policy.storm_threshold = 16;
    let plan = fleet::chaos_plan(&cfg);
    for (profile, label) in PROFILES {
        let run = fleet::run(profile, &cfg, Some(&plan)).unwrap();
        let agg = &run.aggregate;
        assert!(agg.restarts > 0, "{label}: chaos must cost rebuilds");
        assert_eq!(agg.breaker_opens, 0, "{label}: throttling must hold");
        assert_eq!(
            agg.completed + agg.shed + agg.failed,
            cfg.requests,
            "{label}: every request must be accounted for"
        );
        assert_eq!(agg.shed, 0, "{label}: closed breaker never sheds");
    }
}

/// With a hair-trigger threshold the same storm opens the breaker: cold
/// spin-ups get shed while it cools down, live slots keep serving, and
/// the run still completes with every request accounted for.
#[test]
fn hair_trigger_policy_opens_the_breaker_and_sheds_cold_spin_ups() {
    let mut cfg = FleetRunConfig::tiny();
    cfg.policy = FleetPolicy {
        live_pool: 8,
        restart_spacing: Nanos::from_micros(1),
        storm_window: Nanos::from_millis(50),
        storm_threshold: 1,
        breaker_cooldown: Nanos::from_millis(20),
        ..FleetPolicy::default()
    };
    // A burst of early losses: the second rebuild inside the window trips
    // the threshold-1 breaker.
    let mut plan = FaultPlan::seeded(7);
    for call in [5u64, 6, 7, 8] {
        plan = plan.with(FaultTrigger::AtCall(call), FaultKind::EnclaveLost);
    }
    let run = fleet::run(HwProfile::Unpatched, &cfg, Some(&plan)).unwrap();
    let agg = &run.aggregate;
    assert!(agg.breaker_opens > 0, "storm must trip the breaker");
    assert!(agg.shed > 0, "open breaker must shed cold spin-ups");
    assert!(agg.completed > 0, "live slots keep serving while open");
    assert_eq!(agg.completed + agg.shed + agg.failed, cfg.requests);
}

/// The fleet table survives a save/load round trip and feeds the same
/// `sgxperf` fleet report; a fleet-free trace yields an empty report.
#[test]
fn fleet_report_round_trips_through_save_and_load() {
    let cfg = FleetRunConfig::tiny();
    let run = fleet::run(HwProfile::Unpatched, &cfg, None).unwrap();
    let fresh = FleetReport::from_trace(&run.trace);
    assert!(!fresh.is_empty());
    assert_eq!(fresh.totals.slots as usize, cfg.slots);
    assert_eq!(fresh.totals.completed, cfg.requests);

    let dir = std::env::temp_dir().join("sgx-perf-fleet-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("fleet.evdb");
    run.trace.save(&path).unwrap();
    let loaded = sgx_perf::TraceDb::load(&path).unwrap();
    std::fs::remove_file(&path).ok();

    assert_eq!(loaded.fleet.len(), cfg.slots);
    let reloaded = FleetReport::from_trace(&loaded);
    assert_eq!(reloaded.summary_line(), fresh.summary_line());
    assert_eq!(reloaded.to_json(), fresh.to_json());

    // A trace without a fleet table stays fleet-free after the same trip.
    let plain =
        workloads::chaos::ab_pair(HwProfile::Unpatched, &workloads::chaos::regression_plan(1)).0;
    assert!(FleetReport::from_trace(&plain).is_empty());
}
