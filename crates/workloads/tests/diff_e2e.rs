//! Golden tests for the trace diff engine, driven by real workload runs:
//! self-diffs must be exactly neutral, the switchless closed loop must
//! reproduce the Appendix B speedups *as diff verdicts*, and a seeded
//! chaos run against its fault-free baseline must exit 3 with the
//! regressions attributed to the injected fault windows.

use sgx_perf::analysis::diff::{DiffConfig, TraceDiff, Verdict, REGRESSION_EXIT_CODE};
use sim_core::HwProfile;
use workloads::chaos;

/// Self-diff is the engine's zero point: every aligned metric identical,
/// verdict neutral, exit 0.
#[test]
fn self_diff_is_all_zero_exit_zero() {
    let (baseline, _) = chaos::ab_pair(HwProfile::Unpatched, &chaos::regression_plan(1));
    let diff = TraceDiff::compute(&baseline, &baseline, DiffConfig::default());
    assert_eq!(diff.verdict, Verdict::Neutral);
    assert_eq!(diff.exit_code(), 0);
    assert!(diff.regressions.is_empty(), "{:?}", diff.regressions);
    assert!(diff.improvements.is_empty(), "{:?}", diff.improvements);
    assert!(!diff.calls.is_empty(), "fixture records calls");
    for c in &diff.calls {
        for m in [
            &c.count,
            &c.total_ns,
            &c.mean_ns,
            &c.p50_ns,
            &c.p99_ns,
            &c.aex,
        ] {
            assert_eq!(m.a, m.b, "{}: {m:?}", c.name);
        }
        assert_eq!(c.verdict, Verdict::Neutral, "{}", c.name);
        assert_eq!(c.attributed_faults, 0, "{}", c.name);
    }
    assert!((diff.speedup() - 1.0).abs() < 1e-12);
}

/// The E10b table of EXPERIMENTS.md Appendix B, re-expressed as diff
/// verdicts: 5,000 → 1,000 round-trips and 1.74× / 2.03× / 2.18×
/// speedups at 1,000 requests, one per hardware profile.
#[test]
fn switchless_ab_reproduces_appendix_b_speedups_as_verdicts() {
    for (profile, expected_speedup) in [
        (HwProfile::Unpatched, 1.74),
        (HwProfile::Spectre, 2.03),
        (HwProfile::Foreshadow, 2.18),
    ] {
        let loop_ = workloads::switchless_loop::closed_loop(profile, 1_000).unwrap();
        let diff = &loop_.diff;
        assert_eq!(diff.verdict, Verdict::Improvement, "{profile:?}");
        assert_eq!(diff.exit_code(), 0, "{profile:?}");
        assert_eq!(diff.totals.transitions.a, 5_000.0, "{profile:?}");
        assert_eq!(diff.totals.transitions.b, 1_000.0, "{profile:?}");
        assert_eq!(diff.totals.switchless_dispatched.b, 4_000.0, "{profile:?}");
        assert_eq!(diff.totals.switchless_fallbacks.b, 0.0, "{profile:?}");
        // The diff's wall-clock speedup tracks the loop's measured one and
        // both must land on the Appendix B figure.
        let measured = loop_.speedup();
        assert!(
            (measured - expected_speedup).abs() < 0.05,
            "{profile:?}: measured {measured:.2}x, table says {expected_speedup:.2}x"
        );
        assert!(
            (diff.speedup() - measured).abs() < 0.15,
            "{profile:?}: diff wall {:.2}x vs measured {measured:.2}x",
            diff.speedup()
        );
        assert!(
            diff.improvements.iter().any(|i| i.contains("transitions")),
            "{profile:?}: {:?}",
            diff.improvements
        );
        // The hot ocall is the call that got faster.
        let ocall = diff.call("ocall_log").expect("aligned hot ocall");
        assert_eq!(ocall.count.a, ocall.count.b, "durations survive dispatch");
    }
}

/// The chaos acceptance path: a seeded-fault trace against the fault-free
/// baseline regresses (exit 3) and the verdict names the injected faults
/// overlapping the regressed calls' windows.
#[test]
fn chaos_run_regresses_with_faults_attributed() {
    let plan = chaos::regression_plan(5);
    let diff = chaos::ab_diff(HwProfile::Unpatched, &plan);
    assert_eq!(diff.verdict, Verdict::Regression);
    assert_eq!(diff.exit_code(), REGRESSION_EXIT_CODE);
    assert_eq!(diff.totals.faults_injected.a, 0.0);
    assert!(
        diff.totals.faults_injected.b >= 2.0,
        "{:?}",
        diff.totals.faults_injected
    );
    // At least one regressed call overlaps an injection window, and the
    // human report says so.
    assert!(diff.attributed_faults() > 0, "{diff}");
    assert!(
        diff.regressions
            .iter()
            .any(|r| r.contains("injected fault(s) in window")),
        "{:?}",
        diff.regressions
    );
    // The plan is recoverable by construction: nothing gave up.
    assert_eq!(diff.totals.faults_gave_up.b, 0.0);
}

/// Differential determinism: the same seeded A/B pair diffs to the same
/// verdict every time (the diff output itself is golden).
#[test]
fn chaos_diff_is_deterministic() {
    let plan = chaos::regression_plan(9);
    let x = chaos::ab_diff(HwProfile::Spectre, &plan);
    let y = chaos::ab_diff(HwProfile::Spectre, &plan);
    assert_eq!(x, y);
    assert_eq!(x.render(), y.render());
    assert_eq!(x.to_json(), y.to_json());
}
