//! End-to-end fault-injection scenarios: the chaos harness drives real
//! workloads, the SDK rides out the faults, and both the outcome and the
//! recorded fault events are asserted.
//!
//! Row codes used below (see `sim_core::fault`): fault 0 aex-storm,
//! 1 evict-storm, 3 ocall-fail, 4 ocall-timeout, 5 worker-stall,
//! 7 tcs-exhaust; action 0 injected, 1 retried, 2 recovered, 3 gave up.

use sgx_perf::{Analyzer, Logger, LoggerConfig, Recommendation, TraceDb};
use sgx_sdk::{SdkError, SwitchlessConfig};
use sim_core::fault::{FaultKind, FaultPlan, FaultTrigger};
use sim_core::{HwProfile, Nanos};
use workloads::harness::Harness;
use workloads::{antipatterns, switchless_loop};

/// Runs `f` on a fresh harness under the logger with `plan` installed.
fn traced<T>(plan: Option<&FaultPlan>, f: impl FnOnce(&Harness) -> T) -> (T, TraceDb) {
    let harness = Harness::new(HwProfile::Unpatched);
    let logger = Logger::attach(harness.runtime(), LoggerConfig::default());
    harness.machine().set_fault_plan(plan);
    let out = f(&harness);
    (out, logger.finish())
}

fn count(trace: &TraceDb, fault: u8, action: u8) -> usize {
    trace
        .faults
        .iter()
        .filter(|f| f.fault == fault && f.action == action)
        .count()
}

#[test]
fn ocall_timeouts_recover_within_the_retry_budget() {
    let plan = FaultPlan::seeded(1).with(
        FaultTrigger::AtCall(2),
        FaultKind::OcallTimeout {
            delay: Nanos::from_micros(50),
            times: 2,
        },
    );
    let ((faulted, elapsed), trace) = traced(Some(&plan), |h| h.timed(|| antipatterns::snc(h, 24)));
    faulted.expect("retries must absorb the timeouts");

    let injected = count(&trace, 4, 0);
    assert!(injected >= 1, "no timeout injected");
    assert_eq!(count(&trace, 4, 1), injected, "every timeout is retried");
    assert_eq!(count(&trace, 4, 2), 1, "one recovery closes the episode");
    assert_eq!(count(&trace, 4, 3), 0, "budget must not be exhausted");

    // The retries cost virtual time over a clean run of the same fixture.
    let ((clean, clean_elapsed), _) = traced(None, |h| h.timed(|| antipatterns::snc(h, 24)));
    clean.unwrap();
    assert!(elapsed > clean_elapsed, "{elapsed} <= {clean_elapsed}");
}

#[test]
fn worker_stall_falls_back_to_sync_with_identical_results() {
    let config = || SwitchlessConfig {
        untrusted_workers: 1,
        force_ocalls: vec!["ocall_log".to_string()],
        ..SwitchlessConfig::default()
    };
    let (clean, _) = traced(None, |h| {
        switchless_loop::run(h, 60, Some(config())).unwrap()
    });

    let plan = FaultPlan::seeded(2).with(
        FaultTrigger::AtCall(1),
        FaultKind::WorkerStall {
            delay: Nanos::from_millis(2),
        },
    );
    let (faulted, trace) = traced(Some(&plan), |h| {
        switchless_loop::run(h, 60, Some(config())).unwrap()
    });

    assert_eq!(faulted.checksum, clean.checksum, "results must not change");
    assert!(count(&trace, 5, 0) >= 1, "stall never injected");
    // While the worker slept, callers exhausted their spin budget and
    // completed through the classic path (switchless kinds 2/3).
    let fallbacks = trace
        .switchless
        .iter()
        .filter(|s| s.kind == 2 || s.kind == 3)
        .count();
    assert!(fallbacks > 0, "no caller fell back during the stall");
}

#[test]
fn evict_storm_completes_and_analyzer_surfaces_paging() {
    let plan = FaultPlan::seeded(3).with(FaultTrigger::AtCall(2), FaultKind::EvictStorm);
    let (result, trace) = traced(Some(&plan), |h| antipatterns::paging(h, 4));
    result.expect("the storm only slows the run down");

    let storms = count(&trace, 1, 0);
    assert!(storms >= 1, "no storm injected");
    assert!(
        trace.paging.iter().any(|p| !p.out),
        "evicted pages must fault back in"
    );
    let report = Analyzer::new(&trace, HwProfile::Unpatched.cost_model()).analyze();
    assert!(
        report
            .detections
            .iter()
            .any(|d| d.recommendation == Recommendation::MitigatePaging),
        "paging pressure not surfaced: {:?}",
        report.detections
    );
    assert_eq!(report.totals.faults_injected, storms);
}

#[test]
fn exhausted_retry_budget_surfaces_a_clean_error() {
    // Nominal 20 failures jitters to well past the 4-retry budget.
    let plan =
        FaultPlan::seeded(4).with(FaultTrigger::AtCall(1), FaultKind::OcallFail { times: 20 });
    let (result, trace) = traced(Some(&plan), |h| antipatterns::snc(h, 8));
    match result {
        Err(SdkError::InjectedFault { call, attempts }) => {
            assert_eq!(call, "ocall_alloc_result");
            assert_eq!(attempts, 5, "budget is 4 retries after the first failure");
        }
        other => panic!("expected InjectedFault, got {other:?}"),
    }
    assert_eq!(count(&trace, 3, 3), 1, "the give-up must be recorded");
    assert_eq!(count(&trace, 3, 2), 0, "no recovery happened");
    // The failed ecall is still a well-formed row, flagged as failed.
    assert!(trace.ecalls.iter().any(|e| e.failed));
}

#[test]
fn tcs_exhaustion_rides_out_on_backoff() {
    let plan =
        FaultPlan::seeded(5).with(FaultTrigger::AtCall(3), FaultKind::TcsExhaust { times: 2 });
    let (result, trace) = traced(Some(&plan), |h| antipatterns::sisc(h, 40));
    result.expect("binding retries must succeed");
    assert!(count(&trace, 7, 0) >= 1, "no exhaustion injected");
    assert_eq!(count(&trace, 7, 2), 1, "one recovery closes the episode");
    assert_eq!(count(&trace, 7, 3), 0);
}
