//! A deliberately broken workload for validating `sgxperf races`.
//!
//! Two client threads drive one enclave whose synchronisation carries two
//! seeded defects that the deterministic scheduler can never make
//! manifest at runtime:
//!
//! * **a data race**: both ecalls bump the `packet_counter` shared cell
//!   *before* taking any lock, so no happens-before edge orders the two
//!   writes (`RACE-E001`),
//! * **a lock inversion**: `ecall_ingest` takes `stats_mutex` then
//!   `flush_mutex`; `ecall_flush` takes them in the opposite order
//!   (`RACE-E003`). The observed run is sequential, so it never
//!   deadlocks — only the lock-order graph sees the hazard.
//!
//! A third cell, `session_count`, is correctly guarded by a common mutex
//! on every access: the golden test uses it to pin down that the analyses
//! do not over-report.

use std::sync::Arc;

use sgx_sdk::{CallData, OcallTableBuilder, SdkResult, SgxThreadMutex, ThreadCtx};
use sgx_sim::EnclaveConfig;
use sim_core::{Nanos, Shared};
use sim_threads::Simulation;

use crate::harness::{Harness, RunStats, Variant};

/// The fixture's interface: two ecalls whose lock orders conflict.
pub const RACY_EDL: &str = r#"
enclave {
    trusted {
        public uint64_t ecall_ingest(uint64_t batch);
        public uint64_t ecall_flush(uint64_t batch);
    };
    untrusted {
        void ocall_log([in, string] const char* msg);
    };
};
"#;

/// How many ingest/flush rounds each thread performs.
#[derive(Debug, Clone)]
pub struct RacyFixtureConfig {
    /// Rounds per thread (each round is one ecall).
    pub rounds: u64,
}

impl Default for RacyFixtureConfig {
    fn default() -> Self {
        RacyFixtureConfig { rounds: 4 }
    }
}

/// Runs the fixture: spawns the two conflicting client threads and drives
/// them to completion. The run itself always succeeds — the defects are
/// visible only to the race analyses.
///
/// # Errors
///
/// Propagates SDK failures.
pub fn run(harness: &Harness, config: &RacyFixtureConfig) -> SdkResult<RunStats> {
    let rt = harness.runtime();
    let bus = Arc::clone(harness.machine().sync_bus());

    let spec = sgx_edl::parse(RACY_EDL).expect("static EDL parses");
    let enclave = rt.create_enclave(
        &spec,
        &EnclaveConfig {
            tcs_count: 2,
            ..EnclaveConfig::default()
        },
    )?;

    let stats_mutex = Arc::new(SgxThreadMutex::named("stats_mutex"));
    let flush_mutex = Arc::new(SgxThreadMutex::named("flush_mutex"));
    let session_mutex = Arc::new(SgxThreadMutex::named("session_mutex"));
    // Seeded race: bumped before any lock is taken.
    let packet_counter = Arc::new(Shared::new(Arc::clone(&bus), "packet_counter", 0u64));
    // Control cell: every access holds `session_mutex`.
    let session_count = Arc::new(Shared::new(Arc::clone(&bus), "session_count", 0u64));

    {
        let (a, b) = (Arc::clone(&stats_mutex), Arc::clone(&flush_mutex));
        let session_mutex = Arc::clone(&session_mutex);
        let packets = Arc::clone(&packet_counter);
        let sessions = Arc::clone(&session_count);
        enclave.register_ecall("ecall_ingest", move |ctx, data| {
            let me = ctx.thread_token().0 as u64;
            // BUG: unguarded counter bump — races with ecall_flush's.
            packets.write(me, |v| *v += data.scalar);
            // Lock order here: stats -> flush.
            a.lock(ctx)?;
            b.lock(ctx)?;
            ctx.compute(Nanos::from_micros(5))?;
            b.unlock(ctx)?;
            a.unlock(ctx)?;
            // Correctly guarded cell.
            session_mutex.lock(ctx)?;
            sessions.write(me, |v| *v += 1);
            data.ret = sessions.read(me, |v| *v);
            session_mutex.unlock(ctx)?;
            Ok(())
        })?;
    }
    {
        let (a, b) = (Arc::clone(&stats_mutex), Arc::clone(&flush_mutex));
        let session_mutex = Arc::clone(&session_mutex);
        let packets = Arc::clone(&packet_counter);
        let sessions = Arc::clone(&session_count);
        enclave.register_ecall("ecall_flush", move |ctx, data| {
            let me = ctx.thread_token().0 as u64;
            // BUG: same unguarded bump, from the other thread.
            packets.write(me, |v| *v += data.scalar);
            // BUG: opposite lock order — flush -> stats.
            b.lock(ctx)?;
            a.lock(ctx)?;
            ctx.compute(Nanos::from_micros(5))?;
            a.unlock(ctx)?;
            b.unlock(ctx)?;
            session_mutex.lock(ctx)?;
            data.ret = sessions.read(me, |v| *v);
            session_mutex.unlock(ctx)?;
            Ok(())
        })?;
    }

    let mut builder = OcallTableBuilder::new(enclave.spec());
    builder.register("ocall_log", |h, _| {
        h.compute(Nanos::from_micros(1));
        Ok(())
    })?;
    let table = Arc::new(builder.build()?);

    let sim = Simulation::new(harness.clock().clone());
    sim.set_sync_bus(Arc::clone(&bus));
    let start = harness.clock().now();
    let rounds = config.rounds;
    for (i, name) in ["ingester", "flusher"].into_iter().enumerate() {
        let rt = Arc::clone(rt);
        let table = Arc::clone(&table);
        let eid = enclave.id();
        sim.spawn(name, move |ctx| {
            let tcx = ThreadCtx::from_sim(ctx);
            let call = if i == 0 {
                "ecall_ingest"
            } else {
                "ecall_flush"
            };
            // Stagger the threads so the critical sections never overlap
            // in the observed schedule: the hazards stay latent.
            ctx.sleep(Nanos::from_micros(50 * (i as u64 + 1)));
            for round in 0..rounds {
                rt.ecall(&tcx, eid, call, &table, &mut CallData::new(round + 1))
                    .expect("fixture ecall");
                ctx.sleep(Nanos::from_micros(120));
            }
        });
    }
    sim.run();

    Ok(RunStats {
        variant: Variant::Enclave,
        operations: rounds * 2,
        elapsed: harness.clock().now() - start,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::HwProfile;

    #[test]
    fn runs_to_completion_without_deadlock() {
        let h = Harness::new(HwProfile::Unpatched);
        let stats = run(&h, &RacyFixtureConfig::default()).unwrap();
        assert_eq!(stats.operations, 8);
        assert!(!stats.elapsed.is_zero());
    }

    #[test]
    fn run_is_deterministic() {
        let elapsed = |_| {
            let h = Harness::new(HwProfile::Unpatched);
            run(&h, &RacyFixtureConfig::default()).unwrap().elapsed
        };
        assert_eq!(elapsed(0), elapsed(1));
    }
}
