//! A SecureKeeper-style *fleet*: one enclave per client, far more logical
//! enclaves than the EPC can hold, driven by a zipfian load generator.
//!
//! The paper's §5.2.4 workload runs a handful of per-client enclaves; this
//! scenario pushes the same model to fleet scale (1000+ enclaves) on top of
//! [`sgx_fleet::FleetManager`]. The EPC is deliberately sized *below* the
//! live pool's working set, so popular clients' enclaves evict unpopular
//! ones' pages — shared-EPC contention becomes a first-class measurement
//! instead of an artefact. Everything is driven from one simulated thread
//! in virtual time, so a 1000-enclave × 100k-request run is byte-identical
//! across repetitions.
//!
//! The resulting trace carries a `fleet` table (one row per slot) that
//! `sgxperf fleet` and the report's fleet-aggregate section render.

use std::sync::Arc;

use sgx_fleet::{Arrival, FleetAggregate, FleetManager, FleetPolicy, LoadGen, SlotStats};
use sgx_perf::{FleetRow, Logger, LoggerConfig, TraceDb};
use sgx_sdk::{CallData, SdkError, SdkResult, ThreadCtx};
use sgx_sim::{AccessKind, EnclaveConfig, EnclaveLayout, MachineParams};
use sim_core::fault::{FaultKind, FaultPlan, FaultTrigger};
use sim_core::{HwProfile, Nanos};
use sim_threads::Simulation;

use crate::harness::{Harness, RunStats, Variant};

/// Each client enclave's interface: one request handler.
pub const EDL: &str = "enclave {
    trusted {
        public uint64_t ecall_serve(uint64_t req);
    };
};";

/// Per-client enclave sizing — small, so a thousand of them are cheap to
/// spin up and a few dozen fill the shrunken EPC.
pub fn enclave_config() -> EnclaveConfig {
    EnclaveConfig {
        code_kib: 4,
        data_kib: 4,
        heap_kib: 16,
        stack_kib: 4,
        tcs_count: 1,
        ..EnclaveConfig::default()
    }
}

/// One fleet scenario: scale, load shape and recovery policy.
#[derive(Debug, Clone)]
pub struct FleetRunConfig {
    /// Logical enclaves (one per client).
    pub slots: usize,
    /// Total requests to generate.
    pub requests: u64,
    /// Zipfian popularity exponent (≈1.0 is the classic web skew).
    pub exponent: f64,
    /// Arrival process.
    pub arrival: Arrival,
    /// Load-generator seed.
    pub seed: u64,
    /// Fleet recovery policy.
    pub policy: FleetPolicy,
    /// EPC budget as a fraction of the live pool's resident set, in
    /// percent. Below 100 means live enclaves *cannot* all fit — hot slots
    /// evict cold ones and cross-enclave paging shows up in the trace.
    pub epc_percent: usize,
}

impl FleetRunConfig {
    /// The acceptance-scale scenario: 1000 enclaves × 100k requests.
    pub fn full() -> FleetRunConfig {
        FleetRunConfig {
            slots: 1000,
            requests: 100_000,
            exponent: 0.99,
            arrival: Arrival::Open {
                interarrival: Nanos::from_micros(2),
            },
            seed: 0xF1EE7,
            policy: FleetPolicy::default(),
            epc_percent: 75,
        }
    }

    /// CI scale: 100 enclaves × 10k requests.
    pub fn smoke() -> FleetRunConfig {
        FleetRunConfig {
            slots: 100,
            requests: 10_000,
            policy: FleetPolicy {
                live_pool: 32,
                ..FleetPolicy::default()
            },
            ..FleetRunConfig::full()
        }
    }

    /// Unit-test scale: small enough for debug builds.
    pub fn tiny() -> FleetRunConfig {
        FleetRunConfig {
            slots: 32,
            requests: 600,
            policy: FleetPolicy {
                live_pool: 8,
                ..FleetPolicy::default()
            },
            ..FleetRunConfig::full()
        }
    }

    /// EPC pages this configuration runs with.
    pub fn epc_pages(&self) -> usize {
        let per_enclave = EnclaveLayout::new(&enclave_config()).total_pages();
        (self.policy.live_pool * per_enclave * self.epc_percent / 100).max(per_enclave * 2)
    }
}

/// Outcome of one fleet run.
#[derive(Debug, Clone)]
pub struct FleetRun {
    /// The trace, with the per-slot `fleet` table populated.
    pub trace: TraceDb,
    /// Per-slot statistics (latency samples included).
    pub slots: Vec<SlotStats>,
    /// Fleet-wide aggregate.
    pub aggregate: FleetAggregate,
    /// Throughput bookkeeping (operations = completed requests).
    pub stats: RunStats,
}

/// A chaos plan that loses 5% of `cfg.slots` enclaves, spread evenly
/// across the run's entries. Call-triggered, so each loss lands on the
/// same request on every hardware profile.
pub fn chaos_plan(cfg: &FleetRunConfig) -> FaultPlan {
    let losses = (cfg.slots / 20).max(1) as u64;
    let stride = cfg.requests / (losses + 1);
    let mut plan = FaultPlan::seeded(cfg.seed ^ 0xC0FFEE);
    for i in 1..=losses {
        plan = plan.with(FaultTrigger::AtCall(i * stride), FaultKind::EnclaveLost);
    }
    plan
}

/// Runs the fleet scenario on `profile`, optionally under a fault plan.
/// Terminal per-request failures (e.g. a slot exhausting its restart
/// budget) are absorbed into the per-slot `failed` counters; the run
/// itself only fails on setup errors.
///
/// # Errors
///
/// Propagates SDK failures from fleet construction.
pub fn run(
    profile: HwProfile,
    cfg: &FleetRunConfig,
    plan: Option<&FaultPlan>,
) -> SdkResult<FleetRun> {
    let harness = Harness::with_machine_params(
        profile,
        MachineParams {
            epc_pages: cfg.epc_pages(),
            ..MachineParams::default()
        },
    );
    let logger = Logger::attach(harness.runtime(), LoggerConfig::default());
    let heap_pages = EnclaveLayout::new(&enclave_config()).heap_range().len();
    let mgr = FleetManager::new(harness.runtime(), cfg.policy, cfg.slots, move |rt, slot| {
        let spec = sgx_edl::parse(EDL).map_err(|e| SdkError::Interface(e.to_string()))?;
        let enclave = rt.create_enclave(&spec, &enclave_config())?;
        enclave.register_ecall("ecall_serve", move |ctx, data| {
            // Work scales with the request: a short compute burst plus
            // a couple of heap pages, request-dependent so the working
            // set wanders and the EPC sees real contention.
            ctx.compute(Nanos::from_nanos(800 + (data.scalar % 5) * 150))?;
            let heap = ctx.heap_range()?;
            let page = heap.start + (data.scalar as usize % heap_pages);
            ctx.touch(page..page + 1, AccessKind::Write)?;
            data.ret = data.scalar.wrapping_mul(0x9E37_79B9) ^ slot as u64;
            Ok(())
        })?;
        Ok(enclave)
    });
    harness.machine().set_fault_plan(plan);

    let start = harness.clock().now();
    let sim = Simulation::new(harness.clock().clone());
    {
        let mgr = Arc::clone(&mgr);
        let clock = harness.clock().clone();
        let mut loadgen =
            LoadGen::new(cfg.slots, cfg.exponent, cfg.arrival, cfg.requests, cfg.seed);
        sim.spawn("loadgen", move |ctx| {
            let tcx = ThreadCtx::from_sim(ctx);
            while let Some(plan) = loadgen.next(clock.now()) {
                // Open-loop arrivals in the past dispatch immediately;
                // the lateness is the queueing delay the percentiles see.
                clock.advance_to(plan.arrival);
                let mut data = CallData::new(plan.index);
                // Terminal failures are per-slot events, already counted.
                let _ = mgr.request(&tcx, plan.slot, "ecall_serve", &mut data, plan.arrival);
            }
        });
    }
    sim.run();
    mgr.shutdown();

    let slots = mgr.snapshot();
    let aggregate = FleetAggregate::from_slots(&slots, mgr.live_count(), mgr.breaker_opens());
    let mut trace = logger.finish();
    for (slot, s) in slots.iter().enumerate() {
        trace.fleet.insert(FleetRow {
            slot: slot as u32,
            spin_ups: s.spin_ups,
            restarts: s.restarts,
            requests: s.requests,
            completed: s.completed,
            shed: s.shed,
            failed: s.failed,
            p50_ns: s.p50_ns(),
            p99_ns: s.p99_ns(),
            page_ins: s.page_ins,
            page_outs: s.page_outs,
        });
    }
    Ok(FleetRun {
        stats: RunStats {
            variant: Variant::Enclave,
            operations: aggregate.completed,
            elapsed: harness.clock().now() - start,
        },
        trace,
        slots,
        aggregate,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_fleet_serves_all_requests_with_epc_contention() {
        let cfg = FleetRunConfig::tiny();
        let run = run(HwProfile::Unpatched, &cfg, None).unwrap();
        let agg = &run.aggregate;
        assert_eq!(agg.requests, cfg.requests);
        assert_eq!(agg.completed, cfg.requests);
        assert_eq!(agg.shed + agg.failed, 0);
        // More logical enclaves than the pool holds: retirements force
        // repeat spin-ups of recycled slots.
        assert!(agg.spin_ups as usize > cfg.policy.live_pool);
        assert!(agg.live <= cfg.policy.live_pool);
        // The EPC is smaller than the live working set: contention paging
        // must show up, spread across more than one slot.
        assert!(agg.page_outs > 0, "no cross-enclave evictions observed");
        let victims = run.slots.iter().filter(|s| s.page_outs > 0).count();
        assert!(victims > 1, "evictions should span slots, got {victims}");
        // The trace carries one fleet row per slot.
        assert_eq!(run.trace.fleet.len(), cfg.slots);
        assert!(agg.p99_ns >= agg.p50_ns);
    }

    #[test]
    fn chaos_plan_loses_enclaves_without_opening_the_breaker() {
        let mut cfg = FleetRunConfig::tiny();
        // Throttling alone absorbs the storm: spacing caps rebuilds in the
        // window at window/spacing = 10 < threshold.
        cfg.policy.restart_spacing = Nanos::from_micros(500);
        cfg.policy.storm_window = Nanos::from_millis(5);
        cfg.policy.storm_threshold = 16;
        let plan = chaos_plan(&cfg);
        let run = run(HwProfile::Unpatched, &cfg, Some(&plan)).unwrap();
        let agg = &run.aggregate;
        assert!(agg.restarts > 0, "chaos plan must cost rebuilds");
        assert_eq!(agg.breaker_opens, 0, "throttling must absorb the storm");
        assert_eq!(agg.completed + agg.shed + agg.failed, cfg.requests);
    }

    #[test]
    fn identical_runs_are_deterministic() {
        let cfg = FleetRunConfig {
            slots: 16,
            requests: 200,
            policy: FleetPolicy {
                live_pool: 4,
                ..FleetPolicy::default()
            },
            ..FleetRunConfig::full()
        };
        let a = run(HwProfile::Unpatched, &cfg, None).unwrap();
        let b = run(HwProfile::Unpatched, &cfg, None).unwrap();
        assert_eq!(a.stats.elapsed, b.stats.elapsed);
        assert_eq!(a.aggregate, b.aggregate);
    }
}
