//! Shared workload harness: machine + runtime construction and run
//! bookkeeping.

use std::fmt;
use std::sync::Arc;

use sgx_sdk::Runtime;
use sgx_sim::{Machine, MachineParams};
use sim_core::{Clock, HwProfile, Nanos};

/// Which execution variant of a workload to run (the three bar groups of
/// Figure 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Variant {
    /// No enclave: all code runs untrusted at native speed.
    Native,
    /// The application partitioned into an enclave as published.
    #[default]
    Enclave,
    /// The enclave variant with the sgx-perf recommendations applied.
    Optimised,
}

impl Variant {
    /// All variants in Figure 6 order.
    pub const ALL: [Variant; 3] = [Variant::Native, Variant::Enclave, Variant::Optimised];

    /// Label used in benches and reports.
    pub fn label(self) -> &'static str {
        match self {
            Variant::Native => "native",
            Variant::Enclave => "enclave",
            Variant::Optimised => "optimised",
        }
    }
}

impl fmt::Display for Variant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One simulated process: machine + SDK runtime on a fresh virtual clock.
#[derive(Debug)]
pub struct Harness {
    machine: Arc<Machine>,
    runtime: Arc<Runtime>,
    profile: HwProfile,
}

impl Harness {
    /// Creates a harness for a hardware profile with default machine
    /// parameters.
    pub fn new(profile: HwProfile) -> Harness {
        Harness::with_machine_params(profile, MachineParams::default())
    }

    /// Creates a harness with explicit machine parameters (EPC size,
    /// eviction policy).
    pub fn with_machine_params(profile: HwProfile, params: MachineParams) -> Harness {
        let machine = Arc::new(Machine::with_params(Clock::new(), profile, params));
        let runtime = Runtime::new(Arc::clone(&machine));
        Harness {
            machine,
            runtime,
            profile,
        }
    }

    /// The simulated machine.
    pub fn machine(&self) -> &Arc<Machine> {
        &self.machine
    }

    /// The SDK runtime.
    pub fn runtime(&self) -> &Arc<Runtime> {
        &self.runtime
    }

    /// The hardware profile in effect.
    pub fn profile(&self) -> HwProfile {
        self.profile
    }

    /// The virtual clock.
    pub fn clock(&self) -> &Clock {
        self.machine.clock()
    }

    /// Runs `f` and returns its result together with elapsed virtual time.
    pub fn timed<T>(&self, f: impl FnOnce() -> T) -> (T, Nanos) {
        let before = self.clock().now();
        let value = f();
        (value, self.clock().now() - before)
    }
}

/// Outcome of one workload run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunStats {
    /// The variant that ran.
    pub variant: Variant,
    /// Operations completed (requests, inserts, signs — workload-defined).
    pub operations: u64,
    /// Virtual time the operations took.
    pub elapsed: Nanos,
}

impl RunStats {
    /// Operations per virtual second.
    pub fn throughput(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.operations as f64 / self.elapsed.as_secs_f64()
        }
    }

    /// Mean virtual time per operation.
    pub fn per_op(&self) -> Nanos {
        if self.operations == 0 {
            Nanos::ZERO
        } else {
            self.elapsed / self.operations
        }
    }
}

impl fmt::Display for RunStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} ops in {} ({:.0} ops/s)",
            self.variant,
            self.operations,
            self.elapsed,
            self.throughput()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_math() {
        let stats = RunStats {
            variant: Variant::Native,
            operations: 1_000,
            elapsed: Nanos::from_millis(500),
        };
        assert!((stats.throughput() - 2_000.0).abs() < 1e-9);
        assert_eq!(stats.per_op(), Nanos::from_micros(500));
    }

    #[test]
    fn timed_measures_virtual_time() {
        let h = Harness::new(HwProfile::Unpatched);
        let (v, dt) = h.timed(|| {
            h.clock().advance(Nanos::from_micros(7));
            42
        });
        assert_eq!(v, 42);
        assert_eq!(dt, Nanos::from_micros(7));
    }

    #[test]
    fn zero_guards() {
        let stats = RunStats {
            variant: Variant::Enclave,
            operations: 0,
            elapsed: Nanos::ZERO,
        };
        assert_eq!(stats.throughput(), 0.0);
        assert_eq!(stats.per_op(), Nanos::ZERO);
    }
}
