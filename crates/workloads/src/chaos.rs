//! Golden-trace chaos harness: fixed workloads run under the logger with
//! a [`FaultPlan`] installed, returning the serialised trace bytes.
//!
//! The byte level is the whole point. The chaos subsystem's contract is
//! twofold: an **empty** (or absent) plan must leave traces byte-for-byte
//! identical to a build without the harness, and a **seeded** plan must
//! replay byte-identically across runs and hardware profiles — faults are
//! scheduled on virtual time and call indices, and all randomness is
//! consumed when the injector is built, never at poll time. Comparing
//! `Vec<u8>` catches every regression a field-by-field comparison could
//! miss (table presence, encoding, row order).

use sgx_perf::analysis::diff::{DiffConfig, TraceDiff};
use sgx_perf::{Logger, LoggerConfig, TraceDb};
use sgx_sdk::SwitchlessConfig;
use sim_core::fault::{FaultKind, FaultPlan, FaultTrigger};
use sim_core::{HwProfile, Nanos};

use crate::harness::Harness;
use crate::{antipatterns, switchless_loop};

/// Runs the classic-path fixture — SISC, SNC and the paging sweep, all on
/// one harness — under the logger with `plan` installed, and returns the
/// serialised trace. Exercises ecalls, nested ocalls, TCS binds and EPC
/// paging, i.e. every fault site except the switchless ones.
pub fn antipatterns_trace(profile: HwProfile, plan: Option<&FaultPlan>) -> Vec<u8> {
    let harness = Harness::new(profile);
    let logger = Logger::attach(harness.runtime(), LoggerConfig::default());
    harness.machine().set_fault_plan(plan);
    antipatterns::sisc(&harness, 40).expect("sisc fixture");
    antipatterns::snc(&harness, 24).expect("snc fixture");
    antipatterns::paging(&harness, 4).expect("paging fixture");
    logger.finish().to_bytes()
}

/// Runs the switchless request-server fixture (one untrusted worker, the
/// hot ocall forced switchless) under the logger with `plan` installed,
/// and returns the serialised trace. Exercises the worker-stall and
/// ring-full fault sites the classic fixture cannot reach.
pub fn switchless_trace(profile: HwProfile, plan: Option<&FaultPlan>) -> Vec<u8> {
    let harness = Harness::new(profile);
    let logger = Logger::attach(harness.runtime(), LoggerConfig::default());
    harness.machine().set_fault_plan(plan);
    let config = SwitchlessConfig {
        untrusted_workers: 1,
        force_ocalls: vec!["ocall_log".to_string()],
        ..SwitchlessConfig::default()
    };
    switchless_loop::run(&harness, 60, Some(config)).expect("switchless fixture");
    logger.finish().to_bytes()
}

/// Fault rows recorded in serialised trace bytes — the differential
/// tests' "did anything actually fire" probe.
///
/// # Panics
///
/// Panics on corrupt trace bytes (cannot happen for bytes produced by the
/// functions above).
pub fn fault_rows(bytes: &[u8]) -> usize {
    TraceDb::from_bytes(bytes)
        .expect("trace bytes")
        .faults
        .len()
}

/// Runs the classic-path fixture twice — fault-free (baseline) and under
/// `plan` (candidate) — and returns both decoded traces: the before/after
/// pair the diff engine consumes.
///
/// # Panics
///
/// Panics on fixture failure (cannot happen for recoverable plans).
pub fn ab_pair(profile: HwProfile, plan: &FaultPlan) -> (TraceDb, TraceDb) {
    let a = TraceDb::from_bytes(&antipatterns_trace(profile, None)).expect("baseline trace");
    let b = TraceDb::from_bytes(&antipatterns_trace(profile, Some(plan))).expect("chaos trace");
    (a, b)
}

/// Diffs a seeded chaos run against its fault-free baseline with the
/// default thresholds: the chaos → regression-verdict pipeline in one
/// call.
pub fn ab_diff(profile: HwProfile, plan: &FaultPlan) -> TraceDiff {
    let (a, b) = ab_pair(profile, plan);
    TraceDiff::compute(&a, &b, DiffConfig::default())
}

/// A recoverable plan whose latency impact is far past the diff engine's
/// default 10% gates: repeated long ocall timeouts land on the fixture's
/// short allocation ocall (microseconds of delay on a sub-microsecond
/// call) and an AEX storm interrupts a later ecall. Everything retries
/// within the SDK budget, so the workload still completes — the damage
/// is purely in the latency distribution, which is exactly what the diff
/// must catch and attribute.
pub fn regression_plan(seed: u64) -> FaultPlan {
    FaultPlan::seeded(seed)
        .with(
            FaultTrigger::AtCall(2),
            FaultKind::OcallTimeout {
                delay: Nanos::from_micros(60),
                times: 3,
            },
        )
        .with(FaultTrigger::AtCall(12), FaultKind::AexStorm { count: 6 })
}

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// Derives a small, always-recoverable [`FaultPlan`] from `seed` — the
/// property-test generator. Every parameter stays inside the SDK's retry
/// budget, so any workload completes and the only observable difference
/// is the injected faults and their recovery events.
pub fn random_plan(seed: u64) -> FaultPlan {
    let mut state = seed | 1;
    let mut plan = FaultPlan::seeded(seed);
    let faults = 1 + xorshift(&mut state) % 4;
    for _ in 0..faults {
        let kind_pick = xorshift(&mut state) % 8;
        // Paging slowdowns are windows over virtual time, so the grammar
        // (and therefore the generator) only allows `t=` triggers there.
        let trigger = if kind_pick == 2 || !xorshift(&mut state).is_multiple_of(2) {
            FaultTrigger::AtTime(Nanos::from_micros(10 + xorshift(&mut state) % 2_000))
        } else {
            FaultTrigger::AtCall(1 + xorshift(&mut state) % 30)
        };
        let kind = match kind_pick {
            0 => FaultKind::AexStorm {
                count: 1 + xorshift(&mut state) as u32 % 8,
            },
            1 => FaultKind::EvictStorm,
            2 => FaultKind::PagingSlow {
                factor: 2 + xorshift(&mut state) as u32 % 6,
                duration: Nanos::from_micros(100 + xorshift(&mut state) % 900),
            },
            3 => FaultKind::OcallFail {
                times: 1 + xorshift(&mut state) as u32 % 3,
            },
            4 => FaultKind::OcallTimeout {
                delay: Nanos::from_micros(10 + xorshift(&mut state) % 90),
                times: 1 + xorshift(&mut state) as u32 % 3,
            },
            5 => FaultKind::WorkerStall {
                delay: Nanos::from_micros(50 + xorshift(&mut state) % 450),
            },
            6 => FaultKind::RingFull {
                calls: 1 + xorshift(&mut state) as u32 % 4,
            },
            _ => FaultKind::TcsExhaust {
                times: 1 + xorshift(&mut state) as u32 % 3,
            },
        };
        plan = plan.with(trigger, kind);
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_invisible() {
        // The golden-trace contract: no plan, an absent plan and an empty
        // plan all produce the same bytes.
        let none = antipatterns_trace(HwProfile::Unpatched, None);
        let empty = antipatterns_trace(HwProfile::Unpatched, Some(&FaultPlan::seeded(42)));
        assert_eq!(none, empty);
        assert_eq!(fault_rows(&none), 0);
    }

    #[test]
    fn seeded_plan_replays_byte_identically() {
        let plan = random_plan(7);
        let a = antipatterns_trace(HwProfile::Spectre, Some(&plan));
        let b = antipatterns_trace(HwProfile::Spectre, Some(&plan));
        assert_eq!(a, b);
    }

    #[test]
    fn random_plans_are_themselves_deterministic() {
        assert_eq!(random_plan(99), random_plan(99));
        assert!(!random_plan(99).is_empty());
    }
}
