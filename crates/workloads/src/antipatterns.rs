//! One micro-workload per Table 1 problem class.
//!
//! Each function drives a minimal enclave exhibiting exactly one of the
//! paper's anti-patterns — Short Identical Successive Calls, Short
//! Different Successive Calls, Short Nested Calls, Short Synchronisation
//! Calls, paging, and a permissive interface — so the analyzer's detectors
//! can be validated (and benchmarked) in isolation. Attach an
//! [`sgx_perf::Logger`] to the harness runtime before calling.

use std::sync::Arc;

use sgx_sdk::{CallData, OcallTableBuilder, SdkResult, SgxThreadMutex, ThreadCtx};
use sgx_sim::{AccessKind, EnclaveConfig, EnclaveId};
use sim_core::Nanos;
use sim_threads::Simulation;

use crate::harness::Harness;

/// §3.1 SISC: the same sub-transition-time ecall issued hundreds of times
/// in a tight loop (the `bn_sub_part_words` shape).
///
/// # Errors
///
/// Propagates SDK failures.
pub fn sisc(harness: &Harness, iterations: u64) -> SdkResult<EnclaveId> {
    let spec = sgx_edl::parse("enclave { trusted { public void ecall_tiny_step(uint64_t i); }; };")
        .expect("static EDL");
    let rt = harness.runtime();
    let enclave = rt.create_enclave(&spec, &EnclaveConfig::default())?;
    enclave.register_ecall("ecall_tiny_step", |ctx, _| {
        ctx.compute(Nanos::from_nanos(400))?;
        Ok(())
    })?;
    let table = Arc::new(OcallTableBuilder::new(enclave.spec()).build()?);
    let tcx = ThreadCtx::main();
    for i in 0..iterations {
        rt.ecall(
            &tcx,
            enclave.id(),
            "ecall_tiny_step",
            &table,
            &mut CallData::new(i),
        )?;
    }
    Ok(enclave.id())
}

/// §3.2 SDSC: two *different* short calls always issued back-to-back (the
/// `lseek`-then-`write` shape, expressed as successive ecalls).
///
/// # Errors
///
/// Propagates SDK failures.
pub fn sdsc(harness: &Harness, iterations: u64) -> SdkResult<EnclaveId> {
    let spec = sgx_edl::parse(
        "enclave { trusted {
            public void ecall_seek(uint64_t off);
            public void ecall_write(uint64_t len);
        }; };",
    )
    .expect("static EDL");
    let rt = harness.runtime();
    let enclave = rt.create_enclave(&spec, &EnclaveConfig::default())?;
    enclave.register_ecall("ecall_seek", |ctx, _| {
        ctx.compute(Nanos::from_nanos(500))?;
        Ok(())
    })?;
    enclave.register_ecall("ecall_write", |ctx, _| {
        ctx.compute(Nanos::from_micros(2))?;
        Ok(())
    })?;
    let table = Arc::new(OcallTableBuilder::new(enclave.spec()).build()?);
    let tcx = ThreadCtx::main();
    for i in 0..iterations {
        rt.ecall(
            &tcx,
            enclave.id(),
            "ecall_seek",
            &table,
            &mut CallData::new(i),
        )?;
        rt.ecall(
            &tcx,
            enclave.id(),
            "ecall_write",
            &table,
            &mut CallData::new(i),
        )?;
    }
    Ok(enclave.id())
}

/// §3.3 SNC: a long ecall that issues a short allocation ocall right at
/// its start — the reorder-before-parent opportunity.
///
/// # Errors
///
/// Propagates SDK failures.
pub fn snc(harness: &Harness, iterations: u64) -> SdkResult<EnclaveId> {
    let spec = sgx_edl::parse(
        "enclave { trusted { public void ecall_process(uint64_t n); };
                   untrusted { void ocall_alloc_result(uint64_t size); }; };",
    )
    .expect("static EDL");
    let rt = harness.runtime();
    let enclave = rt.create_enclave(&spec, &EnclaveConfig::default())?;
    enclave.register_ecall("ecall_process", |ctx, _| {
        // Allocate the result buffer outside — *during* the ecall.
        ctx.ocall("ocall_alloc_result", &mut CallData::new(4_096))?;
        ctx.compute(Nanos::from_micros(120))?;
        Ok(())
    })?;
    let mut builder = OcallTableBuilder::new(enclave.spec());
    builder.register("ocall_alloc_result", |h, _| {
        h.compute(Nanos::from_nanos(600));
        Ok(())
    })?;
    let table = Arc::new(builder.build()?);
    let tcx = ThreadCtx::main();
    for i in 0..iterations {
        rt.ecall(
            &tcx,
            enclave.id(),
            "ecall_process",
            &table,
            &mut CallData::new(i),
        )?;
    }
    Ok(enclave.id())
}

/// §3.4 SSC: two threads ping-ponging a mutex with a hold time far below
/// the transition cost — every contention round-trip burns two ocalls.
///
/// # Errors
///
/// Propagates SDK failures.
pub fn ssc(harness: &Harness, rounds: u64) -> SdkResult<EnclaveId> {
    let spec = sgx_edl::parse("enclave { trusted { public void ecall_locked_op(uint64_t i); }; };")
        .expect("static EDL");
    let rt = harness.runtime();
    let enclave = rt.create_enclave(
        &spec,
        &EnclaveConfig {
            tcs_count: 2,
            ..EnclaveConfig::default()
        },
    )?;
    let mutex = Arc::new(SgxThreadMutex::new());
    let m = Arc::clone(&mutex);
    enclave.register_ecall("ecall_locked_op", move |ctx, _| {
        m.lock(ctx)?;
        if let Some(sim) = ctx.thread().sim {
            sim.yield_now(); // guarantee overlap with the other thread
        }
        ctx.compute(Nanos::from_nanos(300))?; // tiny critical section
        m.unlock(ctx)?;
        Ok(())
    })?;
    let table = Arc::new(OcallTableBuilder::new(enclave.spec()).build()?);
    let sim = Simulation::new(harness.clock().clone());
    for t in 0..2 {
        let rt = Arc::clone(rt);
        let table = Arc::clone(&table);
        let eid = enclave.id();
        sim.spawn(&format!("locker-{t}"), move |ctx| {
            let tcx = ThreadCtx::from_sim(ctx);
            for i in 0..rounds {
                rt.ecall(&tcx, eid, "ecall_locked_op", &table, &mut CallData::new(i))
                    .expect("locked op");
            }
        });
    }
    sim.run();
    Ok(enclave.id())
}

/// §3.5 paging: an enclave whose touched working set exceeds the
/// (deliberately tiny) EPC, causing continuous evictions. Build the
/// harness with [`MachineParams::epc_pages`](sgx_sim::MachineParams) below
/// the enclave size.
///
/// # Errors
///
/// Propagates SDK failures.
pub fn paging(harness: &Harness, sweeps: u64) -> SdkResult<EnclaveId> {
    let spec = sgx_edl::parse("enclave { trusted { public void ecall_scan(uint64_t pass); }; };")
        .expect("static EDL");
    let rt = harness.runtime();
    let enclave = rt.create_enclave(
        &spec,
        &EnclaveConfig {
            heap_kib: 2_048, // 512 heap pages
            ..EnclaveConfig::default()
        },
    )?;
    let heap = harness.machine().heap_range(enclave.id())?;
    enclave.register_ecall("ecall_scan", move |ctx, _| {
        // Stream over the whole heap: with a small EPC every pass evicts.
        ctx.touch(heap.clone(), AccessKind::Write)?;
        ctx.compute(Nanos::from_micros(50))?;
        Ok(())
    })?;
    let table = Arc::new(OcallTableBuilder::new(enclave.spec()).build()?);
    let tcx = ThreadCtx::main();
    for pass in 0..sweeps {
        rt.ecall(
            &tcx,
            enclave.id(),
            "ecall_scan",
            &table,
            &mut CallData::new(pass),
        )?;
    }
    Ok(enclave.id())
}

/// §3.6 permissive interface: a public ecall that is only ever reached
/// from an ocall (private candidate), an over-broad `allow()` list, and a
/// `user_check` pointer.
///
/// # Errors
///
/// Propagates SDK failures.
pub fn permissive_interface(harness: &Harness, iterations: u64) -> SdkResult<EnclaveId> {
    let spec = sgx_edl::parse(
        "enclave {
            trusted {
                public void ecall_entry(uint64_t i);
                public void ecall_callback(uint64_t i);
                public void ecall_never_nested([user_check] void* p);
            };
            untrusted {
                void ocall_helper(uint64_t i)
                    allow(ecall_callback, ecall_never_nested);
            };
        };",
    )
    .expect("static EDL");
    let rt = harness.runtime();
    let enclave = rt.create_enclave(&spec, &EnclaveConfig::default())?;
    enclave.register_ecall("ecall_entry", |ctx, _| {
        ctx.compute(Nanos::from_micros(30))?;
        ctx.ocall("ocall_helper", &mut CallData::default())?;
        Ok(())
    })?;
    enclave.register_ecall("ecall_callback", |ctx, _| {
        ctx.compute(Nanos::from_micros(15))?;
        Ok(())
    })?;
    enclave.register_ecall("ecall_never_nested", |ctx, _| {
        ctx.compute(Nanos::from_micros(15))?;
        Ok(())
    })?;
    let mut builder = OcallTableBuilder::new(enclave.spec());
    builder.register("ocall_helper", |host, _| {
        // Always re-enters through ecall_callback; never through
        // ecall_never_nested despite the allow() list.
        host.ecall("ecall_callback", &mut CallData::default())
    })?;
    let table = Arc::new(builder.build()?);
    let tcx = ThreadCtx::main();
    for i in 0..iterations {
        rt.ecall(
            &tcx,
            enclave.id(),
            "ecall_entry",
            &table,
            &mut CallData::new(i),
        )?;
    }
    Ok(enclave.id())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgx_perf::{Analyzer, Logger, LoggerConfig, Recommendation};
    use sgx_sim::MachineParams;
    use sim_core::HwProfile;

    fn analyze(harness: &Harness, logger: &Logger) -> sgx_perf::Report {
        let trace = logger.finish();
        Analyzer::new(&trace, harness.profile().cost_model()).analyze()
    }

    #[test]
    fn sisc_detected() {
        let h = Harness::new(HwProfile::Unpatched);
        let logger = Logger::attach(h.runtime(), LoggerConfig::default());
        sisc(&h, 200).unwrap();
        let report = analyze(&h, &logger);
        assert!(report.detections.iter().any(|d| matches!(
            d.recommendation,
            Recommendation::BatchCalls { .. }
        ) && d.name == "ecall_tiny_step"));
    }

    #[test]
    fn sdsc_detected() {
        let h = Harness::new(HwProfile::Unpatched);
        let logger = Logger::attach(h.runtime(), LoggerConfig::default());
        sdsc(&h, 200).unwrap();
        let report = analyze(&h, &logger);
        assert!(
            report.detections.iter().any(
                |d| matches!(&d.recommendation, Recommendation::MergeCalls { with }
                    if with == "ecall_seek")
            ),
            "{:?}",
            report.detections
        );
    }

    #[test]
    fn snc_detected() {
        let h = Harness::new(HwProfile::Unpatched);
        let logger = Logger::attach(h.runtime(), LoggerConfig::default());
        snc(&h, 100).unwrap();
        let report = analyze(&h, &logger);
        assert!(report
            .detections
            .iter()
            .any(|d| d.recommendation == Recommendation::ReorderBeforeParent
                && d.name == "ocall_alloc_result"));
    }

    #[test]
    fn ssc_detected() {
        let h = Harness::new(HwProfile::Unpatched);
        let logger = Logger::attach(h.runtime(), LoggerConfig::default());
        ssc(&h, 120).unwrap();
        let report = analyze(&h, &logger);
        assert!(
            report
                .detections
                .iter()
                .any(|d| d.recommendation == Recommendation::HybridSynchronisation),
            "{:?}",
            report.detections
        );
    }

    #[test]
    fn paging_detected() {
        let h = Harness::with_machine_params(
            HwProfile::Unpatched,
            MachineParams {
                epc_pages: 256, // far below the 1024-page enclave
                ..MachineParams::default()
            },
        );
        let logger = Logger::attach(h.runtime(), LoggerConfig::default());
        paging(&h, 4).unwrap();
        let report = analyze(&h, &logger);
        assert!(report.totals.page_outs > 0);
        assert!(report
            .detections
            .iter()
            .any(|d| d.recommendation == Recommendation::MitigatePaging));
    }

    #[test]
    fn permissive_interface_findings() {
        let h = Harness::new(HwProfile::Unpatched);
        let logger = Logger::attach(h.runtime(), LoggerConfig::default());
        permissive_interface(&h, 50).unwrap();
        let report = analyze(&h, &logger);
        // ecall_callback can be made private.
        assert!(report.detections.iter().any(
            |d| matches!(&d.recommendation, Recommendation::MakePrivate { allow_from }
                if d.name == "ecall_callback" && allow_from == &vec!["ocall_helper".to_string()])
        ));
        // ecall_never_nested should leave the allow() list.
        assert!(report.detections.iter().any(
            |d| matches!(&d.recommendation, Recommendation::RestrictAllowedEcalls { remove }
                if remove == &vec!["ecall_never_nested".to_string()])
        ));
        // The user_check pointer is highlighted.
        assert!(report
            .detections
            .iter()
            .any(|d| matches!(&d.recommendation, Recommendation::ReviewUserCheck { .. })));
    }
}
