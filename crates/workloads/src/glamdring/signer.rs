//! The certificate-signing benchmark (§5.2.3): sign as many certificates
//! as possible in a fixed (virtual-time) window, in the native,
//! Glamdring-partitioned and optimised variants.

use std::sync::Arc;

use sgx_edl::{InterfaceBuilder, InterfaceSpec, ParamSpec};
use sgx_sdk::{CallData, EcallCtx, OcallTableBuilder, Runtime, SdkResult, ThreadCtx};
use sgx_sim::{AccessKind, EnclaveConfig, EnclaveId};
use sim_core::sync::Mutex;
use sim_core::{Clock, Nanos};

use crate::harness::{Harness, RunStats, Variant};

use super::bignum::{mul_comba, mul_recursive, sub_words, subs_per_mul, MulOps};

/// Workload configuration; defaults calibrated to §5.2.3.
#[derive(Debug, Clone)]
pub struct GlamdringConfig {
    /// Virtual-time length of the benchmark (the paper runs 30 s).
    pub duration: Nanos,
    /// RNG seed for operand generation.
    pub seed: u64,
    /// Which variant to run.
    pub variant: Variant,
    /// Operand size in 64-bit limbs (32 = 2048-bit).
    pub limbs: usize,
    /// Comba leaf size in limbs.
    pub leaf_limbs: usize,
    /// `bn_mul_recursive` invocations per signature (modular
    /// multiplications of the exponentiation).
    pub mults_per_sign: u64,
    /// Slowdown factor for computation executed inside the enclave
    /// (encrypted memory, reduced cache efficiency).
    pub enclave_compute_factor: f64,
    /// Untrusted per-node recursion bookkeeping.
    pub node_untrusted: Nanos,
    /// Base cost of one `bn_sub_part_words`.
    pub sub_base: Nanos,
    /// Additional subtraction cost per limb.
    pub sub_per_limb: Nanos,
    /// Cost of one comba leaf multiplication.
    pub leaf_cost: Nanos,
    /// Per-signature untrusted overhead (hashing, padding, serialising).
    pub misc_per_sign: Nanos,
    /// Issue one short BN_ helper ocall every this many trusted
    /// subtractions (the SNC-flagged ocalls of §5.2.3).
    pub bn_ocall_every: u64,
}

impl Default for GlamdringConfig {
    fn default() -> Self {
        GlamdringConfig {
            duration: Nanos::from_secs(30),
            seed: 0x91a3_d41c,
            variant: Variant::Enclave,
            limbs: 32,
            leaf_limbs: 4,
            mults_per_sign: 248,
            enclave_compute_factor: 2.4,
            node_untrusted: Nanos::from_nanos(600),
            sub_base: Nanos::from_nanos(100),
            sub_per_limb: Nanos::from_nanos(8),
            leaf_cost: Nanos::from_nanos(300),
            misc_per_sign: Nanos::from_micros(2_000),
            bn_ocall_every: 59,
        }
    }
}

impl GlamdringConfig {
    fn sub_cost(&self, limbs: usize) -> Nanos {
        self.sub_base + self.sub_per_limb * limbs as u64
    }

    /// Expected `bn_sub_part_words` calls per signature.
    pub fn subs_per_sign(&self) -> u64 {
        self.mults_per_sign * subs_per_mul(self.limbs, self.leaf_limbs)
    }
}

/// Outcome of a run: throughput plus call-count bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct GlamdringResult {
    /// Throughput stats (operations = completed signatures).
    pub stats: RunStats,
    /// Total `bn_sub_part_words` invocations (ecalls in the partitioned
    /// variant).
    pub sub_calls: u64,
    /// The enclave id, if one was created.
    pub enclave: Option<EnclaveId>,
}

/// Shared big-number scratch state — lives inside the enclave in the
/// partitioned variants.
struct SignState {
    a: Vec<u64>,
    b: Vec<u64>,
    t: Vec<u64>,
    r: Vec<u64>,
    counter: u64,
}

impl SignState {
    fn new(limbs: usize, seed: u64) -> SignState {
        let mut rng = sim_core::rng::seeded(seed);
        SignState {
            a: (0..limbs).map(|_| rng.gen()).collect(),
            b: (0..limbs).map(|_| rng.gen()).collect(),
            t: vec![0; limbs],
            r: vec![0; 2 * limbs],
            counter: 0,
        }
    }

    /// Real `bn_sub_part_words` work over the first `n` limbs.
    fn do_sub(&mut self, n: usize) -> u64 {
        let n = n.min(self.a.len());
        let (a, b) = (self.a[..n].to_vec(), self.b[..n].to_vec());
        let borrow = sub_words(&mut self.t[..n], &a, &b);
        self.counter = self.counter.wrapping_add(1);
        borrow
    }

    /// Real comba leaf over the first `n` limbs.
    fn do_leaf(&mut self, n: usize) {
        let n = n.min(self.a.len());
        let (a, b) = (self.a[..n].to_vec(), self.b[..n].to_vec());
        mul_comba(&mut self.r[..2 * n], &a, &b);
    }
}

// ---------------------------------------------------------------------
// MulOps implementations for the three variants
// ---------------------------------------------------------------------

/// Native: plain function calls, everything at untrusted speed.
struct NativeOps<'a> {
    clock: &'a Clock,
    state: &'a mut SignState,
    cfg: &'a GlamdringConfig,
    subs: u64,
}

impl MulOps for NativeOps<'_> {
    fn sub_part_words(&mut self, n: usize) -> SdkResult<()> {
        self.state.do_sub(n);
        self.clock.advance(self.cfg.sub_cost(n));
        self.subs += 1;
        Ok(())
    }
    fn leaf_mul(&mut self, n: usize) -> SdkResult<()> {
        self.state.do_leaf(n);
        self.clock.advance(self.cfg.leaf_cost);
        Ok(())
    }
    fn node_overhead(&mut self) -> SdkResult<()> {
        self.clock.advance(self.cfg.node_untrusted);
        Ok(())
    }
}

/// Glamdring-partitioned: the recursion driver is untrusted; every
/// `sub_part_words` is an ecall (through the loader, so the logger sees it).
struct PartitionedOps<'a> {
    harness: &'a Harness,
    eid: EnclaveId,
    table: &'a Arc<sgx_sdk::OcallTable>,
    tcx: &'a ThreadCtx<'a>,
    cfg: &'a GlamdringConfig,
    subs: u64,
    state: &'a Mutex<SignState>,
}

impl MulOps for PartitionedOps<'_> {
    fn sub_part_words(&mut self, n: usize) -> SdkResult<()> {
        let mut data = CallData::new(n as u64);
        self.harness.runtime().ecall(
            self.tcx,
            self.eid,
            "ecall_bn_sub_part_words",
            self.table,
            &mut data,
        )?;
        self.subs += 1;
        Ok(())
    }
    fn leaf_mul(&mut self, n: usize) -> SdkResult<()> {
        // Comba stays untrusted in the Glamdring partitioning.
        self.state.lock().do_leaf(n);
        self.harness.clock().advance(self.cfg.leaf_cost);
        Ok(())
    }
    fn node_overhead(&mut self) -> SdkResult<()> {
        self.harness.clock().advance(self.cfg.node_untrusted);
        Ok(())
    }
}

/// Optimised: the whole recursion executes inside one ecall; subtraction
/// and leaves are plain calls at enclave speed.
struct InEnclaveOps<'c, 'a> {
    ctx: &'c mut EcallCtx<'a>,
    state: &'c mut SignState,
    cfg: &'c GlamdringConfig,
    subs: u64,
}

impl MulOps for InEnclaveOps<'_, '_> {
    fn sub_part_words(&mut self, n: usize) -> SdkResult<()> {
        self.state.do_sub(n);
        self.ctx
            .compute(self.cfg.sub_cost(n).scale(self.cfg.enclave_compute_factor))?;
        self.subs += 1;
        if self.state.counter.is_multiple_of(self.cfg.bn_ocall_every) {
            self.ctx.ocall("ocall_bn_new", &mut CallData::default())?;
        }
        Ok(())
    }
    fn leaf_mul(&mut self, n: usize) -> SdkResult<()> {
        self.state.do_leaf(n);
        self.ctx
            .compute(self.cfg.leaf_cost.scale(self.cfg.enclave_compute_factor))?;
        Ok(())
    }
    fn node_overhead(&mut self) -> SdkResult<()> {
        self.ctx.compute(
            self.cfg
                .node_untrusted
                .scale(self.cfg.enclave_compute_factor),
        )?;
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Interface
// ---------------------------------------------------------------------

/// Builds the Glamdring-generated interface: 171 ecalls and 3,357 ocalls
/// declared (§5.2.3), of which only a handful are hot.
pub fn glamdring_interface() -> InterfaceSpec {
    let mut b = InterfaceBuilder::new()
        .public_ecall(
            "ecall_bn_sub_part_words",
            vec![ParamSpec::value("n", "size_t")],
        )
        .public_ecall(
            "ecall_bn_mul_recursive",
            vec![ParamSpec::value("n", "size_t")],
        )
        .public_ecall("ecall_load_key", vec![]);
    // The remaining auto-generated trusted functions (171 total).
    for i in 0..168 {
        b = b.public_ecall(&format!("ecall_glamdring_gen_{i}"), vec![]);
    }
    b = b
        .ocall("ocall_bn_new", vec![])
        .ocall("ocall_bn_free", vec![])
        .ocall("ocall_malloc", vec![ParamSpec::value("size", "size_t")])
        .ocall("ocall_log", vec![]);
    // Auto-generated untrusted stubs (3,357 total; 4 sync ocalls are added
    // by the SDK on top, so declare 3,353 - 4 = 3,349 fillers).
    for i in 0..3_349 {
        b = b.ocall(&format!("ocall_glamdring_gen_{i}"), vec![]);
    }
    b.build().expect("static interface is valid")
}

// ---------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------

/// Runs the signing benchmark.
///
/// # Errors
///
/// Propagates SDK failures.
pub fn run(harness: &Harness, config: &GlamdringConfig) -> SdkResult<GlamdringResult> {
    match config.variant {
        Variant::Native => run_native(harness, config),
        Variant::Enclave | Variant::Optimised => run_partitioned(harness, config),
    }
}

fn run_native(harness: &Harness, config: &GlamdringConfig) -> SdkResult<GlamdringResult> {
    let clock = harness.clock();
    let mut state = SignState::new(config.limbs, config.seed);
    let deadline = clock.now() + config.duration;
    let start = clock.now();
    let mut signs = 0u64;
    let mut sub_calls = 0u64;
    while clock.now() < deadline {
        clock.advance(config.misc_per_sign);
        for _ in 0..config.mults_per_sign {
            let mut ops = NativeOps {
                clock,
                state: &mut state,
                cfg: config,
                subs: 0,
            };
            mul_recursive(&mut ops, config.limbs, config.leaf_limbs)?;
            sub_calls += ops.subs;
        }
        signs += 1;
    }
    Ok(GlamdringResult {
        stats: RunStats {
            variant: config.variant,
            operations: signs,
            elapsed: clock.now() - start,
        },
        sub_calls,
        enclave: None,
    })
}

/// A loaded (partitioned or optimised) signing application, exposing the
/// start-up and benchmark phases separately so tools like the working-set
/// estimator can measure them independently (§5.2.3 reports 61 start-up
/// pages vs 32 benchmark pages).
pub struct GlamdringApp<'h> {
    harness: &'h Harness,
    config: GlamdringConfig,
    enclave: Arc<sgx_sdk::Enclave>,
    table: Arc<sgx_sdk::OcallTable>,
    state: Arc<Mutex<SignState>>,
}

impl<'h> GlamdringApp<'h> {
    /// Creates the enclave and registers the partitioned functions; no
    /// ecall is issued yet.
    ///
    /// # Errors
    ///
    /// Propagates SDK failures.
    pub fn new(harness: &'h Harness, config: &GlamdringConfig) -> SdkResult<GlamdringApp<'h>> {
        let (enclave, table, state) = build_enclave(harness, config)?;
        Ok(GlamdringApp {
            harness,
            config: config.clone(),
            enclave,
            table,
            state,
        })
    }

    /// The enclave id (e.g. for attaching a working-set estimator).
    pub fn enclave_id(&self) -> EnclaveId {
        self.enclave.id()
    }

    /// The start-up phase: key loading (touches the one-off working set).
    ///
    /// # Errors
    ///
    /// Propagates SDK failures.
    pub fn startup(&self) -> SdkResult<()> {
        let tcx = ThreadCtx::main();
        self.harness.runtime().ecall(
            &tcx,
            self.enclave.id(),
            "ecall_load_key",
            &self.table,
            &mut CallData::default(),
        )
    }

    /// Signs certificates for `duration` of virtual time; returns
    /// `(signatures, sub_part_words calls)`.
    ///
    /// # Errors
    ///
    /// Propagates SDK failures.
    pub fn sign_for(&self, duration: Nanos) -> SdkResult<(u64, u64)> {
        let config = &self.config;
        let optimised = config.variant == Variant::Optimised;
        let rt = self.harness.runtime();
        let tcx = ThreadCtx::main();
        let clock = self.harness.clock();
        let deadline = clock.now() + duration;
        let mut signs = 0u64;
        let mut sub_calls = 0u64;
        while clock.now() < deadline {
            clock.advance(config.misc_per_sign);
            if optimised {
                for _ in 0..config.mults_per_sign {
                    let mut data = CallData::new(config.limbs as u64);
                    rt.ecall(
                        &tcx,
                        self.enclave.id(),
                        "ecall_bn_mul_recursive",
                        &self.table,
                        &mut data,
                    )?;
                    sub_calls += data.ret;
                }
            } else {
                for _ in 0..config.mults_per_sign {
                    let mut ops = PartitionedOps {
                        harness: self.harness,
                        eid: self.enclave.id(),
                        table: &self.table,
                        tcx: &tcx,
                        cfg: config,
                        subs: 0,
                        state: &self.state,
                    };
                    mul_recursive(&mut ops, config.limbs, config.leaf_limbs)?;
                    sub_calls += ops.subs;
                }
            }
            signs += 1;
        }
        Ok((signs, sub_calls))
    }
}

type BuiltEnclave = (
    Arc<sgx_sdk::Enclave>,
    Arc<sgx_sdk::OcallTable>,
    Arc<Mutex<SignState>>,
);

fn build_enclave(harness: &Harness, config: &GlamdringConfig) -> SdkResult<BuiltEnclave> {
    let spec = glamdring_interface();
    let rt: &Arc<Runtime> = harness.runtime();
    let enclave = rt.create_enclave(
        &spec,
        &EnclaveConfig {
            code_kib: 256, // 64 code pages
            heap_kib: 256, // 64 heap pages
            ..EnclaveConfig::default()
        },
    )?;
    let eid = enclave.id();
    let heap = harness.machine().heap_range(eid)?;
    let code = harness.machine().code_range(eid)?;

    let state = Arc::new(Mutex::new(SignState::new(config.limbs, config.seed)));

    // Start-up: key loading touches a large one-off working set
    // (§5.2.3 reports 61 pages after start-up).
    {
        let heap = heap.clone();
        let code = code.clone();
        enclave.register_ecall("ecall_load_key", move |ctx, _| {
            ctx.touch(code.start..code.start + 32, AccessKind::Execute)?;
            ctx.touch(heap.start..heap.start + 27, AccessKind::Write)?;
            ctx.compute(Nanos::from_micros(400))?;
            Ok(())
        })?;
    }

    // The hot partitioned function.
    {
        let state = Arc::clone(&state);
        let cfg = config.clone();
        let heap = heap.clone();
        let code = code.clone();
        enclave.register_ecall("ecall_bn_sub_part_words", move |ctx, data| {
            let mut st = state.lock();
            let n = data.scalar as usize;
            // Steady-state working set: a handful of code pages plus the
            // rotating big-number heap buffers (§5.2.3: 32 pages).
            let code_page = code.start + (st.counter % 6) as usize;
            ctx.touch(code_page..code_page + 1, AccessKind::Execute)?;
            let heap_page = heap.start + (st.counter % 24) as usize;
            ctx.touch(heap_page..heap_page + 1, AccessKind::Write)?;
            data.ret = st.do_sub(n);
            ctx.compute(cfg.sub_cost(n).scale(cfg.enclave_compute_factor))?;
            if st.counter.is_multiple_of(cfg.bn_ocall_every) {
                ctx.ocall("ocall_bn_new", &mut CallData::default())?;
            }
            Ok(())
        })?;
    }

    // The optimised entry point: whole multiplication inside the enclave.
    {
        let state = Arc::clone(&state);
        let cfg = config.clone();
        let heap = heap.clone();
        let code = code.clone();
        enclave.register_ecall("ecall_bn_mul_recursive", move |ctx, data| {
            let mut st = state.lock();
            let code_page = code.start + (st.counter % 6) as usize;
            ctx.touch(code_page..code_page + 1, AccessKind::Execute)?;
            let heap_page = heap.start + (st.counter % 24) as usize;
            ctx.touch(heap_page..heap_page + 1, AccessKind::Write)?;
            let n = data.scalar as usize;
            let mut ops = InEnclaveOps {
                ctx,
                state: &mut st,
                cfg: &cfg,
                subs: 0,
            };
            let subs = mul_recursive(&mut ops, n, cfg.leaf_limbs)?;
            data.ret = subs;
            Ok(())
        })?;
    }

    let mut builder = OcallTableBuilder::new(enclave.spec());
    for name in ["ocall_bn_new", "ocall_bn_free", "ocall_log"] {
        builder.register(name, |h, _| {
            h.compute(Nanos::from_nanos(500));
            Ok(())
        })?;
    }
    builder.register("ocall_malloc", |h, _| {
        h.compute(Nanos::from_nanos(700));
        Ok(())
    })?;
    for i in 0..3_349 {
        builder.register(&format!("ocall_glamdring_gen_{i}"), |_, _| Ok(()))?;
    }
    let table = Arc::new(builder.build()?);
    Ok((enclave, table, state))
}

fn run_partitioned(harness: &Harness, config: &GlamdringConfig) -> SdkResult<GlamdringResult> {
    let app = GlamdringApp::new(harness, config)?;
    app.startup()?;
    let start = harness.clock().now();
    let (signs, sub_calls) = app.sign_for(config.duration)?;
    Ok(GlamdringResult {
        stats: RunStats {
            variant: config.variant,
            operations: signs,
            elapsed: harness.clock().now() - start,
        },
        sub_calls,
        enclave: Some(app.enclave_id()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::HwProfile;

    fn short_cfg(variant: Variant) -> GlamdringConfig {
        GlamdringConfig {
            duration: Nanos::from_millis(400),
            variant,
            ..GlamdringConfig::default()
        }
    }

    #[test]
    fn interface_has_published_size() {
        let spec = glamdring_interface();
        assert_eq!(spec.ecalls().len(), 171);
        assert_eq!(spec.ocalls().len(), 3_353); // +4 sync = 3,357
    }

    #[test]
    fn subs_per_sign_matches_paper_scale() {
        let cfg = GlamdringConfig::default();
        // 248 mults x 26 subs = 6,448 ecalls per signature; over ~1,000
        // signatures of a 30 s run that is the paper's 6.6 M ecalls.
        assert_eq!(cfg.subs_per_sign(), 6_448);
    }

    #[test]
    fn native_throughput_in_paper_range() {
        let h = Harness::new(HwProfile::Unpatched);
        let res = run(&h, &short_cfg(Variant::Native)).unwrap();
        let tput = res.stats.throughput();
        // Paper native: 145 signs/s (their hardware); same order expected.
        assert!((80.0..260.0).contains(&tput), "{tput}");
    }

    #[test]
    fn partitioned_is_dominated_by_sub_ecalls() {
        let h = Harness::new(HwProfile::Unpatched);
        let res = run(&h, &short_cfg(Variant::Enclave)).unwrap();
        assert_eq!(
            res.sub_calls,
            res.stats.operations * GlamdringConfig::default().subs_per_sign()
        );
    }

    #[test]
    fn optimisation_speedup_matches_paper_shape() {
        let enclave = run(
            &Harness::new(HwProfile::Unpatched),
            &short_cfg(Variant::Enclave),
        )
        .unwrap()
        .stats
        .throughput();
        let optimised = run(
            &Harness::new(HwProfile::Unpatched),
            &short_cfg(Variant::Optimised),
        )
        .unwrap()
        .stats
        .throughput();
        let speedup = optimised / enclave;
        // Paper: 2.16x on the unpatched system.
        assert!((1.7..3.2).contains(&speedup), "speedup {speedup:.2}");
    }

    #[test]
    fn speedup_grows_with_mitigations() {
        let ratio = |profile: HwProfile| {
            let e = run(&Harness::new(profile), &short_cfg(Variant::Enclave))
                .unwrap()
                .stats
                .throughput();
            let o = run(&Harness::new(profile), &short_cfg(Variant::Optimised))
                .unwrap()
                .stats
                .throughput();
            o / e
        };
        let base = ratio(HwProfile::Unpatched);
        let spectre = ratio(HwProfile::Spectre);
        let l1tf = ratio(HwProfile::Foreshadow);
        // Paper: 2.16x -> 2.66x -> 2.87x.
        assert!(base < spectre && spectre < l1tf, "{base} {spectre} {l1tf}");
    }
}
