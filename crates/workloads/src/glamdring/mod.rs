//! The Glamdring-partitioned LibreSSL workload (§5.2.3, Figure 6).
//!
//! Glamdring automatically partitions an application: functions touching
//! sensitive data move into the enclave, the rest stays outside. For
//! LibreSSL's signing path this produced a pathological interface — the
//! untrusted `bn_mul_recursive` calls the trusted `bn_sub_part_words`
//! **in pairs at every recursion node**, so that single ecall accounts for
//! 99.5% of all 6.6 million ecalls of a 30-second signing benchmark, with
//! a mean execution time around the bare transition cost.
//!
//! sgx-perf flags it as an SISC problem; moving `bn_mul_recursive` (and
//! with it the whole multiplication) inside the enclave removed the
//! successive ecalls and yielded 2.16× (unpatched), 2.66× (Spectre) and
//! 2.87× (L1TF) speedups.
//!
//! [`bignum`] implements real multi-word arithmetic with the OpenSSL-style
//! Karatsuba recursion; [`signer`] drives the certificate-signing
//! benchmark in the three variants.

pub mod bignum;
pub mod signer;

pub use signer::{run, GlamdringApp, GlamdringConfig, GlamdringResult};
