//! Multi-precision arithmetic with the OpenSSL recursion structure.
//!
//! The arithmetic is real (little-endian `u64` limbs, genuine borrows and
//! carries); the *call structure* mirrors OpenSSL's `bn_mul_recursive`:
//! each Karatsuba node computes two partial-word subtractions
//! (`bn_sub_part_words`) and recurses three times until the comba
//! multiplication leaf. In the Glamdring partitioning the subtractions are
//! ecalls while the recursion driver stays untrusted — reproduced here via
//! the [`MulOps`] trait.

use sgx_sdk::SdkResult;

/// Subtracts `b` from `a` limb-wise into `r`, returning the final borrow —
/// the computational core of `bn_sub_part_words`.
///
/// # Panics
///
/// Panics unless `r`, `a` and `b` have equal lengths.
pub fn sub_words(r: &mut [u64], a: &[u64], b: &[u64]) -> u64 {
    assert!(
        r.len() == a.len() && a.len() == b.len(),
        "limb length mismatch"
    );
    let mut borrow = 0u64;
    for i in 0..r.len() {
        let (d1, b1) = a[i].overflowing_sub(b[i]);
        let (d2, b2) = d1.overflowing_sub(borrow);
        r[i] = d2;
        borrow = u64::from(b1) + u64::from(b2);
    }
    borrow
}

/// Schoolbook ("comba") multiplication of two `n`-limb numbers into a
/// `2n`-limb result — the recursion leaf.
///
/// # Panics
///
/// Panics unless `r.len() == a.len() + b.len()` and `a.len() == b.len()`.
pub fn mul_comba(r: &mut [u64], a: &[u64], b: &[u64]) {
    assert_eq!(a.len(), b.len(), "comba operands must match");
    assert_eq!(r.len(), a.len() + b.len(), "result must be 2n limbs");
    r.fill(0);
    for (i, &ai) in a.iter().enumerate() {
        let mut carry: u128 = 0;
        for (j, &bj) in b.iter().enumerate() {
            let acc = ai as u128 * bj as u128 + r[i + j] as u128 + carry;
            r[i + j] = acc as u64;
            carry = acc >> 64;
        }
        r[i + b.len()] = carry as u64;
    }
}

/// The operations a Karatsuba node needs, abstracted over where they
/// execute:
///
/// * native — plain function calls,
/// * Glamdring-partitioned — `sub_part_words` is an **ecall**,
/// * optimised — the whole recursion runs inside one ecall.
pub trait MulOps {
    /// `bn_sub_part_words` over `n` limbs (called twice per node).
    ///
    /// # Errors
    ///
    /// Propagates dispatch failures in the partitioned variant.
    fn sub_part_words(&mut self, n: usize) -> SdkResult<()>;

    /// The comba leaf multiplication over `n` limbs.
    ///
    /// # Errors
    ///
    /// Propagates dispatch failures.
    fn leaf_mul(&mut self, n: usize) -> SdkResult<()>;

    /// Untrusted recursion bookkeeping per node (case analysis, pointer
    /// arithmetic).
    ///
    /// # Errors
    ///
    /// Propagates dispatch failures.
    fn node_overhead(&mut self) -> SdkResult<()>;
}

/// Drives the OpenSSL-style recursion over `n` limbs: two partial-word
/// subtractions per node, then three recursive half-size multiplications,
/// bottoming out in the comba leaf at `leaf_n` limbs.
///
/// Returns the number of `sub_part_words` invocations (for call-count
/// assertions).
///
/// # Errors
///
/// Propagates failures from `ops`.
pub fn mul_recursive(ops: &mut dyn MulOps, n: usize, leaf_n: usize) -> SdkResult<u64> {
    if n <= leaf_n {
        ops.leaf_mul(n)?;
        return Ok(0);
    }
    ops.node_overhead()?;
    // The two bn_sub_part_words calls of the switch in bn_mul_recursive.
    ops.sub_part_words(n / 2)?;
    ops.sub_part_words(n / 2)?;
    let mut subs = 2;
    // Karatsuba: three half-size products.
    for _ in 0..3 {
        subs += mul_recursive(ops, n / 2, leaf_n)?;
    }
    Ok(subs)
}

/// Number of `sub_part_words` calls `mul_recursive` makes for given sizes.
pub fn subs_per_mul(n: usize, leaf_n: usize) -> u64 {
    if n <= leaf_n {
        return 0;
    }
    2 + 3 * subs_per_mul(n / 2, leaf_n)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct CountingOps {
        subs: u64,
        leaves: u64,
        nodes: u64,
    }

    impl MulOps for CountingOps {
        fn sub_part_words(&mut self, _n: usize) -> SdkResult<()> {
            self.subs += 1;
            Ok(())
        }
        fn leaf_mul(&mut self, _n: usize) -> SdkResult<()> {
            self.leaves += 1;
            Ok(())
        }
        fn node_overhead(&mut self) -> SdkResult<()> {
            self.nodes += 1;
            Ok(())
        }
    }

    #[test]
    fn sub_words_computes_real_differences() {
        let a = [10u64, 20, 30];
        let b = [3u64, 5, 7];
        let mut r = [0u64; 3];
        assert_eq!(sub_words(&mut r, &a, &b), 0);
        assert_eq!(r, [7, 15, 23]);
    }

    #[test]
    fn sub_words_borrows_across_limbs() {
        let a = [0u64, 1];
        let b = [1u64, 0];
        let mut r = [0u64; 2];
        assert_eq!(sub_words(&mut r, &a, &b), 0);
        assert_eq!(r, [u64::MAX, 0]);
        // Underflow overall produces a final borrow.
        let mut r2 = [0u64; 2];
        assert_eq!(sub_words(&mut r2, &b, &a), 1);
    }

    #[test]
    fn comba_matches_u128_for_single_limbs() {
        let a = [0xffff_ffff_ffff_fffbu64];
        let b = [0x1_0001u64];
        let mut r = [0u64; 2];
        mul_comba(&mut r, &a, &b);
        let expected = a[0] as u128 * b[0] as u128;
        assert_eq!(r[0], expected as u64);
        assert_eq!(r[1], (expected >> 64) as u64);
    }

    #[test]
    fn comba_is_commutative() {
        let a = [3u64, 9, 27, 81];
        let b = [5u64, 25, 125, 625];
        let mut r1 = [0u64; 8];
        let mut r2 = [0u64; 8];
        mul_comba(&mut r1, &a, &b);
        mul_comba(&mut r2, &b, &a);
        assert_eq!(r1, r2);
    }

    #[test]
    fn recursion_counts_match_closed_form() {
        for (n, leaf) in [(32usize, 4usize), (16, 4), (64, 8)] {
            let mut ops = CountingOps {
                subs: 0,
                leaves: 0,
                nodes: 0,
            };
            let subs = mul_recursive(&mut ops, n, leaf).unwrap();
            assert_eq!(subs, ops.subs);
            assert_eq!(subs, subs_per_mul(n, leaf));
            // Every internal node does exactly 2 subs.
            assert_eq!(ops.subs, ops.nodes * 2);
        }
    }

    #[test]
    fn recursion_depth_32_over_4_gives_26_subs() {
        // 32 -> 16 -> 8 -> leaf(4): nodes 1 + 3 + 9 = 13, subs 26.
        assert_eq!(subs_per_mul(32, 4), 26);
    }
}
