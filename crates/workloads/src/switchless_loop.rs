//! Closing the sgx-perf loop: **detect → apply → re-measure** with the
//! simulated SDK's switchless-call subsystem.
//!
//! The workload is a small request server in the HotCalls shape: every
//! request is one medium-length ecall that emits a burst of very short
//! logging ocalls. Run it under the [`sgx_perf::Logger`], feed the trace to
//! the [`sgx_perf::Analyzer`], and the [`UseSwitchless`] recommendation
//! fires for the hot ocall. [`closed_loop`] then *applies* that
//! recommendation — purely through [`SwitchlessConfig`] force lists, no
//! workload change — re-runs on a fresh harness and reports the drop in
//! transitions and virtual time.
//!
//! [`UseSwitchless`]: sgx_perf::Recommendation::UseSwitchless

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use sgx_perf::analysis::diff::{DiffConfig, TraceDiff};
use sgx_perf::{Analyzer, CallKind, Logger, LoggerConfig, Recommendation, TraceDb};
use sgx_sdk::{CallData, OcallTableBuilder, SdkResult, SwitchlessConfig, ThreadCtx};
use sgx_sim::EnclaveConfig;
use sim_core::{HwProfile, Nanos};
use sim_threads::Simulation;

use crate::harness::{Harness, RunStats, Variant};

/// The server's enclave interface. Note: *no* `transition_using_threads`
/// postfix — the baseline is a naïve port, and the optimisation is applied
/// by configuration only.
pub const EDL: &str = "enclave {
    trusted { public uint64_t ecall_handle(uint64_t req); };
    untrusted { void ocall_log(uint64_t seq); };
};";

/// Short logging ocalls per request — the switchless candidates.
pub const OCALLS_PER_REQUEST: u64 = 4;

/// Outcome of one server run.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopRun {
    /// Throughput bookkeeping for the run.
    pub stats: RunStats,
    /// Sum of all request results — must be invariant across variants.
    pub checksum: u64,
}

/// Runs `requests` through the server. With `config`, the switchless
/// subsystem is enabled before the first request and shut down after the
/// last; without it the run is the plain synchronous baseline.
///
/// # Errors
///
/// Propagates SDK failures.
pub fn run(
    harness: &Harness,
    requests: u64,
    config: Option<SwitchlessConfig>,
) -> SdkResult<LoopRun> {
    let spec = sgx_edl::parse(EDL).expect("static EDL");
    let rt = harness.runtime();
    let enclave = rt.create_enclave(&spec, &EnclaveConfig::default())?;
    enclave.register_ecall("ecall_handle", |ctx, data| {
        ctx.compute(Nanos::from_micros(2))?;
        let mut sum = 0;
        for seq in 0..OCALLS_PER_REQUEST {
            let mut log = CallData::new(data.scalar * OCALLS_PER_REQUEST + seq);
            ctx.ocall("ocall_log", &mut log)?;
            sum += log.ret;
        }
        ctx.compute(Nanos::from_micros(1))?;
        data.ret = sum;
        Ok(())
    })?;
    let mut builder = OcallTableBuilder::new(enclave.spec());
    builder.register("ocall_log", |host, data| {
        host.compute(Nanos::from_nanos(500));
        data.ret = data.scalar + 1;
        Ok(())
    })?;
    let table = Arc::new(builder.build()?);

    let variant = if config.is_some() {
        Variant::Optimised
    } else {
        Variant::Enclave
    };
    let sim = Simulation::new(harness.clock().clone());
    let sw = match config {
        Some(cfg) => {
            let sw = rt.enable_switchless(enclave.id(), cfg)?;
            sw.spawn_workers(&sim);
            Some(sw)
        }
        None => None,
    };
    let checksum = Arc::new(AtomicU64::new(0));
    let start = harness.clock().now();
    {
        let rt = Arc::clone(rt);
        let table = Arc::clone(&table);
        let eid = enclave.id();
        let checksum = Arc::clone(&checksum);
        sim.spawn("server", move |ctx| {
            let tcx = ThreadCtx::from_sim(ctx);
            for req in 0..requests {
                let mut data = CallData::new(req);
                rt.ecall(&tcx, eid, "ecall_handle", &table, &mut data)
                    .expect("request");
                checksum.fetch_add(data.ret, Ordering::SeqCst);
            }
            if let Some(sw) = &sw {
                sw.shutdown(ctx);
            }
        });
    }
    sim.run();
    Ok(LoopRun {
        stats: RunStats {
            variant,
            operations: requests,
            elapsed: harness.clock().now() - start,
        },
        checksum: checksum.load(Ordering::SeqCst),
    })
}

/// The full detect → apply → re-measure cycle.
#[derive(Debug, Clone)]
pub struct ClosedLoop {
    /// The baseline (synchronous) run.
    pub before: LoopRun,
    /// The re-measured run with the recommendation applied.
    pub after: LoopRun,
    /// Calls the analyzer recommended serving switchlessly.
    pub recommended_ocalls: Vec<String>,
    /// Ecalls the analyzer recommended serving switchlessly (none for this
    /// workload — the handler is too long — but carried for completeness).
    pub recommended_ecalls: Vec<String>,
    /// Synchronous boundary crossings (ecall + ocall round-trips) in the
    /// baseline trace.
    pub transitions_before: usize,
    /// Remaining crossings after applying switchless.
    pub transitions_after: usize,
    /// Calls the switchless workers served in the after-run.
    pub switchless_dispatched: usize,
    /// Switchless attempts that degraded to a transition in the after-run.
    pub switchless_fallbacks: usize,
    /// The baseline trace (for further analysis or persistence).
    pub trace_before: TraceDb,
    /// The after-run trace.
    pub trace_after: TraceDb,
    /// The A/B verdict of the optimisation, straight from the diff engine
    /// (`trace_before` as baseline, `trace_after` as candidate). The
    /// transition/switchless counters above are derived from it.
    pub diff: TraceDiff,
}

impl ClosedLoop {
    /// Virtual-time speedup of the optimised run.
    pub fn speedup(&self) -> f64 {
        if self.after.stats.elapsed.is_zero() {
            return 0.0;
        }
        self.before.stats.elapsed.as_nanos() as f64 / self.after.stats.elapsed.as_nanos() as f64
    }
}

/// Synchronous round-trips in a trace. The counting rule lives in the
/// diff engine now (it needs it for transition deltas); this re-export
/// keeps the workload-facing name.
pub use sgx_perf::analysis::diff::round_trips;

/// Runs the loop: baseline under the logger, analysis, application of the
/// [`UseSwitchless`](Recommendation::UseSwitchless) findings via
/// [`SwitchlessConfig`] force lists, and a re-measured run on a fresh
/// harness of the same hardware profile.
///
/// # Errors
///
/// Propagates SDK failures.
///
/// # Panics
///
/// Panics if a recommendation targets a call the trace has no symbol for
/// (cannot happen: the logger records the interface of every enclave).
pub fn closed_loop(profile: HwProfile, requests: u64) -> SdkResult<ClosedLoop> {
    // Measure: the unmodified application under the logger.
    let baseline = Harness::new(profile);
    let logger = Logger::attach(baseline.runtime(), LoggerConfig::default());
    let before = run(&baseline, requests, None)?;
    let trace_before = logger.finish();

    // Detect: feed the trace to the analyzer, keep the switchless findings.
    let report = Analyzer::new(&trace_before, profile.cost_model()).analyze();
    let mut recommended_ocalls = Vec::new();
    let mut recommended_ecalls = Vec::new();
    for d in &report.detections {
        if d.recommendation != Recommendation::UseSwitchless {
            continue;
        }
        let bucket = match d.target.kind {
            CallKind::Ecall => &mut recommended_ecalls,
            CallKind::Ocall => &mut recommended_ocalls,
        };
        if !bucket.contains(&d.name) {
            bucket.push(d.name.clone());
        }
    }

    // Apply: force lists only — the application code is untouched.
    let config = SwitchlessConfig {
        untrusted_workers: 1,
        trusted_workers: if recommended_ecalls.is_empty() { 0 } else { 1 },
        force_ecalls: recommended_ecalls.clone(),
        force_ocalls: recommended_ocalls.clone(),
        ..SwitchlessConfig::default()
    };

    // Re-measure on a fresh harness with the same profile.
    let optimised = Harness::new(profile);
    let logger = Logger::attach(optimised.runtime(), LoggerConfig::default());
    let after = run(&optimised, requests, Some(config))?;
    let trace_after = logger.finish();

    // The diff engine is the single source of truth for the A/B counters.
    let diff = TraceDiff::compute(&trace_before, &trace_after, DiffConfig::default());
    Ok(ClosedLoop {
        transitions_before: diff.totals.transitions.a as usize,
        transitions_after: diff.totals.transitions.b as usize,
        switchless_dispatched: diff.totals.switchless_dispatched.b as usize,
        switchless_fallbacks: diff.totals.switchless_fallbacks.b as usize,
        before,
        after,
        recommended_ocalls,
        recommended_ecalls,
        trace_before,
        trace_after,
        diff,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detector_fires_and_applying_it_pays_off() {
        let loop_ = closed_loop(HwProfile::Unpatched, 100).unwrap();
        assert_eq!(
            loop_.recommended_ocalls,
            vec!["ocall_log".to_string()],
            "the hot short ocall must be recommended"
        );
        assert_eq!(loop_.after.checksum, loop_.before.checksum);
        // 100 requests + 400 ocalls before; the ocalls leave the trace.
        assert_eq!(loop_.transitions_before, 500);
        assert!(
            loop_.transitions_after < loop_.transitions_before,
            "transitions: {} -> {}",
            loop_.transitions_before,
            loop_.transitions_after
        );
        // Every baseline round-trip is either still synchronous (fallbacks
        // included — they complete through the classic path and are
        // recorded) or served by a worker.
        assert_eq!(loop_.transitions_after + loop_.switchless_dispatched, 500);
        assert!(
            loop_.after.stats.elapsed < loop_.before.stats.elapsed,
            "virtual time: {} -> {}",
            loop_.before.stats.elapsed,
            loop_.after.stats.elapsed
        );
        assert!(loop_.speedup() > 1.0);
        // The embedded diff agrees: the optimisation is an improvement
        // (exit 0 in the CI-gate sense), with the transition drop flagged.
        assert_eq!(
            loop_.diff.verdict,
            sgx_perf::analysis::diff::Verdict::Improvement
        );
        assert_eq!(loop_.diff.exit_code(), 0);
        assert!(
            loop_
                .diff
                .improvements
                .iter()
                .any(|i| i.contains("transitions")),
            "{:?}",
            loop_.diff.improvements
        );
    }

    #[test]
    fn run_is_deterministic() {
        let a = run(&Harness::new(HwProfile::Spectre), 50, None).unwrap();
        let b = run(&Harness::new(HwProfile::Spectre), 50, None).unwrap();
        assert_eq!(a, b);
    }
}
